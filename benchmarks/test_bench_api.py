"""D2.4 — APIs and libraries: the two access channels, measured.

Times the local pipeline facade and the OpenAI-style completion client
over the same underlying model, and reports tokens/second — the
demonstration of Section 2.4 with numbers attached.
"""

import pytest

from repro.api import CompletionClient, bootstrap_hub, pipeline


@pytest.fixture(scope="module")
def hub():
    return bootstrap_hub(seed=0, steps=60, corpus_docs=60)


def test_bench_pipeline_generation(benchmark, report_printer, hub):
    entry = hub.get("tiny-gpt")
    generator = pipeline("text-generation", entry.model, entry.tokenizer)
    result = benchmark(generator, "the database", max_new_tokens=8)

    stats_mean = benchmark.stats["mean"]
    report_printer(
        "D2.4a: local pipeline channel (HuggingFace style)",
        [
            f"task: text-generation, 8 new tokens",
            f"sample output : {result!r}",
            f"mean latency  : {stats_mean * 1000:.1f} ms",
            f"throughput    : {8 / stats_mean:.1f} tokens/s",
        ],
    )
    assert isinstance(result, str)


def test_bench_completion_client(benchmark, report_printer, hub):
    client = CompletionClient(hub)
    response = benchmark(
        client.complete, "tiny-gpt", "the query returns", max_tokens=8
    )

    stats_mean = benchmark.stats["mean"]
    report_printer(
        "D2.4b: remote-API channel (OpenAI style)",
        [
            f"engine        : {response.engine}",
            f"sample output : {response.text!r}",
            f"usage         : {response.usage.total_tokens} tokens",
            f"mean latency  : {stats_mean * 1000:.1f} ms",
        ],
    )
    assert response.usage.completion_tokens > 0


def test_bench_kv_cache(benchmark, report_printer, hub):
    """D2.4d — KV-cached incremental decoding vs full re-encoding."""
    import time

    from repro.generation import GenerationConfig, generate

    entry = hub.get("tiny-gpt")
    prompt = entry.tokenizer.encode("the database stores", add_bos=True).ids
    config = GenerationConfig(max_new_tokens=48)

    cached_out = benchmark(generate, entry.model, prompt, config, None, True)

    start = time.perf_counter()
    plain_out = generate(entry.model, prompt, config, use_cache=False)
    plain_seconds = time.perf_counter() - start
    cached_seconds = benchmark.stats["mean"]

    report_printer(
        "D2.4d: KV-cache ablation (48-token decode)",
        [
            f"full re-encode : {plain_seconds * 1000:.1f} ms",
            f"KV-cached      : {cached_seconds * 1000:.1f} ms",
            f"speedup        : {plain_seconds / cached_seconds:.1f}x",
            f"identical output: {plain_out == cached_out}",
        ],
    )
    assert plain_out == cached_out
    assert cached_seconds < plain_seconds


def test_bench_fill_mask(benchmark, report_printer, hub):
    entry = hub.get("tiny-bert")
    filler = pipeline("fill-mask", entry.model, entry.tokenizer)
    fills = benchmark(filler, "the database [MASK] sorted rows .", top_k=3)

    report_printer(
        "D2.4c: fill-mask pipeline",
        [f"  {f.token:<12} p={f.score:.3f}" for f in fills],
    )
    assert len(fills) == 3
