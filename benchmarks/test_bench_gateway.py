"""GATEWAY — the async serving front door under open-loop load.

The hosted APIs the paper's workloads depend on are multi-tenant: many
callers share a few replicas behind admission control, and the provider
sheds excess load (429s) rather than letting queues grow without bound.
This benchmark drives `repro.serving.Gateway` with an **open-loop**
Poisson arrival process (arrivals do not slow down when the server
struggles — the regime where shedding matters) on a deterministic
virtual clock, sweeping offered load from well under capacity to 2x
saturation, and measures the saturation curve: goodput, shed rate, and
accepted-request p50/p99 latency at each point. A second experiment
kills a replica mid-decode with an injected fault and verifies the
failover guarantee: every admitted request completes exactly once with
greedy output token-identical to the direct scheduler path.

Virtual time makes the sweep both fast (a minute of simulated traffic
runs in milliseconds of wall time) and exactly reproducible from its
seed. Machine-readable results land in ``benchmarks/BENCH_gateway.json``
via the ``bench_metrics`` fixture's ``gateway/`` group routing.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.generation import GenerationConfig
from repro.models import GPTModel, ModelConfig
from repro.reliability import FaultInjector, FaultProfile
from repro.reliability.aclock import AsyncVirtualClock, run_virtual
from repro.serving import (
    BatchRequest,
    BatchScheduler,
    Gateway,
    GatewayRequest,
    Replica,
    ServiceModel,
)
from repro.serving.loadgen import sweep

NEW_TOKENS = 8
MAX_BATCH = 8
SECONDS_PER_STEP = 0.01
#: ideal throughput with full batches: MAX_BATCH requests retire every
#: NEW_TOKENS decode steps
NOMINAL_CAPACITY = MAX_BATCH / (NEW_TOKENS * SECONDS_PER_STEP)
MULTIPLIERS = (0.25, 0.5, 1.0, 2.0)
DURATION = 5.0

CFG = GenerationConfig(max_new_tokens=NEW_TOKENS)


@pytest.fixture(scope="module")
def model():
    return GPTModel(ModelConfig.tiny(vocab_size=48), seed=7)


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(3)
    return [
        list(map(int, rng.integers(1, 48, size=int(n))))
        for n in rng.integers(2, 12, size=12)
    ]


def make_replica(name, model, clock, injector=None):
    return Replica(
        name,
        model,
        max_batch=MAX_BATCH,
        clock=clock.virtual,
        service=ServiceModel(seconds_per_decode_step=SECONDS_PER_STEP),
        injector=injector,
    )


def test_saturation_curve(model, prompts, bench_metrics, report_printer):
    clock = AsyncVirtualClock()

    def make_gateway():
        return Gateway(
            [make_replica("r0", model, clock)], clock=clock, max_queue=16
        )

    def make_request(i):
        return GatewayRequest(BatchRequest(prompts[i % len(prompts)], config=CFG))

    async def main():
        return await sweep(
            make_gateway,
            make_request,
            rates=[m * NOMINAL_CAPACITY for m in MULTIPLIERS],
            duration=DURATION,
            clock=clock,
            seed=42,
        )

    reports = run_virtual(main(), clock)

    lines = [
        "offered(x)   goodput  shed%   p50      p99      p99 wait",
    ]
    for mult, report in zip(MULTIPLIERS, reports):
        lines.append(
            f"{mult:>8.2f}x  {report.goodput:>8.1f}  {report.shed_rate:>5.1%}"
            f"  {report.p50_latency:>7.3f}  {report.p99_latency:>7.3f}"
            f"  {report.p99_queue_wait:>7.3f}"
        )
        bench_metrics[f"gateway/goodput_at_{mult}x"] = report.goodput
        bench_metrics[f"gateway/shed_rate_at_{mult}x"] = report.shed_rate
        bench_metrics[f"gateway/p99_latency_at_{mult}x"] = report.p99_latency
    light, half, saturated, overloaded = reports
    peak = max(r.goodput for r in reports[:-1])
    bench_metrics["gateway/nominal_capacity"] = NOMINAL_CAPACITY
    bench_metrics["gateway/peak_goodput"] = peak
    bench_metrics["gateway/overload_goodput_ratio"] = overloaded.goodput / peak
    bench_metrics["gateway/overload_p99_over_saturated_p99"] = (
        overloaded.p99_latency / saturated.p99_latency
    )
    lines.append(
        f"peak goodput {peak:.1f} req/s; at 2x offered load the gateway "
        f"sheds {overloaded.shed_rate:.1%} and holds "
        f"{overloaded.goodput / peak:.1%} of peak goodput"
    )
    report_printer("GATEWAY — open-loop saturation sweep (virtual time)", lines)

    # Under capacity: no shedding, everything completes.
    assert light.shed == 0 and half.shed == 0
    assert light.completed == light.submitted
    # The acceptance criteria: at 2x saturation the gateway sheds
    # rather than queueing, keeps accepted p99 bounded, and holds
    # goodput within 10% of the single-replica peak.
    assert overloaded.shed_rate > 0.2
    assert overloaded.p99_latency < 2.0 * saturated.p99_latency
    assert overloaded.goodput > 0.9 * peak


def test_failover_token_identity(model, prompts, bench_metrics, report_printer):
    scheduler = BatchScheduler(model, max_batch_size=MAX_BATCH, continuous=True)
    tickets = [scheduler.submit(BatchRequest(p, config=CFG)) for p in prompts]
    direct = scheduler.run()
    reference = [direct[t].sequences for t in tickets]

    clock = AsyncVirtualClock()

    async def main():
        injector = FaultInjector(FaultProfile(rate_limit_every=5), clock=None)
        bad = make_replica("bad", model, clock, injector=injector)
        good = make_replica("good", model, clock)
        gateway = Gateway([bad, good], clock=clock, max_queue=len(prompts))
        await gateway.start()
        results = await asyncio.gather(
            *[
                gateway.submit(GatewayRequest(BatchRequest(p, config=CFG)))
                for p in prompts
            ]
        )
        await gateway.stop()
        return gateway, results

    gateway, results = run_virtual(main(), clock)

    identical = [r.sequences for r in results] == reference
    stats = gateway.stats
    bench_metrics["gateway/failover_token_identical"] = float(identical)
    bench_metrics["gateway/failover_completed"] = float(stats.completed)
    bench_metrics["gateway/failover_admitted"] = float(stats.admitted)
    bench_metrics["gateway/failover_replica_failures"] = float(
        stats.replica_failures
    )
    bench_metrics["gateway/failover_reattempts"] = float(stats.failovers)

    report_printer(
        "GATEWAY — failover under injected replica kill",
        [
            f"admitted {stats.admitted}, completed {stats.completed} "
            f"(exactly once), replica failures {stats.replica_failures}, "
            f"re-admitted {stats.failovers}",
            f"greedy outputs token-identical to direct scheduler: {identical}",
        ],
    )

    assert identical
    assert stats.completed == stats.admitted == len(prompts)
    assert stats.replica_failures >= 1
