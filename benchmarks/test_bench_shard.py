"""SHARDING — what a partitioned data plane buys and what failover costs.

Four measurements over the sharded SQL cluster
(:mod:`repro.sql.cluster`):

* **parallel scan/filter and partitioned join** — per-shard executor
  work (rows scanned + join probes) for scatter, partial-aggregate,
  and co-partitioned join queries, reported as the critical-path
  speedup ``total work / (slowest shard + merge)``. Python threads
  share the GIL, so wall-clock parallelism is not the point — the
  model isolates what an N-worker data plane buys from scheduler
  noise, the same way the serving benchmarks model batching gains.
* **failover recovery time** — kill a primary, promote its replica,
  first successful query; the whole window is timed.
* **replication lag** — the peak primary→replica gap in WAL records
  (synchronous shipping keeps it 0 between statements; transactions
  let it climb until commit ships the batch).
* **cluster crash matrix** — every reachable crash point (whole-cluster
  mode plus failover mode with mid-promotion double crashes), counted
  as pass/fail.
"""

import time

from repro.durability import dump_database
from repro.sql import Database
from repro.sql.cluster import (
    ClusterDatabase,
    canonicalize,
    run_cluster_crash_matrix,
    run_cluster_failover_matrix,
)
from repro.utils.timing import Timer

N_ROWS = 3000
N_SHARDS = 4


def _seed_single(num_rows=N_ROWS):
    db = Database()
    db.execute("CREATE TABLE events (id INT, grp TEXT, val FLOAT)")
    db.execute("CREATE TABLE tags (id INT, label TEXT)")
    for start in range(0, num_rows, 500):
        rows = ", ".join(
            f"({i}, 'g{i % 13}', {i % 97}.5)"
            for i in range(start, min(start + 500, num_rows))
        )
        db.execute(f"INSERT INTO events VALUES {rows}")
    for start in range(0, num_rows, 1000):
        rows = ", ".join(
            f"({i}, 'tag{i % 7}')"
            for i in range(start, min(start + 1000, num_rows), 2)
        )
        db.execute(f"INSERT INTO tags VALUES {rows}")
    return db


def test_bench_shard_scan_join(report_printer, bench_metrics, tmp_path):
    """SHARDING-a: critical-path speedup of scatter, aggregate, join."""
    single = _seed_single()
    cluster = ClusterDatabase.from_database(
        single, tmp_path / "cluster", num_shards=N_SHARDS
    )
    queries = [
        ("scan", "SELECT id, val FROM events WHERE val > 50 ORDER BY id"),
        ("agg", "SELECT grp, COUNT(*), AVG(val) FROM events "
                "GROUP BY grp ORDER BY grp"),
        ("join", "SELECT events.id, tags.label FROM events "
                 "JOIN tags ON events.id = tags.id ORDER BY events.id"),
    ]
    lines = [f"{N_ROWS} rows, {N_SHARDS} shards"]
    for name, sql in queries:
        start = time.perf_counter()
        expected = single.execute(sql)
        single_wall = time.perf_counter() - start
        with Timer() as timer:
            got = cluster.execute(sql)
        assert got.rows == expected.rows, f"{name} diverged from single-node"
        speedup = cluster.stats.modeled_parallel_speedup()
        shard_work = [
            s.rows_scanned + s.join_probes
            for s in cluster.stats.last_shard_stats
        ]
        lines.append(
            f"{name:4s} [{got.strategy:17s}] single {single_wall * 1e3:6.1f} ms, "
            f"cluster {timer.elapsed * 1e3:6.1f} ms, per-shard work "
            f"{shard_work}, modeled speedup {speedup:.2f}x"
        )
        bench_metrics[f"shard/{name}_modeled_speedup"] = round(speedup, 3)
        bench_metrics[f"shard/{name}_wall_ms"] = round(timer.elapsed * 1e3, 2)
    report_printer("SHARDING-a: partition-parallel query execution", lines)
    # hash partitioning balances the work, so the slowest shard should
    # carry far less than the whole table's worth
    assert cluster.stats.modeled_parallel_speedup() > 1.5
    cluster.close()


def test_bench_shard_failover(report_printer, bench_metrics, tmp_path):
    """SHARDING-b: failover window and peak replication lag."""
    cluster = ClusterDatabase(tmp_path / "cluster", num_shards=2)
    cluster.execute("CREATE TABLE t (id INT, v FLOAT)")
    for start in range(0, 600, 100):
        rows = ", ".join(
            f"({i}, {i}.5)" for i in range(start, start + 100)
        )
        cluster.execute(f"INSERT INTO t VALUES {rows}")
    # a transaction batches its frames until commit, so lag climbs
    cluster.begin()
    for i in range(600, 650):
        cluster.execute(f"INSERT INTO t VALUES ({i}, {i}.5)")
    peak_lag = max(shard.replication_lag() for shard in cluster.shards)
    cluster.commit()
    settled_lag = cluster.replication_lag()

    before = cluster.execute("SELECT COUNT(*), SUM(v) FROM t").rows
    cluster.shards[0].kill()
    with Timer() as window:
        cluster.shards[0].promote()
        after = cluster.execute("SELECT COUNT(*), SUM(v) FROM t").rows
    assert after == before, "failover lost or duplicated rows"

    lines = [
        f"peak replication lag (open txn): {peak_lag} records",
        f"settled replication lag        : {settled_lag} records",
        f"failover window (promote + query): {window.elapsed * 1e3:.1f} ms",
        f"650 rows intact across failover: {after == before}",
    ]
    report_printer("SHARDING-b: failover recovery and replication lag", lines)
    bench_metrics["shard/peak_replication_lag_records"] = float(peak_lag)
    bench_metrics["shard/settled_replication_lag_records"] = float(settled_lag)
    bench_metrics["shard/failover_recovery_ms"] = round(
        window.elapsed * 1e3, 2
    )
    assert settled_lag == 0  # synchronous shipping: ack implies replicated
    cluster.close()


def test_bench_shard_crash_matrix(report_printer, bench_metrics, tmp_path):
    """SHARDING-c: the cluster crash matrix as a workload."""
    with Timer() as whole:
        report = run_cluster_crash_matrix(
            tmp_path / "matrix", seeds=(0,), num_statements=14, num_shards=2
        )
    with Timer() as failover:
        promoted = run_cluster_failover_matrix(
            tmp_path / "failover", seed=0, num_statements=14, num_shards=2
        )
    lines = [
        f"whole-cluster: {len(report.points)} crash points, "
        f"{report.passed}/{len(report.trials)} trials pass "
        f"({whole.elapsed:.1f} s)",
        f"failover mode: {promoted.passed}/{len(promoted.trials)} trials "
        f"pass, incl. mid-promotion double crashes "
        f"({failover.elapsed:.1f} s)",
    ]
    report_printer("SHARDING-c: cluster crash matrix", lines)
    bench_metrics["shard/crash_points"] = float(len(report.points))
    bench_metrics["shard/crash_trials_passed"] = float(report.passed)
    bench_metrics["shard/crash_trials_total"] = float(len(report.trials))
    bench_metrics["shard/failover_trials_passed"] = float(promoted.passed)
    bench_metrics["shard/failover_trials_total"] = float(len(promoted.trials))
    assert report.all_ok, "\n".join(report.render())
    assert promoted.all_ok, "\n".join(promoted.render())


def test_bench_shard_state_identity(report_printer, bench_metrics, tmp_path):
    """SHARDING-d: cluster state is row-identical to the single node."""
    single = _seed_single(num_rows=400)
    cluster = ClusterDatabase.from_database(
        single, tmp_path / "cluster", num_shards=3
    )
    for sql in (
        "UPDATE events SET val = val + 1 WHERE grp = 'g3'",
        "DELETE FROM events WHERE id = 42",
        "INSERT INTO events VALUES (9001, 'g1', 3.5)",
    ):
        single.execute(sql)
        cluster.execute(sql)
    identical = cluster.state() == canonicalize(dump_database(single))
    report_printer(
        "SHARDING-d: post-DML state identity",
        [f"merged cluster state == single-node state: {identical}"],
    )
    bench_metrics["shard/state_identical"] = float(identical)
    assert identical
    cluster.close()
