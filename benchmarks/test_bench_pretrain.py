"""D2.2 — Pre-trained language models: MLM (BERT) and causal (GPT).

Reproduces the Section 2.2 demonstration: both pre-training objectives
run on unlabeled text, and both loss curves fall substantially. We print
the loss trajectory and final perplexity for each objective.
"""

import pytest

from repro.models import BERTModel, GPTModel, ModelConfig
from repro.tokenizers import WhitespaceTokenizer
from repro.training import pretrain_clm, pretrain_mlm
from repro.utils.corpus import synthetic_db_corpus


@pytest.fixture(scope="module")
def corpus_and_tokenizer():
    corpus = synthetic_db_corpus(num_docs=80, seed=7)
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(corpus, vocab_size=512)
    return corpus, tokenizer


def test_bench_pretrain_clm(benchmark, report_printer, corpus_and_tokenizer):
    corpus, tokenizer = corpus_and_tokenizer

    def run():
        model = GPTModel(ModelConfig.tiny(vocab_size=tokenizer.vocab_size), seed=0)
        return pretrain_clm(model, tokenizer, corpus, steps=100, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    report_printer(
        "D2.2a: causal-LM pre-training (GPT-style)",
        [
            f"{'progress':<12}{'loss':>8}",
            f"{'0%':<12}{report.loss_at(0.0):>8.3f}",
            f"{'50%':<12}{report.loss_at(0.5):>8.3f}",
            f"{'100%':<12}{report.loss_at(1.0):>8.3f}",
            "",
            f"final eval perplexity: {report.final_perplexity:.2f}",
        ],
    )
    assert report.loss_at(1.0) < report.loss_at(0.0) * 0.8
    assert report.final_perplexity < 60


def test_bench_pretrain_mlm(benchmark, report_printer, corpus_and_tokenizer):
    corpus, tokenizer = corpus_and_tokenizer

    def run():
        model = BERTModel(
            ModelConfig.tiny(vocab_size=tokenizer.vocab_size, causal=False), seed=0
        )
        return pretrain_mlm(model, tokenizer, corpus, steps=100, seed=0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    report_printer(
        "D2.2b: masked-LM pre-training (BERT-style)",
        [
            f"{'progress':<12}{'loss':>8}",
            f"{'0%':<12}{report.loss_at(0.0):>8.3f}",
            f"{'50%':<12}{report.loss_at(0.5):>8.3f}",
            f"{'100%':<12}{report.loss_at(1.0):>8.3f}",
            "",
            f"final masked-token perplexity: {report.final_perplexity:.2f}",
        ],
    )
    # Only ~15% of MLM positions are supervised, so the curve falls
    # more slowly than the causal one — require a 10% drop.
    assert report.loss_at(1.0) < report.loss_at(0.0) * 0.9
