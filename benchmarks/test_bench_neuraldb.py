"""D2.5f — NeuralDB: accuracy by retriever and by fact-store size.

Answers three query families (lookup, count, two-hop join) over a
schema-free store of natural-language facts, comparing the lexical
retriever, the untrained dense retriever, and the contrastively trained
dense retriever.

Expected shape: trained dense >= lexical >> untrained dense on the
retrieval-bound families (lookup/join); accuracy degrades gracefully as
the store grows.

The corpus-scale test pushes the store to 10^5 facts: two-stage
retrieval (inverted-index candidates, then embedding scoring) must hold
recall@3 within 2% of the exhaustive dense scan while scoring >= 10x
fewer rows per query, and ``add_fact`` must embed exactly one text —
results land in ``benchmarks/BENCH_neuraldb.json``.
"""

import time

import numpy as np
import pytest

from repro.neuraldb import (
    EmbeddingRetriever,
    LexicalRetriever,
    NeuralDatabase,
    evaluate_neuraldb,
    generate_fact_world,
    train_reader,
)
from repro.neuraldb.facts import contrastive_pairs, training_qa_pairs


@pytest.fixture(scope="module")
def reader():
    return train_reader(training_qa_pairs(seed=0, num_worlds=5), steps=250, seed=0)


def test_bench_neuraldb_retrievers(benchmark, report_printer, reader):
    world = generate_fact_world(num_people=12, seed=42)

    lexical = NeuralDatabase(LexicalRetriever(world.facts), reader)
    untrained = NeuralDatabase(
        EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0), reader
    )
    trained_retriever = EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0)
    trained_retriever.train_contrastive(
        contrastive_pairs(seed=0, num_worlds=5), steps=120, seed=0
    )
    trained = NeuralDatabase(trained_retriever, reader)

    reports = {
        "lexical overlap": evaluate_neuraldb(lexical, world),
        "dense, untrained": evaluate_neuraldb(untrained, world),
        "dense, contrastive": benchmark.pedantic(
            evaluate_neuraldb, args=(trained, world), rounds=1, iterations=1
        ),
    }
    lines = [f"{'retriever':<20}{'lookup':>8}{'count':>7}{'join':>7}{'overall':>9}"]
    for name, report in reports.items():
        lines.append(
            f"{name:<20}{report.lookup_accuracy:>8.2f}{report.count_accuracy:>7.2f}"
            f"{report.join_accuracy:>7.2f}{report.overall():>9.2f}"
        )
    report_printer("D2.5f-i: NeuralDB accuracy by retriever", lines)

    assert reports["dense, contrastive"].overall() >= reports["dense, untrained"].overall()
    assert reports["dense, contrastive"].overall() >= 0.8
    assert reports["dense, contrastive"].join_accuracy >= reports["lexical overlap"].join_accuracy


def test_bench_neuraldb_scaling(benchmark, report_printer, reader):
    lines = [f"{'facts':>6}{'lookup':>8}{'count':>7}{'join':>7}"]
    overalls = []

    def evaluate_size(num_people):
        world = generate_fact_world(num_people=num_people, seed=42)
        retriever = EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0)
        retriever.train_contrastive(
            contrastive_pairs(seed=0, num_worlds=5), steps=100, seed=0
        )
        return world, evaluate_neuraldb(NeuralDatabase(retriever, reader), world)

    for index, num_people in enumerate((6, 12, 16)):
        if index == 0:
            world, report = benchmark.pedantic(
                evaluate_size, args=(num_people,), rounds=1, iterations=1
            )
        else:
            world, report = evaluate_size(num_people)
        overalls.append(report.overall())
        lines.append(
            f"{len(world.facts):>6}{report.lookup_accuracy:>8.2f}"
            f"{report.count_accuracy:>7.2f}{report.join_accuracy:>7.2f}"
        )
    report_printer("D2.5f-ii: NeuralDB accuracy vs fact-store size", lines)
    assert min(overalls) > 0.5


def test_bench_neuraldb_corpus_scale(benchmark, report_printer, bench_metrics):
    """10^5-fact store: two-stage retrieval vs the full dense scan."""
    world = generate_fact_world(
        num_people=99_000, seed=7, num_departments=1_000, num_buildings=100
    )
    assert len(world.facts) >= 100_000

    build_start = time.perf_counter()
    retriever = EmbeddingRetriever(
        world.facts,
        pretrain_steps=8,
        seed=0,
        vocab_size=2048,
        pretrain_sample=2_000,
        embed_block=512,
    )
    build_seconds = time.perf_counter() - build_start

    # Every work-template fact starts with the person's name, so the
    # ground-truth supporting fact is recoverable from the first token.
    truth = {fact.split()[0]: fact for fact in world.facts}
    rng = np.random.default_rng(23)
    people = world.people
    sampled = [people[int(i)] for i in rng.choice(len(people), 40, replace=False)]
    queries = [f"where does {person} work ?" for person in sampled]

    def recall_at_3(mode):
        hits = 0
        for person, query in zip(sampled, queries):
            top = retriever.retrieve(query, top_k=3, mode=mode)
            hits += truth[person] in [fact for fact, _ in top]
        return hits / len(queries)

    before = retriever.stats.facts_scored
    dense_start = time.perf_counter()
    dense_recall = recall_at_3("dense")
    dense_seconds = time.perf_counter() - dense_start
    dense_scored = retriever.stats.facts_scored - before

    before = retriever.stats.facts_scored
    two_stage_start = time.perf_counter()
    two_stage_recall = benchmark.pedantic(
        recall_at_3, args=("two_stage",), rounds=1, iterations=1
    )
    two_stage_seconds = time.perf_counter() - two_stage_start
    two_stage_scored = retriever.stats.facts_scored - before

    # Acceptance: recall@3 within 2% of the dense scan, >= 10x less
    # per-query scoring work. (At this scale most entity names are
    # out-of-vocabulary for the small encoder, so the dense scan is
    # weak — the inverted index retrieves them by raw token instead.)
    assert two_stage_recall >= dense_recall - 0.02
    work_ratio = dense_scored / max(1, two_stage_scored)
    assert work_ratio >= 10

    # Incremental insert: one encoder forward, not a corpus re-embed,
    # and the new fact is immediately retrievable.
    embedded_before = retriever.stats.embedded_texts
    add_start = time.perf_counter()
    retriever.add_fact("zephyr works in dept17 .")
    add_seconds = time.perf_counter() - add_start
    add_embedded = retriever.stats.embedded_texts - embedded_before
    assert add_embedded == 1
    top = retriever.retrieve("where does zephyr work ?", top_k=3, mode="two_stage")
    assert top[0][0] == "zephyr works in dept17 ."

    queries_per_second = len(queries) / two_stage_seconds
    bench_metrics["neuraldb/corpus_facts"] = len(world.facts)
    bench_metrics["neuraldb/two_stage_recall_at_3"] = round(two_stage_recall, 3)
    bench_metrics["neuraldb/dense_recall_at_3"] = round(dense_recall, 3)
    bench_metrics["neuraldb/scoring_work_ratio"] = round(work_ratio, 1)
    bench_metrics["neuraldb/two_stage_queries_per_s"] = round(queries_per_second, 1)
    bench_metrics["neuraldb/index_build_seconds"] = round(build_seconds, 2)
    bench_metrics["neuraldb/add_fact_embedded_texts"] = add_embedded
    bench_metrics["neuraldb/add_fact_ms"] = round(add_seconds * 1000, 2)
    report_printer(
        "D2.5f-iii: corpus-scale retrieval (10^5 facts)",
        [
            f"facts               : {len(world.facts)}",
            f"index build         : {build_seconds:.1f} s",
            f"recall@3 two-stage  : {two_stage_recall:.2f}",
            f"recall@3 dense scan : {dense_recall:.2f}",
            f"rows scored / query : {two_stage_scored / len(queries):.1f}"
            f" vs {dense_scored / len(queries):.0f} dense"
            f" ({work_ratio:.0f}x less work)",
            f"two-stage queries/s : {queries_per_second:.0f}"
            f" (dense: {len(queries) / dense_seconds:.0f})",
            f"add_fact            : {add_seconds * 1000:.1f} ms, "
            f"1 text embedded",
        ],
    )
