"""D2.5f — NeuralDB: accuracy by retriever and by fact-store size.

Answers three query families (lookup, count, two-hop join) over a
schema-free store of natural-language facts, comparing the lexical
retriever, the untrained dense retriever, and the contrastively trained
dense retriever.

Expected shape: trained dense >= lexical >> untrained dense on the
retrieval-bound families (lookup/join); accuracy degrades gracefully as
the store grows.
"""

import pytest

from repro.neuraldb import (
    EmbeddingRetriever,
    LexicalRetriever,
    NeuralDatabase,
    evaluate_neuraldb,
    generate_fact_world,
    train_reader,
)
from repro.neuraldb.facts import contrastive_pairs, training_qa_pairs


@pytest.fixture(scope="module")
def reader():
    return train_reader(training_qa_pairs(seed=0, num_worlds=5), steps=250, seed=0)


def test_bench_neuraldb_retrievers(benchmark, report_printer, reader):
    world = generate_fact_world(num_people=12, seed=42)

    lexical = NeuralDatabase(LexicalRetriever(world.facts), reader)
    untrained = NeuralDatabase(
        EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0), reader
    )
    trained_retriever = EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0)
    trained_retriever.train_contrastive(
        contrastive_pairs(seed=0, num_worlds=5), steps=120, seed=0
    )
    trained = NeuralDatabase(trained_retriever, reader)

    reports = {
        "lexical overlap": evaluate_neuraldb(lexical, world),
        "dense, untrained": evaluate_neuraldb(untrained, world),
        "dense, contrastive": benchmark.pedantic(
            evaluate_neuraldb, args=(trained, world), rounds=1, iterations=1
        ),
    }
    lines = [f"{'retriever':<20}{'lookup':>8}{'count':>7}{'join':>7}{'overall':>9}"]
    for name, report in reports.items():
        lines.append(
            f"{name:<20}{report.lookup_accuracy:>8.2f}{report.count_accuracy:>7.2f}"
            f"{report.join_accuracy:>7.2f}{report.overall():>9.2f}"
        )
    report_printer("D2.5f-i: NeuralDB accuracy by retriever", lines)

    assert reports["dense, contrastive"].overall() >= reports["dense, untrained"].overall()
    assert reports["dense, contrastive"].overall() >= 0.8
    assert reports["dense, contrastive"].join_accuracy >= reports["lexical overlap"].join_accuracy


def test_bench_neuraldb_scaling(benchmark, report_printer, reader):
    lines = [f"{'facts':>6}{'lookup':>8}{'count':>7}{'join':>7}"]
    overalls = []

    def evaluate_size(num_people):
        world = generate_fact_world(num_people=num_people, seed=42)
        retriever = EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0)
        retriever.train_contrastive(
            contrastive_pairs(seed=0, num_worlds=5), steps=100, seed=0
        )
        return world, evaluate_neuraldb(NeuralDatabase(retriever, reader), world)

    for index, num_people in enumerate((6, 12, 16)):
        if index == 0:
            world, report = benchmark.pedantic(
                evaluate_size, args=(num_people,), rounds=1, iterations=1
            )
        else:
            world, report = evaluate_size(num_people)
        overalls.append(report.overall())
        lines.append(
            f"{len(world.facts):>6}{report.lookup_accuracy:>8.2f}"
            f"{report.count_accuracy:>7.2f}{report.join_accuracy:>7.2f}"
        )
    report_printer("D2.5f-ii: NeuralDB accuracy vs fact-store size", lines)
    assert min(overalls) > 0.5
