"""TAB1 — Table 1: tutorial organization, reproduced and made runnable.

Prints the table verbatim (titles, durations, 90-minute total) and
executes the live demonstration bound to each tutorial part.
"""

from repro.tutorial import (
    TUTORIAL_PARTS,
    render_table1,
    run_tutorial,
    total_duration_minutes,
)


def test_bench_table1(benchmark, report_printer):
    outputs = benchmark.pedantic(run_tutorial, rounds=1, iterations=1)

    lines = [render_table1(), "", "Live demonstrations:"]
    for part in TUTORIAL_PARTS:
        lines.append(f"  [{part.duration_minutes:>2} min] {part.title}")
        lines.append(f"           {outputs[part.title]}")
    report_printer("TAB1: tutorial organization (with live demos)", lines)

    assert total_duration_minutes() == 90
    assert len(outputs) == 7
    assert all(outputs.values()) or outputs[TUTORIAL_PARTS[0].title] is not None
