"""Shared benchmark fixtures and report-printing helpers."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).parent

#: metrics without an explicit ``group/`` prefix land here (the fixture
#: predates per-group routing and the serving benchmarks use bare keys)
DEFAULT_GROUP = "serving"


def print_report(title: str, lines: list[str]) -> None:
    """Print one experiment's reproduction rows, clearly delimited."""
    bar = "=" * 74
    print(f"\n{bar}\n{title}\n{bar}")
    for line in lines:
        print(line)
    print(bar)


@pytest.fixture(scope="session")
def report_printer():
    return print_report


@pytest.fixture(scope="session")
def bench_metrics():
    """Session-wide dict of machine-readable benchmark metrics.

    Benchmarks drop ``{metric: value}`` entries in; at session teardown
    everything collected is written to per-group
    ``benchmarks/BENCH_<group>.json`` files so CI and the acceptance
    criteria can read numbers instead of scraping stdout. A key of the
    form ``"analysis/vet_precision"`` routes to ``BENCH_analysis.json``
    under the bare metric name; keys without a slash keep landing in
    ``BENCH_serving.json``. (Benchmarks are exempt from the
    atomic-write lint rule; these files are regenerated on every run.)
    """
    metrics: dict = {}
    yield metrics
    groups: dict = {}
    for key, value in metrics.items():
        group, _, name = key.rpartition("/")
        groups.setdefault(group or DEFAULT_GROUP, {})[name] = value
    for group, values in groups.items():
        (BENCH_DIR / f"BENCH_{group}.json").write_text(
            json.dumps(values, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
