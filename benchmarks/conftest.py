"""Shared benchmark fixtures and report-printing helpers."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: machine-readable serving-benchmark output, committed next to the code
BENCH_SERVING_JSON = Path(__file__).parent / "BENCH_serving.json"


def print_report(title: str, lines: list[str]) -> None:
    """Print one experiment's reproduction rows, clearly delimited."""
    bar = "=" * 74
    print(f"\n{bar}\n{title}\n{bar}")
    for line in lines:
        print(line)
    print(bar)


@pytest.fixture(scope="session")
def report_printer():
    return print_report


@pytest.fixture(scope="session")
def bench_metrics():
    """Session-wide dict of machine-readable benchmark metrics.

    Benchmarks drop ``{metric: value}`` entries in; at session teardown
    everything collected is written to ``benchmarks/BENCH_serving.json``
    so CI and the acceptance criteria can read numbers instead of
    scraping stdout. (Benchmarks are exempt from the atomic-write lint
    rule; this file is regenerated on every run.)
    """
    metrics: dict = {}
    yield metrics
    if metrics:
        BENCH_SERVING_JSON.write_text(
            json.dumps(metrics, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
