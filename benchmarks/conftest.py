"""Shared benchmark fixtures and report-printing helpers."""

from __future__ import annotations

import pytest


def print_report(title: str, lines: list[str]) -> None:
    """Print one experiment's reproduction rows, clearly delimited."""
    bar = "=" * 74
    print(f"\n{bar}\n{title}\n{bar}")
    for line in lines:
        print(line)
    print(bar)


@pytest.fixture(scope="session")
def report_printer():
    return print_report
