"""RELIABILITY — the serving path under deterministic fault injection.

Two measurements:

* the overhead the resilience layer (retry + breaker + metrics) adds on
  the *fault-free* path — what every healthy request pays;
* a completion workload under heavy injected faults (>=30% transient
  errors, periodic rate limiting, garbled completions), showing the
  resilient client still answers 100% of requests and what it cost in
  retries, fallbacks, and simulated backoff time.
"""

import time

import pytest

from repro.api import CompletionClient, bootstrap_hub
from repro.reliability import (
    FaultInjector,
    FaultProfile,
    FaultyCompletionClient,
    ResilientClient,
    RetryPolicy,
    VirtualClock,
)

#: the acceptance profile: >=30% transient failures + periodic quota hits
HEAVY_FAULTS = FaultProfile(
    transient_rate=0.25,
    timeout_rate=0.10,
    garble_rate=0.10,
    rate_limit_every=7,
    retry_after=0.5,
    latency=0.01,
)


@pytest.fixture(scope="module")
def hub():
    hub = bootstrap_hub(seed=0, steps=60, corpus_docs=60)
    # The same weights under a second name act as the fallback engine.
    entry = hub.get("tiny-gpt")
    hub.register("tiny-gpt-mini", entry.model, entry.tokenizer)
    return hub


def test_bench_resilient_overhead_fault_free(benchmark, report_printer, hub):
    """RELIABILITY-a: what the resilience layer costs when nothing fails."""
    plain = CompletionClient(hub)
    resilient = ResilientClient(CompletionClient(hub), clock=VirtualClock())

    response = benchmark(
        resilient.complete, "tiny-gpt", "the query returns", max_tokens=8
    )
    resilient_mean = benchmark.stats["mean"]

    start = time.perf_counter()
    rounds = 10
    for _ in range(rounds):
        plain_response = plain.complete("tiny-gpt", "the query returns", max_tokens=8)
    plain_mean = (time.perf_counter() - start) / rounds

    overhead = resilient_mean / plain_mean - 1.0
    report_printer(
        "RELIABILITY-a: resilience-layer overhead on the fault-free path",
        [
            f"plain client   : {plain_mean * 1000:.2f} ms/request",
            f"resilient      : {resilient_mean * 1000:.2f} ms/request",
            f"overhead       : {overhead * 100:+.1f}%",
            f"identical text : {response.text == plain_response.text}",
        ],
    )
    assert response.text == plain_response.text
    assert resilient.metrics.retries == 0
    # The wrapper must stay cheap next to a model forward pass.
    assert resilient_mean < plain_mean * 1.5


def test_bench_fault_injected_workload(benchmark, report_printer, hub):
    """RELIABILITY-b: 100% completion under heavy injected faults."""
    prompts = [
        f"the {noun} {verb}"
        for noun in ("database", "table", "index", "query")
        for verb in ("returns", "stores", "scans")
    ] * 4  # 48 requests

    def run(seed):
        clock = VirtualClock()
        injector = FaultInjector(HEAVY_FAULTS, seed=seed, clock=clock)
        client = ResilientClient(
            FaultyCompletionClient(CompletionClient(hub), injector),
            policy=RetryPolicy(max_retries=6, base_delay=0.05, max_delay=1.0),
            fallback_engines={"tiny-gpt": ["tiny-gpt-mini"]},
            failure_threshold=4,
            reset_timeout=5.0,
            baseline=lambda prompt: "",
            clock=clock,
            seed=seed,
        )
        texts = [
            client.complete("tiny-gpt", p, max_tokens=6).text for p in prompts
        ]
        return texts, client.metrics, injector, clock

    texts, metrics, injector, clock = benchmark.pedantic(
        run, args=(11,), rounds=1, iterations=1
    )
    texts_again, metrics_again, _, _ = run(seed=11)

    answered = metrics.successes + metrics.degraded_answers
    report_printer(
        "RELIABILITY-b: completion workload under injected faults",
        [
            f"requests             : {metrics.requests}",
            f"answered             : {answered} "
            f"({100.0 * answered / metrics.requests:.0f}%)",
            f"injected faults      : {dict(injector.counts)}",
            f"retries              : {metrics.retries}",
            f"rate-limit hits      : {metrics.rate_limited}",
            f"fallback answers     : {metrics.fallbacks}",
            f"breaker trips        : {metrics.breaker_trips}",
            f"degraded answers     : {metrics.degraded_answers}",
            f"simulated backoff    : {metrics.backoff_seconds:.2f} s "
            f"(virtual; wall time ~0)",
            f"deterministic rerun  : {texts == texts_again and metrics == metrics_again}",
        ],
    )
    assert answered == len(prompts)  # every request got an answer
    assert metrics.retries > 0 and injector.counts["rate_limit"] > 0
    assert texts == texts_again and metrics == metrics_again
    assert clock.slept > 0  # backoff happened — in simulated time only
