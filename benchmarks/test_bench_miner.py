"""D1-ext — NL pattern mining (BABOONS [83] / NaturalMiner [88]).

Two reproduced shapes: (1) the LM relevance scorer surfaces the planted
patterns for their goals; (2) the budget trade-off of black-box summary
search — recovery rate rises with the number of (expensive) scorer
calls, with full scoring as the ceiling.
"""

import pytest

from repro.miner import (
    enumerate_facts,
    generate_sales_table,
    greedy_summary,
    sampled_summary,
    train_relevance_scorer,
)

GOALS = [
    ("how does dairy differ on price", ("category=dairy", "price")),
    ("why is revenue unusual for west", ("region=west", "revenue")),
    ("tell me about price in the dairy group", ("category=dairy", "price")),
    ("how does west differ on revenue", ("region=west", "revenue")),
]


@pytest.fixture(scope="module")
def setup():
    db = generate_sales_table(num_rows=80, seed=0)
    facts = enumerate_facts(db, "sales", ["category", "region"], ["price", "revenue"])
    scorer = train_relevance_scorer(facts, steps=200, seed=0)
    return facts, scorer


def recovery_rate(facts, scorer, budget=None, seeds=range(3)):
    hits = total = 0
    for goal, planted in GOALS:
        for seed in seeds:
            if budget is None:
                result = greedy_summary(scorer, goal, facts, k=2)
            else:
                result = sampled_summary(
                    scorer, goal, facts, k=2, budget=budget, seed=seed
                )
            hits += int(any(f.dimensions == planted for f in result.facts))
            total += 1
            if budget is None:
                break  # deterministic; one run per goal suffices
    return hits / total


def test_bench_miner(benchmark, report_printer, setup):
    facts, scorer = setup

    full = benchmark.pedantic(
        recovery_rate, args=(facts, scorer), rounds=1, iterations=1
    )
    lines = [f"{'strategy':<22}{'scorer calls':>13}{'pattern recovery':>18}"]
    results = {}
    for budget in (4, 8, 16):
        rate = recovery_rate(facts, scorer, budget=budget)
        results[budget] = rate
        lines.append(f"{'sampled':<22}{budget:>13}{rate:>18.2f}")
    lines.append(f"{'full scoring (greedy)':<22}{len(facts):>13}{full:>18.2f}")
    report_printer(
        "MINER: NL pattern mining — summary quality vs scoring budget", lines
    )

    assert full == 1.0                      # full scoring finds every planted pattern
    assert results[4] <= results[16] + 0.2  # quality broadly rises with budget
    assert results[4] < 1.0                 # tiny budgets miss patterns
