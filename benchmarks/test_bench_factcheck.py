"""D2.5c — Fact checking: verdict accuracy by ranker.

Claims about a table are verified end-to-end; the comparison is the
keyword ranker vs the fine-tuned LM ranker (AggChecker's neural
component).

Expected shape: the LM ranker dominates on paraphrased claims, lifting
both interpretation accuracy and final verdict accuracy.
"""

import pytest

from repro.factcheck import (
    FactChecker,
    KeywordRanker,
    evaluate_checker,
    generate_claim_workload,
    train_lm_ranker,
)


@pytest.fixture(scope="module")
def setup():
    workload = generate_claim_workload(num_rows=40, num_claims=100, seed=0)
    train, test = workload.split(test_fraction=0.3, seed=1)
    ranker = train_lm_ranker(workload, train, steps=250, seed=0)
    return workload, ranker, test


def test_bench_factcheck(benchmark, report_printer, setup):
    workload, lm_ranker, test = setup

    keyword = evaluate_checker(FactChecker(workload, KeywordRanker()), test)
    lm = benchmark.pedantic(
        evaluate_checker,
        args=(FactChecker(workload, lm_ranker), test),
        rounds=1, iterations=1,
    )

    report_printer(
        "D2.5c: claim verification against relational data",
        [
            f"{'ranker':<18}{'verdict acc':>13}{'interpretation acc':>20}",
            f"{'keyword':<18}{keyword['verdict_accuracy']:>13.2f}"
            f"{keyword['interpretation_accuracy']:>20.2f}",
            f"{'fine-tuned LM':<18}{lm['verdict_accuracy']:>13.2f}"
            f"{lm['interpretation_accuracy']:>20.2f}",
        ],
    )
    assert lm["interpretation_accuracy"] >= keyword["interpretation_accuracy"]
    assert lm["verdict_accuracy"] >= keyword["verdict_accuracy"]
    assert lm["verdict_accuracy"] >= 0.85
