"""D2.3 — Fine-tuning vs prompting: accuracy as labels grow.

The tutorial's Section 2.3 story: prompting needs no weight updates and
works from a handful of in-context examples, while fine-tuning uses
labeled data to specialize the model. We sweep the number of labeled
examples for fine-tuning and the number of in-context shots for
prompting on the same classification task.

Expected shape: fine-tuning improves with more labels and dominates at
the high-label end; at our (tiny) model scale prompting stays near its
few-shot plateau — the paper's point that in-context learning *emerges
with scale* is reproduced from the other side: it is weak when the
model is small.
"""

from __future__ import annotations

import pytest

from repro.models import SequenceClassifier
from repro.prompting import FewShotPrompt, PromptClassifier, PromptTemplate
from repro.tokenizers import WhitespaceTokenizer
from repro.training import (
    LabeledExample,
    evaluate_classifier,
    finetune_classifier,
    pretrain_clm,
    pretrain_mlm,
)
from repro.models import BERTModel, GPTModel, ModelConfig
from repro.utils.corpus import synthetic_db_corpus
from repro.utils.rng import SeededRNG

# The task: does the sentence talk about rows (1) or columns (0)?
POSITIVE_OBJECT, NEGATIVE_OBJECT = "rows", "columns"


def make_examples(n: int, seed: int) -> list:
    rng = SeededRNG(seed)
    subjects = ["the database", "the table", "the index", "the engine"]
    verbs = ["stores", "scans", "returns", "caches"]
    adjectives = ["large", "small", "sorted", "cached"]
    examples = []
    for i in range(n):
        label = i % 2
        obj = POSITIVE_OBJECT if label else NEGATIVE_OBJECT
        text = f"{rng.choice(subjects)} {rng.choice(verbs)} {rng.choice(adjectives)} {obj} ."
        examples.append(LabeledExample(text=text, label=label))
    return examples


@pytest.fixture(scope="module")
def setup():
    corpus = synthetic_db_corpus(num_docs=80, seed=7)
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(corpus, vocab_size=512)
    bert = BERTModel(
        ModelConfig.tiny(vocab_size=tokenizer.vocab_size, causal=False), seed=0
    )
    pretrain_mlm(bert, tokenizer, corpus, steps=60, seed=0)
    gpt = GPTModel(ModelConfig.tiny(vocab_size=tokenizer.vocab_size), seed=0)
    pretrain_clm(gpt, tokenizer, corpus, steps=60, seed=0)
    test = make_examples(40, seed=999)
    return tokenizer, bert, gpt, test


def finetune_accuracy(tokenizer, bert, test, num_labels, seed=0):
    classifier = SequenceClassifier(bert, num_classes=2, seed=seed)
    train = make_examples(num_labels, seed=5)
    finetune_classifier(classifier, tokenizer, train, epochs=8, lr=2e-3, seed=seed)
    return evaluate_classifier(classifier, tokenizer, test)


def prompt_accuracy(tokenizer, gpt, test, shots, seed=0, calibrated=False):
    template = PromptTemplate("sentence : {text}")
    prompt = FewShotPrompt(template, instructions="", answer_prefix="topic :")
    for example in make_examples(max(shots, 1) * 2, seed=5)[: shots]:
        prompt.add_example(
            POSITIVE_OBJECT if example.label else NEGATIVE_OBJECT, text=example.text
        )
    classifier = PromptClassifier(
        gpt, tokenizer, prompt,
        verbalizers={0: NEGATIVE_OBJECT, 1: POSITIVE_OBJECT},
    )
    if calibrated:
        classifier.calibrate()
    hits = sum(
        classifier.predict(text=example.text) == example.label for example in test
    )
    return hits / len(test)


def test_bench_finetune_vs_prompt(benchmark, report_printer, setup):
    tokenizer, bert, gpt, test = setup

    label_counts = [4, 16, 64]
    finetuned = {
        n: finetune_accuracy(tokenizer, bert, test, n) for n in label_counts
    }
    shot_counts = [0, 1, 4]
    prompted = {
        k: benchmark.pedantic(
            prompt_accuracy, args=(tokenizer, gpt, test, k), rounds=1, iterations=1
        ) if k == 4 else prompt_accuracy(tokenizer, gpt, test, k)
        for k in shot_counts
    }

    calibrated = prompt_accuracy(tokenizer, gpt, test, 4, calibrated=True)

    lines = [f"{'method':<24}{'supervision':>14}{'accuracy':>10}"]
    for k in shot_counts:
        lines.append(f"{'prompting':<24}{f'{k}-shot':>14}{prompted[k]:>10.2f}")
    lines.append(
        f"{'prompting + calibration':<24}{'4-shot':>14}{calibrated:>10.2f}"
    )
    for n in label_counts:
        lines.append(f"{'fine-tuning':<24}{f'{n} labels':>14}{finetuned[n]:>10.2f}")
    report_printer("D2.3: fine-tuning vs prompting", lines)

    # Shapes: fine-tuning improves with labels and wins at the high end.
    assert finetuned[64] >= finetuned[4]
    assert finetuned[64] >= max(prompted.values())
    assert finetuned[64] >= 0.9


def test_bench_adapter_finetuning(benchmark, report_printer, setup):
    """D2.3-ablation — parameter-efficient fine-tuning (Houlsby [28]).

    Full fine-tuning vs LoRA-style adapters on the same task: adapters
    train a small fraction of the parameters at comparable accuracy.
    """
    from repro.models import BERTModel
    from repro.training import inject_adapters, trainable_parameter_count
    from repro.training import pretrain_mlm
    from repro.models import ModelConfig

    tokenizer, _, _, test = setup
    corpus = synthetic_db_corpus(num_docs=80, seed=7)

    def build_backbone():
        backbone = BERTModel(
            ModelConfig.tiny(vocab_size=tokenizer.vocab_size, causal=False), seed=0
        )
        pretrain_mlm(backbone, tokenizer, corpus, steps=60, seed=0)
        return backbone

    def run(adapted: bool):
        backbone = build_backbone()
        classifier = SequenceClassifier(backbone, num_classes=2, seed=0)
        if adapted:
            inject_adapters(backbone, rank=2, seed=0)
        trainable = trainable_parameter_count(classifier)
        train = make_examples(64, seed=5)
        finetune_classifier(classifier, tokenizer, train, epochs=8, lr=3e-3, seed=0)
        return trainable, evaluate_classifier(classifier, tokenizer, test)

    full_trainable, full_acc = run(adapted=False)
    adapter_trainable, adapter_acc = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1
    )

    report_printer(
        "D2.3-ablation: full fine-tuning vs LoRA adapters (64 labels)",
        [
            f"{'method':<16}{'trainable params':>18}{'accuracy':>10}",
            f"{'full':<16}{full_trainable:>18,}{full_acc:>10.2f}",
            f"{'adapters r=2':<16}{adapter_trainable:>18,}{adapter_acc:>10.2f}",
            "",
            f"parameter reduction: {full_trainable / adapter_trainable:.0f}x",
        ],
    )
    assert adapter_trainable < full_trainable / 5
    assert adapter_acc >= 0.8
