"""DURABILITY — what crash safety costs and what recovery buys back.

Three measurements:

* the per-statement overhead of WAL-before-apply (plus fsync) over the
  plain in-memory :class:`~repro.sql.Database`, with the no-fsync
  (``durable=False``) variant separating logging cost from fsync cost;
* recovery time as the log grows, and the factor a snapshot compaction
  takes back off it;
* the crash matrix as a workload: every reachable crash point of a
  seeded DML workload, crash -> reopen -> verify, reported as a
  pass/fail summary.
"""

import time

from repro.durability import DurableDatabase, run_crash_matrix
from repro.sql import Database

#: the statement mix timed by the overhead benchmark
N_STATEMENTS = 60


def _workload_statements():
    ops = ["CREATE TABLE bench (id INT, grp TEXT, val FLOAT)"]
    for i in range(N_STATEMENTS):
        if i % 10 == 7:
            ops.append(f"UPDATE bench SET val = val + 1 WHERE id = {i - 5}")
        elif i % 10 == 9:
            ops.append(f"DELETE FROM bench WHERE id = {i - 9}")
        else:
            ops.append(f"INSERT INTO bench VALUES ({i}, 'g{i % 3}', {i}.5)")
    return ops


def _time_per_statement(make_db):
    ops = _workload_statements()
    db = make_db()
    start = time.perf_counter()
    for op in ops:
        db.execute(op)
    elapsed = time.perf_counter() - start
    close = getattr(db, "close", None)
    if close:
        close()
    return elapsed / len(ops)


def test_bench_wal_overhead(benchmark, report_printer, tmp_path):
    """DURABILITY-a: per-statement cost of WAL-before-apply + fsync."""
    plain = _time_per_statement(Database)
    logged = _time_per_statement(
        lambda: DurableDatabase.open(tmp_path / "nofsync", durable=False)
    )

    counter = [0]

    def durable_run():
        counter[0] += 1
        return _time_per_statement(
            lambda: DurableDatabase.open(tmp_path / f"fsync{counter[0]}")
        )

    durable = benchmark(durable_run)
    report_printer(
        "DURABILITY-a: WAL overhead per mutating statement "
        f"({N_STATEMENTS + 1} statements)",
        [
            f"plain Database          : {plain * 1e6:8.1f} us/stmt",
            f"WAL, no fsync           : {logged * 1e6:8.1f} us/stmt "
            f"({logged / plain:.1f}x)",
            f"WAL + fsync per commit  : {durable * 1e6:8.1f} us/stmt "
            f"({durable / plain:.1f}x)",
            f"logging-only overhead   : {(logged / plain - 1) * 100:+.0f}%",
            f"full durability overhead: {(durable / plain - 1) * 100:+.0f}%",
        ],
    )
    # Logging must not dwarf execution; fsync dominates by design.
    assert logged < plain * 20


def test_bench_recovery_and_compaction(report_printer, tmp_path):
    """DURABILITY-b: replay time vs log length; what compaction buys."""
    lines = []
    long_dir = tmp_path / "long"
    for n_records in (100, 400, 1600):
        directory = tmp_path / f"log{n_records}"
        with DurableDatabase.open(directory, durable=False) as db:
            db.execute("CREATE TABLE t (id INT, val FLOAT)")
            db.begin()
            for i in range(n_records):
                db.execute(f"INSERT INTO t VALUES ({i}, {i}.5)")
            db.commit()
        start = time.perf_counter()
        with DurableDatabase.open(directory) as db:
            stats = db.last_recovery
        replay = time.perf_counter() - start
        lines.append(
            f"replay {stats.wal_records:5d} WAL records "
            f"({stats.replayed_statements:5d} stmts): {replay * 1000:7.1f} ms "
            f"({stats.replayed_statements / replay:,.0f} stmt/s)"
        )
        if n_records == 1600:
            long_dir = directory
            uncompacted = replay

    with DurableDatabase.open(long_dir) as db:
        db.compact()
    start = time.perf_counter()
    with DurableDatabase.open(long_dir) as db:
        stats = db.last_recovery
    compacted = time.perf_counter() - start
    lines += [
        f"after compaction (snapshot + {stats.wal_records} records): "
        f"{compacted * 1000:7.1f} ms",
        f"compaction speedup over replaying 1600 records: "
        f"{uncompacted / compacted:.1f}x",
    ]
    report_printer("DURABILITY-b: recovery time vs log length", lines)
    assert stats.snapshot_loaded
    assert compacted < uncompacted


def test_bench_crash_matrix(report_printer, tmp_path):
    """DURABILITY-c: the crash matrix as a workload — every reachable
    crash point, crash -> reopen -> verify, across three seeds."""
    start = time.perf_counter()
    report = run_crash_matrix(tmp_path, seeds=(0, 1, 2), num_statements=26)
    elapsed = time.perf_counter() - start
    report_printer(
        "DURABILITY-c: crash matrix (crash -> reopen -> verify)",
        report.render()
        + [
            f"seeds: 3, wall time: {elapsed:.1f} s "
            f"({elapsed / len(report.trials) * 1000:.0f} ms/trial)"
        ],
    )
    assert report.all_ok, "\n".join(report.render())
