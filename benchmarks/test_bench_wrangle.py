"""D2.5b — Data wrangling: matching, error detection, imputation.

Reproduces the wrangling comparison (classical baseline vs fine-tuned
LM vs few-shot prompting) plus the serialization ablation from the
DESIGN (attribute-tagged vs plain row rendering).

Expected shape: the fine-tuned LM wins every task; few-shot prompting
with a tiny model hovers near chance (in-context learning emerges with
scale — see EXPERIMENTS.md).
"""

import pytest

from repro.api import bootstrap_hub
from repro.wrangle import (
    FinetunedErrorDetector,
    FinetunedImputer,
    FinetunedMatcher,
    MajorityImputer,
    PromptMatcher,
    RuleErrorDetector,
    SimilarityMatcher,
    evaluate_detector,
    evaluate_imputer,
    evaluate_matcher,
    generate_error_dataset,
    generate_imputation_dataset,
    generate_matching_dataset,
)


@pytest.fixture(scope="module")
def match_data():
    pairs = generate_matching_dataset(num_pairs=240, seed=0)
    return pairs[:180], pairs[180:]


def test_bench_entity_matching(benchmark, report_printer, match_data):
    train, test = match_data
    similarity = SimilarityMatcher().fit(train)
    finetuned = FinetunedMatcher(seed=0).fit(train, pretrain_steps=40, finetune_epochs=10)
    hub = bootstrap_hub(seed=0, steps=40, corpus_docs=40)
    gpt = hub.get("tiny-gpt")
    prompting = PromptMatcher(gpt.model, gpt.tokenizer, shots=train[:4])

    sim_metrics = evaluate_matcher(similarity, test)
    ft_metrics = benchmark.pedantic(
        evaluate_matcher, args=(finetuned, test), rounds=1, iterations=1
    )
    prompt_metrics = evaluate_matcher(prompting, test[:20])

    lines = [f"{'matcher':<26}{'F1':>7}{'precision':>11}{'recall':>8}"]
    for name, metrics in [
        ("jaccard baseline", sim_metrics),
        ("fine-tuned LM (alignment)", ft_metrics),
        ("few-shot prompting (tiny)", prompt_metrics),
    ]:
        lines.append(
            f"{name:<26}{metrics['f1']:>7.2f}"
            f"{metrics['precision']:>11.2f}{metrics['recall']:>8.2f}"
        )
    report_printer("D2.5b-i: entity matching", lines)

    assert ft_metrics["f1"] > sim_metrics["f1"]
    assert ft_metrics["f1"] > 0.8


def test_bench_serialization_ablation(benchmark, report_printer, match_data):
    train, test = match_data

    def run_style(style):
        matcher = FinetunedMatcher(style=style, seed=0).fit(
            train, pretrain_steps=40, finetune_epochs=10
        )
        return evaluate_matcher(matcher, test)["f1"]

    results = {"attribute": benchmark.pedantic(
        run_style, args=("attribute",), rounds=1, iterations=1
    )}
    results["plain"] = run_style("plain")
    report_printer(
        "D2.5b-ii: serialization ablation (Ditto design choice)",
        [f"  {style:<12} F1={f1:.3f}" for style, f1 in results.items()],
    )
    assert max(results.values()) > 0.75


def test_bench_schema_matching(benchmark, report_printer):
    from repro.wrangle import (
        EmbeddingSchemaMatcher,
        NameSimilarityMatcher,
        generate_schema_match_task,
        matching_accuracy,
    )

    def run_embedding(seed):
        task = generate_schema_match_task(seed=seed)
        return matching_accuracy(EmbeddingSchemaMatcher(seed=seed).match(task), task.gold)

    name_accs, emb_accs = [], []
    for seed in range(4):
        task = generate_schema_match_task(seed=seed)
        name_accs.append(
            matching_accuracy(NameSimilarityMatcher().match(task), task.gold)
        )
        if seed == 0:
            emb_accs.append(
                benchmark.pedantic(run_embedding, args=(seed,), rounds=1, iterations=1)
            )
        else:
            emb_accs.append(run_embedding(seed))

    name_mean = sum(name_accs) / len(name_accs)
    emb_mean = sum(emb_accs) / len(emb_accs)
    report_printer(
        "D2.5b-v: schema matching (data integration)",
        [
            f"{'matcher':<28}{'mean accuracy':>15}",
            f"{'name similarity':<28}{name_mean:>15.2f}",
            f"{'instance embeddings (LM)':<28}{emb_mean:>15.2f}",
        ],
    )
    assert emb_mean > name_mean


def test_bench_error_detection(benchmark, report_printer):
    examples = generate_error_dataset(num_examples=200, seed=0)
    train, test = examples[:150], examples[150:]
    rule = RuleErrorDetector().fit(train)
    learned = FinetunedErrorDetector(seed=0).fit(train, epochs=12)

    rule_metrics = evaluate_detector(rule, test)
    lm_metrics = benchmark.pedantic(
        evaluate_detector, args=(learned, test), rounds=1, iterations=1
    )
    report_printer(
        "D2.5b-iii: error detection",
        [
            f"{'detector':<18}{'F1':>7}{'precision':>11}{'recall':>8}",
            f"{'mined rules':<18}{rule_metrics['f1']:>7.2f}"
            f"{rule_metrics['precision']:>11.2f}{rule_metrics['recall']:>8.2f}",
            f"{'fine-tuned LM':<18}{lm_metrics['f1']:>7.2f}"
            f"{lm_metrics['precision']:>11.2f}{lm_metrics['recall']:>8.2f}",
        ],
    )
    assert lm_metrics["f1"] > 0.6


def test_bench_imputation(benchmark, report_printer):
    examples = generate_imputation_dataset(num_examples=200, seed=0)
    train, test = examples[:150], examples[150:]
    majority = MajorityImputer().fit(train)
    learned = FinetunedImputer(seed=0).fit(train, epochs=8)

    majority_acc = evaluate_imputer(majority, test)
    lm_acc = benchmark.pedantic(
        evaluate_imputer, args=(learned, test), rounds=1, iterations=1
    )
    report_printer(
        "D2.5b-iv: data imputation",
        [
            f"{'imputer':<18}{'accuracy':>10}",
            f"{'majority':<18}{majority_acc:>10.2f}",
            f"{'fine-tuned LM':<18}{lm_acc:>10.2f}",
        ],
    )
    assert lm_acc > majority_acc
    assert lm_acc > 0.9
