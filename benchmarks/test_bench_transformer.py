"""D2.1 — Rise of the Transformer: attention vs recurrence.

The tutorial motivates the Transformer by its advantage over recurrent
networks [43]. We train a causal Transformer and an Elman RNN of
comparable size on a long-range copy task (recall tokens emitted many
positions earlier) and compare next-token accuracy on the copied half.

Expected shape: the Transformer's copy accuracy is far higher — the
attention mechanism reads the distant prefix directly, the RNN must
squeeze it through a fixed-size state.
"""

import numpy as np
import pytest

from repro.autograd import cross_entropy, no_grad
from repro.models import GPTModel, ModelConfig, RecurrentLM
from repro.tokenizers import WhitespaceTokenizer
from repro.training.data import pack_corpus
from repro.training.optim import AdamW
from repro.utils.corpus import copy_task_corpus
from repro.utils.rng import SeededRNG


def train_lm(model, rows, steps, seed, lr=3e-3):
    rng = SeededRNG(seed)
    optimizer = AdamW(model.parameters(), lr=lr)
    model.train()
    for _ in range(steps):
        idx = rng.generator.choice(rows.shape[0], size=16, replace=False)
        inputs, targets = rows[idx, :-1], rows[idx, 1:]
        logits = model(inputs)
        loss = cross_entropy(
            logits.reshape(-1, model.config.vocab_size), targets.reshape(-1)
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.step()
    model.eval()
    return model


def copy_accuracy(model, rows, copy_start):
    """Accuracy of predicting the copied half (positions >= copy_start)."""
    inputs, targets = rows[:, :-1], rows[:, 1:]
    with no_grad():
        logits = model(inputs)
    predictions = logits.data.argmax(axis=-1)
    region = slice(copy_start, None)
    return float((predictions[:, region] == targets[:, region]).mean())


@pytest.fixture(scope="module")
def setup():
    corpus = copy_task_corpus(num_docs=220, vocab=10, length=5, seed=13)
    tokenizer = WhitespaceTokenizer()
    tokenizer.train(corpus, vocab_size=64)
    seq_len = len(tokenizer.encode(corpus[0], add_eos=True).ids)
    rows = pack_corpus(tokenizer, corpus, seq_len)
    config = ModelConfig(
        vocab_size=tokenizer.vocab_size, max_seq_len=seq_len, dim=32,
        num_layers=2, num_heads=2, ff_dim=64, causal=True,
    )
    transformer = train_lm(GPTModel(config, seed=0), rows, steps=120, seed=0)
    rnn = train_lm(RecurrentLM(config, seed=0), rows, steps=120, seed=0)
    test_rows = pack_corpus(
        tokenizer, copy_task_corpus(num_docs=40, vocab=10, length=5, seed=99), seq_len
    )
    copy_start = 5  # after "a b c d e copy", predictions must recall the prefix
    return transformer, rnn, test_rows, copy_start


def test_bench_transformer_vs_rnn(benchmark, report_printer, setup):
    transformer, rnn, test_rows, copy_start = setup
    transformer_acc = benchmark(copy_accuracy, transformer, test_rows, copy_start)
    rnn_acc = copy_accuracy(rnn, test_rows, copy_start)

    report_printer(
        "D2.1: long-range copy task — attention vs recurrence",
        [
            f"{'model':<22}{'params':>10}{'copy accuracy':>16}",
            f"{'Transformer (causal)':<22}{transformer.num_parameters():>10,}{transformer_acc:>16.3f}",
            f"{'Elman RNN':<22}{rnn.num_parameters():>10,}{rnn_acc:>16.3f}",
            "",
            f"advantage: {transformer_acc - rnn_acc:+.3f} absolute accuracy",
        ],
    )
    assert transformer_acc > rnn_acc + 0.1
    assert transformer_acc > 0.5
