"""Engine ablation — predicate pushdown and hash joins (DESIGN §5).

Measures join probes and wall-clock for a selective filtered join with
the optimizer's two features on and off. Not a paper artifact; an
ablation of the substrate's own design choices.
"""

import pytest

from repro.sql import Database
from repro.sql.executor import ExecutorOptions
from repro.utils.rng import SeededRNG


@pytest.fixture(scope="module")
def populated():
    db = Database()
    rng = SeededRNG(0)
    db.execute("CREATE TABLE fact (id INT, dim_id INT, value INT)")
    db.execute("CREATE TABLE dim (dim_id INT, label TEXT)")
    for i in range(60):
        db.execute(f"INSERT INTO dim VALUES ({i}, 'label{i}')")
    rows = ", ".join(
        f"({i}, {rng.randint(0, 60)}, {rng.randint(0, 1000)})" for i in range(600)
    )
    db.execute(f"INSERT INTO fact VALUES {rows}")
    return db

SQL = (
    "SELECT f.id, d.label FROM fact f JOIN dim d ON f.dim_id = d.dim_id "
    "WHERE f.value > 900"
)


def run_with(db, options):
    engine = Database(options)
    engine.catalog = db.catalog
    result = engine.execute(SQL)
    return result, engine.explain_stats()


def test_bench_engine_ablation(benchmark, report_printer, populated):
    configs = {
        "naive (no pushdown, nested loop)": ExecutorOptions(False, False),
        "pushdown only": ExecutorOptions(True, False),
        "hash join only": ExecutorOptions(False, True),
        "pushdown + hash join": ExecutorOptions(True, True),
    }
    lines = [f"{'configuration':<34}{'rows':>6}{'join probes':>13}"]
    stats_by_config = {}
    for name, options in configs.items():
        result, stats = run_with(populated, options)
        stats_by_config[name] = (len(result), stats.join_probes)
        lines.append(f"{name:<34}{len(result):>6}{stats.join_probes:>13}")

    fast = benchmark(lambda: run_with(populated, ExecutorOptions(True, True)))
    report_printer("ENGINE: optimizer ablation on a filtered join", lines)

    # All configurations agree on the answer.
    row_counts = {rows for rows, _ in stats_by_config.values()}
    assert len(row_counts) == 1
    # Each optimization reduces probe counts; both together reduce most.
    naive = stats_by_config["naive (no pushdown, nested loop)"][1]
    best = stats_by_config["pushdown + hash join"][1]
    assert best < naive / 10


def test_bench_index_scan(benchmark, report_printer, populated):
    """Hash-index point lookups vs full scans on the same predicate."""
    engine = Database(ExecutorOptions(True, True))
    engine.catalog = populated.catalog
    sql = "SELECT COUNT(*) FROM fact WHERE dim_id = 7"

    engine.execute(sql)
    full_scan_rows = engine.explain_stats().rows_scanned
    engine.execute("CREATE INDEX idx_dim ON fact (dim_id)")

    result = benchmark(engine.execute, sql)
    indexed_rows = engine.explain_stats().rows_scanned
    lookups = engine.explain_stats().index_lookups

    report_printer(
        "ENGINE: hash-index point lookup",
        [
            f"query: {sql}",
            f"rows bound without index : {full_scan_rows}",
            f"rows bound with index    : {indexed_rows} ({lookups} index lookup)",
            f"matching rows            : {result.scalar()}",
        ],
    )
    assert indexed_rows < full_scan_rows
    assert lookups == 1
