"""ANALYSIS — Static analysis throughput, precision, and suppression budget.

CodexDB executes model-generated Python and text-to-SQL executes
model-generated SQL; both now pass every candidate through static
vetting first. The pitch only holds if the analyzers are much cheaper
than the execution they guard — this benchmark measures programs
vetted per second (flow-sensitive pycheck over generated plans) and
queries checked per second (sqlcheck against the catalog), next to the
cost of actually running the same artifacts.

It also scores the flow-sensitive vetter against the labeled golden
corpus (:mod:`repro.analysis.corpus`) — precision/recall for the new
pipeline and for the PR-1 mention-ban rules it replaced — times the
repo linter over ``src/``, and enforces the ``# repro: noqa``
suppression budget (the repo must not accumulate more suppressions
than the seed baseline). Everything lands in
``benchmarks/BENCH_analysis.json`` via the ``bench_metrics`` fixture.
"""

from __future__ import annotations

import io
import time
import tokenize
from pathlib import Path

import pytest

from repro.analysis import check_python, check_sql, error_findings
from repro.analysis.corpus import FIXTURES, legacy_rejects
from repro.analysis.lint import _NOQA_PATTERN, lint_paths
from repro.codexdb import CodeGenOptions, generate_python, plan_query
from repro.codexdb.sandbox import run_generated_code
from repro.text2sql import generate_workload
from repro.text2sql.workload import sql_to_engine_dialect

REPO_ROOT = Path(__file__).resolve().parent.parent

#: real ``# repro: noqa`` comment suppressions in the tree at the seed
#: of this benchmark (engine.py amortized concats + dispatch.py); the
#: budget check fails when the count grows past this without the
#: baseline being consciously re-set here
NOQA_BUDGET = 3


@pytest.fixture(scope="module")
def setup():
    workload = generate_workload(seed=0, examples_per_template=4)
    queries = sorted({sql_to_engine_dialect(ex.sql) for ex in workload.examples})
    programs = []
    for sql in queries:
        try:
            steps = plan_query(sql)
        except Exception:
            continue
        programs.append(generate_python(steps, CodeGenOptions()))
    return workload.db, queries, programs


def throughput(fn, items, repeats=20):
    start = time.perf_counter()
    for _ in range(repeats):
        for item in items:
            fn(item)
    elapsed = time.perf_counter() - start
    return len(items) * repeats / elapsed


def test_bench_analysis_throughput(
    benchmark, report_printer, bench_metrics, setup
):
    db, queries, programs = setup
    tables = {name: db.table(name) for name in db.table_names()}

    pycheck_rate = benchmark.pedantic(
        throughput, args=(check_python, programs), rounds=1, iterations=1
    )
    sqlcheck_rate = throughput(lambda q: check_sql(q, db.catalog), queries)
    exec_rate = throughput(
        lambda code: run_generated_code(code, tables), programs, repeats=3
    )

    report_printer(
        "ANALYSIS: static analysis throughput",
        [
            f"{'pass':<26}{'corpus':>10}{'items/sec':>12}",
            f"{'pycheck (generated py)':<26}{len(programs):>10}{pycheck_rate:>12.0f}",
            f"{'sqlcheck (workload sql)':<26}{len(queries):>10}{sqlcheck_rate:>12.0f}",
            f"{'vet + execute (sandbox)':<26}{len(programs):>10}{exec_rate:>12.0f}",
        ],
    )
    bench_metrics["analysis/pycheck_programs_per_sec"] = round(pycheck_rate, 1)
    bench_metrics["analysis/sqlcheck_queries_per_sec"] = round(sqlcheck_rate, 1)

    # Every artifact in the shipped pipeline must vet clean.
    assert all(not error_findings(check_python(code)) for code in programs)
    assert all(not check_sql(sql, db.catalog) for sql in queries)
    # Vetting alone must not be slower than vetting + executing.
    assert pycheck_rate > exec_rate
    assert pycheck_rate > 50
    assert sqlcheck_rate > 50


def _score(reject_fn):
    """(precision, recall, false_positives) of a rejector over the corpus."""
    tp = fp = fn = 0
    for fixture in FIXTURES:
        rejected = reject_fn(fixture.code)
        if rejected and not fixture.safe:
            tp += 1
        elif rejected and fixture.safe:
            fp += 1
        elif not rejected and not fixture.safe:
            fn += 1
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    return precision, recall, fp


def test_bench_vet_precision_recall(report_printer, bench_metrics):
    flow_p, flow_r, flow_fp = _score(
        lambda code: bool(error_findings(check_python(code)))
    )
    old_p, old_r, old_fp = _score(legacy_rejects)

    report_printer(
        "ANALYSIS: vet precision/recall on the golden corpus "
        f"({len(FIXTURES)} fixtures)",
        [
            f"{'pipeline':<28}{'precision':>10}{'recall':>10}{'false pos':>10}",
            f"{'flow-sensitive (dataflow)':<28}{flow_p:>10.2f}{flow_r:>10.2f}"
            f"{flow_fp:>10}",
            f"{'PR-1 mention-ban (legacy)':<28}{old_p:>10.2f}{old_r:>10.2f}"
            f"{old_fp:>10}",
        ],
    )
    bench_metrics["analysis/corpus_fixtures"] = len(FIXTURES)
    bench_metrics["analysis/vet_precision"] = round(flow_p, 3)
    bench_metrics["analysis/vet_recall"] = round(flow_r, 3)
    bench_metrics["analysis/legacy_precision"] = round(old_p, 3)
    bench_metrics["analysis/legacy_recall"] = round(old_r, 3)

    # the flow-sensitive vetter blocks every escape/unbounded fixture
    # and accepts every benign one ...
    assert flow_p == 1.0 and flow_r == 1.0
    # ... strictly dominating the mention-ban rules on both axes
    assert old_p < 1.0 and old_r < 1.0


def test_bench_lint_walltime(report_printer, bench_metrics):
    src = REPO_ROOT / "src"
    start = time.perf_counter()
    findings = lint_paths([src])
    elapsed = time.perf_counter() - start
    files = len(list(src.rglob("*.py")))

    report_printer(
        "ANALYSIS: repo lint wall-time",
        [
            f"files linted : {files}",
            f"wall time    : {elapsed:.2f}s ({files / elapsed:.0f} files/sec)",
            f"findings     : {len(findings)}",
        ],
    )
    bench_metrics["analysis/lint_files_src"] = files
    bench_metrics["analysis/lint_seconds_src"] = round(elapsed, 3)
    assert findings == []
    assert elapsed < 60


def _count_noqa_comments(root: Path) -> int:
    """Real ``# repro: noqa`` *comment* suppressions under ``root``.

    Counted over tokenized COMMENT tokens, so the pattern appearing in
    string literals (e.g. lint's own tests) does not inflate the count.
    """
    count = 0
    for path in sorted(root.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT and _NOQA_PATTERN.search(
                token.string
            ):
                count += 1
    return count


def test_bench_noqa_budget(report_printer, bench_metrics):
    count = sum(
        _count_noqa_comments(REPO_ROOT / d)
        for d in ("src", "tests", "benchmarks")
    )
    report_printer(
        "ANALYSIS: lint suppression budget",
        [
            f"repro: noqa comments : {count}",
            f"budget (seed)        : {NOQA_BUDGET}",
        ],
    )
    bench_metrics["analysis/noqa_suppressions"] = count
    bench_metrics["analysis/noqa_budget"] = NOQA_BUDGET
    assert count <= NOQA_BUDGET, (
        f"{count} '# repro: noqa' suppressions exceed the seed budget of "
        f"{NOQA_BUDGET}; fix the findings instead of suppressing them (or "
        "consciously raise NOQA_BUDGET in this file)"
    )
