"""ANALYSIS — Static analysis throughput: vetting is cheap insurance.

CodexDB executes model-generated Python and text-to-SQL executes
model-generated SQL; both now pass every candidate through static
vetting first. The pitch only holds if the analyzers are much cheaper
than the execution they guard — this benchmark measures programs
vetted per second (pycheck over generated plans) and queries checked
per second (sqlcheck against the catalog), next to the cost of actually
running the same artifacts.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import check_python, check_sql
from repro.codexdb import CodeGenOptions, generate_python, plan_query
from repro.codexdb.sandbox import run_generated_code
from repro.text2sql import generate_workload
from repro.text2sql.workload import sql_to_engine_dialect


@pytest.fixture(scope="module")
def setup():
    workload = generate_workload(seed=0, examples_per_template=4)
    queries = sorted({sql_to_engine_dialect(ex.sql) for ex in workload.examples})
    programs = []
    for sql in queries:
        try:
            steps = plan_query(sql)
        except Exception:
            continue
        programs.append(generate_python(steps, CodeGenOptions()))
    return workload.db, queries, programs


def throughput(fn, items, repeats=20):
    start = time.perf_counter()
    for _ in range(repeats):
        for item in items:
            fn(item)
    elapsed = time.perf_counter() - start
    return len(items) * repeats / elapsed


def test_bench_analysis_throughput(benchmark, report_printer, setup):
    db, queries, programs = setup
    tables = {name: db.table(name) for name in db.table_names()}

    pycheck_rate = benchmark.pedantic(
        throughput, args=(check_python, programs), rounds=1, iterations=1
    )
    sqlcheck_rate = throughput(lambda q: check_sql(q, db.catalog), queries)
    exec_rate = throughput(
        lambda code: run_generated_code(code, tables), programs, repeats=3
    )

    report_printer(
        "ANALYSIS: static analysis throughput",
        [
            f"{'pass':<26}{'corpus':>10}{'items/sec':>12}",
            f"{'pycheck (generated py)':<26}{len(programs):>10}{pycheck_rate:>12.0f}",
            f"{'sqlcheck (workload sql)':<26}{len(queries):>10}{sqlcheck_rate:>12.0f}",
            f"{'vet + execute (sandbox)':<26}{len(programs):>10}{exec_rate:>12.0f}",
        ],
    )

    # Every artifact in the shipped pipeline must vet clean.
    assert all(not check_python(code) for code in programs)
    assert all(not check_sql(sql, db.catalog) for sql in queries)
    # Vetting alone must not be slower than vetting + executing.
    assert pycheck_rate > exec_rate
    assert pycheck_rate > 50
    assert sqlcheck_rate > 50
