"""D2.5g — LM operators in the engine: SQL with NL predicates.

The second §2.5 thread: language models *inside* query processing
(ThalamusDB-style NL predicates [32]; LM operators [74, 77]). Compares
the LM-backed ``NL(column, 'description')`` operator against a keyword
heuristic on retrieval quality, and shows the dictionary-evaluation
strategy bounding classifier calls by distinct values, not rows.
"""

import pytest

from repro.semantic import (
    KeywordPredicate,
    SemanticDatabase,
    generate_review_table,
    train_review_predicate,
)


@pytest.fixture(scope="module")
def setup():
    db, gold = generate_review_table(num_rows=40, seed=0)
    predicate = train_review_predicate(epochs=8, seed=0)
    return db, gold, predicate


def scores(db, gold, predicate):
    sdb = SemanticDatabase(db, predicate)
    rows = sdb.execute(
        "SELECT id FROM products WHERE NL(review, 'the review is positive')"
    ).rows
    predicted = {r[0] for r in rows}
    gold_positive = {i for i, positive in gold.items() if positive}
    if not predicted:
        return 0.0, 0.0, 0.0, sdb.predicate_evaluations
    precision = len(predicted & gold_positive) / len(predicted)
    recall = len(predicted & gold_positive) / len(gold_positive)
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall else 0.0
    )
    return precision, recall, f1, sdb.predicate_evaluations


def test_bench_semantic_operator(benchmark, report_printer, setup):
    db, gold, lm_predicate = setup

    lm_metrics = benchmark.pedantic(
        scores, args=(db, gold, lm_predicate), rounds=1, iterations=1
    )
    keyword_metrics = scores(db, gold, KeywordPredicate())
    distinct = db.execute("SELECT COUNT(DISTINCT review) FROM products").scalar()
    total = db.execute("SELECT COUNT(*) FROM products").scalar()

    report_printer(
        "D2.5g: NL predicates in SQL (LM operators in the engine)",
        [
            "query: SELECT id FROM products WHERE NL(review, 'the review is positive')",
            "",
            f"{'predicate':<16}{'precision':>10}{'recall':>8}{'F1':>7}{'LM calls':>10}",
            f"{'fine-tuned LM':<16}{lm_metrics[0]:>10.2f}{lm_metrics[1]:>8.2f}"
            f"{lm_metrics[2]:>7.2f}{lm_metrics[3]:>10}",
            f"{'keyword':<16}{keyword_metrics[0]:>10.2f}{keyword_metrics[1]:>8.2f}"
            f"{keyword_metrics[2]:>7.2f}{keyword_metrics[3]:>10}",
            "",
            f"dictionary evaluation: {lm_metrics[3]} classifier calls for "
            f"{total} rows ({distinct} distinct values)",
        ],
    )
    assert lm_metrics[2] > keyword_metrics[2]
    assert lm_metrics[2] >= 0.9
    assert lm_metrics[3] <= distinct
