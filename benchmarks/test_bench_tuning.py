"""D2.5d — Database tuning from manuals (DB-BERT style).

Simulated-DBMS throughput under three configurations: the default, a
config tuned with regex-extracted hints, and a config tuned with
LM-extracted hints — swept over manual sizes (short manuals contain few
transparently phrased hints, so the LM's paraphrase coverage matters
most there).

Expected shape: tuned >> default; LM-tuned >= regex-tuned, with the
largest gap on short manuals.
"""

import pytest

from repro.tuning import (
    DBMSConfig,
    RegexHintExtractor,
    SimulatedDBMS,
    Workload,
    generate_manual,
    train_lm_extractor,
    tune,
)


@pytest.fixture(scope="module")
def extractor():
    training_manual = generate_manual(num_sentences=140, seed=1)
    return train_lm_extractor(training_manual, epochs=8, seed=0)


def test_bench_tuning(benchmark, report_printer, extractor):
    workload = Workload()
    default_throughput = SimulatedDBMS(workload).throughput(DBMSConfig())

    lines = [
        f"{'manual size':<13}{'default':>9}{'regex-tuned':>13}{'LM-tuned':>10}"
        f"{'regex hints':>13}{'LM hints':>10}"
    ]
    results = {}
    for size in (12, 24, 60):
        manual = generate_manual(num_sentences=size, seed=0)
        regex_hints = RegexHintExtractor().extract(manual)
        lm_hints = extractor.extract(manual)
        regex_report = tune(SimulatedDBMS(workload), regex_hints)
        lm_report = tune(SimulatedDBMS(workload), lm_hints)
        results[size] = (regex_report, lm_report, len(regex_hints), len(lm_hints))
        lines.append(
            f"{size:<13}{default_throughput:>9.0f}"
            f"{regex_report.final_throughput:>13.0f}"
            f"{lm_report.final_throughput:>10.0f}"
            f"{len(regex_hints):>13}{len(lm_hints):>10}"
        )

    def tuned_speedup():
        manual = generate_manual(num_sentences=24, seed=0)
        return tune(SimulatedDBMS(workload), extractor.extract(manual)).speedup

    speedup = benchmark.pedantic(tuned_speedup, rounds=1, iterations=1)
    lines.append("")
    lines.append(f"LM-tuned speedup over default (24-sentence manual): {speedup:.1f}x")
    report_printer("D2.5d: database tuning from the manual", lines)

    for size, (regex_report, lm_report, _, _) in results.items():
        assert lm_report.final_throughput >= regex_report.final_throughput
        assert lm_report.final_throughput > default_throughput
    # The paraphrase advantage is largest on short manuals.
    short_regex, short_lm, _, _ = results[12]
    assert short_lm.final_throughput >= short_regex.final_throughput
