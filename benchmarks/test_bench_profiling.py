"""D2.5h — NLP-enhanced profiling: correlations from column names [78, 87].

Can a model predict which column pairs correlate, looking only at the
names? Correlated pairs are named with *synonyms* (wage/pay,
price/cost), so token overlap fails structurally while the LM learns
the semantic clusters. The payoff metric is budgeted profiling: recall
of measured correlations within a budget of actual data scans.
"""

import pytest

from repro.profiling import (
    TokenOverlapBaseline,
    evaluate_predictor,
    generate_schema_corpus,
    profiling_recall_at_budget,
    train_name_pair_classifier,
)


@pytest.fixture(scope="module")
def setup():
    train = generate_schema_corpus(num_schemas=16, seed=1)
    test = generate_schema_corpus(num_schemas=8, seed=2)
    classifier = train_name_pair_classifier(train.pairs, epochs=12, seed=0)
    return test, classifier


def test_bench_profiling(benchmark, report_printer, setup):
    test, classifier = setup
    baseline = TokenOverlapBaseline()

    lm_metrics = benchmark.pedantic(
        evaluate_predictor, args=(classifier, test.pairs), rounds=1, iterations=1
    )
    baseline_metrics = evaluate_predictor(baseline, test.pairs)

    lines = [
        f"{'predictor':<18}{'F1':>7}{'precision':>11}{'recall':>8}",
        f"{'fine-tuned LM':<18}{lm_metrics['f1']:>7.2f}"
        f"{lm_metrics['precision']:>11.2f}{lm_metrics['recall']:>8.2f}",
        f"{'token overlap':<18}{baseline_metrics['f1']:>7.2f}"
        f"{baseline_metrics['precision']:>11.2f}{baseline_metrics['recall']:>8.2f}",
        "",
        f"{'scan budget':<13}{'LM recall':>10}{'overlap recall':>16}",
    ]
    for budget in (6, 12, 24):
        lm_recall, _ = profiling_recall_at_budget(classifier, test, test.pairs, budget)
        base_recall, _ = profiling_recall_at_budget(baseline, test, test.pairs, budget)
        lines.append(f"{budget:<13}{lm_recall:>10.2f}{base_recall:>16.2f}")
    report_printer(
        "D2.5h: correlation prediction from column names (profiling)", lines
    )

    assert lm_metrics["f1"] > baseline_metrics["f1"]
    lm24, _ = profiling_recall_at_budget(classifier, test, test.pairs, 24)
    base24, _ = profiling_recall_at_budget(baseline, test, test.pairs, 24)
    assert lm24 > base24
    assert lm24 >= 0.7
