"""FIG1 — Figure 1: evolution of parameter counts in language models.

Regenerates the paper's only figure from architecture formulas and
verifies its qualitative shape: monotone-in-time growth trend spanning
more than three orders of magnitude, every computed count within the
documented tolerance of the published one.
"""

from repro.figures import (
    figure1_points,
    growth_orders_of_magnitude,
    render_figure1_ascii,
)


def test_bench_figure1(benchmark, report_printer):
    points = benchmark(figure1_points)

    lines = [render_figure1_ascii(), ""]
    lines.append(f"{'model':<14}{'year':>7}{'computed':>12}{'published':>12}{'error':>8}")
    for point in points:
        lines.append(
            f"{point.name:<14}{point.year:>7.1f}"
            f"{point.estimated_params / 1e9:>11.2f}B"
            f"{point.published_params / 1e9:>11.1f}B"
            f"{point.relative_error:>8.1%}"
        )
    lines.append("")
    lines.append(
        f"growth across the timeline: 10^{growth_orders_of_magnitude():.2f}"
    )
    report_printer("FIG1: parameter-count evolution (computed from architectures)", lines)

    # Shape assertions (the paper's log-scale growth story).
    assert len(points) == 11
    assert growth_orders_of_magnitude() > 3.0
    early = [p for p in points if p.year < 2019.5]
    late = [p for p in points if p.year > 2021.5]
    assert max(p.estimated_params for p in early) < min(p.estimated_params for p in late)
