"""D2.5e — CodexDB: success rate vs retry budget, and customization.

Reproduces the two CodexDB results: (1) validation + retries recover
from buggy candidate programs — success rises with the sample budget;
(2) the synthesized code matches the native engine's answers while
adding customizations (logging, profiling) a fixed engine cannot offer.
"""

import pytest

from repro.codexdb import (
    CodeGenOptions,
    CodexDB,
    SimulatedCodex,
    evaluate_codexdb,
)
from repro.text2sql import generate_workload
from repro.text2sql.workload import sql_to_engine_dialect


@pytest.fixture(scope="module")
def setup():
    workload = generate_workload(seed=0, examples_per_template=4)
    queries = sorted({sql_to_engine_dialect(ex.sql) for ex in workload.examples})
    return workload.db, queries


def test_bench_codexdb_success_at_k(benchmark, report_printer, setup):
    db, queries = setup

    lines = [f"{'max attempts':<14}{'success rate':>13}{'mean attempts':>15}"]
    reports = {}
    for attempts in (1, 2, 4, 8):
        report = evaluate_codexdb(
            db, queries, max_attempts=attempts, error_rate=0.4, seed=1
        )
        reports[attempts] = report
        lines.append(
            f"{attempts:<14}{report.success_rate:>13.2f}{report.mean_attempts:>15.2f}"
        )

    clean = benchmark.pedantic(
        evaluate_codexdb, args=(db, queries),
        kwargs={"max_attempts": 1, "error_rate": 0.0}, rounds=1, iterations=1,
    )
    lines.append("")
    lines.append(f"error-free code model, 1 attempt: success={clean.success_rate:.2f}")
    report_printer("D2.5e-i: CodexDB success rate vs retry budget", lines)

    assert clean.success_rate == 1.0
    assert reports[8].success_rate >= reports[1].success_rate
    assert reports[8].success_rate >= 0.9


def test_bench_codexdb_customization(benchmark, report_printer, setup):
    db, queries = setup
    sql = next(q for q in queries if "group by" in q)

    plain = CodexDB(db, SimulatedCodex(error_rate=0.0), CodeGenOptions())
    custom = CodexDB(
        db, SimulatedCodex(error_rate=0.0),
        CodeGenOptions(logging=True, comments=True, profile=True),
    )
    plain_result = plain.run(sql)
    custom_result = benchmark.pedantic(custom.run, args=(sql,), rounds=1, iterations=1)
    engine_rows = db.execute(sql).rows

    assert plain_result.outcome is not None and custom_result.outcome is not None
    report_printer(
        "D2.5e-ii: customization (the reason to synthesize code)",
        [
            f"query: {sql}",
            f"engine rows == synthesized rows: "
            f"{sorted(map(repr, engine_rows)) == sorted(map(repr, custom_result.outcome.rows))}",
            f"plain program : {len(plain_result.code.splitlines())} lines, "
            f"{len(plain_result.outcome.logs)} log lines",
            f"custom program: {len(custom_result.code.splitlines())} lines, "
            f"{len(custom_result.outcome.logs)} log lines, "
            f"{len(custom_result.outcome.profile)} profiled steps",
        ],
    )
    assert sorted(map(repr, custom_result.outcome.rows)) == sorted(map(repr, engine_rows))
    assert len(custom_result.outcome.logs) > 0
    assert len(plain_result.outcome.logs) == 0
