"""CACHE — semantic completion cache on a repeated few-shot sweep.

The paper's data-management workloads re-issue the same few-shot
prompts with high frequency (imputation over a column, text-to-SQL over
a workload). This benchmark replays a seeded sweep with a fixed repeat
rate through the :class:`~repro.api.CompletionClient` twice — cache off
vs cache on — and records hit rate, tokens skipped, and the end-to-end
speedup in ``benchmarks/BENCH_cache.json``.

Acceptance: every exact repeat is served from the cache (hit rate >=
repeat rate), exact hits are token-identical to uncached completion,
and the sweep speeds up >= 1.5x with the cache on.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import CompletionClient, bootstrap_hub
from repro.serving import SemanticCache

MAX_TOKENS = 12


@pytest.fixture(scope="module")
def hub():
    return bootstrap_hub(seed=0, steps=60, corpus_docs=60)


def few_shot_prompt(row: str) -> str:
    return (
        "the database stores sorted rows . the table returns cached "
        f"records . the index scans {row}"
    )


def seeded_sweep(num_requests: int = 60, repeat_fraction: float = 0.5):
    """A request schedule where ``repeat_fraction`` are exact repeats."""
    rng = np.random.default_rng(17)
    distinct = [few_shot_prompt(f"row {i} of the large results") for i in range(40)]
    schedule = []
    issued: list = []
    for _ in range(num_requests):
        if issued and rng.random() < repeat_fraction:
            schedule.append(issued[int(rng.integers(0, len(issued)))])
        else:
            schedule.append(distinct[len(set(issued)) % len(distinct)])
        issued.append(schedule[-1])
    repeats = len(schedule) - len(set(schedule))
    return schedule, repeats / len(schedule)


def run_sweep(client, schedule):
    start = time.perf_counter()
    responses = [
        client.complete("tiny-gpt", prompt, max_tokens=MAX_TOKENS)
        for prompt in schedule
    ]
    return responses, time.perf_counter() - start


def test_bench_cache_repeat_sweep(report_printer, bench_metrics, hub):
    schedule, repeat_rate = seeded_sweep()
    assert repeat_rate >= 0.30, "workload must contain >=30% repeats"

    uncached = CompletionClient(hub)
    cached = CompletionClient(hub, semantic_cache_bytes=4 * 1024 * 1024)

    baseline, cold_seconds = run_sweep(uncached, schedule)
    responses, warm_seconds = run_sweep(cached, schedule)

    # Exact hits are token-identical to uncached completion.
    for got, want in zip(responses, baseline):
        assert got.text == want.text
        assert got.usage == want.usage

    stats = cached.engine_stats("tiny-gpt")
    hit_rate = stats.cache_hit_rate
    expected_hits = len(schedule) - len(set(schedule))
    assert stats.cache_exact_hits == expected_hits, (
        "every exact repeat must be served from the cache"
    )
    assert hit_rate >= repeat_rate - 1e-9
    speedup = cold_seconds / warm_seconds
    assert speedup >= 1.5

    bench_metrics["cache/requests"] = len(schedule)
    bench_metrics["cache/repeat_rate"] = round(repeat_rate, 3)
    bench_metrics["cache/hit_rate"] = round(hit_rate, 3)
    bench_metrics["cache/exact_hits"] = stats.cache_exact_hits
    bench_metrics["cache/tokens_skipped"] = stats.cache_skipped_tokens
    bench_metrics["cache/decode_tokens_skipped"] = (
        stats.cache_skipped_completion_tokens
    )
    bench_metrics["cache/sweep_speedup"] = round(speedup, 2)
    report_printer(
        "CACHE-i: exact-tier hit rate on a repeated few-shot sweep",
        [
            f"requests        : {len(schedule)} ({repeat_rate:.0%} repeats)",
            f"exact hits      : {stats.cache_exact_hits}",
            f"hit rate        : {hit_rate:.2f}",
            f"tokens skipped  : {stats.cache_skipped_tokens}",
            f"sweep speedup   : {speedup:.2f}x "
            f"({cold_seconds * 1000:.0f} ms -> {warm_seconds * 1000:.0f} ms)",
        ],
    )


def test_bench_cache_similarity_tier(report_printer, bench_metrics, hub):
    """Near-duplicate sweep: the opt-in similarity tier's hit rate."""
    cache = SemanticCache(max_bytes=4 * 1024 * 1024, similarity_threshold=0.9)
    client = CompletionClient(hub, semantic_cache=cache)
    # Warm with one row per template family, then sweep near-duplicates
    # (same few-shot header, one changed row value).
    client.complete("tiny-gpt", few_shot_prompt("row 0 of the large results"),
                    max_tokens=MAX_TOKENS)
    probes = [few_shot_prompt(f"row {i} of the large results") for i in range(1, 21)]
    for prompt in probes:
        client.complete("tiny-gpt", prompt, max_tokens=MAX_TOKENS, allow_similar=True)

    stats = client.engine_stats("tiny-gpt")
    similarity_rate = stats.cache_similarity_hits / len(probes)
    assert stats.cache_similarity_hits > 0, (
        "near-duplicate prompts should hit the similarity tier"
    )

    bench_metrics["cache/similarity_probes"] = len(probes)
    bench_metrics["cache/similarity_hit_rate"] = round(similarity_rate, 3)
    report_printer(
        "CACHE-ii: similarity tier on near-duplicate prompts (opt-in)",
        [
            f"probes               : {len(probes)}",
            f"similarity hits      : {stats.cache_similarity_hits}",
            f"similarity hit rate  : {similarity_rate:.2f}",
            f"threshold            : {cache.similarity_threshold}",
        ],
    )
