"""D2.5a — Text-to-SQL: execution accuracy by translator and hardness.

Reproduces the classic comparison: a rule baseline, an LM decoding
freely, and the LM under PICARD-style grammar-constrained decoding,
scored by execution accuracy on a held-out synthetic Spider-style
workload, with a per-hardness breakdown and the constrained-decoding
ablation the DESIGN calls out.

Expected shape: constrained >= unconstrained on both accuracy and
validity; the rule baseline trails on hard (join/group) questions.
"""

import pytest

from repro.text2sql import (
    RuleBasedTranslator,
    evaluate_translator,
    generate_workload,
    train_translator,
)
from repro.text2sql.workload import HARDNESS_LEVELS


@pytest.fixture(scope="module")
def setup():
    workload = generate_workload(seed=0, examples_per_template=12)
    train, test = workload.split(test_fraction=0.25, seed=1)
    translator = train_translator(workload, train, steps=300, seed=0)
    return workload, translator, test


def test_bench_text2sql(benchmark, report_printer, setup):
    workload, translator, test = setup

    rule = evaluate_translator(
        RuleBasedTranslator(workload).translate, workload, test
    )
    unconstrained = evaluate_translator(
        lambda q: translator.translate(q, constrained=False), workload, test
    )
    constrained = benchmark.pedantic(
        evaluate_translator,
        args=(lambda q: translator.translate(q, constrained=True), workload, test),
        rounds=1, iterations=1,
    )

    rows = {
        "rule baseline": rule,
        "LM unconstrained": unconstrained,
        "LM + grammar (PICARD)": constrained,
    }
    lines = [
        f"{'translator':<24}{'exec acc':>9}{'valid':>7}"
        + "".join(f"{h:>9}" for h in HARDNESS_LEVELS)
    ]
    for name, report in rows.items():
        lines.append(
            f"{name:<24}{report.accuracy:>9.2f}{report.validity_rate:>7.2f}"
            + "".join(
                f"{report.hardness_accuracy(h):>9.2f}" for h in HARDNESS_LEVELS
            )
        )
    lines.append("")
    lines.append(
        "ablation: grammar constraint "
        f"{constrained.accuracy - unconstrained.accuracy:+.2f} exec accuracy, "
        f"{constrained.validity_rate - unconstrained.validity_rate:+.2f} validity"
    )
    report_printer("D2.5a: text-to-SQL execution accuracy", lines)

    assert constrained.accuracy >= unconstrained.accuracy
    assert constrained.validity_rate >= unconstrained.validity_rate
    assert constrained.validity_rate >= 0.95
    assert constrained.accuracy > 0.5


def test_bench_text2sql_model_scaling(benchmark, report_printer):
    """D2.5a-scaling — "larger language models significantly increased
    the accuracy on that task" (§2.5), observed across our model sizes.

    The same workload and training budget, three model widths: execution
    accuracy (constrained decoding) should rise with capacity.
    """
    workload = generate_workload(seed=0, examples_per_template=10)
    train, test = workload.split(test_fraction=0.25, seed=1)

    sizes = [
        ("tiny", dict(dim=16, num_layers=1)),
        ("small", dict(dim=48, num_layers=2)),
        ("medium", dict(dim=96, num_layers=3)),
    ]

    def train_and_eval(kwargs):
        translator = train_translator(workload, train, steps=300, seed=0, **kwargs)
        report = evaluate_translator(
            lambda q: translator.translate(q, constrained=True), workload, test
        )
        return translator.model.num_parameters(), report.accuracy

    results = {}
    for index, (name, kwargs) in enumerate(sizes):
        if index == 0:
            results[name] = benchmark.pedantic(
                train_and_eval, args=(kwargs,), rounds=1, iterations=1
            )
        else:
            results[name] = train_and_eval(kwargs)

    lines = [f"{'model size':<12}{'parameters':>12}{'exec accuracy':>15}"]
    for name, (params, accuracy) in results.items():
        lines.append(f"{name:<12}{params:>12,}{accuracy:>15.2f}")
    report_printer("D2.5a-scaling: execution accuracy vs model size", lines)

    assert results["medium"][1] >= results["tiny"][1]
    assert results["medium"][1] > 0.6
