"""SERVING — Batched decoding throughput: batching beats latency tuning.

The hosted-API deployments the paper leans on (GPT-3, Codex) serve many
callers' prompts through one model; throughput comes from batching, not
from making any single request faster. This benchmark measures decode
throughput (tokens/s) for the same request stream served sequentially
(one ``generate`` call per prompt) and through the batched engine at
microbatch sizes 4 and 8, plus the cost of priming the KV cache
token-at-a-time versus the chunked causal prefill.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.generation import GenerationConfig, generate
from repro.models import GPTModel, ModelConfig
from repro.serving import BatchRequest, BatchScheduler

PROMPT_LEN = 16
NEW_TOKENS = 24
N_PROMPTS = 8


@pytest.fixture(scope="module")
def setup():
    model = GPTModel(ModelConfig.small(vocab_size=128), seed=0)
    rng = np.random.default_rng(0)
    prompts = [
        list(map(int, rng.integers(1, 128, size=PROMPT_LEN)))
        for _ in range(N_PROMPTS)
    ]
    return model, prompts


def _sequential_tokens_per_sec(model, prompts, config):
    start = time.perf_counter()
    total = sum(len(generate(model, p, config)) for p in prompts)
    return total / (time.perf_counter() - start)


def _batched_tokens_per_sec(model, prompts, config, batch_size):
    scheduler = BatchScheduler(model, max_batch_size=batch_size)
    for p in prompts:
        scheduler.submit(BatchRequest(p, config))
    start = time.perf_counter()
    results = scheduler.run()
    elapsed = time.perf_counter() - start
    total = sum(len(r.sequences[0]) for r in results.values())
    return total / elapsed


def test_bench_batch_throughput(benchmark, report_printer, setup):
    model, prompts = setup
    config = GenerationConfig(max_new_tokens=NEW_TOKENS)

    sequential = _sequential_tokens_per_sec(model, prompts, config)
    batch4 = _batched_tokens_per_sec(model, prompts, config, 4)
    batch8 = benchmark.pedantic(
        _batched_tokens_per_sec,
        args=(model, prompts, config, 8),
        rounds=1,
        iterations=1,
    )

    report_printer(
        "SERVING: decode throughput vs batch size "
        f"({N_PROMPTS} prompts x {NEW_TOKENS} tokens)",
        [
            f"{'path':<28}{'tokens/s':>12}{'speedup':>10}",
            f"{'sequential (batch 1)':<28}{sequential:>12.0f}{1.0:>10.1f}x",
            f"{'batched (batch 4)':<28}{batch4:>12.0f}{batch4 / sequential:>10.1f}x",
            f"{'batched (batch 8)':<28}{batch8:>12.0f}{batch8 / sequential:>10.1f}x",
        ],
    )

    # Batched greedy decoding is output-identical to the per-prompt loop,
    # so the speedup is free: require >= 3x at microbatch 8.
    assert batch8 >= 3.0 * sequential
    assert batch4 > sequential


def _token_at_a_time_prefill(model, prompt):
    """The pre-serving priming loop: one forward per prompt token."""
    caches = model.init_cache()
    with no_grad():
        for position, token in enumerate(prompt):
            logits = model.forward_incremental(
                np.array([[token]], dtype=np.int64), position, caches
            )
    return logits


def _chunked_prefill(model, prompt):
    """One causal forward over the whole prompt."""
    from repro.nn.attention import causal_mask

    caches = model.init_cache()
    length = len(prompt)
    with no_grad():
        return model.forward_chunk(
            np.array([prompt], dtype=np.int64),
            np.arange(length)[None, :],
            caches,
            blocked=causal_mask(length)[None, None, :, :],
        )


def test_bench_chunked_prefill(report_printer, setup):
    model, _ = setup
    rng = np.random.default_rng(1)
    prompt = list(map(int, rng.integers(1, 128, size=60)))
    repeats = 5

    start = time.perf_counter()
    for _ in range(repeats):
        slow_logits = _token_at_a_time_prefill(model, prompt)
    token_at_a_time = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        chunk_logits = _chunked_prefill(model, prompt)
    chunked = (time.perf_counter() - start) / repeats

    report_printer(
        f"SERVING: prefill of a {len(prompt)}-token prompt",
        [
            f"{'path':<28}{'ms/prompt':>12}{'speedup':>10}",
            f"{'token-at-a-time priming':<28}{token_at_a_time * 1e3:>12.1f}"
            f"{1.0:>10.1f}x",
            f"{'chunked causal prefill':<28}{chunked * 1e3:>12.1f}"
            f"{token_at_a_time / chunked:>10.1f}x",
        ],
    )

    # Same next-token logits, much less Python/per-step overhead.
    np.testing.assert_allclose(
        chunk_logits.data[0, -1], slow_logits.data[0, 0], atol=1e-9
    )
    assert chunked * 2.0 <= token_at_a_time
