"""SERVING — Batched decoding throughput: batching beats latency tuning.

The hosted-API deployments the paper leans on (GPT-3, Codex) serve many
callers' prompts through one model; throughput comes from batching, not
from making any single request faster. This benchmark measures decode
throughput (tokens/s) for the same request stream served sequentially
(one ``generate`` call per prompt) and through the batched engine at
microbatch sizes 4 and 8, plus the cost of priming the KV cache
token-at-a-time versus the chunked causal prefill, the prefix-cache
speedup on a few-shot text-to-SQL sweep whose prompts share a long
header, speculative decoding with a distilled 1-layer draft against
plain batched decode on that same sweep, the int8 weight-quantization
kernel against the fp64 matmul it replaces, and the slab KV cache
versus the legacy concatenate-per-token growth at batch 8.
Machine-readable results land in ``benchmarks/BENCH_serving.json`` via
the ``bench_metrics`` fixture.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import CompletionClient, ModelHub
from repro.autograd import no_grad
from repro.generation import GenerationConfig, generate
from repro.models import GPTModel, ModelConfig
from repro.nn import quantize_weight
from repro.serving import BatchRequest, BatchScheduler, distill_draft
from repro.tokenizers import WhitespaceTokenizer

PROMPT_LEN = 16
NEW_TOKENS = 24
N_PROMPTS = 8


@pytest.fixture(scope="module")
def setup():
    model = GPTModel(ModelConfig.small(vocab_size=128), seed=0)
    rng = np.random.default_rng(0)
    prompts = [
        list(map(int, rng.integers(1, 128, size=PROMPT_LEN)))
        for _ in range(N_PROMPTS)
    ]
    return model, prompts


def _sequential_tokens_per_sec(model, prompts, config):
    start = time.perf_counter()
    total = sum(len(generate(model, p, config)) for p in prompts)
    return total / (time.perf_counter() - start)


def _batched_tokens_per_sec(model, prompts, config, batch_size):
    scheduler = BatchScheduler(model, max_batch_size=batch_size)
    for p in prompts:
        scheduler.submit(BatchRequest(p, config))
    start = time.perf_counter()
    results = scheduler.run()
    elapsed = time.perf_counter() - start
    total = sum(len(r.sequences[0]) for r in results.values())
    return total / elapsed


def test_bench_batch_throughput(benchmark, report_printer, bench_metrics, setup):
    model, prompts = setup
    config = GenerationConfig(max_new_tokens=NEW_TOKENS)

    sequential = _sequential_tokens_per_sec(model, prompts, config)
    batch4 = _batched_tokens_per_sec(model, prompts, config, 4)
    batch8 = benchmark.pedantic(
        _batched_tokens_per_sec,
        args=(model, prompts, config, 8),
        rounds=1,
        iterations=1,
    )

    report_printer(
        "SERVING: decode throughput vs batch size "
        f"({N_PROMPTS} prompts x {NEW_TOKENS} tokens)",
        [
            f"{'path':<28}{'tokens/s':>12}{'speedup':>10}",
            f"{'sequential (batch 1)':<28}{sequential:>12.0f}{1.0:>10.1f}x",
            f"{'batched (batch 4)':<28}{batch4:>12.0f}{batch4 / sequential:>10.1f}x",
            f"{'batched (batch 8)':<28}{batch8:>12.0f}{batch8 / sequential:>10.1f}x",
        ],
    )

    bench_metrics["decode_tokens_per_sec_sequential"] = round(sequential, 1)
    bench_metrics["decode_tokens_per_sec_batch8"] = round(batch8, 1)
    bench_metrics["decode_batch8_speedup"] = round(batch8 / sequential, 2)

    # Batched greedy decoding is output-identical to the per-prompt loop,
    # so the speedup is free: require >= 3x at microbatch 8.
    assert batch8 >= 3.0 * sequential
    assert batch4 > sequential


def _token_at_a_time_prefill(model, prompt):
    """The pre-serving priming loop: one forward per prompt token."""
    caches = model.init_cache()
    with no_grad():
        for position, token in enumerate(prompt):
            logits = model.forward_incremental(
                np.array([[token]], dtype=np.int64), position, caches
            )
    return logits


def _chunked_prefill(model, prompt):
    """One causal forward over the whole prompt."""
    from repro.nn.attention import causal_mask

    caches = model.init_cache()
    length = len(prompt)
    with no_grad():
        return model.forward_chunk(
            np.array([prompt], dtype=np.int64),
            np.arange(length)[None, :],
            caches,
            blocked=causal_mask(length)[None, None, :, :],
        )


def test_bench_chunked_prefill(report_printer, bench_metrics, setup):
    model, _ = setup
    rng = np.random.default_rng(1)
    prompt = list(map(int, rng.integers(1, 128, size=60)))
    repeats = 5

    start = time.perf_counter()
    for _ in range(repeats):
        slow_logits = _token_at_a_time_prefill(model, prompt)
    token_at_a_time = (time.perf_counter() - start) / repeats

    start = time.perf_counter()
    for _ in range(repeats):
        chunk_logits = _chunked_prefill(model, prompt)
    chunked = (time.perf_counter() - start) / repeats

    report_printer(
        f"SERVING: prefill of a {len(prompt)}-token prompt",
        [
            f"{'path':<28}{'ms/prompt':>12}{'speedup':>10}",
            f"{'token-at-a-time priming':<28}{token_at_a_time * 1e3:>12.1f}"
            f"{1.0:>10.1f}x",
            f"{'chunked causal prefill':<28}{chunked * 1e3:>12.1f}"
            f"{token_at_a_time / chunked:>10.1f}x",
        ],
    )

    bench_metrics["prefill_speedup_chunked_vs_token_at_a_time"] = round(
        token_at_a_time / chunked, 2
    )

    # Same next-token logits, much less Python/per-step overhead.
    np.testing.assert_allclose(
        chunk_logits.data[0, -1], slow_logits.data[0, 0], atol=1e-9
    )
    assert chunked * 2.0 <= token_at_a_time


# -- prefix caching on a few-shot text2sql sweep ---------------------------
N_QUERIES = 20
FEWSHOT_SHOTS = [
    ("how many players are there", "select count ( * ) from players"),
    ("list all team names", "select name from teams"),
    ("which players scored over ten", "select name from players where goals > 10"),
    ("average age of players", "select avg ( age ) from players"),
    ("teams founded after 1990", "select name from teams where founded > 1990"),
    ("count teams per city", "select city , count ( * ) from teams group by city"),
    ("oldest player name", "select name from players order by age desc limit 1"),
    ("players on team five", "select name from players where team_id = 5"),
    ("total goals scored", "select sum ( goals ) from players"),
    ("cities with a team", "select distinct city from teams"),
]
QUESTIONS = [
    f"show players with number {i} on their shirt" for i in range(N_QUERIES)
]


def _fewshot_prompt(question: str) -> str:
    """The classic few-shot shape: shared worked examples, new question."""
    header = " ; ".join(f"q : {q} ; sql : {s}" for q, s in FEWSHOT_SHOTS)
    return f"{header} ; q : {question} ; sql :"


@pytest.fixture(scope="module")
def sweep_setup():
    prompts = [_fewshot_prompt(q) for q in QUESTIONS]
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(prompts, vocab_size=512)
    longest = max(len(tokenizer.encode(p, add_bos=True).ids) for p in prompts)
    # Deep-and-narrow on purpose: the speculative benchmark needs a
    # target whose per-forward cost dwarfs the 1-layer draft's, and at
    # this scale forward cost is dominated by per-layer overhead, not
    # matmul width. The +40 headroom leaves room for a 32-token decode.
    config = ModelConfig(
        vocab_size=tokenizer.vocab_size,
        max_seq_len=longest + 40,
        dim=64,
        num_layers=12,
        num_heads=4,
        ff_dim=256,
        causal=True,
    )
    hub = ModelHub()
    hub.register("sql-bench", GPTModel(config, seed=0), tokenizer)
    return hub, prompts


def _sweep_seconds(client, prompts, max_tokens=6, **kwargs):
    start = time.perf_counter()
    responses = client.complete_batch(
        "sql-bench", prompts, max_tokens=max_tokens, **kwargs
    )
    return time.perf_counter() - start, [r.text for r in responses]


def test_bench_prefix_sweep(report_printer, bench_metrics, sweep_setup):
    """End-to-end few-shot sweep: prefix caching + continuous batching on
    vs. the plain microbatched path (the pre-prefix-cache baseline)."""
    hub, prompts = sweep_setup
    # Warm numpy/model code paths outside the timed region.
    CompletionClient(hub).complete_batch("sql-bench", prompts[:2], max_tokens=2)

    baseline_client = CompletionClient(hub, prefix_cache_bytes=0)
    base_s, base_texts = _sweep_seconds(
        baseline_client, prompts, prefix_caching=False, continuous=False
    )
    cached_client = CompletionClient(hub)
    opt_s, opt_texts = _sweep_seconds(cached_client, prompts)

    stats = cached_client.engine_stats("sql-bench")
    cache = cached_client.prefix_cache("sql-bench")
    hit_rate = cache.stats.hit_rate
    speedup = base_s / opt_s

    report_printer(
        f"SERVING: few-shot text2sql sweep ({N_QUERIES} queries, "
        f"{len(FEWSHOT_SHOTS)}-shot shared header)",
        [
            f"{'path':<34}{'seconds':>10}{'speedup':>10}",
            f"{'microbatched (PR4 baseline)':<34}{base_s:>10.2f}{1.0:>10.1f}x",
            f"{'prefix cache + continuous':<34}{opt_s:>10.2f}{speedup:>10.1f}x",
            f"prefix hits {stats.prefix_hits}, reused tokens "
            f"{stats.prefix_reused_tokens}, hit rate {hit_rate:.2f}",
        ],
    )

    bench_metrics["text2sql_sweep_seconds_baseline"] = round(base_s, 3)
    bench_metrics["text2sql_sweep_seconds_prefix_continuous"] = round(opt_s, 3)
    bench_metrics["text2sql_sweep_speedup"] = round(speedup, 2)
    bench_metrics["text2sql_sweep_prefix_hit_rate"] = round(hit_rate, 3)
    bench_metrics["text2sql_sweep_prefix_reused_tokens"] = int(
        stats.prefix_reused_tokens
    )

    # Same completions, at least twice the throughput (acceptance bar).
    assert opt_texts == base_texts
    assert speedup >= 2.0


# -- speculative decoding on the few-shot text2sql sweep -------------------
def test_bench_speculative_sweep(report_printer, bench_metrics, sweep_setup):
    """Draft-and-verify speculative decoding vs plain batched decode.

    Both sides run the barriered microbatch path with warm prefix
    caches, so the only difference in the timed region is who advances
    the decode: the target one token per forward, or a distilled
    one-layer draft proposing runs the target verifies in one chunk.
    Greedy outputs must be token-identical (acceptance bar).
    """
    hub, prompts = sweep_setup
    entry = hub.get("sql-bench")
    tokenizer = entry.tokenizer
    prompt_ids = [tokenizer.encode(p, add_bos=True).ids for p in prompts]
    draft = distill_draft(
        entry.model, prompt_ids, steps=60, max_new_tokens=32, seed=1
    )
    hub.register("sql-bench-draft", draft, tokenizer)

    base_client = CompletionClient(hub)
    spec_client = CompletionClient(
        hub, speculative_draft="sql-bench-draft", speculative_k=10
    )
    # Warm prefix caches (target and draft) and code paths outside the
    # timed region; the timed sweeps then measure decode, not prefill.
    _sweep_seconds(base_client, prompts, max_tokens=32, continuous=False)
    _sweep_seconds(spec_client, prompts, max_tokens=32)

    tokens_before = base_client.engine_stats("sql-bench").completion_tokens
    rounds = 5
    base_times, spec_times = [], []
    # Interleave the two sides so machine noise hits both equally;
    # min-of-N discards contention outliers.
    for _ in range(rounds):
        b_s, base_texts = _sweep_seconds(
            base_client, prompts, max_tokens=32, continuous=False
        )
        s_s, spec_texts = _sweep_seconds(
            spec_client, prompts, max_tokens=32
        )
        base_times.append(b_s)
        spec_times.append(s_s)
    sweep_tokens = (
        base_client.engine_stats("sql-bench").completion_tokens - tokens_before
    ) / rounds
    base_s, spec_s = min(base_times), min(spec_times)

    stats = spec_client.engine_stats("sql-bench")
    acceptance = stats.acceptance_rate
    base_tps = sweep_tokens / base_s
    spec_tps = sweep_tokens / spec_s
    speedup = spec_tps / base_tps

    report_printer(
        f"SERVING: speculative decoding, {N_QUERIES}-query text2sql sweep "
        "(1-layer distilled draft, k=10, 32 new tokens)",
        [
            f"{'path':<34}{'tokens/s':>10}{'speedup':>10}",
            f"{'plain batched decode':<34}{base_tps:>10.0f}{1.0:>10.2f}x",
            f"{'speculative (draft + verify)':<34}{spec_tps:>10.0f}"
            f"{speedup:>10.2f}x",
            f"draft acceptance {acceptance:.3f} "
            f"({stats.draft_accepted_tokens}/{stats.draft_tokens} proposals), "
            f"{stats.verify_forwards} verify forwards",
        ],
    )

    bench_metrics["speculative_acceptance_rate"] = round(acceptance, 3)
    bench_metrics["speculative_tokens_per_sec"] = round(spec_tps, 1)
    bench_metrics["speculative_vs_batched_speedup"] = round(speedup, 2)

    # Token-identical greedy output, a live draft (not the fallback
    # path), and at least 1.5x plain batched decode (acceptance bar).
    assert spec_texts == base_texts
    assert stats.verify_forwards > 0
    assert acceptance > 0
    assert speedup >= 1.5


# -- int8 weight quantization: kernel throughput and output identity -------
def test_bench_int8_matmul(report_printer, bench_metrics):
    """Dequantize-free int8 projection vs the fp64 baseline matmul."""
    rng = np.random.default_rng(3)
    weight = rng.normal(size=(512, 512))
    x = rng.normal(size=(256, 512))
    w_q, scales = quantize_weight(weight)
    w_q32 = w_q.astype(np.float32)
    x32 = x.astype(np.float32)
    repeats = 20

    def _fp64_seconds():
        start = time.perf_counter()
        for _ in range(repeats):
            x @ weight
        return time.perf_counter() - start

    def _int8_seconds():
        start = time.perf_counter()
        for _ in range(repeats):
            (x32 @ w_q32).astype(np.float64) * scales
        return time.perf_counter() - start

    _fp64_seconds(), _int8_seconds()  # warmup
    fp64_s = min(_fp64_seconds() for _ in range(5))
    int8_s = min(_int8_seconds() for _ in range(5))
    speedup = fp64_s / int8_s

    report_printer(
        "SERVING: int8 weight matmul (256x512 activations, 512x512 weight)",
        [
            f"{'kernel':<34}{'ms/matmul':>12}{'speedup':>10}",
            f"{'fp64 baseline':<34}{fp64_s / repeats * 1e3:>12.3f}"
            f"{1.0:>10.2f}x",
            f"{'int8 weights, fp32 accumulate':<34}"
            f"{int8_s / repeats * 1e3:>12.3f}{speedup:>10.2f}x",
        ],
    )

    bench_metrics["int8_matmul_speedup"] = round(speedup, 2)

    # The int8 path must not lose to the fp64 gemm it replaces
    # (10% tolerance for timer noise).
    assert int8_s <= fp64_s * 1.1


def test_bench_int8_sweep_identity(report_printer, bench_metrics, sweep_setup):
    """Quantized weights must keep the greedy sweep output-identical."""
    hub, prompts = sweep_setup
    base_client = CompletionClient(hub)
    quant_client = CompletionClient(hub, int8_weights=True)
    _, base_texts = _sweep_seconds(base_client, prompts, continuous=False)
    _, quant_texts = _sweep_seconds(quant_client, prompts, continuous=False)
    report = quant_client.quantization_report("sql-bench")

    report_printer(
        "SERVING: int8-quantized sweep vs fp64 weights",
        [
            f"quantized layers {len(report.layers)}, "
            f"compression {report.compression:.2f}x",
            f"max abs weight error {report.max_abs_error:.2e}",
            f"greedy output identical: {quant_texts == base_texts}",
        ],
    )

    bench_metrics["int8_max_abs_weight_error"] = round(
        report.max_abs_error, 6
    )
    bench_metrics["int8_weight_compression"] = round(report.compression, 2)

    assert quant_texts == base_texts
    assert 0.0 < report.max_abs_error < 0.05


# -- slab KV cache vs legacy concatenate growth at batch 8 -----------------
def _decode_seconds(model, layout: str, steps: int, batch: int) -> float:
    rng = np.random.default_rng(7)
    ids = rng.integers(1, model.config.vocab_size, size=(batch, steps))
    caches = model.init_cache(layout=layout)
    with no_grad():
        start = time.perf_counter()
        for position in range(steps):
            model.forward_incremental(
                ids[:, position: position + 1], position, caches
            )
        return time.perf_counter() - start


def test_bench_slab_vs_concat(report_printer, bench_metrics, setup):
    """Preallocated slab appends must not lose to concatenate growth."""
    model, _ = setup
    steps = model.config.max_seq_len
    batch = 8
    _decode_seconds(model, "slab", 8, batch)  # warmup
    legacy = min(_decode_seconds(model, "legacy", steps, batch) for _ in range(3))
    slab = min(_decode_seconds(model, "slab", steps, batch) for _ in range(3))

    report_printer(
        f"SERVING: KV-cache layout, batch {batch} x {steps} decode steps",
        [
            f"{'layout':<34}{'seconds':>10}{'ratio':>10}",
            f"{'legacy (concatenate per token)':<34}{legacy:>10.3f}{1.0:>10.2f}",
            f"{'slab (in-place, amortized 2x)':<34}{slab:>10.3f}"
            f"{slab / legacy:>10.2f}",
        ],
    )

    bench_metrics["slab_vs_concat_batch8_ratio"] = round(slab / legacy, 3)

    # The slab path must be at least as fast as concatenate growth
    # (10% tolerance for timer noise at this tiny model scale).
    assert slab <= legacy * 1.1
