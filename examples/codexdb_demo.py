"""CodexDB: synthesize customized Python code for query processing (§2.5).

A SQL query plus natural-language customization ("add logging", "profile
each step") becomes a generated Python program, validated against the
native engine and retried when the (simulated) code model produces a
buggy candidate.

Run:  python examples/codexdb_demo.py
"""

from repro.codexdb import CodeGenOptions, CodexDB, SimulatedCodex, evaluate_codexdb
from repro.sql import Database


def build_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE orders (id INT, region TEXT, amount INT)")
    db.execute(
        "INSERT INTO orders VALUES (1, 'north', 120), (2, 'south', 80), "
        "(3, 'north', 200), (4, 'west', 50), (5, 'south', 90)"
    )
    return db


def main() -> None:
    db = build_db()
    sql = "SELECT region, SUM(amount) FROM orders GROUP BY region"

    # "Use Python, log every step, and profile it" — the customization
    # CodexDB accepts as natural-language instructions.
    options = CodeGenOptions(logging=True, comments=True, profile=True)
    system = CodexDB(db, SimulatedCodex(error_rate=0.0), options)
    result = system.run(sql)

    print(f"Query: {sql}\n")
    print("--- synthesized program " + "-" * 40)
    print(result.code)
    print("--- execution " + "-" * 50)
    assert result.outcome is not None
    print(f"rows    : {result.outcome.rows}")
    print(f"columns : {result.outcome.columns}")
    print("logs    :")
    for line in result.outcome.logs:
        print(f"  {line}")
    print(f"profile : { {k: f'{v*1e6:.0f}us' for k, v in result.outcome.profile.items()} }")

    # The retry loop under an unreliable code model.
    queries = [
        "SELECT id FROM orders WHERE amount > 85",
        "SELECT COUNT(*) FROM orders WHERE region = 'north'",
        "SELECT region, AVG(amount) FROM orders GROUP BY region",
    ]
    print("\nSuccess rate vs retry budget (30% of candidates are buggy):")
    for attempts in (1, 2, 4):
        report = evaluate_codexdb(
            db, queries * 4, max_attempts=attempts, error_rate=0.3, seed=1
        )
        print(
            f"  max_attempts={attempts}: success={report.success_rate:.2f} "
            f"(mean attempts used: {report.mean_attempts:.2f})"
        )


if __name__ == "__main__":
    main()
