"""NeuralDB: a database of natural-language facts (§2.5, Thorne et al.).

Facts go in as sentences; queries come back out through retrieval, a
neural reader, and aggregation operators — no schema anywhere.

Run:  python examples/neuraldb_demo.py       (~25 seconds)
"""

from repro.neuraldb import (
    EmbeddingRetriever,
    LexicalRetriever,
    NeuralDatabase,
    evaluate_neuraldb,
    generate_fact_world,
    train_reader,
)
from repro.neuraldb.facts import contrastive_pairs, training_qa_pairs


def main() -> None:
    world = generate_fact_world(num_people=12, seed=42)
    print(f"The fact store ({len(world.facts)} sentences):")
    for fact in world.facts[:6]:
        print(f"  - {fact}")
    print("  ...\n")

    print("Training the neural reader (fact + question -> answer)...")
    reader = train_reader(training_qa_pairs(seed=0, num_worlds=5), steps=250, seed=0)

    print("Training the dense retriever (contrastive, DPR-style)...")
    retriever = EmbeddingRetriever(world.facts, seed=0)
    retriever.train_contrastive(contrastive_pairs(seed=0, num_worlds=5), steps=120, seed=0)
    ndb = NeuralDatabase(retriever, reader)

    person = world.people[0]
    lookup = ndb.lookup(f"where does {person} work ?")
    print(f"\nlookup | where does {person} work ?")
    print(f"       | answer: {lookup.answer}  (via {lookup.supporting_facts[0]!r})")

    dept = world.departments[0]
    count = ndb.count_department(dept)
    print(f"count  | how many people work in {dept} ?")
    print(f"       | answer: {count.answer}  (gold: {world.count_in_department(dept)})")

    join = ndb.join_lookup(person)
    print(f"join   | which building does {person} work in ? (two hops)")
    print(f"       | answer: {join.answer}  (gold: {world.building_of_person(person)})")
    for fact in join.supporting_facts:
        print(f"       |   hop: {fact}")

    print("\nAccuracy by retriever:")
    lexical_db = NeuralDatabase(LexicalRetriever(world.facts), reader)
    for name, database in [("lexical overlap  ", lexical_db), ("trained dense    ", ndb)]:
        report = evaluate_neuraldb(database, world)
        print(
            f"  {name}: lookup={report.lookup_accuracy:.2f} "
            f"count={report.count_accuracy:.2f} join={report.join_accuracy:.2f}"
        )


if __name__ == "__main__":
    main()
