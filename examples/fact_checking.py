"""Fact checking claims against a table (§2.5, AggChecker-style).

Generates a table plus true/false claims about it, then verifies each
claim by ranking candidate aggregate queries (keyword baseline vs a
fine-tuned LM ranker), executing the best interpretation, and comparing
values.

Run:  python examples/fact_checking.py       (~20 seconds)
"""

from repro.factcheck import (
    FactChecker,
    KeywordRanker,
    enumerate_candidates,
    evaluate_checker,
    generate_claim_workload,
    train_lm_ranker,
)


def main() -> None:
    workload = generate_claim_workload(num_rows=40, num_claims=80, seed=0)
    train, test = workload.split(test_fraction=0.3, seed=1)
    print(
        f"Table {workload.table!r} with {len(workload.db.table(workload.table))} rows; "
        f"{len(enumerate_candidates(workload))} candidate interpretations per claim\n"
    )

    print("Training the LM ranker (250 steps)...")
    lm_ranker = train_lm_ranker(workload, train, steps=250, seed=0)

    checkers = {
        "keyword ranker": FactChecker(workload, KeywordRanker()),
        "LM ranker     ": FactChecker(workload, lm_ranker),
    }
    print(f"\n{'ranker':<15} {'verdict acc':>12} {'interp acc':>11}")
    for name, checker in checkers.items():
        metrics = evaluate_checker(checker, test)
        print(
            f"{name:<15} {metrics['verdict_accuracy']:>12.2f} "
            f"{metrics['interpretation_accuracy']:>11.2f}"
        )

    print("\nThree verified claims (LM ranker):")
    checker = checkers["LM ranker     "]
    for claim in test[:3]:
        result = checker.verify(claim)
        print(f"  claim    : {claim.text}")
        print(f"  query    : {result.query.sql(workload)}")
        print(
            f"  computed : {result.computed_value} -> {result.verdict.value} "
            f"(gold: {'true' if claim.truthful else 'false'})\n"
        )


if __name__ == "__main__":
    main()
