"""Data wrangling with language models (§2.5, Ditto / Narayan et al.).

Three canonical wrangling tasks on synthetic product data:

  * entity matching   — learned alignment matcher vs Jaccard baseline,
  * error detection   — fine-tuned classifier vs mined domain rules,
  * data imputation   — fine-tuned classifier vs majority baseline.

Run:  python examples/data_wrangling.py       (~15 seconds)
"""

from repro.wrangle import (
    FinetunedErrorDetector,
    FinetunedImputer,
    FinetunedMatcher,
    MajorityImputer,
    RuleErrorDetector,
    SimilarityMatcher,
    evaluate_detector,
    evaluate_imputer,
    evaluate_matcher,
    generate_error_dataset,
    generate_imputation_dataset,
    generate_matching_dataset,
    serialize_pair,
)


def main() -> None:
    # -- entity matching ----------------------------------------------------
    pairs = generate_matching_dataset(num_pairs=240, seed=0)
    train, test = pairs[:180], pairs[180:]
    print("Entity matching: two vendor feeds, dialects + noise tokens")
    print(f"  sample pair  : {serialize_pair(test[0].left, test[0].right)[:90]}...")
    print(f"  gold match   : {test[0].match}\n")

    baseline = SimilarityMatcher().fit(train)
    matcher = FinetunedMatcher(seed=0).fit(train, pretrain_steps=40, finetune_epochs=10)
    for name, m in [("jaccard baseline", baseline), ("fine-tuned LM  ", matcher)]:
        metrics = evaluate_matcher(m, test)
        print(
            f"  {name}: F1={metrics['f1']:.3f} "
            f"P={metrics['precision']:.3f} R={metrics['recall']:.3f}"
        )

    # -- error detection -----------------------------------------------------
    errors = generate_error_dataset(num_examples=200, seed=0)
    err_train, err_test = errors[:150], errors[150:]
    rule = RuleErrorDetector().fit(err_train)
    learned = FinetunedErrorDetector(seed=0).fit(err_train, epochs=10)
    print("\nError detection: values violating a category's domain")
    for name, d in [("mined rules   ", rule), ("fine-tuned LM ", learned)]:
        metrics = evaluate_detector(d, err_test)
        print(f"  {name}: F1={metrics['f1']:.3f}")

    # -- imputation -------------------------------------------------------------
    imputations = generate_imputation_dataset(num_examples=200, seed=0)
    imp_train, imp_test = imputations[:150], imputations[150:]
    majority = MajorityImputer().fit(imp_train)
    model = FinetunedImputer(seed=0).fit(imp_train, epochs=8)
    print("\nImputation: restore the hidden category")
    print(f"  majority baseline: acc={evaluate_imputer(majority, imp_test):.3f}")
    print(f"  fine-tuned LM    : acc={evaluate_imputer(model, imp_test):.3f}")


if __name__ == "__main__":
    main()
