"""SQL with natural-language predicates (§2.5, ThalamusDB-style).

Standard SQL is extended with ``NL(column, 'description')``: the
predicate is evaluated by a fine-tuned language model over the column's
distinct values, then compiled into an ordinary IN list the relational
engine executes — an LM operator inside the query processor.

Run:  python examples/semantic_sql.py       (~5 seconds)
"""

from repro.semantic import (
    SemanticDatabase,
    generate_review_table,
    train_review_predicate,
)


def main() -> None:
    db, gold = generate_review_table(num_rows=30, seed=0)
    print("A products table with free-text reviews:")
    for row in db.execute("SELECT id, review FROM products LIMIT 3").rows:
        print(f"  [{row[0]}] {row[1]}")
    print("  ...\n")

    print("Training the sentiment predicate (a small fine-tuned encoder)...")
    predicate = train_review_predicate(epochs=8, seed=0)
    sdb = SemanticDatabase(db, predicate)

    query = (
        "SELECT name, COUNT(*) AS positive_reviews FROM products "
        "WHERE NL(review, 'the review is positive') "
        "GROUP BY name ORDER BY positive_reviews DESC"
    )
    print(f"\nQuery:\n  {query}\n")
    result = sdb.execute(query)
    print(f"{'product':<12}{'positive reviews':>18}")
    for name, count in result.rows:
        print(f"{name:<12}{count:>18}")

    gold_positive = sum(gold.values())
    predicted = sum(count for _, count in result.rows)
    print(f"\npredicted positives: {predicted}  (gold: {gold_positive})")
    print(
        f"classifier calls: {sdb.predicate_evaluations} "
        f"(distinct reviews, not rows — dictionary evaluation)"
    )


if __name__ == "__main__":
    main()
