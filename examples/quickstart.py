"""Quickstart: the two access channels for language models (§2.4).

Trains two small models on a synthetic corpus (a few seconds), then
uses them through both idioms the tutorial demonstrates — the local
pipeline() facade (HuggingFace style) and the remote-API style
CompletionClient (OpenAI style).

Run:  python examples/quickstart.py
"""

from repro.api import CompletionClient, bootstrap_hub, pipeline


def main() -> None:
    print("Bootstrapping the model hub (pre-training two small models)...")
    hub = bootstrap_hub(seed=0, steps=80)
    print(f"Registered engines: {hub.names()}\n")

    # -- Channel 1: local library, HuggingFace style ----------------------
    gpt = hub.get("tiny-gpt")
    generator = pipeline("text-generation", gpt.model, gpt.tokenizer)
    prompt = "the database"
    print(f"text-generation  | {prompt!r} -> {generator(prompt, max_new_tokens=6)!r}")

    bert = hub.get("tiny-bert")
    filler = pipeline("fill-mask", bert.model, bert.tokenizer)
    masked = "the database [MASK] sorted rows ."
    fills = filler(masked, top_k=3)
    print(f"fill-mask        | {masked!r}")
    for fill in fills:
        print(f"                 |   {fill.token:<10} p={fill.score:.3f}")

    embedder = pipeline("feature-extraction", bert.model, bert.tokenizer)
    vectors = embedder(["the database stores rows .", "the index scans keys ."])
    print(f"feature-extract  | 2 sentences -> embeddings of shape {vectors.shape}")

    # -- Channel 2: remote API, OpenAI style ---------------------------------
    client = CompletionClient(hub)
    response = client.complete("tiny-gpt", "the query returns", max_tokens=6)
    print(f"\ncompletion API   | engine={response.engine}")
    print(f"                 | text={response.text!r}")
    print(
        f"                 | usage: {response.usage.prompt_tokens} prompt + "
        f"{response.usage.completion_tokens} completion tokens"
    )

    sampled = client.complete(
        "tiny-gpt", "the table", max_tokens=6, temperature=1.2, n=3, seed=7
    )
    print("                 | three sampled completions:")
    for choice in sampled.choices:
        print(f"                 |   [{choice.index}] {choice.text!r}")


if __name__ == "__main__":
    main()
