"""Mining patterns described in natural language (§1, BABOONS-style).

A sales table contains planted patterns (dairy is expensive, the west
region underperforms). The miner enumerates candidate data facts, scores
their relevance to an NL goal with a fine-tuned LM, and assembles the
best summary under a scoring budget.

Run:  python examples/pattern_mining.py       (~10 seconds)
"""

from repro.miner import (
    enumerate_facts,
    generate_sales_table,
    greedy_summary,
    sampled_summary,
    train_relevance_scorer,
)


def main() -> None:
    db = generate_sales_table(num_rows=80, seed=0)
    facts = enumerate_facts(db, "sales", ["category", "region"], ["price", "revenue"])
    print(f"Candidate facts over the sales table: {len(facts)}")
    print(f"  e.g. {facts[0].sentence()}\n")

    print("Training the relevance scorer (goal -> fact signature)...")
    scorer = train_relevance_scorer(facts, steps=200, seed=0)

    for goal in ("how does dairy differ on price", "why is revenue unusual for west"):
        result = greedy_summary(scorer, goal, facts, k=2)
        print(f"\ngoal: {goal!r}")
        print(result.render())
        print(f"(scored {result.scorer_calls} facts)")

    goal = "how does dairy differ on price"
    print("\nBudgeted search (fewer LM calls, noisier summaries):")
    for budget in (4, 8, 16):
        result = sampled_summary(scorer, goal, facts, k=2, budget=budget, seed=1)
        top = result.facts[0].dimensions if result.facts else "(none)"
        print(f"  budget {budget:>2}: top fact {top}")


if __name__ == "__main__":
    main()
