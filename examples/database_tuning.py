"""Database tuning that "reads the manual" (§2.5, DB-BERT-style).

A simulated DBMS exposes four knobs; a synthetic manual describes good
settings in prose (some transparently, some paraphrased). Hint
extractors recover recommendations from the text and a greedy tuner
applies whatever actually helps.

Run:  python examples/database_tuning.py       (~10 seconds)
"""

from repro.tuning import (
    DBMSConfig,
    RegexHintExtractor,
    SimulatedDBMS,
    Workload,
    generate_manual,
    train_lm_extractor,
    tune,
)


def main() -> None:
    workload = Workload(data_mb=2048, read_fraction=0.9, cores=8, io_bound=True)
    dbms = SimulatedDBMS(workload)
    default = DBMSConfig()
    print(f"Workload: {workload}")
    print(f"Default config {default.as_dict()}")
    print(f"Default throughput: {dbms.throughput(default):.0f} ops/s\n")

    manual = generate_manual(num_sentences=24, seed=0)
    print("Excerpt from the manual:")
    for sentence in manual[:5]:
        marker = "*" if sentence.is_hint else " "
        print(f"  {marker} {sentence.text}")
    print("  (* = carries a tuning hint)\n")

    print("Training the LM hint extractor on a labeled manual...")
    extractor = train_lm_extractor(generate_manual(num_sentences=140, seed=1), epochs=8)

    for name, hints in [
        ("regex extractor", RegexHintExtractor().extract(manual)),
        ("LM extractor   ", extractor.extract(manual)),
    ]:
        report = tune(SimulatedDBMS(workload), hints)
        print(
            f"{name}: {len(hints)} hints -> {report.final_throughput:.0f} ops/s "
            f"({report.speedup:.1f}x), applied {len(report.applied_hints)}, "
            f"rejected {len(report.rejected_hints)}"
        )
        if name.startswith("LM"):
            print(f"  final config: {report.final_config.as_dict()}")
            for hint in report.applied_hints[:4]:
                print(f"  applied: {hint.knob} = {hint.value}  (from: {hint.source!r})")


if __name__ == "__main__":
    main()
