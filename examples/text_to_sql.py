"""Text-to-SQL with constrained decoding (§2.5, PICARD-style).

Generates a synthetic Spider-style workload, trains a small causal LM
to translate questions into SQL, and compares three translators by
*execution accuracy* on held-out questions:

  1. a rule-based keyword parser (the pre-neural baseline),
  2. the LM decoding freely,
  3. the LM under grammar-constrained (PICARD-style) decoding.

Run:  python examples/text_to_sql.py       (~30 seconds)
"""

from repro.text2sql import (
    RuleBasedTranslator,
    evaluate_translator,
    generate_workload,
    train_translator,
)
from repro.text2sql.workload import sql_to_engine_dialect


def main() -> None:
    workload = generate_workload(seed=0, examples_per_template=10)
    train, test = workload.split(test_fraction=0.25, seed=1)
    print(
        f"Workload: tables={workload.tables}, "
        f"{len(train)} train / {len(test)} test questions\n"
    )

    sample = test[0]
    print(f"Example question : {sample.question}")
    print(f"Gold SQL         : {sample.sql}")
    print(f"Engine dialect   : {sql_to_engine_dialect(sample.sql)}\n")

    print("Training the LM translator (250 steps)...")
    translator = train_translator(workload, train, steps=250, seed=0)

    contenders = {
        "rule baseline       ": RuleBasedTranslator(workload).translate,
        "LM unconstrained    ": lambda q: translator.translate(q, constrained=False),
        "LM + grammar (PICARD)": lambda q: translator.translate(q, constrained=True),
    }
    print(f"\n{'translator':<22} {'exec acc':>9} {'valid SQL':>10}  per-hardness")
    for name, translate in contenders.items():
        report = evaluate_translator(translate, workload, test)
        hardness = ", ".join(f"{h}={a:.2f}" for h, a in report.rows())
        print(
            f"{name:<22} {report.accuracy:>9.2f} {report.validity_rate:>10.2f}  {hardness}"
        )

    print("\nA constrained translation, step by step:")
    question = sample.question
    predicted = translator.translate(question, constrained=True)
    print(f"  question : {question}")
    print(f"  SQL      : {predicted}")
    result = workload.db.execute(sql_to_engine_dialect(predicted))
    print(f"  result   : {result.rows[:5]}{' ...' if len(result) > 5 else ''}")


if __name__ == "__main__":
    main()
