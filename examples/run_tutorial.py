"""Run the paper's tutorial end to end (Table 1) and render Figure 1.

Prints the tutorial organization table exactly as the paper does, then
executes the live demonstration attached to each part, and finally
renders the parameter-count-evolution figure from computed counts.

Run:  python examples/run_tutorial.py       (~15 seconds)
"""

from repro.api import bootstrap_hub
from repro.figures import figure1_points, render_attention, render_figure1_ascii
from repro.tutorial import TUTORIAL_PARTS, render_table1, run_tutorial


def main() -> None:
    print(render_table1())
    print()

    print("Running the live demonstrations:\n")
    outputs = run_tutorial(seed=0)
    for part in TUTORIAL_PARTS:
        print(f"[{part.duration_minutes:>2} min] {part.title}")
        print(f"         {outputs[part.title]}\n")

    print("What a trained model attends to (§2.1's teaching aid):\n")
    hub = bootstrap_hub(seed=0, steps=60, corpus_docs=50)
    entry = hub.get("tiny-gpt")
    print(render_attention(entry.model, entry.tokenizer, "the database stores sorted rows"))
    print()

    print(render_figure1_ascii())
    print()
    print(f"{'model':<14}{'year':>7}{'computed':>12}{'published':>12}{'error':>8}")
    for point in figure1_points():
        print(
            f"{point.name:<14}{point.year:>7.1f}"
            f"{point.estimated_params / 1e9:>11.2f}B"
            f"{point.published_params / 1e9:>11.1f}B"
            f"{point.relative_error:>8.1%}"
        )


if __name__ == "__main__":
    main()
