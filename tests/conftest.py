"""Shared fixtures: corpora, tokenizers, and small pre-trained models.

Expensive fixtures (trained models) are session-scoped so the suite
stays fast while still exercising real training.
"""

from __future__ import annotations

import pytest

from repro.models import BERTModel, GPTModel, ModelConfig
from repro.tokenizers import BPETokenizer, WhitespaceTokenizer, WordPieceTokenizer
from repro.training import pretrain_clm, pretrain_mlm
from repro.utils.rng import SeededRNG


def synthetic_corpus(num_docs: int = 60, seed: int = 7) -> list[str]:
    """A tiny English-like corpus with learnable regularities."""
    rng = SeededRNG(seed)
    subjects = ["the database", "the table", "the index", "the query", "the model"]
    verbs = ["stores", "scans", "joins", "returns", "updates"]
    objects = ["rows", "columns", "tuples", "results", "records"]
    adjectives = ["large", "small", "sorted", "cached", "empty"]
    docs = []
    for _ in range(num_docs):
        sentences = []
        for _ in range(rng.randint(2, 5)):
            sentences.append(
                f"{rng.choice(subjects)} {rng.choice(verbs)} "
                f"{rng.choice(adjectives)} {rng.choice(objects)} ."
            )
        docs.append(" ".join(sentences))
    return docs


@pytest.fixture(scope="session")
def corpus() -> list[str]:
    return synthetic_corpus()


@pytest.fixture(scope="session")
def bpe_tokenizer(corpus) -> BPETokenizer:
    tok = BPETokenizer()
    tok.train(corpus, vocab_size=220)
    return tok


@pytest.fixture(scope="session")
def wordpiece_tokenizer(corpus) -> WordPieceTokenizer:
    tok = WordPieceTokenizer()
    tok.train(corpus, vocab_size=200)
    return tok


@pytest.fixture(scope="session")
def word_tokenizer(corpus) -> WhitespaceTokenizer:
    tok = WhitespaceTokenizer(lowercase=True)
    tok.train(corpus, vocab_size=500)
    return tok


@pytest.fixture(scope="session")
def tiny_gpt(word_tokenizer, corpus) -> GPTModel:
    """A GPT trained for a handful of steps on the synthetic corpus."""
    config = ModelConfig.tiny(vocab_size=word_tokenizer.vocab_size, causal=True)
    model = GPTModel(config, seed=3)
    pretrain_clm(model, word_tokenizer, corpus, steps=60, batch_size=8, seed=3)
    return model


@pytest.fixture(scope="session")
def tiny_bert(word_tokenizer, corpus) -> BERTModel:
    """A BERT trained for a handful of MLM steps on the synthetic corpus."""
    config = ModelConfig.tiny(vocab_size=word_tokenizer.vocab_size, causal=False)
    model = BERTModel(config, seed=4)
    pretrain_mlm(model, word_tokenizer, corpus, steps=60, batch_size=8, seed=4)
    return model
