"""Tests for the model hub, pipelines, and the OpenAI-style client."""

import numpy as np
import pytest

from repro.api import (
    CompletionClient,
    FeatureExtractionPipeline,
    FillMaskPipeline,
    ModelHub,
    TextGenerationPipeline,
    pipeline,
)
from repro.errors import ModelError
from repro.models import SequenceClassifier
from repro.tokenizers import WhitespaceTokenizer


@pytest.fixture(scope="module")
def hub(tiny_gpt_module, tiny_bert_module, word_tokenizer_module):
    hub = ModelHub()
    hub.register("tiny-gpt", tiny_gpt_module, word_tokenizer_module)
    hub.register("tiny-bert", tiny_bert_module, word_tokenizer_module)
    return hub


# Module-scope aliases of session fixtures (pytest cannot inject session
# fixtures directly into module-scope fixtures defined before them).
@pytest.fixture(scope="module")
def tiny_gpt_module(tiny_gpt):
    return tiny_gpt


@pytest.fixture(scope="module")
def tiny_bert_module(tiny_bert):
    return tiny_bert


@pytest.fixture(scope="module")
def word_tokenizer_module(word_tokenizer):
    return word_tokenizer


class TestHub:
    def test_get_unknown_raises(self, hub):
        with pytest.raises(ModelError):
            hub.get("gpt-17")

    def test_names(self, hub):
        assert hub.names() == ["tiny-bert", "tiny-gpt"]

    def test_contains(self, hub):
        assert "tiny-gpt" in hub
        assert "missing" not in hub

    def test_untrained_tokenizer_rejected(self, hub, tiny_gpt):
        with pytest.raises(ModelError):
            hub.register("bad", tiny_gpt, WhitespaceTokenizer())


class TestPipelines:
    def test_text_generation(self, hub):
        entry = hub.get("tiny-gpt")
        pipe = pipeline("text-generation", entry.model, entry.tokenizer)
        out = pipe("the database", max_new_tokens=4)
        assert isinstance(out, str) and out

    def test_fill_mask_returns_ranked(self, hub):
        entry = hub.get("tiny-bert")
        pipe = pipeline("fill-mask", entry.model, entry.tokenizer)
        fills = pipe("the database [MASK] sorted rows .", top_k=3)
        assert len(fills) == 3
        scores = [f.score for f in fills]
        assert scores == sorted(scores, reverse=True)
        assert all(0 <= f.score <= 1 for f in fills)

    def test_fill_mask_requires_mask(self, hub):
        entry = hub.get("tiny-bert")
        pipe = pipeline("fill-mask", entry.model, entry.tokenizer)
        with pytest.raises(ModelError):
            pipe("no mask here")

    def test_feature_extraction_shapes(self, hub):
        entry = hub.get("tiny-bert")
        pipe = pipeline("feature-extraction", entry.model, entry.tokenizer)
        vectors = pipe(["the database stores rows .", "the index scans keys ."])
        assert vectors.shape == (2, entry.model.config.dim)

    def test_feature_extraction_single_string(self, hub):
        entry = hub.get("tiny-bert")
        pipe = pipeline("feature-extraction", entry.model, entry.tokenizer)
        assert pipe("the database stores rows .").shape[0] == 1

    def test_text_classification_pipeline(self, hub):
        entry = hub.get("tiny-bert")
        clf = SequenceClassifier(entry.model, num_classes=2)
        pipe = pipeline(
            "text-classification", clf, entry.tokenizer, labels=["neg", "pos"]
        )
        out = pipe("the database stores rows .")
        assert out["label"] in ("neg", "pos")
        assert 0.0 <= out["score"] <= 1.0

    def test_unknown_task_raises(self, hub):
        entry = hub.get("tiny-gpt")
        with pytest.raises(ModelError):
            pipeline("translation", entry.model, entry.tokenizer)

    def test_wrong_model_type_raises(self, hub):
        entry = hub.get("tiny-bert")
        with pytest.raises(ModelError):
            pipeline("text-generation", entry.model, entry.tokenizer)

    def test_label_count_mismatch_raises(self, hub):
        entry = hub.get("tiny-bert")
        clf = SequenceClassifier(entry.model, num_classes=3)
        with pytest.raises(ModelError):
            pipeline("text-classification", clf, entry.tokenizer, labels=["a"])


class TestCompletionClient:
    def test_greedy_completion(self, hub):
        client = CompletionClient(hub)
        response = client.complete("tiny-gpt", "the database", max_tokens=4)
        assert response.engine == "tiny-gpt"
        assert isinstance(response.text, str)
        assert response.usage.prompt_tokens > 0
        assert response.usage.total_tokens >= response.usage.prompt_tokens

    def test_n_choices(self, hub):
        client = CompletionClient(hub)
        response = client.complete(
            "tiny-gpt", "the table", max_tokens=4, temperature=1.5, n=3
        )
        assert len(response.choices) == 3
        assert [c.index for c in response.choices] == [0, 1, 2]

    def test_stop_string_truncates(self, hub):
        client = CompletionClient(hub)
        full = client.complete("tiny-gpt", "the database", max_tokens=8).text
        if " " in full:
            stop_word = full.split()[1]
            cut = client.complete(
                "tiny-gpt", "the database", max_tokens=8, stop=[stop_word]
            ).text
            assert stop_word not in cut

    def test_completion_is_deterministic_at_temp0(self, hub):
        client = CompletionClient(hub)
        a = client.complete("tiny-gpt", "the index", max_tokens=5).text
        b = client.complete("tiny-gpt", "the index", max_tokens=5).text
        assert a == b

    def test_bert_engine_rejected_for_completion(self, hub):
        client = CompletionClient(hub)
        with pytest.raises(ModelError):
            client.complete("tiny-bert", "prompt")

    def test_invalid_n(self, hub):
        client = CompletionClient(hub)
        with pytest.raises(ModelError):
            client.complete("tiny-gpt", "prompt", n=0)

    def test_requests_counter(self, hub):
        client = CompletionClient(hub)
        client.complete("tiny-gpt", "a b", max_tokens=2)
        client.complete("tiny-gpt", "a b", max_tokens=2)
        assert client.requests_served == 2

    def test_per_engine_stats(self, hub):
        client = CompletionClient(hub)
        first = client.complete("tiny-gpt", "the database stores", max_tokens=3)
        second = client.complete("tiny-gpt", "the index", max_tokens=3)
        stats = client.stats["tiny-gpt"]
        assert stats.requests == 2
        assert stats.prompt_tokens == (
            first.usage.prompt_tokens + second.usage.prompt_tokens
        )
        assert stats.completion_tokens == (
            first.usage.completion_tokens + second.usage.completion_tokens
        )
        assert stats.total_tokens == stats.prompt_tokens + stats.completion_tokens

    def test_stats_empty_engine(self, hub):
        client = CompletionClient(hub)
        assert client.engine_stats("tiny-gpt").requests == 0
        assert client.requests_served == 0

    def test_usage_counts_returned_text_after_stop(self, hub):
        client = CompletionClient(hub)
        full = client.complete("tiny-gpt", "the database", max_tokens=8)
        words = full.text.split()
        if len(words) >= 2:
            cut = client.complete(
                "tiny-gpt", "the database", max_tokens=8, stop=[words[1]]
            )
            # usage bills the truncated text, so it must shrink with it
            assert cut.usage.completion_tokens < full.usage.completion_tokens
            entry = hub.get("tiny-gpt")
            assert cut.usage.completion_tokens == len(
                entry.tokenizer.encode(cut.text).ids
            )
            assert cut.choices[0].finish_reason == "stop"

    def test_multiple_stop_strings_truncate_at_earliest(self, hub):
        client = CompletionClient(hub)
        full = client.complete("tiny-gpt", "the database", max_tokens=8)
        words = full.text.split()
        if len(words) >= 3:
            one = client.complete(
                "tiny-gpt", "the database", max_tokens=8, stop=[words[2]]
            ).text
            both = client.complete(
                "tiny-gpt", "the database", max_tokens=8,
                stop=[words[2], words[1]],
            ).text
            assert len(both) <= len(one)
            assert words[1] not in both and words[2] not in both

    def test_stop_string_in_prompt_only_is_harmless(self, hub):
        client = CompletionClient(hub)
        response = client.complete(
            "tiny-gpt", "the database", max_tokens=4, stop=["zzzznope"]
        )
        assert response.choices[0].finish_reason in ("stop", "length")

    def test_n_choices_are_independently_seeded(self, hub):
        client = CompletionClient(hub)
        response = client.complete(
            "tiny-gpt", "the table", max_tokens=6, temperature=1.5, n=4, seed=9
        )
        again = client.complete(
            "tiny-gpt", "the table", max_tokens=6, temperature=1.5, n=4, seed=9
        )
        # same request, same seed: identical alternatives in order
        assert [c.text for c in response.choices] == [c.text for c in again.choices]
        assert [c.index for c in response.choices] == [0, 1, 2, 3]
        # choice i of an n=4 request equals an n=1 request at seed+i
        solo = client.complete(
            "tiny-gpt", "the table", max_tokens=6, temperature=1.5, n=1, seed=11
        )
        assert response.choices[2].text == solo.text

    def test_empty_prompt_completes(self, hub):
        client = CompletionClient(hub)
        response = client.complete("tiny-gpt", "", max_tokens=4)
        assert isinstance(response.text, str)
        assert response.usage.prompt_tokens >= 1  # the BOS token

    def test_usage_accumulates_over_n(self, hub):
        client = CompletionClient(hub)
        response = client.complete(
            "tiny-gpt", "the table", max_tokens=4, temperature=1.0, n=3
        )
        assert response.usage.completion_tokens <= 3 * 4
        assert response.usage.completion_tokens > 0
