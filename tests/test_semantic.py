"""Tests for NL predicates inside SQL (the semantic-operator extension)."""

import pytest

from repro.semantic import (
    FinetunedPredicate,
    KeywordPredicate,
    SemanticDatabase,
    extract_nl_calls,
    generate_review_table,
    rewrite_expression,
    train_review_predicate,
)
from repro.semantic.rewrite import SemanticError, nl_call_parts
from repro.sql import Database
from repro.sql.parser import parse_sql
from repro.sql.ast import FuncCall, InList, Literal


@pytest.fixture(scope="module")
def review_db():
    return generate_review_table(num_rows=30, seed=0)


@pytest.fixture(scope="module")
def lm_predicate():
    return train_review_predicate(epochs=8, seed=0)


class TestRewrite:
    def test_extract_finds_nl_calls(self):
        query = parse_sql(
            "SELECT id FROM t WHERE NL(review, 'positive') AND price > 5"
        )
        calls = extract_nl_calls(query.where)
        assert len(calls) == 1
        column, description = nl_call_parts(calls[0])
        assert column.name == "review"
        assert description == "positive"

    def test_extract_nested(self):
        query = parse_sql(
            "SELECT id FROM t WHERE NOT (NL(a, 'x') OR NL(b, 'y'))"
        )
        assert len(extract_nl_calls(query.where)) == 2

    def test_malformed_arity_raises(self):
        query = parse_sql("SELECT id FROM t WHERE NL(review)")
        with pytest.raises(SemanticError):
            extract_nl_calls(query.where)

    def test_malformed_argument_types_raise(self):
        query = parse_sql("SELECT id FROM t WHERE NL('text', 'desc')")
        with pytest.raises(SemanticError):
            extract_nl_calls(query.where)

    def test_rewrite_replaces_only_nl(self):
        query = parse_sql(
            "SELECT id FROM t WHERE NL(review, 'positive') AND LENGTH(review) > 3"
        )
        rewritten = rewrite_expression(
            query.where, lambda call: Literal(True)
        )
        assert not extract_nl_calls(rewritten)
        assert "LENGTH" in rewritten.sql()


class TestKeywordPredicate:
    def test_matches_on_shared_content_word(self):
        predicate = KeywordPredicate()
        assert predicate.matches("utterly fantastic product", "fantastic quality")
        assert not predicate.matches("terrible product", "fantastic quality")


class TestSemanticDatabase:
    def test_lm_predicate_filters_accurately(self, review_db, lm_predicate):
        db, gold = review_db
        sdb = SemanticDatabase(db, lm_predicate)
        result = sdb.execute(
            "SELECT id FROM products WHERE NL(review, 'the review is positive')"
        )
        predicted_positive = {row[0] for row in result.rows}
        gold_positive = {i for i, positive in gold.items() if positive}
        accuracy = len(predicted_positive & gold_positive) / max(len(gold_positive), 1)
        assert accuracy >= 0.9

    def test_negative_description_inverts(self, review_db, lm_predicate):
        db, gold = review_db
        sdb = SemanticDatabase(db, lm_predicate)
        positive = sdb.execute(
            "SELECT COUNT(*) FROM products WHERE NL(review, 'the review is positive')"
        ).scalar()
        negative = sdb.execute(
            "SELECT COUNT(*) FROM products WHERE NL(review, 'the review is negative')"
        ).scalar()
        assert positive + negative == len(gold)

    def test_nl_composes_with_relational_predicates(self, review_db, lm_predicate):
        db, _ = review_db
        sdb = SemanticDatabase(db, lm_predicate)
        result = sdb.execute(
            "SELECT id FROM products "
            "WHERE NL(review, 'the review is positive') AND id < 10"
        )
        assert all(row[0] < 10 for row in result.rows)

    def test_nl_in_aggregate_query(self, review_db, lm_predicate):
        db, _ = review_db
        sdb = SemanticDatabase(db, lm_predicate)
        result = sdb.execute(
            "SELECT name, COUNT(*) FROM products "
            "WHERE NL(review, 'the review is positive') GROUP BY name"
        )
        assert result.rows  # grouped output exists

    def test_dictionary_evaluation_bounds_classifier_calls(self, review_db, lm_predicate):
        db, _ = review_db
        sdb = SemanticDatabase(db, lm_predicate)
        sdb.execute(
            "SELECT COUNT(*) FROM products WHERE NL(review, 'the review is positive')"
        )
        distinct_reviews = db.execute(
            "SELECT COUNT(DISTINCT review) FROM products"
        ).scalar()
        assert sdb.predicate_evaluations == distinct_reviews

    def test_predicate_cache_hits_on_repeat(self, review_db, lm_predicate):
        db, _ = review_db
        sdb = SemanticDatabase(db, lm_predicate)
        sql = "SELECT COUNT(*) FROM products WHERE NL(review, 'the review is positive')"
        sdb.execute(sql)
        first = sdb.predicate_evaluations
        sdb.execute(sql)
        assert sdb.predicate_evaluations == first  # cached

    def test_query_without_nl_passes_through(self, review_db, lm_predicate):
        db, _ = review_db
        sdb = SemanticDatabase(db, lm_predicate)
        assert sdb.execute("SELECT COUNT(*) FROM products").scalar() == 30

    def test_no_matches_compiles_to_false(self, lm_predicate):
        db = Database()
        db.execute("CREATE TABLE t (id INT, note TEXT)")
        db.execute("INSERT INTO t VALUES (1, NULL)")  # no string values at all
        sdb = SemanticDatabase(db, lm_predicate)
        result = sdb.execute("SELECT id FROM t WHERE NL(note, 'positive')")
        assert len(result) == 0

    def test_unknown_column_raises(self, review_db, lm_predicate):
        db, _ = review_db
        sdb = SemanticDatabase(db, lm_predicate)
        with pytest.raises(SemanticError):
            sdb.execute("SELECT id FROM products WHERE NL(ghost, 'positive')")

    def test_keyword_baseline_is_weaker(self, review_db, lm_predicate):
        db, gold = review_db
        gold_positive = {i for i, positive in gold.items() if positive}

        def f1_of(predicate):
            sdb = SemanticDatabase(db, predicate)
            rows = sdb.execute(
                "SELECT id FROM products WHERE NL(review, 'the review is positive')"
            ).rows
            predicted = {r[0] for r in rows}
            if not predicted:
                return 0.0
            precision = len(predicted & gold_positive) / len(predicted)
            recall = len(predicted & gold_positive) / len(gold_positive)
            if precision + recall == 0:
                return 0.0
            return 2 * precision * recall / (precision + recall)

        assert f1_of(lm_predicate) > f1_of(KeywordPredicate())
