"""Tests for CodexDB: planning, codegen, sandbox, and the retry loop."""

import pytest

from repro.codexdb import (
    CodeGenOptions,
    CodexDB,
    SimulatedCodex,
    evaluate_codexdb,
    generate_python,
    plan_query,
    run_generated_code,
)
from repro.errors import CodexDBError
from repro.sql import Database


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute("CREATE TABLE emp (name TEXT, dept TEXT, salary INT)")
    database.execute(
        "INSERT INTO emp VALUES ('a', 'eng', 100), ('b', 'eng', 80), "
        "('c', 'sales', 90), ('d', 'sales', NULL)"
    )
    database.execute("CREATE TABLE dept (dept TEXT, building TEXT)")
    database.execute("INSERT INTO dept VALUES ('eng', 'A'), ('sales', 'B')")
    return database


def run_sql_via_codegen(db, sql, options=None):
    steps = plan_query(sql)
    code = generate_python(steps, options or CodeGenOptions())
    tables = {name: db.table(name) for name in db.table_names()}
    return run_generated_code(code, tables)


class TestPlanner:
    def test_simple_plan_steps(self):
        steps = plan_query("SELECT name FROM emp WHERE salary > 50")
        assert [s.kind for s in steps] == ["load", "filter", "project"]

    def test_aggregate_plan(self):
        steps = plan_query("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
        assert [s.kind for s in steps] == ["load", "group"]

    def test_join_plan(self):
        steps = plan_query(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dept"
        )
        assert [s.kind for s in steps] == ["load", "join", "project"]

    def test_argmax_orders_raw_rows(self):
        steps = plan_query("SELECT name FROM emp ORDER BY salary DESC LIMIT 1")
        kinds = [s.kind for s in steps]
        assert kinds == ["load", "order", "project", "limit"]
        assert steps[1].args["on_raw"] is True

    def test_left_join_unsupported(self):
        with pytest.raises(CodexDBError):
            plan_query("SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.dept")

    def test_non_select_rejected(self):
        with pytest.raises(CodexDBError):
            plan_query("CREATE TABLE t (x INT)")


class TestCodegenEquivalence:
    """Generated programs must agree with the native engine."""

    QUERIES = [
        "SELECT name FROM emp",
        "SELECT name FROM emp WHERE salary > 85",
        "SELECT name FROM emp WHERE dept = 'eng' AND salary >= 80",
        "SELECT COUNT(*) FROM emp",
        "SELECT COUNT(*) FROM emp WHERE salary > 85",
        "SELECT AVG(salary) FROM emp",
        "SELECT MAX(salary) FROM emp WHERE dept = 'eng'",
        "SELECT dept, COUNT(*) FROM emp GROUP BY dept",
        "SELECT dept, AVG(salary) FROM emp GROUP BY dept",
        "SELECT name FROM emp ORDER BY salary DESC LIMIT 1",
        "SELECT DISTINCT dept FROM emp",
        "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dept "
        "WHERE d.building = 'B'",
        "SELECT name FROM emp WHERE salary IS NULL",
        "SELECT name FROM emp WHERE salary BETWEEN 80 AND 95",
        "SELECT name FROM emp WHERE dept IN ('eng')",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_engine(self, db, sql):
        outcome = run_sql_via_codegen(db, sql)
        reference = db.execute(sql)
        assert sorted(map(repr, outcome.rows)) == sorted(map(repr, reference.rows))

    def test_null_comparison_excluded(self, db):
        outcome = run_sql_via_codegen(db, "SELECT name FROM emp WHERE salary > 0")
        assert ("d",) not in outcome.rows


class TestCustomizations:
    def test_logging(self, db):
        outcome = run_sql_via_codegen(
            db, "SELECT name FROM emp WHERE salary > 85",
            CodeGenOptions(logging=True),
        )
        assert any("loaded emp" in line for line in outcome.logs)
        assert any("filtered" in line for line in outcome.logs)

    def test_profile(self, db):
        outcome = run_sql_via_codegen(
            db, "SELECT name FROM emp", CodeGenOptions(profile=True)
        )
        assert outcome.profile
        assert all(v >= 0 for v in outcome.profile.values())

    def test_comments_in_code(self):
        steps = plan_query("SELECT name FROM emp")
        code = generate_python(steps, CodeGenOptions(comments=True))
        assert "# load table emp" in code

    def test_no_custom_no_logs(self, db):
        outcome = run_sql_via_codegen(db, "SELECT name FROM emp")
        assert outcome.logs == []
        assert outcome.profile == {}


class TestSandbox:
    def test_crash_is_wrapped(self, db):
        tables = {name: db.table(name) for name in db.table_names()}
        with pytest.raises(CodexDBError):
            run_generated_code("result = undefined_name\ncolumns = []", tables)

    def test_missing_contract_rejected(self, db):
        tables = {name: db.table(name) for name in db.table_names()}
        with pytest.raises(CodexDBError):
            run_generated_code("x = 1", tables)

    def test_restricted_builtins(self, db):
        tables = {name: db.table(name) for name in db.table_names()}
        with pytest.raises(CodexDBError):
            run_generated_code(
                "result = open('/etc/passwd').read()\ncolumns = []", tables
            )


class TestRetryLoop:
    def test_error_free_codex_always_succeeds(self, db):
        report = evaluate_codexdb(
            db, ["SELECT COUNT(*) FROM emp", "SELECT name FROM emp"],
            max_attempts=1, error_rate=0.0,
        )
        assert report.success_rate == 1.0
        assert report.mean_attempts == 1.0

    def test_retries_recover_from_errors(self, db):
        queries = [
            "SELECT name FROM emp WHERE salary > 85",
            "SELECT COUNT(*) FROM emp WHERE salary > 85",
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept",
        ] * 3
        at_one = evaluate_codexdb(
            db, queries, max_attempts=1, error_rate=0.5, seed=3
        )
        at_five = evaluate_codexdb(
            db, queries, max_attempts=5, error_rate=0.5, seed=3
        )
        assert at_five.success_rate >= at_one.success_rate
        assert at_five.success_rate > 0.8

    def test_validation_catches_wrong_results(self, db):
        # A corrupted program that *runs* but returns wrong rows must
        # not count as success.
        codex = SimulatedCodex(error_rate=0.99, seed=0)
        system = CodexDB(db, codex)
        result = system.run("SELECT name FROM emp WHERE salary > 85", max_attempts=1)
        if result.succeeded:  # the 1% lucky clean sample
            assert result.outcome is not None
        else:
            assert result.outcome is None

    def test_invalid_error_rate(self):
        with pytest.raises(CodexDBError):
            SimulatedCodex(error_rate=1.0)

    def test_samples_counter(self, db):
        codex = SimulatedCodex(error_rate=0.0)
        system = CodexDB(db, codex)
        system.run("SELECT COUNT(*) FROM emp")
        assert codex.samples_served == 1
