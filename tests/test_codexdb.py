"""Tests for CodexDB: planning, codegen, sandbox, and the retry loop."""

import pytest

from repro.codexdb import (
    CodeGenOptions,
    CodexDB,
    SimulatedCodex,
    evaluate_codexdb,
    generate_python,
    plan_query,
    run_generated_code,
)
from repro.errors import CodexDBError
from repro.sql import Database


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute("CREATE TABLE emp (name TEXT, dept TEXT, salary INT)")
    database.execute(
        "INSERT INTO emp VALUES ('a', 'eng', 100), ('b', 'eng', 80), "
        "('c', 'sales', 90), ('d', 'sales', NULL)"
    )
    database.execute("CREATE TABLE dept (dept TEXT, building TEXT)")
    database.execute("INSERT INTO dept VALUES ('eng', 'A'), ('sales', 'B')")
    return database


def run_sql_via_codegen(db, sql, options=None):
    steps = plan_query(sql)
    code = generate_python(steps, options or CodeGenOptions())
    tables = {name: db.table(name) for name in db.table_names()}
    return run_generated_code(code, tables)


class TestPlanner:
    def test_simple_plan_steps(self):
        steps = plan_query("SELECT name FROM emp WHERE salary > 50")
        assert [s.kind for s in steps] == ["load", "filter", "project"]

    def test_aggregate_plan(self):
        steps = plan_query("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
        assert [s.kind for s in steps] == ["load", "group"]

    def test_join_plan(self):
        steps = plan_query(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dept"
        )
        assert [s.kind for s in steps] == ["load", "join", "project"]

    def test_argmax_orders_raw_rows(self):
        steps = plan_query("SELECT name FROM emp ORDER BY salary DESC LIMIT 1")
        kinds = [s.kind for s in steps]
        assert kinds == ["load", "order", "project", "limit"]
        assert steps[1].args["on_raw"] is True

    def test_left_join_unsupported(self):
        with pytest.raises(CodexDBError):
            plan_query("SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.dept")

    def test_non_select_rejected(self):
        with pytest.raises(CodexDBError):
            plan_query("CREATE TABLE t (x INT)")


class TestCodegenEquivalence:
    """Generated programs must agree with the native engine."""

    QUERIES = [
        "SELECT name FROM emp",
        "SELECT name FROM emp WHERE salary > 85",
        "SELECT name FROM emp WHERE dept = 'eng' AND salary >= 80",
        "SELECT COUNT(*) FROM emp",
        "SELECT COUNT(*) FROM emp WHERE salary > 85",
        "SELECT AVG(salary) FROM emp",
        "SELECT MAX(salary) FROM emp WHERE dept = 'eng'",
        "SELECT dept, COUNT(*) FROM emp GROUP BY dept",
        "SELECT dept, AVG(salary) FROM emp GROUP BY dept",
        "SELECT name FROM emp ORDER BY salary DESC LIMIT 1",
        "SELECT DISTINCT dept FROM emp",
        "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dept "
        "WHERE d.building = 'B'",
        "SELECT name FROM emp WHERE salary IS NULL",
        "SELECT name FROM emp WHERE salary BETWEEN 80 AND 95",
        "SELECT name FROM emp WHERE dept IN ('eng')",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_engine(self, db, sql):
        outcome = run_sql_via_codegen(db, sql)
        reference = db.execute(sql)
        assert sorted(map(repr, outcome.rows)) == sorted(map(repr, reference.rows))

    def test_null_comparison_excluded(self, db):
        outcome = run_sql_via_codegen(db, "SELECT name FROM emp WHERE salary > 0")
        assert ("d",) not in outcome.rows


class TestCustomizations:
    def test_logging(self, db):
        outcome = run_sql_via_codegen(
            db, "SELECT name FROM emp WHERE salary > 85",
            CodeGenOptions(logging=True),
        )
        assert any("loaded emp" in line for line in outcome.logs)
        assert any("filtered" in line for line in outcome.logs)

    def test_profile(self, db):
        outcome = run_sql_via_codegen(
            db, "SELECT name FROM emp", CodeGenOptions(profile=True)
        )
        assert outcome.profile
        assert all(v >= 0 for v in outcome.profile.values())

    def test_comments_in_code(self):
        steps = plan_query("SELECT name FROM emp")
        code = generate_python(steps, CodeGenOptions(comments=True))
        assert "# load table emp" in code

    def test_no_custom_no_logs(self, db):
        outcome = run_sql_via_codegen(db, "SELECT name FROM emp")
        assert outcome.logs == []
        assert outcome.profile == {}


class TestSandbox:
    def test_crash_is_wrapped(self, db):
        tables = {name: db.table(name) for name in db.table_names()}
        with pytest.raises(CodexDBError):
            run_generated_code("result = undefined_name\ncolumns = []", tables)

    def test_missing_contract_rejected(self, db):
        tables = {name: db.table(name) for name in db.table_names()}
        with pytest.raises(CodexDBError):
            run_generated_code("x = 1", tables)

    def test_restricted_builtins(self, db):
        tables = {name: db.table(name) for name in db.table_names()}
        with pytest.raises(CodexDBError):
            run_generated_code(
                "result = open('/etc/passwd').read()\ncolumns = []", tables
            )


class TestRetryLoop:
    def test_error_free_codex_always_succeeds(self, db):
        report = evaluate_codexdb(
            db, ["SELECT COUNT(*) FROM emp", "SELECT name FROM emp"],
            max_attempts=1, error_rate=0.0,
        )
        assert report.success_rate == 1.0
        assert report.mean_attempts == 1.0

    def test_retries_recover_from_errors(self, db):
        queries = [
            "SELECT name FROM emp WHERE salary > 85",
            "SELECT COUNT(*) FROM emp WHERE salary > 85",
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept",
        ] * 3
        at_one = evaluate_codexdb(
            db, queries, max_attempts=1, error_rate=0.5, seed=3
        )
        at_five = evaluate_codexdb(
            db, queries, max_attempts=5, error_rate=0.5, seed=3
        )
        assert at_five.success_rate >= at_one.success_rate
        assert at_five.success_rate > 0.8

    def test_validation_catches_wrong_results(self, db):
        # A corrupted program that *runs* but returns wrong rows must
        # not count as success.
        codex = SimulatedCodex(error_rate=0.99, seed=0)
        system = CodexDB(db, codex)
        result = system.run("SELECT name FROM emp WHERE salary > 85", max_attempts=1)
        if result.succeeded:  # the 1% lucky clean sample
            assert result.outcome is not None
        else:
            assert result.outcome is None

    def test_invalid_error_rate(self):
        with pytest.raises(CodexDBError):
            SimulatedCodex(error_rate=1.0)

    def test_samples_counter(self, db):
        codex = SimulatedCodex(error_rate=0.0)
        system = CodexDB(db, codex)
        system.run("SELECT COUNT(*) FROM emp")
        assert codex.samples_served == 1


class TestStaticVetting:
    """Generated programs are vetted by AST analysis before exec."""

    def tables_of(self, db):
        return {name: db.table(name) for name in db.table_names()}

    def test_import_os_rejected_without_executing(self, db):
        from repro.errors import StaticAnalysisError

        tables = self.tables_of(db)
        code = "import os\ntables.clear()\nresult = []\ncolumns = []"
        with pytest.raises(StaticAnalysisError) as excinfo:
            run_generated_code(code, tables)
        # The offending line is named...
        assert "line 1" in str(excinfo.value)
        assert any(f.rule == "banned-import" for f in excinfo.value.findings)
        # ...and nothing executed: the tables dict is untouched.
        assert tables

    def test_dunder_escape_rejected(self, db):
        from repro.errors import StaticAnalysisError

        tables = self.tables_of(db)
        code = (
            "result = ().__class__.__bases__[0].__subclasses__()\n"
            "columns = []"
        )
        with pytest.raises(StaticAnalysisError) as excinfo:
            run_generated_code(code, tables)
        assert any(f.rule == "banned-attribute" for f in excinfo.value.findings)
        assert all(f.line == 1 for f in excinfo.value.findings)

    def test_globals_read_rejected(self, db):
        from repro.errors import StaticAnalysisError

        tables = self.tables_of(db)
        with pytest.raises(StaticAnalysisError):
            run_generated_code(
                "f = min\nresult = f.__globals__\ncolumns = []", tables
            )

    def test_static_error_is_a_codexdb_error(self, db):
        from repro.errors import StaticAnalysisError

        # The retry loop catches CodexDBError; static rejections must
        # stay inside that hierarchy.
        assert issubclass(StaticAnalysisError, CodexDBError)

    def test_guarded_importer_blocks_outside_allowlist(self):
        from repro.codexdb.sandbox import _SAFE_BUILTINS

        importer = _SAFE_BUILTINS["__import__"]
        assert importer("math").sqrt(4) == 2.0
        with pytest.raises(ImportError):
            importer("os")
        with pytest.raises(ImportError):
            importer("collections.abc", level=1)

    def test_generated_programs_pass_vetting(self, db):
        from repro.codexdb import vet_generated_code

        steps = plan_query("SELECT dept, COUNT(*) FROM emp GROUP BY dept")
        code = generate_python(steps, CodeGenOptions(profile=True, logging=True))
        vet_generated_code(code)  # must not raise

    def test_invalid_query_rejected_before_synthesis(self, db):
        from repro.errors import StaticAnalysisError

        codex = SimulatedCodex(error_rate=0.0)
        system = CodexDB(db, codex)
        with pytest.raises(StaticAnalysisError):
            system.run("SELECT bogus_col FROM emp")
        assert codex.samples_served == 0

    def test_unsafe_candidates_rejected_then_repaired(self, db):
        codex = SimulatedCodex(error_rate=0.0, seed=0, unsafe_rate=0.95)
        system = CodexDB(db, codex)
        result = system.run("SELECT name FROM emp WHERE salary > 85", max_attempts=4)
        # Feedback regeneration repairs after the first static rejection.
        assert result.succeeded
        assert result.static_rejections >= 1
        assert result.attempts == result.static_rejections + 1

    def test_invalid_unsafe_rate(self):
        with pytest.raises(CodexDBError):
            SimulatedCodex(unsafe_rate=1.0)

    def test_report_breaks_down_failures(self, db):
        report = evaluate_codexdb(
            db,
            ["SELECT name FROM emp WHERE salary > 85"] * 6,
            max_attempts=3, error_rate=0.0, unsafe_rate=0.6, seed=1,
        )
        assert report.success_rate == 1.0
        assert report.rejected_static >= 1
        assert report.failed_runtime == 0

    def test_report_counts_rejected_queries(self, db):
        report = evaluate_codexdb(
            db,
            ["SELECT COUNT(*) FROM emp", "SELECT bogus FROM emp"],
            max_attempts=1, error_rate=0.0,
        )
        assert report.total == 2
        assert report.rejected_queries == 1
        assert report.succeeded == 1
