"""Cross-subsystem integration tests: the library as a user would wire it.

Each test composes several packages — the adoption paths a downstream
user actually follows — rather than exercising one module in isolation.
"""

import numpy as np
import pytest

from repro.api import CompletionClient, ModelHub, bootstrap_hub, pipeline
from repro.codexdb import CodeGenOptions, CodexDB, SimulatedCodex
from repro.generation import GenerationConfig, generate
from repro.models import load_model, save_model
from repro.sql import Database
from repro.text2sql import (
    SQLGrammarConstraint,
    generate_workload,
    train_translator,
)
from repro.text2sql.workload import sql_to_engine_dialect
from repro.tokenizers import load_tokenizer, save_tokenizer


@pytest.fixture(scope="module")
def hub():
    return bootstrap_hub(seed=0, steps=50, corpus_docs=50)


class TestHubRoundtripThroughDisk:
    def test_save_reload_and_serve(self, hub, tmp_path_factory):
        """Persist the hub, reload it, and serve completions from the copy."""
        directory = tmp_path_factory.mktemp("hub")
        hub.save(directory)
        restored = ModelHub.load(directory)
        client = CompletionClient(restored)
        original_client = CompletionClient(hub)
        prompt = "the database"
        assert (
            client.complete("tiny-gpt", prompt, max_tokens=6).text
            == original_client.complete("tiny-gpt", prompt, max_tokens=6).text
        )


class TestTextToSQLToCodexDB:
    """NL question -> (constrained LM) SQL -> synthesized Python program."""

    def test_full_nl_to_code_pipeline(self):
        workload = generate_workload(seed=0, examples_per_template=6)
        train, test = workload.split(test_fraction=0.2, seed=1)
        translator = train_translator(workload, train, steps=150, seed=0)

        codex_system = CodexDB(
            workload.db, SimulatedCodex(error_rate=0.0),
            CodeGenOptions(logging=True),
        )

        successes = 0
        attempted = 0
        for example in test[:6]:
            linearized = translator.translate(example.question, constrained=True)
            if not linearized:
                continue
            sql = sql_to_engine_dialect(linearized)
            attempted += 1
            result = codex_system.run(sql)
            if not result.succeeded:
                continue
            engine_rows = workload.db.execute(sql).rows
            assert sorted(map(repr, result.outcome.rows)) == sorted(
                map(repr, engine_rows)
            )
            assert result.outcome.logs  # customization flowed through
            successes += 1
        assert attempted >= 4
        assert successes == attempted  # every valid SQL also synthesizes


class TestSharedModelAcrossChannels:
    def test_pipeline_and_client_agree(self, hub):
        """Both §2.4 access channels produce identical greedy output."""
        entry = hub.get("tiny-gpt")
        text_pipeline = pipeline("text-generation", entry.model, entry.tokenizer)
        client = CompletionClient(hub)
        prompt = "the index"
        assert (
            text_pipeline(prompt, max_new_tokens=5)
            == client.complete("tiny-gpt", prompt, max_tokens=5).text
        )

    def test_constrained_generation_through_client(self, hub):
        """The OpenAI-style client accepts PICARD-style constraints."""
        workload = generate_workload(seed=0, examples_per_template=1)
        entry = hub.get("tiny-gpt")

        class OnlyEOS:
            def allowed_tokens(self, generated_ids):
                return []  # force immediate stop

        response = CompletionClient(hub).complete(
            "tiny-gpt", "anything", max_tokens=5, constraint=OnlyEOS()
        )
        assert response.text == ""


class TestCheckpointedModelKeepsGenerating:
    def test_save_load_generate(self, hub, tmp_path):
        entry = hub.get("tiny-gpt")
        path = save_model(entry.model, tmp_path / "gpt.npz")
        restored = load_model(path)
        prompt_ids = entry.tokenizer.encode("the table", add_bos=True).ids
        config = GenerationConfig(max_new_tokens=6)
        assert generate(restored, prompt_ids, config) == generate(
            entry.model, prompt_ids, config
        )

    def test_tokenizer_and_model_as_a_unit(self, hub, tmp_path):
        entry = hub.get("tiny-bert")
        model_path = save_model(entry.model, tmp_path / "bert.npz")
        tokenizer_path = save_tokenizer(entry.tokenizer, tmp_path / "tok.json")
        model = load_model(model_path)
        tokenizer = load_tokenizer(tokenizer_path)
        filler = pipeline("fill-mask", model, tokenizer)
        fills = filler("the database [MASK] sorted rows .", top_k=2)
        assert len(fills) == 2


class TestSQLSubsystemsCompose:
    def test_semantic_predicate_over_indexed_table(self):
        """NL predicates, hash indexes, and DML interact correctly."""
        from repro.semantic import SemanticDatabase, train_review_predicate
        from repro.semantic.predicate import generate_review_table

        db, gold = generate_review_table(num_rows=20, seed=3)
        db.execute("CREATE INDEX idx_name ON products (name)")
        predicate = train_review_predicate(epochs=6, seed=0)
        sdb = SemanticDatabase(db, predicate)

        before = sdb.execute(
            "SELECT COUNT(*) FROM products WHERE NL(review, 'the review is positive')"
        ).scalar()
        assert before == sum(gold.values())

        # DML after predicate compilation: the engine stays consistent.
        db.execute("DELETE FROM products WHERE id < 4")
        remaining = db.execute("SELECT COUNT(*) FROM products").scalar()
        assert remaining == 16
