"""Tests for repro.serving: the batched engine, the microbatching
scheduler, ``complete_batch`` on the API/reliability clients, and the
batched application-subsystem paths."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import CompletionClient, ModelHub
from repro.codexdb import CodeGenOptions
from repro.codexdb.codex import CodexDB, SimulatedCodex
from repro.errors import GenerationError, TransientError
from repro.generation import GenerationConfig, generate
from repro.models import GPTModel, ModelConfig
from repro.reliability import (
    FaultInjector,
    FaultProfile,
    FaultyCompletionClient,
    ResilientClient,
    RetryPolicy,
    VirtualClock,
)
from repro.serving import (
    BatchedGenerator,
    BatchRequest,
    BatchScheduler,
    KVCache,
    PrefixCache,
    complete_many,
)
from repro.sql import Database
from repro.text2sql import (
    ClientTranslator,
    evaluate_translator,
    generate_workload,
    register_translator,
)
from repro.text2sql.translator import train_translator
from repro.wrangle import ClientImputer, generate_imputation_dataset
from repro.wrangle.imputation import evaluate_imputer


@pytest.fixture(scope="module")
def model():
    return GPTModel(ModelConfig.tiny(vocab_size=48), seed=7)


@pytest.fixture(scope="module")
def ragged_prompts():
    rng = np.random.default_rng(0)
    return [list(map(int, rng.integers(1, 48, size=n))) for n in (3, 9, 1, 12, 6, 4)]


class OddOnly:
    """Constraint fixture: only odd token ids may be generated."""

    def __init__(self, vocab):
        self.vocab = vocab

    def allowed_tokens(self, generated_ids):
        return list(range(1, self.vocab, 2))


class TestBatchedGenerator:
    def test_ragged_greedy_matches_sequential(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        results = BatchedGenerator(model).generate(
            [BatchRequest(p, config) for p in ragged_prompts]
        )
        expected = [generate(model, p, config) for p in ragged_prompts]
        assert [r.sequences[0] for r in results] == expected
        assert all(r.batched for r in results)

    def test_chunked_prefill_matches_whole_prompt_prefill(
        self, model, ragged_prompts
    ):
        config = GenerationConfig(max_new_tokens=8)
        whole = BatchedGenerator(model).generate(
            [BatchRequest(p, config) for p in ragged_prompts]
        )
        chunked = BatchedGenerator(model, prefill_chunk=4).generate(
            [BatchRequest(p, config) for p in ragged_prompts]
        )
        assert [r.sequences for r in whole] == [r.sequences for r in chunked]

    def test_sampling_matches_sequential_seeds(self, model, ragged_prompts):
        config = GenerationConfig(
            max_new_tokens=8, strategy="sample", temperature=0.8, top_k=6, seed=13
        )
        results = BatchedGenerator(model).generate(
            [BatchRequest(p, config) for p in ragged_prompts]
        )
        expected = [generate(model, p, config) for p in ragged_prompts]
        assert [r.sequences[0] for r in results] == expected

    def test_per_sequence_stops(self, model, ragged_prompts):
        base = generate(model, ragged_prompts[0], GenerationConfig(max_new_tokens=10))
        config = GenerationConfig(max_new_tokens=10, stop_ids=(base[2],))
        results = BatchedGenerator(model).generate(
            [BatchRequest(p, config) for p in ragged_prompts]
        )
        expected = [generate(model, p, config) for p in ragged_prompts]
        assert [r.sequences[0] for r in results] == expected

    def test_n_choices_share_prefill_and_match_seed_offsets(self, model):
        prompt = [5, 9, 2, 14]
        config = GenerationConfig(
            max_new_tokens=6, strategy="sample", temperature=0.9, seed=3
        )
        generator = BatchedGenerator(model)
        (result,) = generator.generate([BatchRequest(prompt, config, n=3)])
        expected = [
            generate(model, prompt, dataclasses.replace(config, seed=config.seed + j))
            for j in range(3)
        ]
        assert result.sequences == expected
        # One prefill chunk covered all three choices.
        assert generator.stats.prefill_chunks == 1
        assert generator.stats.prefill_tokens == len(prompt)

    def test_constraint_applies_per_sequence(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=6)
        constraint = OddOnly(model.config.vocab_size)
        results = BatchedGenerator(model).generate(
            [BatchRequest(p, config, constraint=constraint) for p in ragged_prompts]
        )
        expected = [
            generate(model, p, config, OddOnly(model.config.vocab_size))
            for p in ragged_prompts
        ]
        assert [r.sequences[0] for r in results] == expected
        assert all(t % 2 == 1 for r in results for t in r.sequences[0])

    def test_mixed_strategies_in_one_batch(self, model, ragged_prompts):
        greedy = GenerationConfig(max_new_tokens=7)
        sampled = GenerationConfig(
            max_new_tokens=7, strategy="sample", temperature=0.7, seed=21
        )
        requests = [
            BatchRequest(ragged_prompts[0], greedy),
            BatchRequest(ragged_prompts[1], sampled),
            BatchRequest(ragged_prompts[2], greedy),
        ]
        results = BatchedGenerator(model).generate(requests)
        assert results[0].sequences[0] == generate(model, ragged_prompts[0], greedy)
        assert results[1].sequences[0] == generate(model, ragged_prompts[1], sampled)
        assert results[2].sequences[0] == generate(model, ragged_prompts[2], greedy)

    def test_oversized_request_falls_back_sequentially(self, model):
        config = GenerationConfig(max_new_tokens=model.config.max_seq_len)
        generator = BatchedGenerator(model)
        (result,) = generator.generate([BatchRequest([1, 2, 3], config)])
        assert not result.batched
        assert generator.stats.sequential_fallbacks == 1
        assert result.sequences[0] == generate(model, [1, 2, 3], config)

    def test_empty_prompt_rejected(self):
        with pytest.raises(GenerationError):
            BatchRequest([], GenerationConfig())

    def test_bad_prefill_chunk_rejected(self, model):
        with pytest.raises(GenerationError):
            BatchedGenerator(model, prefill_chunk=0)


class TestBatchScheduler:
    def test_results_keyed_by_ticket(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=9)
        scheduler = BatchScheduler(model, max_batch_size=4)
        tickets = [
            scheduler.submit(BatchRequest(p, config)) for p in ragged_prompts
        ]
        results = scheduler.run()
        expected = [generate(model, p, config) for p in ragged_prompts]
        assert [results[t].sequences[0] for t in tickets] == expected

    def test_microbatch_packing_stats(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=4)
        scheduler = BatchScheduler(model, max_batch_size=4)
        for p in ragged_prompts:
            scheduler.submit(BatchRequest(p, config))
        scheduler.run()
        assert scheduler.stats.submitted == 6
        assert scheduler.stats.completed == 6
        assert scheduler.stats.microbatches == 2
        assert scheduler.stats.peak_batch == 4

    def test_wide_request_occupies_n_slots(self, model):
        config = GenerationConfig(
            max_new_tokens=4, strategy="sample", temperature=0.9
        )
        scheduler = BatchScheduler(model, max_batch_size=4)
        scheduler.submit(BatchRequest([1, 2], config, n=3))
        scheduler.submit(BatchRequest([3, 4], config, n=3))
        scheduler.run()
        # 3 + 3 does not fit in one microbatch of 4 sequences.
        assert scheduler.stats.microbatches == 2
        assert scheduler.stats.peak_batch == 3

    def test_oversized_single_request_still_runs(self, model):
        config = GenerationConfig(
            max_new_tokens=4, strategy="sample", temperature=0.9
        )
        scheduler = BatchScheduler(model, max_batch_size=2)
        ticket = scheduler.submit(BatchRequest([1, 2], config, n=5))
        results = scheduler.run()
        assert len(results[ticket].sequences) == 5

    def test_bad_batch_size_rejected(self, model):
        with pytest.raises(GenerationError):
            BatchScheduler(model, max_batch_size=0)


# Module-scope aliases of session fixtures (pytest cannot inject session
# fixtures directly into module-scope fixtures defined before them).
@pytest.fixture(scope="module")
def hub(tiny_gpt_module, word_tokenizer_module):
    hub = ModelHub()
    hub.register("tiny-gpt", tiny_gpt_module, word_tokenizer_module)
    return hub


@pytest.fixture(scope="module")
def tiny_gpt_module(tiny_gpt):
    return tiny_gpt


@pytest.fixture(scope="module")
def word_tokenizer_module(word_tokenizer):
    return word_tokenizer


PROMPTS = ["the cat sat", "a dog", "the bird flew over", "cats and dogs"]


class TestCompleteBatch:
    def test_greedy_matches_per_prompt_complete(self, hub):
        client = CompletionClient(hub)
        batch = client.complete_batch("tiny-gpt", PROMPTS, max_tokens=8)
        single = [
            CompletionClient(hub).complete("tiny-gpt", p, max_tokens=8)
            for p in PROMPTS
        ]
        assert [r.text for r in batch] == [r.text for r in single]
        assert [r.usage.completion_tokens for r in batch] == [
            r.usage.completion_tokens for r in single
        ]
        assert [c.finish_reason for r in batch for c in r.choices] == [
            c.finish_reason for r in single for c in r.choices
        ]

    def test_stats_attribution_matches_per_prompt(self, hub):
        client = CompletionClient(hub)
        client.complete_batch("tiny-gpt", PROMPTS, max_tokens=6)
        reference = CompletionClient(hub)
        for p in PROMPTS:
            reference.complete("tiny-gpt", p, max_tokens=6)
        # Queue wait is inherently batch-only (per-prompt calls never
        # queue), so parity is asserted with it zeroed out.
        batched = dataclasses.replace(
            client.engine_stats("tiny-gpt"), queue_wait_seconds=0.0
        )
        assert batched == reference.engine_stats("tiny-gpt")
        assert client.engine_stats("tiny-gpt").queue_wait_seconds >= 0.0

    def test_n_choices_match_per_prompt_semantics(self, hub):
        client = CompletionClient(hub)
        (batched,) = client.complete_batch(
            "tiny-gpt", [PROMPTS[0]], max_tokens=6, temperature=0.8, n=3, seed=9
        )
        single = CompletionClient(hub).complete(
            "tiny-gpt", PROMPTS[0], max_tokens=6, temperature=0.8, n=3, seed=9
        )
        assert [c.text for c in batched.choices] == [c.text for c in single.choices]

    def test_stop_strings_truncate_and_bill_identically(self, hub):
        client = CompletionClient(hub)
        batch = client.complete_batch(
            "tiny-gpt", PROMPTS, max_tokens=8, stop=["the"]
        )
        single = [
            CompletionClient(hub).complete("tiny-gpt", p, max_tokens=8, stop=["the"])
            for p in PROMPTS
        ]
        assert [r.text for r in batch] == [r.text for r in single]
        assert [r.usage.completion_tokens for r in batch] == [
            r.usage.completion_tokens for r in single
        ]

    def test_stop_billing_engine_stats_parity(self, hub):
        """Satellite audit: EngineStats (not just per-response usage)
        must bill identically when stop strings truncate mid-completion
        — the batch path may generate tokens past the stop string, but
        it must never *bill* them."""
        client = CompletionClient(hub)
        client.complete_batch("tiny-gpt", PROMPTS, max_tokens=8, stop=["the"])
        reference = CompletionClient(hub)
        for p in PROMPTS:
            reference.complete("tiny-gpt", p, max_tokens=8, stop=["the"])
        batched = dataclasses.replace(
            client.engine_stats("tiny-gpt"), queue_wait_seconds=0.0
        )
        assert batched == reference.engine_stats("tiny-gpt")

    def test_stop_billing_parity_with_stop_ids_and_length_cap(self, hub):
        """Mixed finish reasons (stop vs length) keep EngineStats parity
        between the batch and sequential paths."""
        client = CompletionClient(hub)
        client.complete_batch("tiny-gpt", PROMPTS, max_tokens=2, stop=["."])
        reference = CompletionClient(hub)
        for p in PROMPTS:
            reference.complete("tiny-gpt", p, max_tokens=2, stop=["."])
        batched = dataclasses.replace(
            client.engine_stats("tiny-gpt"), queue_wait_seconds=0.0
        )
        assert batched == reference.engine_stats("tiny-gpt")

    def test_empty_prompt_list(self, hub):
        assert CompletionClient(hub).complete_batch("tiny-gpt", []) == []

    def test_misaligned_constraints_rejected(self, hub):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            CompletionClient(hub).complete_batch(
                "tiny-gpt", PROMPTS, constraints=[None]
            )


class TestCompleteMany:
    def test_uses_complete_batch_when_available(self, hub):
        client = CompletionClient(hub)
        responses = complete_many(client, "tiny-gpt", PROMPTS, max_tokens=6)
        assert [r.text for r in responses] == [
            r.text
            for r in client.complete_batch("tiny-gpt", PROMPTS, max_tokens=6)
        ]

    def test_falls_back_to_per_prompt_loop(self, hub):
        class Bare:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def complete(self, engine, prompt, **kwargs):
                self.calls += 1
                return self.inner.complete(engine, prompt, **kwargs)

        bare = Bare(CompletionClient(hub))
        responses = complete_many(bare, "tiny-gpt", PROMPTS, max_tokens=6)
        assert bare.calls == len(PROMPTS)
        assert len(responses) == len(PROMPTS)


class TestResilientBatch:
    def test_healthy_channel_serves_one_batched_call(self, hub):
        inner = CompletionClient(hub)
        resilient = ResilientClient(inner, clock=VirtualClock())
        responses = resilient.complete_batch("tiny-gpt", PROMPTS, max_tokens=6)
        reference = CompletionClient(hub).complete_batch(
            "tiny-gpt", PROMPTS, max_tokens=6
        )
        assert [r.text for r in responses] == [r.text for r in reference]
        metrics = resilient.metrics
        assert metrics.requests == len(PROMPTS)
        assert metrics.successes == len(PROMPTS)

    def test_inner_without_batch_uses_per_prompt_path(self, hub):
        class Bare:
            def __init__(self, inner):
                self.inner = inner

            def complete(self, engine, prompt, **kwargs):
                return self.inner.complete(engine, prompt, **kwargs)

        resilient = ResilientClient(Bare(CompletionClient(hub)), clock=VirtualClock())
        responses = resilient.complete_batch("tiny-gpt", PROMPTS, max_tokens=6)
        assert len(responses) == len(PROMPTS)
        assert resilient.metrics.requests == len(PROMPTS)

    def test_terminal_batch_failure_degrades_per_prompt(self, hub):
        class AlwaysDownBatch:
            """Batch path fails terminally; per-prompt path works."""

            def __init__(self, inner):
                self.inner = inner

            def complete(self, engine, prompt, **kwargs):
                return self.inner.complete(engine, prompt, **kwargs)

            def complete_batch(self, engine, prompts, **kwargs):
                raise TransientError("batch endpoint down")

        resilient = ResilientClient(
            AlwaysDownBatch(CompletionClient(hub)),
            policy=RetryPolicy(max_retries=1, base_delay=0.01),
            clock=VirtualClock(),
            baseline=lambda prompt: "baseline",
        )
        responses = resilient.complete_batch("tiny-gpt", PROMPTS, max_tokens=6)
        assert len(responses) == len(PROMPTS)
        # Every prompt still answered (by the per-prompt chain).
        assert all(r.choices for r in responses)


class TestFaultyBatch:
    def test_one_fault_decision_per_batch(self, hub):
        injector = FaultInjector(FaultProfile(), seed=0)
        faulty = FaultyCompletionClient(CompletionClient(hub), injector)
        faulty.complete_batch("tiny-gpt", PROMPTS, max_tokens=6)
        assert injector.requests == 1

    def test_garbled_choices_are_marked(self, hub):
        injector = FaultInjector(FaultProfile(garble_rate=0.999), seed=1)
        faulty = FaultyCompletionClient(CompletionClient(hub), injector)
        responses = faulty.complete_batch("tiny-gpt", PROMPTS, max_tokens=8)
        assert any(
            c.finish_reason == "garbled" for r in responses for c in r.choices
        )


class TestSpeculativeCodexDB:
    @pytest.fixture()
    def db(self):
        database = Database()
        database.execute("CREATE TABLE users (id INT, name TEXT, age INT)")
        database.execute(
            "INSERT INTO users VALUES (1, 'ann', 34), (2, 'bo', 19), (3, 'cy', 51)"
        )
        return database

    def test_speculative_wave_succeeds(self, db):
        codex = SimulatedCodex(error_rate=0.0, seed=0)
        system = CodexDB(db, codex, CodeGenOptions(), speculative=3)
        result = system.run("select name from users where age > 20")
        assert result.succeeded
        assert result.attempts == 1

    def test_feedback_discards_speculative_queue(self, db):
        # Every raw candidate is unsafe, so the first executes and is
        # statically rejected; the repair path must then regenerate from
        # feedback rather than consume a stale speculative candidate.
        codex = SimulatedCodex(error_rate=0.0, seed=0, unsafe_rate=0.999)
        system = CodexDB(db, codex, CodeGenOptions(), speculative=3)
        result = system.run("select name from users where age > 20")
        assert result.succeeded
        assert result.static_rejections == 1
        assert result.attempts == 2

    def test_speculative_must_be_positive(self, db):
        with pytest.raises(Exception):
            CodexDB(db, SimulatedCodex(), CodeGenOptions(), speculative=0)

    def test_batched_sampling_matches_sequential_draws(self):
        a = SimulatedCodex(error_rate=0.4, seed=5)
        b = SimulatedCodex(error_rate=0.4, seed=5)
        sql = "select name from users where age > 20"
        options = CodeGenOptions()
        wave = a.sample_programs(sql, options, 4)
        singles = [b.sample_program(sql, options) for _ in range(4)]
        assert wave == singles


@pytest.fixture(scope="module")
def text2sql_setup():
    workload = generate_workload(seed=0, examples_per_template=3)
    examples = workload.examples[:8]
    translator = train_translator(workload, workload.examples, steps=40, seed=0)
    hub = ModelHub()
    engine = register_translator(hub, "t2s", translator)
    return workload, examples, hub, engine


class TestTranslateBatch:
    def test_matches_per_question_translate(self, text2sql_setup):
        workload, examples, hub, engine = text2sql_setup
        questions = [e.question for e in examples]
        batched = ClientTranslator(
            client=CompletionClient(hub), engine=engine, workload=workload
        )
        sequential = ClientTranslator(
            client=CompletionClient(hub), engine=engine, workload=workload
        )
        assert batched.translate_batch(questions) == [
            sequential.translate(q) for q in questions
        ]

    def test_evaluate_translator_accepts_batch_path(self, text2sql_setup):
        workload, examples, hub, engine = text2sql_setup
        translator = ClientTranslator(
            client=CompletionClient(hub), engine=engine, workload=workload
        )
        batched_report = evaluate_translator(
            translator.translate,
            workload,
            examples,
            translate_batch=translator.translate_batch,
        )
        sequential_report = evaluate_translator(
            ClientTranslator(
                client=CompletionClient(hub), engine=engine, workload=workload
            ).translate,
            workload,
            examples,
        )
        assert batched_report.correct == sequential_report.correct
        assert batched_report.total == sequential_report.total

    def test_terminal_batch_failure_uses_fallback(self, text2sql_setup):
        workload, examples, hub, engine = text2sql_setup

        class Down:
            def complete(self, engine, prompt, **kwargs):
                raise TransientError("down")

            def complete_batch(self, engine, prompts, **kwargs):
                raise TransientError("down")

        translator = ClientTranslator(
            client=Down(),
            engine=engine,
            workload=workload,
            fallback=lambda q: "select 1",
        )
        questions = [e.question for e in examples[:3]]
        assert translator.translate_batch(questions) == ["select 1"] * 3
        assert translator.degraded == 3


class TestPredictBatch:
    @pytest.fixture(scope="class")
    def imputation_setup(self, hub):
        examples = generate_imputation_dataset(num_examples=40, seed=0)
        train, test = examples[:30], examples[30:]
        imputer = ClientImputer(CompletionClient(hub), "tiny-gpt").fit(train)
        return imputer, train, test

    def test_matches_per_example_predict(self, hub, imputation_setup):
        imputer, train, test = imputation_setup
        reference = ClientImputer(CompletionClient(hub), "tiny-gpt").fit(train)
        assert imputer.predict_batch(test[:6]) == [
            reference.predict(e) for e in test[:6]
        ]

    def test_evaluate_imputer_uses_batch_path(self, hub, imputation_setup):
        imputer, train, test = imputation_setup
        reference = ClientImputer(CompletionClient(hub), "tiny-gpt").fit(train)
        batched_accuracy = evaluate_imputer(imputer, test[:6])
        sequential = [reference.predict(e) for e in test[:6]]
        sequential_accuracy = sum(
            p == e.target_value for p, e in zip(sequential, test[:6])
        ) / 6
        assert batched_accuracy == sequential_accuracy

    def test_terminal_batch_failure_degrades(self, imputation_setup):
        imputer, train, test = imputation_setup

        class Down:
            def complete(self, engine, prompt, **kwargs):
                raise TransientError("down")

            def complete_batch(self, engine, prompts, **kwargs):
                raise TransientError("down")

        degraded = ClientImputer(Down(), "tiny-gpt").fit(train)
        predictions = degraded.predict_batch(test[:4])
        assert len(predictions) == 4
        assert degraded.degraded == 4


class TestPerPromptLoopLint:
    def lint(self, code, path):
        from repro.analysis.lint import lint_source

        return [
            f for f in lint_source(code, path=path) if f.rule == "per-prompt-loop"
        ]

    def test_flags_complete_in_loop(self):
        code = (
            "def serve(client, prompts):\n"
            "    out = []\n"
            "    for p in prompts:\n"
            "        out.append(client.complete('e', p))\n"
            "    return out\n"
        )
        findings = self.lint(code, "src/repro/text2sql/translator.py")
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_flags_comprehension(self):
        code = (
            "def serve(client, prompts):\n"
            "    return [client.complete('e', p) for p in prompts]\n"
        )
        assert self.lint(code, "src/repro/wrangle/imputation.py")

    def test_only_application_dirs_covered(self):
        code = (
            "def serve(client, prompts):\n"
            "    return [client.complete('e', p) for p in prompts]\n"
        )
        assert not self.lint(code, "src/repro/serving/dispatch.py")
        assert not self.lint(code, "src/repro/reliability/client.py")

    def test_noqa_suppresses(self):
        code = (
            "def serve(client, prompts):\n"
            "    return [client.complete('e', p)  # repro: noqa[per-prompt-loop]\n"
            "            for p in prompts]\n"
        )
        assert not self.lint(code, "src/repro/codexdb/codex.py")

    def test_single_call_outside_loop_is_fine(self):
        code = (
            "def serve(client, prompt):\n"
            "    return client.complete('e', prompt)\n"
        )
        assert not self.lint(code, "src/repro/text2sql/translator.py")

    def test_flags_reader_read_in_loop_in_neuraldb(self):
        code = (
            "def scan(reader, facts, question):\n"
            "    return [reader.read(f, question) for f in facts]\n"
        )
        findings = self.lint(code, "src/repro/neuraldb/store.py")
        assert len(findings) == 1
        assert "read_batch" in findings[0].message

    def test_read_outside_neuraldb_not_covered(self):
        code = (
            "def slurp(handles):\n"
            "    return [h.read() for h in handles]\n"
        )
        assert not self.lint(code, "src/repro/serving/dispatch.py")

    def test_shipped_subsystems_are_clean(self):
        from pathlib import Path

        from repro.analysis.lint import lint_paths

        findings = [
            f
            for f in lint_paths(
                [
                    Path("src/repro/codexdb"),
                    Path("src/repro/text2sql"),
                    Path("src/repro/wrangle"),
                    Path("src/repro/neuraldb"),
                ]
            )
            if f.rule == "per-prompt-loop"
        ]
        assert findings == []

class TestKVCacheSlab:
    def test_append_returns_live_views(self):
        cache = KVCache()
        k = np.ones((2, 3, 4, 5))
        keys, values = cache.append(k, k * 2)
        assert keys.shape == (2, 3, 4, 5)
        assert len(cache) == 4
        keys, values = cache.append(k[:, :, :1], k[:, :, :1])
        assert keys.shape == (2, 3, 5, 5)
        np.testing.assert_array_equal(keys[:, :, :4], np.ones((2, 3, 4, 5)))

    def test_capacity_doubles_amortized(self):
        cache = KVCache()
        step = np.zeros((1, 2, 1, 4))
        cache.append(step, step)
        first_capacity = cache.capacity
        for _ in range(first_capacity + 1):
            cache.append(step, step)
        assert cache.capacity == 2 * first_capacity
        assert len(cache) == first_capacity + 2

    def test_batch_size_change_rejected(self):
        cache = KVCache()
        cache.append(np.zeros((2, 2, 1, 4)), np.zeros((2, 2, 1, 4)))
        with pytest.raises(ValueError):
            cache.append(np.zeros((3, 2, 1, 4)), np.zeros((3, 2, 1, 4)))

    def test_slab_decode_matches_legacy_concatenate(self, model):
        """Regression: the in-place slab is numerically identical to the
        old concatenate-per-token growing cache."""
        rng = np.random.default_rng(3)
        ids = rng.integers(1, model.config.vocab_size, size=(2, 12))
        slab = model.init_cache()
        legacy = model.init_cache(layout="legacy")
        from repro.autograd import no_grad

        with no_grad():
            for position in range(ids.shape[1]):
                step = ids[:, position: position + 1]
                a = model.forward_incremental(step, position, slab)
                b = model.forward_incremental(step, position, legacy)
                np.testing.assert_array_equal(a.data, b.data)

    def test_generate_uses_slab_by_default(self, model):
        caches = model.init_cache()
        assert isinstance(caches[0], KVCache)
        assert isinstance(model.init_cache(layout="legacy")[0], dict)

    def test_unknown_layout_rejected(self, model):
        with pytest.raises(ValueError):
            model.init_cache(layout="paged")


def _toy_layers(tokens: int, fill: float = 1.0):
    """One-layer (k, v) span of shape (2 heads, tokens, 3 dims)."""
    k = np.full((2, tokens, 3), fill) * np.arange(1, tokens + 1)[None, :, None]
    return [(k, -k)]


class TestPrefixCacheTrie:
    def test_insert_then_lookup_roundtrip(self):
        cache = PrefixCache()
        cache.insert([5, 6, 7], _toy_layers(3))
        match, layers = cache.lookup([5, 6, 7, 8])
        assert match == 3
        keys, values = layers[0]
        assert keys.shape == (2, 3, 3)
        np.testing.assert_array_equal(keys, _toy_layers(3)[0][0])
        np.testing.assert_array_equal(values, -keys)

    def test_shared_header_stored_once(self):
        cache = PrefixCache()
        cache.insert([1, 2, 3], _toy_layers(3))
        added = cache.insert([1, 2, 9], _toy_layers(3))
        assert added == 1  # only the divergent tail allocates
        assert len(cache) == 4

    def test_max_len_caps_match(self):
        cache = PrefixCache()
        cache.insert([1, 2, 3], _toy_layers(3))
        match, layers = cache.lookup([1, 2, 3], max_len=2)
        assert match == 2
        assert layers[0][0].shape[1] == 2

    def test_peek_does_not_touch_stats(self):
        cache = PrefixCache()
        cache.insert([1, 2], _toy_layers(2))
        assert cache.peek_length([1, 2, 3]) == 2
        assert cache.stats.lookups == 0
        assert cache.peek_length([9]) == 0

    def test_miss_counts(self):
        cache = PrefixCache()
        match, layers = cache.lookup([4, 4])
        assert (match, layers) == (0, None)
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_lru_eviction_respects_budget_and_keeps_paths_valid(self):
        node_bytes = sum(
            k.nbytes + v.nbytes
            for k, v in [(l[0][:, :1], l[1][:, :1]) for l in _toy_layers(1)]
        )
        cache = PrefixCache(max_bytes=4 * node_bytes)
        cache.insert([1, 2, 3], _toy_layers(3))
        cache.lookup([1, 2, 3])  # make the first chain recently used
        cache.insert([7, 8, 9], _toy_layers(3))  # 6 nodes > budget: evict
        assert cache.stats.evictions >= 2
        assert cache.stats.bytes <= 4 * node_bytes
        # Whatever survived must still be a valid trie prefix.
        match, layers = cache.lookup([1, 2, 3])
        assert match >= 1
        assert layers[0][0].shape[1] == match

    def test_clear(self):
        cache = PrefixCache()
        cache.insert([1, 2], _toy_layers(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes == 0
        assert cache.peek_length([1, 2]) == 0

    def test_bad_budget_rejected(self):
        with pytest.raises(GenerationError):
            PrefixCache(max_bytes=0)

    def test_oversized_prompt_rejected_up_front(self):
        """Regression: a prompt whose K/V alone exceed the byte budget
        used to be inserted first and LRU-evicted after, transiently
        blowing the budget and evicting the *existing* entries. It must
        be rejected before any node is allocated."""
        node_bytes = sum(k.nbytes + v.nbytes for k, v in _toy_layers(1))
        cache = PrefixCache(max_bytes=2 * node_bytes)
        cache.insert([1, 2], _toy_layers(2))
        added = cache.insert(list(range(10, 20)), _toy_layers(10))
        assert added == 0
        assert cache.stats.oversized == 1
        assert cache.stats.evictions == 0
        assert cache.stats.bytes <= 2 * node_bytes
        # The cache is not left cold: the existing entry survives.
        match, _ = cache.lookup([1, 2])
        assert match == 2

    def test_prompt_exactly_at_budget_is_accepted(self):
        node_bytes = sum(k.nbytes + v.nbytes for k, v in _toy_layers(1))
        cache = PrefixCache(max_bytes=2 * node_bytes)
        added = cache.insert([4, 5], _toy_layers(2))
        assert added == 2
        assert cache.stats.oversized == 0


@pytest.fixture(scope="module")
def shared_header_prompts():
    """Few-shot-shaped token prompts: long shared header, short suffixes."""
    rng = np.random.default_rng(5)
    header = list(map(int, rng.integers(1, 48, size=14)))
    return [header + [int(40 + i), int(1 + i)] for i in range(6)]


class TestPrefixEquivalence:
    def test_greedy_identical_with_cache_on_and_off(
        self, model, shared_header_prompts
    ):
        config = GenerationConfig(max_new_tokens=8)
        requests = [BatchRequest(p, config) for p in shared_header_prompts]
        expected = [generate(model, p, config) for p in shared_header_prompts]
        plain = BatchedGenerator(model).generate(requests)
        cached = BatchedGenerator(model, prefix_cache=PrefixCache()).generate(
            requests
        )
        assert [r.sequences[0] for r in plain] == expected
        assert [r.sequences[0] for r in cached] == expected

    def test_warm_cache_still_identical_and_cheaper(
        self, model, shared_header_prompts
    ):
        config = GenerationConfig(max_new_tokens=6)
        requests = [BatchRequest(p, config) for p in shared_header_prompts]
        expected = [generate(model, p, config) for p in shared_header_prompts]
        cache = PrefixCache()
        BatchedGenerator(model, prefix_cache=cache).generate(requests)
        warm = BatchedGenerator(model, prefix_cache=cache)
        results = warm.generate(requests)
        assert [r.sequences[0] for r in results] == expected
        assert warm.stats.prefix_hits == len(requests)
        # Warm prefill touches only the final (uncached) prompt token.
        assert warm.stats.prefill_tokens == len(requests)

    def test_identical_across_lru_eviction_mid_workload(
        self, model, shared_header_prompts
    ):
        config = GenerationConfig(max_new_tokens=6)
        expected = [generate(model, p, config) for p in shared_header_prompts]
        # Budget fits one 16-token prompt (16 KiB of K/V) but not the
        # whole sweep, so inserts are accepted and then evict constantly
        # while the sweep runs. (A budget below a single prompt would be
        # rejected up front as oversized instead of churning.)
        budget = 20 * 1024
        cache = PrefixCache(max_bytes=budget)
        generator = BatchedGenerator(model, prefix_cache=cache)
        results = []
        for prompt in shared_header_prompts:
            (result,) = generator.generate([BatchRequest(prompt, config)])
            results.append(result.sequences[0])
        assert results == expected
        assert cache.stats.oversized == 0
        assert cache.stats.evictions > 0
        assert cache.stats.bytes <= budget

    def test_n_choices_identical_with_prefix_cache(self, model):
        prompt = [3, 9, 9, 2, 7, 7, 1]
        config = GenerationConfig(
            max_new_tokens=6, strategy="sample", temperature=0.9, seed=17
        )
        expected = [
            generate(model, prompt, dataclasses.replace(config, seed=17 + j))
            for j in range(3)
        ]
        cache = PrefixCache()
        request = BatchRequest(prompt, config, n=3)
        (cold,) = BatchedGenerator(model, prefix_cache=cache).generate([request])
        (warm,) = BatchedGenerator(model, prefix_cache=cache).generate([request])
        assert cold.sequences == expected
        assert warm.sequences == expected

    def test_seeded_shared_header_prefills_once(
        self, model, shared_header_prompts
    ):
        cache = PrefixCache()
        generator = BatchedGenerator(model, prefix_cache=cache)
        config = GenerationConfig(max_new_tokens=4)
        generator.generate(
            [BatchRequest(p, config) for p in shared_header_prompts]
        )
        header_len = 14
        suffixes = sum(
            len(p) - header_len for p in shared_header_prompts
        )
        # One header prefill + per-row suffixes, not 6 full prompts.
        assert generator.stats.prefill_tokens == header_len + suffixes

    def test_client_prefix_cache_persists_and_invalidates(self, hub):
        client = CompletionClient(hub)
        client.complete_batch("tiny-gpt", PROMPTS, max_tokens=4)
        client.complete_batch("tiny-gpt", PROMPTS, max_tokens=4)
        stats = client.engine_stats("tiny-gpt")
        assert stats.prefix_hits >= len(PROMPTS)  # second sweep fully cached
        cache_before = client.prefix_cache("tiny-gpt")
        entry = hub.get("tiny-gpt")
        hub.register(
            "tiny-gpt",
            GPTModel(entry.model.config, seed=99),
            entry.tokenizer,
        )
        assert client.prefix_cache("tiny-gpt") is not cache_before
        hub.register("tiny-gpt", entry.model, entry.tokenizer)

    def test_disabled_cache_returns_none(self, hub):
        client = CompletionClient(hub, prefix_cache_bytes=0)
        assert client.prefix_cache("tiny-gpt") is None
        responses = client.complete_batch("tiny-gpt", PROMPTS[:2], max_tokens=4)
        assert len(responses) == 2


class TestContinuousBatching:
    def test_matches_sequential_and_barriered(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=9)
        requests = [BatchRequest(p, config) for p in ragged_prompts]
        expected = [generate(model, p, config) for p in ragged_prompts]
        generator = BatchedGenerator(model)
        results = generator.generate_continuous(requests, max_active=3)
        assert [r.sequences[0] for r in results] == expected
        assert generator.stats.refills > 0
        assert generator.stats.peak_active <= 3

    def test_refill_admits_mid_decode(self, model, ragged_prompts):
        # Unequal stop points force retirement at different steps, so
        # queued requests must be admitted into freed slots.
        config = GenerationConfig(max_new_tokens=12)
        requests = [BatchRequest(p, config) for p in ragged_prompts]
        generator = BatchedGenerator(model)
        generator.generate_continuous(requests, max_active=2)
        assert generator.stats.refills == len(requests) - 2

    def test_sampling_and_n_choices(self, model, ragged_prompts):
        config = GenerationConfig(
            max_new_tokens=5, strategy="sample", temperature=0.8, seed=23
        )
        requests = [BatchRequest(p, config, n=2) for p in ragged_prompts[:3]]
        expected = [
            [
                generate(model, p, dataclasses.replace(config, seed=23 + j))
                for j in range(2)
            ]
            for p in ragged_prompts[:3]
        ]
        results = BatchedGenerator(model).generate_continuous(
            requests, max_active=4
        )
        assert [r.sequences for r in results] == expected

    def test_oversized_n_runs_alone(self, model):
        config = GenerationConfig(
            max_new_tokens=4, strategy="sample", temperature=0.9
        )
        generator = BatchedGenerator(model)
        (result,) = generator.generate_continuous(
            [BatchRequest([1, 2], config, n=5)], max_active=2
        )
        assert len(result.sequences) == 5

    def test_nonfitting_request_falls_back(self, model):
        config = GenerationConfig(max_new_tokens=model.config.max_seq_len)
        generator = BatchedGenerator(model)
        results = generator.generate_continuous(
            [BatchRequest([1, 2, 3], config), BatchRequest([4, 5], GenerationConfig(max_new_tokens=3))],
            max_active=2,
        )
        assert not results[0].batched
        assert results[1].batched
        assert generator.stats.sequential_fallbacks == 1

    def test_with_prefix_cache(self, model, shared_header_prompts):
        config = GenerationConfig(max_new_tokens=7)
        requests = [BatchRequest(p, config) for p in shared_header_prompts]
        expected = [generate(model, p, config) for p in shared_header_prompts]
        generator = BatchedGenerator(model, prefix_cache=PrefixCache())
        results = generator.generate_continuous(requests, max_active=2)
        assert [r.sequences[0] for r in results] == expected
        assert generator.stats.prefix_hits > 0

    def test_scheduler_continuous_matches_barriered(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=6)
        barriered = BatchScheduler(model, max_batch_size=3)
        continuous = BatchScheduler(model, max_batch_size=3, continuous=True)
        tickets_a = [barriered.submit(BatchRequest(p, config)) for p in ragged_prompts]
        tickets_b = [continuous.submit(BatchRequest(p, config)) for p in ragged_prompts]
        results_a = barriered.run()
        results_b = continuous.run()
        assert [results_a[t].sequences for t in tickets_a] == [
            results_b[t].sequences for t in tickets_b
        ]
        assert continuous.stats.refills > 0
        assert continuous.stats.microbatches == 1
        assert barriered.stats.refills == 0

    def test_bad_max_active_rejected(self, model):
        with pytest.raises(GenerationError):
            BatchedGenerator(model).generate_continuous([], max_active=0)

    def test_client_surfaces_refills(self, hub):
        client = CompletionClient(hub)
        client.complete_batch(
            "tiny-gpt", PROMPTS, max_tokens=8, max_batch_size=2
        )
        assert client.engine_stats("tiny-gpt").batch_refills > 0


class TestMidStreamCancellation:
    """on_step hooks: retire requests mid-decode without collateral."""

    def test_active_cancel_leaves_batch_token_identical(
        self, model, ragged_prompts
    ):
        config = GenerationConfig(max_new_tokens=9)
        expected = [generate(model, p, config) for p in ragged_prompts]
        steps = []

        def cancel_first_at_step_three(active, queued):
            steps.append(list(active))
            return [0] if len(steps) == 3 else []

        generator = BatchedGenerator(model)
        results = generator.generate_continuous(
            [BatchRequest(p, config) for p in ragged_prompts],
            max_active=len(ragged_prompts),
            on_step=cancel_first_at_step_three,
        )
        assert results[0].cancelled and results[0].sequences == []
        # Survivors decode exactly as if the victim had never left.
        assert [r.sequences[0] for r in results[1:]] == expected[1:]
        assert generator.stats.cancelled_sequences == 1
        # The hook fires before each decode step: by its third call the
        # victim had generated two tokens, both discarded.
        assert generator.stats.cancelled_tokens == 2

    def test_queued_cancel_never_admitted(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=6)
        last = len(ragged_prompts) - 1

        def cancel_queued_immediately(active, queued):
            return [last] if last in queued else []

        generator = BatchedGenerator(model)
        results = generator.generate_continuous(
            [BatchRequest(p, config) for p in ragged_prompts],
            max_active=2,
            on_step=cancel_queued_immediately,
        )
        assert results[last].cancelled
        assert generator.stats.cancelled_tokens == 0  # never decoded

    def test_cancelled_slot_is_refilled(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=12)
        fired = []

        def cancel_zero_once(active, queued):
            if not fired and 0 in active:
                fired.append(True)
                return [0]
            return []

        admitted = []
        generator = BatchedGenerator(model)
        generator.generate_continuous(
            [BatchRequest(p, config) for p in ragged_prompts],
            max_active=2,
            on_step=cancel_zero_once,
            on_admit=admitted.append,
        )
        # Every request is eventually admitted: the cancelled slot was
        # handed to queued work, not leaked.
        assert sorted(admitted) == list(range(len(ragged_prompts)))

    def test_hook_exception_propagates_as_replica_death(
        self, model, ragged_prompts
    ):
        scheduler = BatchScheduler(model, max_batch_size=2, continuous=True)
        for p in ragged_prompts:
            scheduler.submit(BatchRequest(p, GenerationConfig(max_new_tokens=6)))

        def die(active, queued):
            raise TransientError("injected replica death")

        with pytest.raises(TransientError):
            scheduler.run(on_step=die)
        # Submission stamps must not leak into the next (failover) run.
        assert scheduler._submitted_at == {}

    def test_scheduler_counts_cancelled_separately(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=6)
        scheduler = BatchScheduler(model, max_batch_size=3, continuous=True)
        tickets = [
            scheduler.submit(BatchRequest(p, config)) for p in ragged_prompts
        ]
        results = scheduler.run(on_step=lambda active, queued: [0])
        assert results[tickets[0]].cancelled
        assert scheduler.stats.cancelled == 1
        assert scheduler.stats.completed == len(ragged_prompts) - 1

    def test_on_step_requires_continuous_mode(self, model):
        scheduler = BatchScheduler(model, max_batch_size=2)
        scheduler.submit(BatchRequest([1, 2], GenerationConfig(max_new_tokens=2)))
        with pytest.raises(GenerationError):
            scheduler.run(on_step=lambda active, queued: [])


class TestQueueWaitAccounting:
    def test_scheduler_records_wait_on_virtual_clock(self, model, ragged_prompts):
        clock = VirtualClock()
        scheduler = BatchScheduler(
            model, max_batch_size=4, continuous=True, clock=clock
        )
        config = GenerationConfig(max_new_tokens=4)
        scheduler.submit(BatchRequest(ragged_prompts[0], config))
        clock.advance(2.5)  # the request sits queued for 2.5 virtual s
        scheduler.submit(BatchRequest(ragged_prompts[1], config))
        scheduler.run()
        assert scheduler.stats.queue_wait_max == pytest.approx(2.5)
        # Total = 2.5 (first) + 0.0 (second, dispatched immediately).
        assert scheduler.stats.queue_wait_total == pytest.approx(2.5)

    def test_barriered_scheduler_also_records_wait(self, model, ragged_prompts):
        clock = VirtualClock()
        scheduler = BatchScheduler(model, max_batch_size=4, clock=clock)
        config = GenerationConfig(max_new_tokens=4)
        scheduler.submit(BatchRequest(ragged_prompts[0], config))
        clock.advance(1.0)
        scheduler.run()
        assert scheduler.stats.queue_wait_total == pytest.approx(1.0)

    def test_client_mirrors_queue_wait_seconds(self, hub):
        clock = VirtualClock()
        client = CompletionClient(hub, clock=clock)
        client.complete_batch("tiny-gpt", PROMPTS, max_tokens=4)
        # On a frozen virtual clock submission and dispatch coincide.
        assert client.engine_stats("tiny-gpt").queue_wait_seconds == 0.0

    def test_engine_serving_stats_exposes_queue_wait(self, hub):
        from repro.serving import engine_serving_stats

        client = CompletionClient(hub, clock=VirtualClock())
        client.complete_batch("tiny-gpt", PROMPTS[:2], max_tokens=4)
        stats = engine_serving_stats(client, "tiny-gpt")
        assert "queue_wait_seconds" in stats
        assert stats["queue_wait_seconds"] == 0.0


class TestClientCodexServing:
    @pytest.fixture()
    def db(self):
        database = Database()
        database.execute("CREATE TABLE users (id INT, name TEXT, age INT)")
        database.execute("INSERT INTO users VALUES (1, 'ann', 34), (2, 'bo', 19)")
        return database

    def test_wave_returns_k_candidates(self, hub):
        from repro.codexdb import ClientCodex

        codex = ClientCodex(CompletionClient(hub), "tiny-gpt", max_tokens=6)
        programs = codex.sample_programs(
            "select name from users", CodeGenOptions(), 3
        )
        assert len(programs) == 3
        assert codex.samples_served == 3

    def test_prompts_share_cacheable_header(self, hub):
        from repro.codexdb import ClientCodex

        codex = ClientCodex(CompletionClient(hub), "tiny-gpt", max_tokens=4)
        codex.sample_program("select name from users", CodeGenOptions())
        codex.sample_program("select age from users", CodeGenOptions())
        stats = codex.serving_stats()
        assert stats["prefix_hits"] >= 1
        assert stats["prefix_reused_tokens"] > 0

    def test_codexdb_loop_survives_lm_candidates(self, hub, db):
        from repro.codexdb import ClientCodex

        codex = ClientCodex(CompletionClient(hub), "tiny-gpt", max_tokens=6)
        system = CodexDB(db, codex, CodeGenOptions())
        result = system.run("select name from users where age > 20", max_attempts=2)
        # The tiny word-LM emits non-Python: every candidate is rejected
        # before execution, which is exactly the vetting path.
        assert not result.succeeded
        assert result.static_rejections + result.runtime_failures >= 1

    def test_evaluate_codexdb_accepts_codex_override(self, hub, db):
        from repro.codexdb import ClientCodex, evaluate_codexdb

        codex = ClientCodex(CompletionClient(hub), "tiny-gpt", max_tokens=6)
        report = evaluate_codexdb(
            db, ["select name from users"], max_attempts=2, codex=codex
        )
        assert report.total == 1
        assert report.serving is not None
        assert "prefix_hits" in report.serving


class TestServingStatsSurfaces:
    def test_translator_serving_stats(self, text2sql_setup):
        workload, examples, hub, engine = text2sql_setup
        translator = ClientTranslator(
            client=CompletionClient(hub), engine=engine, workload=workload
        )
        questions = [e.question for e in examples[:4]]
        translator.translate_batch(questions)
        translator.translate_batch(questions)
        stats = translator.serving_stats()
        assert stats["requests"] == 8.0
        assert stats["prefix_hits"] >= 4  # second sweep reuses the first

    def test_evaluate_translator_attaches_serving(self, text2sql_setup):
        workload, examples, hub, engine = text2sql_setup
        translator = ClientTranslator(
            client=CompletionClient(hub), engine=engine, workload=workload
        )
        report = evaluate_translator(
            translator.translate,
            workload,
            examples[:4],
            translate_batch=translator.translate_batch,
            serving_source=translator.serving_stats,
        )
        assert report.serving is not None
        assert report.serving["requests"] == 4.0

    def test_imputer_serving_stats(self, hub):
        examples = generate_imputation_dataset(num_examples=24, seed=1)
        # shots=2 keeps the few-shot prompt inside the tiny context so
        # the batched (cacheable) path serves it, not the fallback.
        imputer = ClientImputer(CompletionClient(hub), "tiny-gpt", shots=2).fit(
            examples[:18]
        )
        imputer.predict_batch(examples[18:])
        stats = imputer.serving_stats()
        assert stats["requests"] == 6.0
        # Few-shot prompts share the shot block: the prefix cache must
        # absorb most of it even within one sweep's admission waves.
        assert stats["prefix_reused_tokens"] > 0

    def test_wrapped_client_unwraps_to_engine_stats(self, hub):
        from repro.serving import engine_serving_stats

        clock = VirtualClock()
        inner = CompletionClient(hub)
        resilient = ResilientClient(inner, policy=RetryPolicy(), clock=clock)
        complete_many(resilient, "tiny-gpt", PROMPTS[:2], max_tokens=4)
        stats = engine_serving_stats(resilient, "tiny-gpt")
        assert stats["requests"] == 2.0

    def test_statless_client_yields_empty_dict(self):
        from repro.serving import engine_serving_stats

        class Bare:
            def complete(self, engine, prompt, **kwargs):
                raise NotImplementedError

        assert engine_serving_stats(Bare(), "x") == {}


class TestConcatInLoopLint:
    def lint(self, code, path):
        from repro.analysis.lint import lint_source

        return [
            f for f in lint_source(code, path=path) if f.rule == "concat-in-loop"
        ]

    def test_flags_concatenate_in_loop(self):
        code = (
            "import numpy as np\n"
            "def grow(chunks):\n"
            "    out = chunks[0]\n"
            "    for c in chunks[1:]:\n"
            "        out = np.concatenate([out, c], axis=2)\n"
            "    return out\n"
        )
        findings = self.lint(code, "src/repro/nn/attention.py")
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_flags_comprehension(self):
        code = (
            "import numpy as np\n"
            "def grow(pairs):\n"
            "    return [np.concatenate(p) for p in pairs]\n"
        )
        assert self.lint(code, "src/repro/serving/engine.py")

    def test_call_outside_loop_is_fine(self):
        code = (
            "import numpy as np\n"
            "def join(a, b):\n"
            "    return np.concatenate([a, b])\n"
        )
        assert not self.lint(code, "src/repro/nn/attention.py")

    def test_only_hot_path_dirs_covered(self):
        code = (
            "import numpy as np\n"
            "def grow(chunks):\n"
            "    return [np.concatenate(c) for c in chunks]\n"
        )
        assert not self.lint(code, "src/repro/wrangle/imputation.py")
        assert not self.lint(code, "tests/test_nn.py")

    def test_noqa_suppresses(self):
        code = (
            "import numpy as np\n"
            "def grow(chunks):\n"
            "    out = chunks[0]\n"
            "    for c in chunks[1:]:\n"
            "        out = np.concatenate(  # repro: noqa[concat-in-loop]\n"
            "            [out, c], axis=2)\n"
            "    return out\n"
        )
        assert not self.lint(code, "src/repro/serving/engine.py")

    def test_shipped_hot_paths_are_clean(self):
        from pathlib import Path

        from repro.analysis.lint import lint_paths

        findings = [
            f
            for f in lint_paths(
                [
                    Path("src/repro/nn"),
                    Path("src/repro/generation"),
                    Path("src/repro/serving"),
                    Path("src/repro/models"),
                ]
            )
            if f.rule == "concat-in-loop"
        ]
        assert findings == []
