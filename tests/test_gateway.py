"""Tests for the async serving gateway and its virtual-time harness.

Everything here runs on an :class:`AsyncVirtualClock` — no wall-clock
sleeps, seeded arrivals — so a multi-second load sweep executes in
milliseconds and every run is bit-for-bit reproducible. The invariants
under test are the gateway's contract: greedy outputs token-identical
to the direct scheduler path (including under injected replica
failure), exactly-once completion for every admitted request, bounded
accepted-latency under overload via shedding, and deadline/cancellation
bookkeeping that always balances the admission ledger.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    GatewayOverloadError,
    GenerationError,
    RateLimitError,
    ReproError,
)
from repro.generation import GenerationConfig
from repro.models import GPTModel, ModelConfig
from repro.reliability import FaultInjector, FaultProfile, TokenBucket
from repro.reliability.aclock import (
    AsyncSystemClock,
    AsyncVirtualClock,
    run_virtual,
)
from repro.serving import (
    BatchRequest,
    BatchScheduler,
    Gateway,
    GatewayRequest,
    Replica,
    ServiceModel,
)
from repro.serving.loadgen import percentile, run_open_loop, sweep

CFG = GenerationConfig(max_new_tokens=8)


@pytest.fixture(scope="module")
def model():
    return GPTModel(ModelConfig.tiny(vocab_size=48), seed=7)


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(0)
    return [list(map(int, rng.integers(1, 48, size=n))) for n in (3, 9, 1, 12, 6, 4)]


@pytest.fixture(scope="module")
def reference(model, prompts):
    """Greedy outputs from the direct continuous-scheduler path."""
    scheduler = BatchScheduler(model, max_batch_size=4, continuous=True)
    tickets = [scheduler.submit(BatchRequest(p, config=CFG)) for p in prompts]
    results = scheduler.run()
    return [results[t].sequences for t in tickets]


SERVICE = ServiceModel(seconds_per_decode_step=0.01)


def make_replica(name, model, clock, injector=None, max_batch=4):
    return Replica(
        name,
        model,
        max_batch=max_batch,
        clock=clock.virtual,
        service=SERVICE,
        injector=injector,
    )


class TestAsyncVirtualClock:
    def test_timers_fire_in_deadline_order(self):
        clock = AsyncVirtualClock()
        fired = []

        async def sleeper(delay, tag):
            await clock.sleep(delay)
            fired.append((tag, clock.monotonic()))

        async def main():
            await asyncio.gather(
                sleeper(0.3, "c"), sleeper(0.1, "a"), sleeper(0.2, "b")
            )

        run_virtual(main(), clock)
        assert [tag for tag, _ in fired] == ["a", "b", "c"]
        assert [t for _, t in fired] == pytest.approx([0.1, 0.2, 0.3])

    def test_external_work_freezes_virtual_time(self):
        clock = AsyncVirtualClock()

        async def main():
            loop = asyncio.get_running_loop()
            before = clock.monotonic()
            value = await clock.wait_external(
                loop.run_in_executor(None, lambda: 41 + 1)
            )
            return value, clock.monotonic() - before

        value, elapsed = run_virtual(main(), clock)
        assert value == 42
        assert elapsed == 0.0

    def test_deadlock_detected(self):
        clock = AsyncVirtualClock()

        async def stuck():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(ReproError, match="deadlock"):
            run_virtual(stuck(), clock)

    def test_negative_sleep_rejected(self):
        clock = AsyncVirtualClock()
        with pytest.raises(ReproError):
            run_virtual(clock.sleep(-1.0), clock)

    def test_system_clock_sleep_and_external(self):
        clock = AsyncSystemClock()

        async def main():
            await clock.sleep(0)
            return await clock.wait_external(asyncio.sleep(0, result=7))

        assert asyncio.run(main()) == 7


class TestGatewayBasics:
    def test_token_identical_to_direct_scheduler(self, model, prompts, reference):
        clock = AsyncVirtualClock()

        async def main():
            gateway = Gateway([make_replica("r0", model, clock)], clock=clock)
            await gateway.start()
            results = await asyncio.gather(
                *[
                    gateway.submit(GatewayRequest(BatchRequest(p, config=CFG)))
                    for p in prompts
                ]
            )
            await gateway.stop()
            return gateway, results

        gateway, results = run_virtual(main(), clock)
        assert [r.sequences for r in results] == reference
        assert gateway.stats.completed == len(prompts)
        assert gateway.stats.shed == 0

    def test_latency_decomposes_into_wait_plus_service(self, model, prompts):
        clock = AsyncVirtualClock()

        async def main():
            gateway = Gateway([make_replica("r0", model, clock)], clock=clock)
            await gateway.start()
            results = await asyncio.gather(
                *[
                    gateway.submit(GatewayRequest(BatchRequest(p, config=CFG)))
                    for p in prompts
                ]
            )
            await gateway.stop()
            return gateway, results

        gateway, results = run_virtual(main(), clock)
        # 6 prompts over a 4-wide replica: the second batch waits for
        # the first batch's virtual service time.
        waited = [r for r in results if r.queue_wait > 0]
        assert waited, "expected the overflow batch to record queue wait"
        for result in results:
            assert result.latency >= result.queue_wait
        assert gateway.stats.queue_wait_max == pytest.approx(
            max(r.queue_wait for r in results)
        )
        assert gateway.stats.service_seconds > 0

    def test_serving_stats_rollup(self, model, prompts):
        clock = AsyncVirtualClock()

        async def main():
            gateway = Gateway([make_replica("r0", model, clock)], clock=clock)
            await gateway.start()
            await asyncio.gather(
                *[
                    gateway.submit(GatewayRequest(BatchRequest(p, config=CFG)))
                    for p in prompts
                ]
            )
            await gateway.stop()
            return gateway

        gateway = run_virtual(main(), clock)
        rollup = gateway.serving_stats()
        assert rollup["gateway"].completed == len(prompts)
        assert rollup["replicas"]["r0"].completed == len(prompts)
        assert rollup["replicas"]["r0"].queue_wait_total >= 0.0

    def test_constructor_validation(self, model):
        clock = AsyncVirtualClock()
        with pytest.raises(GenerationError):
            Gateway([], clock=clock)
        with pytest.raises(GenerationError):
            Gateway([make_replica("r", model, clock)], clock=clock, max_queue=0)
        with pytest.raises(GenerationError):
            GatewayRequest(BatchRequest([1, 2], config=CFG), deadline=0.0)


class TestAdmissionControl:
    def test_queue_full_sheds_with_429(self, model, prompts):
        clock = AsyncVirtualClock()

        async def main():
            gateway = Gateway(
                [make_replica("r0", model, clock)], clock=clock, max_queue=2
            )
            # Not started: nothing drains, so the third admit overflows.
            gateway.admit(GatewayRequest(BatchRequest(prompts[0], config=CFG)))
            gateway.admit(GatewayRequest(BatchRequest(prompts[1], config=CFG)))
            with pytest.raises(GatewayOverloadError) as excinfo:
                gateway.admit(GatewayRequest(BatchRequest(prompts[2], config=CFG)))
            return gateway, excinfo.value

        gateway, error = run_virtual(main(), clock)
        assert error.reason == "queue-full"
        assert isinstance(error, RateLimitError)  # retry loops back off
        assert gateway.stats.shed_queue_full == 1
        assert gateway.stats.admitted == 2

    def test_tenant_quota_sheds_only_that_tenant(self, model, prompts):
        clock = AsyncVirtualClock()

        async def main():
            quota = TokenBucket(0.5, capacity=1, clock=clock.virtual)
            gateway = Gateway(
                [make_replica("r0", model, clock)],
                clock=clock,
                quotas={"metered": quota},
            )
            await gateway.start()
            first = await gateway.submit(
                GatewayRequest(BatchRequest(prompts[0], config=CFG), tenant="metered")
            )
            with pytest.raises(GatewayOverloadError) as excinfo:
                await gateway.submit(
                    GatewayRequest(
                        BatchRequest(prompts[1], config=CFG), tenant="metered"
                    )
                )
            # An unmetered tenant is untouched by the metered bucket.
            other = await gateway.submit(
                GatewayRequest(BatchRequest(prompts[2], config=CFG), tenant="free")
            )
            # After the bucket refills, the metered tenant is admitted.
            await clock.sleep(2.0)
            again = await gateway.submit(
                GatewayRequest(BatchRequest(prompts[3], config=CFG), tenant="metered")
            )
            await gateway.stop()
            return gateway, excinfo.value, [first, other, again]

        gateway, error, results = run_virtual(main(), clock)
        assert error.reason == "tenant-quota"
        assert error.retry_after == pytest.approx(2.0)
        assert gateway.stats.shed_quota == 1
        assert all(r.sequences for r in results)

    def test_all_breakers_open_sheds_unavailable(self, model, prompts):
        clock = AsyncVirtualClock()

        async def main():
            replica = make_replica("r0", model, clock)
            replica.breaker.record_failure()  # threshold 1: now open
            gateway = Gateway([replica], clock=clock)
            with pytest.raises(CircuitOpenError):
                gateway.admit(GatewayRequest(BatchRequest(prompts[0], config=CFG)))
            return gateway

        gateway = run_virtual(main(), clock)
        assert gateway.stats.shed_unavailable == 1


class TestDeadlines:
    def test_expired_in_queue_rejected_at_dispatch(self, model, prompts):
        clock = AsyncVirtualClock()

        async def main():
            gateway = Gateway([make_replica("r0", model, clock)], clock=clock)
            ticket = gateway.admit(
                GatewayRequest(BatchRequest(prompts[0], config=CFG), deadline=0.05)
            )
            await clock.sleep(0.2)  # the budget expires while queued
            await gateway.start()
            with pytest.raises(DeadlineExceededError):
                await ticket.future
            await gateway.stop()
            return gateway

        gateway = run_virtual(main(), clock)
        assert gateway.stats.expired_in_queue == 1
        assert gateway.stats.completed == 0

    def test_expired_mid_decode_frees_slot_without_disturbing_batch(
        self, model, prompts, reference
    ):
        clock = AsyncVirtualClock()
        # 8 decode steps at 0.01 s/step project 0.08s; a 0.035s budget
        # dies mid-decode while unbudgeted requests run to completion.
        doomed = GatewayRequest(BatchRequest(prompts[0], config=CFG), deadline=0.035)

        async def main():
            gateway = Gateway([make_replica("r0", model, clock)], clock=clock)
            await gateway.start()
            outcomes = await asyncio.gather(
                gateway.submit(doomed),
                *[
                    gateway.submit(GatewayRequest(BatchRequest(p, config=CFG)))
                    for p in prompts[1:4]
                ],
                return_exceptions=True,
            )
            await gateway.stop()
            return gateway, outcomes

        gateway, outcomes = run_virtual(main(), clock)
        assert isinstance(outcomes[0], DeadlineExceededError)
        assert gateway.stats.expired_mid_decode == 1
        assert [r.sequences for r in outcomes[1:]] == reference[1:4]


class TestCancellation:
    def test_client_disconnect_mid_stream(self, model, prompts, reference):
        clock = AsyncVirtualClock()

        async def main():
            gateway = Gateway([make_replica("r0", model, clock)], clock=clock)
            await gateway.start()
            victim = asyncio.ensure_future(
                gateway.submit(GatewayRequest(BatchRequest(prompts[0], config=CFG)))
            )
            others = [
                asyncio.ensure_future(
                    gateway.submit(GatewayRequest(BatchRequest(p, config=CFG)))
                )
                for p in prompts[1:4]
            ]
            await asyncio.sleep(0)  # let the batch dispatch
            victim.cancel()
            results = await asyncio.gather(*others)
            with pytest.raises(asyncio.CancelledError):
                await victim
            await gateway.stop()
            return gateway, results

        gateway, results = run_virtual(main(), clock)
        assert [r.sequences for r in results] == reference[1:4]
        assert gateway.stats.cancelled == 1
        assert gateway.stats.completed == 3

    def test_ledger_balances(self, model, prompts):
        """completed + cancelled + failed + expired == admitted."""
        clock = AsyncVirtualClock()

        async def main():
            gateway = Gateway([make_replica("r0", model, clock)], clock=clock)
            await gateway.start()
            victim = asyncio.ensure_future(
                gateway.submit(GatewayRequest(BatchRequest(prompts[0], config=CFG)))
            )
            rest = [
                asyncio.ensure_future(
                    gateway.submit(
                        GatewayRequest(
                            BatchRequest(p, config=CFG),
                            deadline=0.035 if i == 0 else None,
                        )
                    )
                )
                for i, p in enumerate(prompts[1:])
            ]
            await asyncio.sleep(0)
            victim.cancel()
            await asyncio.gather(*rest, victim, return_exceptions=True)
            await gateway.stop()
            return gateway

        gateway = run_virtual(main(), clock)
        s = gateway.stats
        settled = (
            s.completed
            + s.cancelled
            + s.failed
            + s.expired_in_queue
            + s.expired_mid_decode
        )
        assert settled == s.admitted


class TestFailover:
    def test_replica_killed_mid_decode_fails_over_exactly_once(
        self, model, prompts, reference
    ):
        clock = AsyncVirtualClock()

        async def main():
            injector = FaultInjector(FaultProfile(rate_limit_every=3), clock=None)
            bad = make_replica("bad", model, clock, injector=injector)
            good = make_replica("good", model, clock)
            gateway = Gateway([bad, good], clock=clock)
            await gateway.start()
            results = await asyncio.gather(
                *[
                    gateway.submit(GatewayRequest(BatchRequest(p, config=CFG)))
                    for p in prompts
                ]
            )
            await gateway.stop()
            return gateway, results

        gateway, results = run_virtual(main(), clock)
        # Token-identical to the direct scheduler path despite the kill.
        assert [r.sequences for r in results] == reference
        # Exactly once: every admitted request completed, none doubly.
        assert gateway.stats.completed == len(prompts)
        assert gateway.stats.replica_failures >= 1
        assert gateway.stats.failovers >= 1
        bad, good = gateway.replicas
        assert bad.failures >= 1 and bad.decodes == 0
        assert good.decodes >= 1
        # The failed-over requests record the retry in their attempts.
        assert max(r.attempts for r in results) >= 2
        assert all(r.replica == "good" for r in results if r.attempts > 1)

    def test_dead_replica_trips_breaker_and_heals(self, model, prompts, reference):
        clock = AsyncVirtualClock()

        class DieOnce:
            """Kills the replica on its first decode step, then heals."""

            def __init__(self):
                self.kills = 0

            def before_request(self, label):
                if self.kills == 0:
                    self.kills += 1
                    raise RateLimitError(f"injected one-shot kill on {label}")

        async def main():
            replica = make_replica("r0", model, clock, injector=DieOnce())
            gateway = Gateway([replica], clock=clock, probe_interval=1.0)
            await gateway.start()
            result = await gateway.submit(
                GatewayRequest(BatchRequest(prompts[0], config=CFG))
            )
            await gateway.stop()
            return gateway, result

        gateway, result = run_virtual(main(), clock)
        assert result.sequences == reference[0]
        assert result.attempts == 2
        assert gateway.stats.replica_failures == 1
        assert gateway.replicas[0].breaker.state == "closed"

    def test_permanently_dead_single_replica_fails_after_max_attempts(
        self, model, prompts
    ):
        clock = AsyncVirtualClock()

        async def main():
            injector = FaultInjector(FaultProfile(rate_limit_every=1), clock=None)
            replica = make_replica("r0", model, clock, injector=injector)
            gateway = Gateway([replica], clock=clock, max_attempts=2)
            await gateway.start()
            with pytest.raises(RateLimitError):
                await gateway.submit(
                    GatewayRequest(BatchRequest(prompts[0], config=CFG))
                )
            await gateway.stop()
            return gateway

        gateway = run_virtual(main(), clock)
        assert gateway.stats.failed == 1
        assert gateway.stats.replica_failures == 2
        assert gateway.stats.completed == 0


class TestLoadgen:
    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 0) == 1.0
        assert percentile([], 99) == 0.0
        with pytest.raises(GenerationError):
            percentile([1.0], 200)

    def test_open_loop_run_is_deterministic(self, model, prompts):
        def once():
            clock = AsyncVirtualClock()

            async def main():
                gateway = Gateway(
                    [make_replica("r0", model, clock, max_batch=8)],
                    clock=clock,
                    max_queue=16,
                )
                await gateway.start()
                report = await run_open_loop(
                    gateway,
                    lambda i: GatewayRequest(
                        BatchRequest(prompts[i % len(prompts)], config=CFG)
                    ),
                    rate=50.0,
                    duration=2.0,
                    clock=clock,
                    seed=11,
                )
                await gateway.stop()
                return report

            return run_virtual(main(), clock).as_dict()

        assert once() == once()

    def test_saturation_curve_sheds_and_keeps_p99_bounded(self, model, prompts):
        clock = AsyncVirtualClock()

        def make_gateway():
            return Gateway(
                [make_replica("r0", model, clock, max_batch=8)],
                clock=clock,
                max_queue=16,
            )

        async def main():
            return await sweep(
                make_gateway,
                lambda i: GatewayRequest(
                    BatchRequest(prompts[i % len(prompts)], config=CFG)
                ),
                rates=[50.0, 100.0, 200.0],
                duration=3.0,
                clock=clock,
                seed=42,
            )

        light, saturated, overloaded = run_virtual(main(), clock)
        # Under capacity: everything completes, nothing shed.
        assert light.shed == 0
        assert light.completed == light.submitted
        # At 2x saturation the gateway sheds instead of queueing...
        assert overloaded.shed_rate > 0.2
        # ...which keeps accepted p99 bounded (within 2x of the
        # at-capacity p99, not growing with offered load)...
        assert overloaded.p99_latency < 2.0 * saturated.p99_latency
        # ...while goodput holds within 10% of the single-replica peak.
        peak = max(light.goodput, saturated.goodput)
        assert overloaded.goodput > 0.9 * peak


class TestGatewayCompletionCache:
    def test_cache_hit_skips_quota_and_decode(self, model, prompts):
        from repro.serving import SemanticCache

        clock = AsyncVirtualClock()

        async def main():
            cache = SemanticCache(max_bytes=64 * 1024)
            quota = TokenBucket(0.001, capacity=1, clock=clock.virtual)
            gateway = Gateway(
                [make_replica("r0", model, clock)],
                clock=clock,
                quotas={"metered": quota},
                completion_cache=cache,
            )
            await gateway.start()
            first = await gateway.submit(
                GatewayRequest(BatchRequest(prompts[0], config=CFG), tenant="metered")
            )
            # The bucket is empty (refill is ~never): an exact repeat
            # must be served from the cache without touching it...
            again = await gateway.submit(
                GatewayRequest(BatchRequest(prompts[0], config=CFG), tenant="metered")
            )
            # ...while a *different* request still sheds on quota.
            with pytest.raises(GatewayOverloadError):
                await gateway.submit(
                    GatewayRequest(
                        BatchRequest(prompts[1], config=CFG), tenant="metered"
                    )
                )
            await gateway.stop()
            return gateway, first, again

        gateway, first, again = run_virtual(main(), clock)
        assert again.sequences == first.sequences
        assert again.replica == "cache"
        assert again.latency == 0.0
        assert gateway.stats.cache_hits == 1
        assert gateway.stats.shed_quota == 1
        # The hit is not admitted work: the settlement ledger balances
        # over decoded requests alone.
        assert gateway.stats.admitted == 1
        assert gateway.stats.completed == 1
        assert gateway.stats.submitted == 3

    def test_cached_sequences_token_identical(self, model, prompts, reference):
        from repro.serving import SemanticCache

        clock = AsyncVirtualClock()

        async def main():
            gateway = Gateway(
                [make_replica("r0", model, clock)],
                clock=clock,
                completion_cache=SemanticCache(max_bytes=64 * 1024),
            )
            await gateway.start()
            results = []
            for _ in range(2):
                results.append(
                    await asyncio.gather(
                        *[
                            gateway.submit(
                                GatewayRequest(BatchRequest(p, config=CFG))
                            )
                            for p in prompts
                        ]
                    )
                )
            await gateway.stop()
            return gateway, results

        gateway, (cold, warm) = run_virtual(main(), clock)
        assert [r.sequences for r in cold] == reference
        assert [r.sequences for r in warm] == reference
        assert gateway.stats.cache_hits == len(prompts)
        assert all(r.replica == "cache" for r in warm)
