"""End-to-end tests for the SQL engine: execution semantics."""

import pytest

from repro.errors import (
    CatalogError,
    SQLAnalysisError,
    SQLExecutionError,
    SQLSyntaxError,
)
from repro.sql import Database, SQLType, Table, TableSchema
from repro.sql.executor import ExecutorOptions


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary FLOAT)")
    database.execute(
        "INSERT INTO emp VALUES "
        "(1, 'alice', 'eng', 120.0), "
        "(2, 'bob', 'eng', 100.0), "
        "(3, 'carol', 'sales', 90.0), "
        "(4, 'dave', 'sales', 80.0), "
        "(5, 'erin', 'hr', NULL)"
    )
    database.execute("CREATE TABLE dept (name TEXT, building TEXT)")
    database.execute(
        "INSERT INTO dept VALUES ('eng', 'A'), ('sales', 'B'), ('legal', 'C')"
    )
    return database


class TestBasics:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM emp")
        assert len(result) == 5
        assert result.columns == ["dept", "id", "name", "salary"]

    def test_projection_and_alias(self, db):
        result = db.execute("SELECT name AS who, salary * 2 AS double FROM emp LIMIT 1")
        assert result.columns == ["who", "double"]
        assert result.rows[0] == ("alice", 240.0)

    def test_where_filtering(self, db):
        result = db.execute("SELECT name FROM emp WHERE salary > 95")
        assert sorted(r[0] for r in result.rows) == ["alice", "bob"]

    def test_where_excludes_null_comparisons(self, db):
        # erin has NULL salary: NULL > 0 is unknown, row is dropped.
        result = db.execute("SELECT name FROM emp WHERE salary > 0")
        assert "erin" not in [r[0] for r in result.rows]
        result = db.execute("SELECT name FROM emp WHERE NOT salary > 0")
        assert "erin" not in [r[0] for r in result.rows]

    def test_is_null(self, db):
        result = db.execute("SELECT name FROM emp WHERE salary IS NULL")
        assert [r[0] for r in result.rows] == ["erin"]

    def test_in_list(self, db):
        result = db.execute("SELECT name FROM emp WHERE dept IN ('hr', 'sales')")
        assert sorted(r[0] for r in result.rows) == ["carol", "dave", "erin"]

    def test_between(self, db):
        result = db.execute("SELECT name FROM emp WHERE salary BETWEEN 85 AND 105")
        assert sorted(r[0] for r in result.rows) == ["bob", "carol"]

    def test_like(self, db):
        result = db.execute("SELECT name FROM emp WHERE name LIKE 'a%'")
        assert [r[0] for r in result.rows] == ["alice"]
        result = db.execute("SELECT name FROM emp WHERE name LIKE '_ob'")
        assert [r[0] for r in result.rows] == ["bob"]

    def test_order_by_and_limit(self, db):
        result = db.execute("SELECT name FROM emp ORDER BY salary DESC LIMIT 2")
        assert [r[0] for r in result.rows] == ["alice", "bob"]

    def test_order_by_nulls_last(self, db):
        result = db.execute("SELECT name FROM emp ORDER BY salary")
        assert result.rows[-1][0] == "erin"

    def test_order_by_alias(self, db):
        result = db.execute(
            "SELECT name, salary * -1 AS neg FROM emp WHERE salary IS NOT NULL "
            "ORDER BY neg"
        )
        assert result.rows[0][0] == "alice"

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT dept FROM emp")
        assert len(result) == 3

    def test_distinct_with_order(self, db):
        result = db.execute("SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert [r[0] for r in result.rows] == ["eng", "hr", "sales"]

    def test_scalar_helper(self, db):
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 5

    def test_scalar_rejects_multi(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT name FROM emp").scalar()

    def test_column_helper(self, db):
        names = db.execute("SELECT name FROM emp ORDER BY id").column("name")
        assert names[0] == "alice"

    def test_to_dicts(self, db):
        dicts = db.execute("SELECT id, name FROM emp ORDER BY id LIMIT 1").to_dicts()
        assert dicts == [{"id": 1, "name": "alice"}]

    def test_case_when(self, db):
        result = db.execute(
            "SELECT name, CASE WHEN salary >= 100 THEN 'high' "
            "WHEN salary >= 85 THEN 'mid' ELSE 'low' END AS band "
            "FROM emp WHERE salary IS NOT NULL ORDER BY id"
        )
        assert result.column("band") == ["high", "high", "mid", "low"]

    def test_scalar_functions(self, db):
        result = db.execute(
            "SELECT UPPER(name), LENGTH(name), ABS(-3), ROUND(1.567, 1) "
            "FROM emp WHERE id = 1"
        )
        assert result.rows[0] == ("ALICE", 5, 3, 1.6)

    def test_string_concat(self, db):
        result = db.execute("SELECT name || '!' FROM emp WHERE id = 2")
        assert result.rows[0][0] == "bob!"

    def test_division_by_zero_is_null(self, db):
        result = db.execute("SELECT salary / 0 FROM emp WHERE id = 1")
        assert result.rows[0][0] is None


class TestAggregates:
    def test_count_star_vs_count_column(self, db):
        assert db.execute("SELECT COUNT(*) FROM emp").scalar() == 5
        # COUNT(salary) skips the NULL.
        assert db.execute("SELECT COUNT(salary) FROM emp").scalar() == 4

    def test_sum_avg_min_max(self, db):
        result = db.execute(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp"
        )
        assert result.rows[0] == (390.0, 97.5, 80.0, 120.0)

    def test_count_distinct(self, db):
        assert db.execute("SELECT COUNT(DISTINCT dept) FROM emp").scalar() == 3

    def test_group_by(self, db):
        result = db.execute(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept"
        )
        assert result.rows == [("eng", 2), ("hr", 1), ("sales", 2)]

    def test_group_by_having(self, db):
        result = db.execute(
            "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept"
        )
        assert [r[0] for r in result.rows] == ["eng", "sales"]

    def test_order_by_aggregate(self, db):
        result = db.execute(
            "SELECT dept, AVG(salary) AS a FROM emp WHERE salary IS NOT NULL "
            "GROUP BY dept ORDER BY a DESC"
        )
        assert result.rows[0][0] == "eng"

    def test_aggregate_arithmetic(self, db):
        result = db.execute("SELECT MAX(salary) - MIN(salary) FROM emp")
        assert result.scalar() == 40.0

    def test_empty_group_aggregate_is_null(self, db):
        assert db.execute("SELECT SUM(salary) FROM emp WHERE id > 99").scalar() is None

    def test_count_of_empty_is_zero(self, db):
        assert db.execute("SELECT COUNT(*) FROM emp WHERE id > 99").scalar() == 0

    def test_having_without_group_raises(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute("SELECT name FROM emp HAVING name = 'x'")

    def test_star_with_aggregation_raises(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute("SELECT * FROM emp GROUP BY dept")


class TestJoins:
    def test_inner_join(self, db):
        result = db.execute(
            "SELECT emp.name, dept.building FROM emp "
            "JOIN dept ON emp.dept = dept.name ORDER BY emp.id"
        )
        assert result.rows[0] == ("alice", "A")
        assert len(result) == 4  # erin's dept 'hr' has no match

    def test_left_join_pads_nulls(self, db):
        result = db.execute(
            "SELECT emp.name, dept.building FROM emp "
            "LEFT JOIN dept ON emp.dept = dept.name ORDER BY emp.id"
        )
        assert len(result) == 5
        assert result.rows[-1] == ("erin", None)

    def test_cross_join_cardinality(self, db):
        result = db.execute("SELECT * FROM emp CROSS JOIN dept")
        assert len(result) == 15

    def test_join_with_aliases(self, db):
        result = db.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name "
            "WHERE d.building = 'B' ORDER BY e.name"
        )
        assert [r[0] for r in result.rows] == ["carol", "dave"]

    def test_join_then_group(self, db):
        result = db.execute(
            "SELECT d.building, COUNT(*) AS n FROM emp e "
            "JOIN dept d ON e.dept = d.name GROUP BY d.building ORDER BY d.building"
        )
        assert result.rows == [("A", 2), ("B", 2)]

    def test_hash_and_nested_loop_agree(self, db):
        sql = (
            "SELECT e.name, d.building FROM emp e "
            "JOIN dept d ON e.dept = d.name ORDER BY e.name"
        )
        fast = db.execute(sql)
        slow_db = Database(ExecutorOptions(predicate_pushdown=False, hash_joins=False))
        slow_db.catalog = db.catalog
        slow = slow_db.execute(sql)
        assert fast.rows == slow.rows

    def test_pushdown_reduces_join_probes(self, db):
        sql = (
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name "
            "WHERE e.salary > 110"
        )
        db.execute(sql)
        with_pushdown = db.explain_stats().join_probes
        slow_db = Database(ExecutorOptions(predicate_pushdown=False, hash_joins=False))
        slow_db.catalog = db.catalog
        slow_db.execute(sql)
        without = slow_db.explain_stats().join_probes
        assert with_pushdown < without

    def test_ambiguous_bare_column_raises(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute("SELECT name FROM emp JOIN dept ON emp.dept = dept.name")


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM nothere")

    def test_unknown_column(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute("SELECT nope FROM emp")

    def test_syntax_error(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("SELEKT * FROM emp")

    def test_duplicate_create(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE emp (id INT)")

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO emp VALUES (1, 'x')")

    def test_type_coercion_failure(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO emp VALUES ('notanint', 'x', 'y', 1.0)")

    def test_comparing_text_to_number_raises(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("SELECT * FROM emp WHERE name > 5")


class TestInsertVariants:
    def test_insert_with_column_list_fills_nulls(self, db):
        db.execute("INSERT INTO emp (id, name) VALUES (9, 'zed')")
        row = db.execute("SELECT * FROM emp WHERE id = 9").to_dicts()[0]
        assert row["name"] == "zed"
        assert row["salary"] is None and row["dept"] is None

    def test_insert_negative_number(self, db):
        db.execute("INSERT INTO emp VALUES (10, 'neg', 'eng', -5.0)")
        assert db.execute("SELECT salary FROM emp WHERE id = 10").scalar() == -5.0

    def test_rowcount(self, db):
        result = db.execute("INSERT INTO dept VALUES ('x', 'D'), ('y', 'E')")
        assert result.rowcount == 2


class TestTablesAndCSV:
    def test_from_dicts_infers_types(self):
        table = Table.from_dicts(
            "t", [{"a": 1, "b": "x", "c": 1.5}, {"a": 2, "b": "y", "c": None}]
        )
        types = [c.sql_type for c in table.schema.columns]
        assert types == [SQLType.INT, SQLType.TEXT, SQLType.FLOAT]

    def test_csv_roundtrip(self, db, tmp_path):
        path = tmp_path / "emp.csv"
        db.table("emp").to_csv(path)
        reloaded = Table.from_csv("emp2", path)
        assert len(reloaded) == len(db.table("emp"))
        # NULL survives the roundtrip as empty cell -> None.
        salary_idx = reloaded.schema.index_of("salary")
        assert any(row[salary_idx] is None for row in reloaded.rows)

    def test_csv_type_inference(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b,c\n1,1.5,x\n2,2.5,y\n")
        table = Table.from_csv("d", path)
        types = [c.sql_type for c in table.schema.columns]
        assert types == [SQLType.INT, SQLType.FLOAT, SQLType.TEXT]

    def test_load_csv_into_database(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,name\n1,a\n2,b\n")
        database = Database()
        database.load_csv("t", path)
        assert database.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(SQLExecutionError):
            Table.from_csv("e", path)
