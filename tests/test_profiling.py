"""Tests for NLP-enhanced data profiling (correlation from column names)."""

import pytest

from repro.errors import ReproError
from repro.profiling import (
    TokenOverlapBaseline,
    evaluate_predictor,
    generate_schema_corpus,
    measure_correlation,
    profiling_recall_at_budget,
    train_name_pair_classifier,
)


@pytest.fixture(scope="module")
def corpora():
    train = generate_schema_corpus(num_schemas=16, seed=1)
    test = generate_schema_corpus(num_schemas=8, seed=2)
    return train, test


@pytest.fixture(scope="module")
def classifier(corpora):
    train, _ = corpora
    return train_name_pair_classifier(train.pairs, epochs=12, seed=0)


class TestCorpus:
    def test_labels_match_measured_correlations(self, corpora):
        _, test = corpora
        for pair in test.pairs:
            r = measure_correlation(test, pair)
            if pair.correlated:
                assert r > 0.7, f"{pair} should correlate, measured {r:.2f}"
            else:
                assert r < 0.6, f"{pair} should not correlate, measured {r:.2f}"

    def test_synonym_pairs_share_no_tokens(self, corpora):
        _, test = corpora
        for pair in test.pairs:
            if pair.correlated:
                left = set(pair.left_name.split("_")[:-1])
                right = set(pair.right_name.split("_")[:-1])
                assert not (left & right)

    def test_deterministic(self):
        a = generate_schema_corpus(num_schemas=3, seed=5)
        b = generate_schema_corpus(num_schemas=3, seed=5)
        assert a.pairs == b.pairs


class TestPredictors:
    def test_overlap_baseline_blind_to_synonyms(self, corpora):
        _, test = corpora
        metrics = evaluate_predictor(TokenOverlapBaseline(), test.pairs)
        assert metrics["recall"] == 0.0

    def test_lm_classifier_learns_synonyms(self, classifier, corpora):
        _, test = corpora
        metrics = evaluate_predictor(classifier, test.pairs)
        assert metrics["f1"] > 0.6
        assert metrics["recall"] > 0.7

    def test_lm_beats_baseline(self, classifier, corpora):
        _, test = corpora
        lm = evaluate_predictor(classifier, test.pairs)
        baseline = evaluate_predictor(TokenOverlapBaseline(), test.pairs)
        assert lm["f1"] > baseline["f1"]

    def test_probability_in_unit_interval(self, classifier, corpora):
        _, test = corpora
        for pair in test.pairs[:10]:
            assert 0.0 <= classifier.probability(pair) <= 1.0

    def test_empty_training_raises(self):
        with pytest.raises(ReproError):
            train_name_pair_classifier([], epochs=1)


class TestBudgetedProfiling:
    def test_recall_rises_with_budget(self, classifier, corpora):
        _, test = corpora
        small, _ = profiling_recall_at_budget(classifier, test, test.pairs, budget=6)
        large, _ = profiling_recall_at_budget(classifier, test, test.pairs, budget=24)
        assert large >= small

    def test_lm_profiler_beats_baseline_at_budget(self, classifier, corpora):
        _, test = corpora
        lm, _ = profiling_recall_at_budget(classifier, test, test.pairs, budget=24)
        baseline, _ = profiling_recall_at_budget(
            TokenOverlapBaseline(), test, test.pairs, budget=24
        )
        assert lm > baseline

    def test_invalid_budget_raises(self, classifier, corpora):
        _, test = corpora
        with pytest.raises(ReproError):
            profiling_recall_at_budget(classifier, test, test.pairs, budget=0)
