"""Tests for hash indexes: creation, maintenance, and index scans."""

import pytest

from repro.errors import SQLAnalysisError, SQLExecutionError
from repro.sql import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE users (id INT, city TEXT, score INT)")
    rows = ", ".join(
        f"({i}, '{['boston', 'denver', 'austin'][i % 3]}', {i * 10})"
        for i in range(30)
    )
    database.execute(f"INSERT INTO users VALUES {rows}")
    return database


class TestIndexBasics:
    def test_create_index_statement(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        assert db.table("users").has_index("city")
        assert db.table("users").index_names() == ["city"]

    def test_create_index_unknown_column_raises(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute("CREATE INDEX idx ON users (ghost)")

    def test_index_lookup_returns_positions(self, db):
        table = db.table("users")
        table.create_index("city")
        positions = table.index_lookup("city", "boston")
        assert positions == [i for i in range(30) if i % 3 == 0]

    def test_lookup_without_index_raises(self, db):
        with pytest.raises(SQLExecutionError):
            db.table("users").index_lookup("score", 10)


class TestIndexScans:
    def test_equality_uses_index(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        result = db.execute("SELECT COUNT(*) FROM users WHERE city = 'denver'")
        assert result.scalar() == 10
        stats = db.explain_stats()
        assert stats.index_lookups == 1
        assert stats.rows_scanned == 10  # only the matching rows were bound

    def test_reversed_equality_uses_index(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("SELECT COUNT(*) FROM users WHERE 'austin' = city")
        assert db.explain_stats().index_lookups == 1

    def test_without_index_full_scan(self, db):
        db.execute("SELECT COUNT(*) FROM users WHERE city = 'denver'")
        stats = db.explain_stats()
        assert stats.index_lookups == 0
        assert stats.rows_scanned == 30

    def test_index_scan_same_answer_as_full_scan(self, db):
        sql = "SELECT id FROM users WHERE city = 'boston' ORDER BY id"
        before = db.execute(sql).rows
        db.execute("CREATE INDEX idx_city ON users (city)")
        after = db.execute(sql).rows
        assert before == after

    def test_extra_conjuncts_still_applied(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        result = db.execute(
            "SELECT COUNT(*) FROM users WHERE city = 'boston' AND score > 100"
        )
        expected = sum(1 for i in range(30) if i % 3 == 0 and i * 10 > 100)
        assert result.scalar() == expected

    def test_int_index_with_coercion(self, db):
        db.execute("CREATE INDEX idx_score ON users (score)")
        assert db.execute("SELECT COUNT(*) FROM users WHERE score = 100").scalar() == 1
        assert db.explain_stats().index_lookups == 1

    def test_index_miss_returns_empty(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        result = db.execute("SELECT * FROM users WHERE city = 'nowhere'")
        assert len(result) == 0


class TestIndexMaintenance:
    def test_insert_updates_index(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("INSERT INTO users VALUES (99, 'boston', 5)")
        result = db.execute("SELECT COUNT(*) FROM users WHERE city = 'boston'")
        assert result.scalar() == 11

    def test_delete_invalidates_and_rebuilds(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("DELETE FROM users WHERE city = 'boston'")
        assert db.execute("SELECT COUNT(*) FROM users WHERE city = 'boston'").scalar() == 0
        assert db.execute("SELECT COUNT(*) FROM users WHERE city = 'denver'").scalar() == 10

    def test_update_invalidates_and_rebuilds(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("UPDATE users SET city = 'boston' WHERE city = 'denver'")
        assert db.execute("SELECT COUNT(*) FROM users WHERE city = 'boston'").scalar() == 20
        assert db.execute("SELECT COUNT(*) FROM users WHERE city = 'denver'").scalar() == 0

    def test_index_survives_mixed_dml_sequence(self, db):
        db.execute("CREATE INDEX idx_city ON users (city)")
        db.execute("DELETE FROM users WHERE id < 6")
        db.execute("INSERT INTO users VALUES (100, 'austin', 1)")
        db.execute("UPDATE users SET score = 0 WHERE city = 'austin'")
        via_index = db.execute(
            "SELECT COUNT(*) FROM users WHERE city = 'austin'"
        ).scalar()
        manual = sum(
            1 for row in db.table("users").rows
            if row[db.table("users").schema.index_of("city")] == "austin"
        )
        assert via_index == manual

    def test_create_index_roundtrip_sql(self):
        from repro.sql import parse_sql

        stmt = parse_sql("CREATE INDEX i ON t (c)")
        assert parse_sql(stmt.sql()) == stmt
