"""Tests for repro.reliability: clocks, retries, breakers, fault injection,
the resilient client, and the hardened consumers (text2sql, CodexDB,
wrangle imputation)."""

import dataclasses

import pytest

from repro.api import CompletionClient, ModelHub
from repro.api.client import CompletionChoice, CompletionResponse, Usage
from repro.codexdb import evaluate_codexdb
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ModelError,
    RateLimitError,
    ReproError,
    RequestTimeoutError,
    TransientError,
)
from repro.reliability import (
    CLOSED,
    DEGRADED_ENGINE,
    FAULT_FREE,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjector,
    FaultProfile,
    FaultyCompletionClient,
    ResilientClient,
    Retrier,
    RetryPolicy,
    TokenBucket,
    VirtualClock,
    decorrelated_jitter,
)
from repro.sql import Database
from repro.text2sql import (
    ClientTranslator,
    RuleBasedTranslator,
    evaluate_translator,
    generate_workload,
    register_translator,
)
from repro.utils.rng import SeededRNG
from repro.wrangle import ClientImputer, generate_imputation_dataset


#: the acceptance fault profile: >=30% transient errors plus periodic
#: rate limiting, with occasional garbled completions on top
HEAVY_FAULTS = FaultProfile(
    transient_rate=0.25,
    timeout_rate=0.10,
    garble_rate=0.10,
    rate_limit_every=7,
    retry_after=0.5,
    latency=0.01,
)


class TestVirtualClock:
    def test_monotonic_starts_at_start(self):
        assert VirtualClock().monotonic() == 0.0
        assert VirtualClock(start=5.0).monotonic() == 5.0

    def test_sleep_advances_and_logs(self):
        clock = VirtualClock()
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.monotonic() == 2.0
        assert clock.slept == 2.0
        assert clock.sleep_log == [1.5, 0.5]

    def test_advance_does_not_log(self):
        clock = VirtualClock()
        clock.advance(3.0)
        assert clock.monotonic() == 3.0
        assert clock.sleep_log == []

    def test_negative_durations_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ReproError):
            clock.sleep(-1.0)
        with pytest.raises(ReproError):
            clock.advance(-1.0)


class TestBackoff:
    def test_jitter_within_bounds(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=2.0)
        rng = SeededRNG(0)
        delay = policy.base_delay
        for _ in range(50):
            delay = decorrelated_jitter(policy, delay, rng)
            assert policy.base_delay <= delay <= policy.max_delay

    def test_jitter_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=2.0)
        a = [decorrelated_jitter(policy, 0.1, SeededRNG(7)) for _ in range(1)]
        b = [decorrelated_jitter(policy, 0.1, SeededRNG(7)) for _ in range(1)]
        assert a == b

    def test_invalid_policy_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(deadline=0.0)


class TestRetrier:
    def _flaky(self, failures, exc_factory=lambda i: TransientError("boom")):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= failures:
                raise exc_factory(calls["n"])
            return "ok"

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        clock = VirtualClock()
        retrier = Retrier(RetryPolicy(max_retries=5), clock=clock, seed=0)
        fn, calls = self._flaky(3)
        assert retrier.call(fn) == "ok"
        assert calls["n"] == 4
        assert retrier.retries == 3
        assert clock.slept > 0

    def test_exhausted_retries_reraise(self):
        retrier = Retrier(RetryPolicy(max_retries=2), clock=VirtualClock())
        fn, calls = self._flaky(10)
        with pytest.raises(TransientError):
            retrier.call(fn)
        assert calls["n"] == 3  # initial + 2 retries

    def test_permanent_errors_not_retried(self):
        retrier = Retrier(clock=VirtualClock())
        fn, calls = self._flaky(1, exc_factory=lambda i: ModelError("no"))
        with pytest.raises(ModelError):
            retrier.call(fn)
        assert calls["n"] == 1

    def test_rate_limit_honors_retry_after(self):
        clock = VirtualClock()
        retrier = Retrier(
            RetryPolicy(max_retries=3, base_delay=0.01, max_delay=0.05),
            clock=clock,
        )
        fn, _ = self._flaky(
            1, exc_factory=lambda i: RateLimitError("429", retry_after=4.0)
        )
        assert retrier.call(fn) == "ok"
        assert clock.slept >= 4.0
        assert retrier.rate_limited == 1

    def test_deadline_exceeded_instead_of_oversleeping(self):
        clock = VirtualClock()
        policy = RetryPolicy(max_retries=10, deadline=2.0)
        retrier = Retrier(policy, clock=clock)
        fn, _ = self._flaky(
            99, exc_factory=lambda i: RateLimitError("429", retry_after=5.0)
        )
        with pytest.raises(DeadlineExceededError):
            retrier.call(fn)
        # The loop refused to start a sleep that would overspend the
        # budget, so simulated time never passed the deadline.
        assert clock.monotonic() <= policy.deadline

    def test_deterministic_backoff_schedule(self):
        def run():
            clock = VirtualClock()
            retrier = Retrier(RetryPolicy(max_retries=5), clock=clock, seed=3)
            fn, _ = self._flaky(4)
            retrier.call(fn)
            return clock.sleep_log

        assert run() == run()


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)
        assert breaker.state == CLOSED
        tripped = [breaker.record_failure() for _ in range(3)]
        assert tripped == [False, False, True]
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_after_timeout_then_close_on_success(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.record_failure()  # failed probe trips immediately
        assert breaker.state == OPEN
        assert breaker.trips == 2

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=VirtualClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_invalid_config_rejected(self):
        with pytest.raises(ReproError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker(reset_timeout=0.0)


class TestTokenBucket:
    def test_burst_then_wait(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=2.0, capacity=2.0, clock=clock)
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        wait = bucket.acquire()
        assert wait == pytest.approx(0.5)
        assert clock.slept == pytest.approx(0.5)
        assert bucket.waited == pytest.approx(0.5)

    def test_refills_over_time(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=1.0, capacity=3.0, clock=clock)
        assert bucket.try_acquire(3.0)
        assert not bucket.try_acquire()
        clock.advance(2.0)
        assert bucket.tokens == pytest.approx(2.0)
        assert bucket.try_acquire(2.0)

    def test_capacity_clamps_refill(self):
        clock = VirtualClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_invalid_use_rejected(self):
        bucket = TokenBucket(rate=1.0, capacity=2.0, clock=VirtualClock())
        with pytest.raises(ReproError):
            bucket.acquire(0)
        with pytest.raises(ReproError):
            bucket.acquire(3.0)
        with pytest.raises(ReproError):
            TokenBucket(rate=0.0)


class TestFaultInjector:
    def test_fault_free_profile_never_raises(self):
        injector = FaultInjector(FAULT_FREE, seed=0)
        for _ in range(100):
            injector.before_request()
        assert injector.counts == {
            "rate_limit": 0, "transient": 0, "timeout": 0, "garbled": 0,
        }

    def test_periodic_rate_limit(self):
        injector = FaultInjector(
            FaultProfile(rate_limit_every=3, retry_after=2.5), seed=0
        )
        outcomes = []
        for _ in range(9):
            try:
                injector.before_request()
                outcomes.append("ok")
            except RateLimitError as exc:
                outcomes.append("rl")
                assert exc.retry_after == 2.5
        assert outcomes == ["ok", "ok", "rl"] * 3

    def test_deterministic_fault_sequence(self):
        def sequence(seed):
            injector = FaultInjector(HEAVY_FAULTS, seed=seed, clock=VirtualClock())
            kinds = []
            for _ in range(60):
                try:
                    injector.before_request()
                    kinds.append("ok")
                except ReproError as exc:
                    kinds.append(type(exc).__name__)
            return kinds

        assert sequence(5) == sequence(5)
        assert sequence(5) != sequence(6)

    def test_transient_taxonomy(self):
        injector = FaultInjector(
            FaultProfile(timeout_rate=0.99), seed=0, clock=VirtualClock()
        )
        with pytest.raises(RequestTimeoutError) as excinfo:
            for _ in range(50):
                injector.before_request()
        assert isinstance(excinfo.value, TransientError)

    def test_latency_charged_to_clock(self):
        clock = VirtualClock()
        injector = FaultInjector(FaultProfile(latency=0.2), seed=0, clock=clock)
        injector.before_request()
        injector.before_request()
        assert clock.monotonic() == pytest.approx(0.4)

    def test_garble_truncates(self):
        injector = FaultInjector(FaultProfile(garble_rate=0.999), seed=0)
        text, garbled = injector.maybe_garble("select a from t")
        assert garbled
        assert len(text) <= len("select a from t")

    def test_invalid_profile_rejected(self):
        with pytest.raises(ReproError):
            FaultProfile(transient_rate=1.0)
        with pytest.raises(ReproError):
            FaultProfile(rate_limit_every=-1)
        with pytest.raises(ReproError):
            FaultProfile(latency=-0.1)


def _response(engine, text):
    return CompletionResponse(
        engine=engine,
        choices=[CompletionChoice(text=text, index=0, finish_reason="stop")],
        usage=Usage(prompt_tokens=1, completion_tokens=1),
    )


class ScriptedClient:
    """A CompletionClient stand-in that fails on command.

    ``script`` maps engine -> list of exceptions (to raise) or strings
    (to return); entries are consumed in order, and the last entry
    repeats forever.
    """

    def __init__(self, script):
        self.script = {k: list(v) for k, v in script.items()}
        self.calls = []

    def complete(self, engine, prompt, **kwargs):
        self.calls.append(engine)
        entries = self.script[engine]
        entry = entries.pop(0) if len(entries) > 1 else entries[0]
        if isinstance(entry, Exception):
            raise entry
        return _response(engine, entry)


class TestResilientClient:
    def test_retries_then_succeeds(self):
        clock = VirtualClock()
        stub = ScriptedClient(
            {"big": [TransientError("a"), TransientError("b"), "answer"]}
        )
        client = ResilientClient(stub, clock=clock, seed=0)
        response = client.complete("big", "prompt")
        assert response.text == "answer"
        metrics = client.metrics
        assert metrics.retries == 2
        assert metrics.successes == 1
        assert metrics.fallbacks == 0
        assert clock.slept > 0

    def test_fallback_chain_order(self):
        stub = ScriptedClient(
            {"big": [TransientError("down")], "small": ["small says hi"]}
        )
        client = ResilientClient(
            stub,
            policy=RetryPolicy(max_retries=1),
            fallback_engines={"big": ["small"]},
            clock=VirtualClock(),
        )
        response = client.complete("big", "prompt")
        assert response.engine == "small"
        assert client.metrics.fallbacks == 1
        # big was tried (and retried) before small
        assert stub.calls[:2] == ["big", "big"] and stub.calls[-1] == "small"

    def test_breaker_short_circuits_dead_engine(self):
        stub = ScriptedClient(
            {"big": [TransientError("down")], "small": ["ok"]}
        )
        client = ResilientClient(
            stub,
            policy=RetryPolicy(max_retries=0),
            fallback_engines={"big": ["small"]},
            failure_threshold=2,
            reset_timeout=1000.0,
            clock=VirtualClock(),
        )
        for _ in range(4):
            assert client.complete("big", "p").engine == "small"
        metrics = client.metrics
        assert metrics.breaker_trips == 1
        assert metrics.breaker_short_circuits == 2  # requests 3 and 4
        assert client.breaker("big").state == OPEN
        # Once open, big is no longer attempted at all.
        assert stub.calls.count("big") == 2

    def test_degraded_baseline_answer(self):
        stub = ScriptedClient({"big": [TransientError("down")]})
        client = ResilientClient(
            stub,
            policy=RetryPolicy(max_retries=0),
            baseline=lambda prompt: "degraded answer",
            clock=VirtualClock(),
        )
        response = client.complete("big", "prompt")
        assert response.engine == DEGRADED_ENGINE
        assert response.text == "degraded answer"
        assert response.choices[0].finish_reason == "degraded"
        assert client.metrics.degraded_answers == 1

    def test_terminal_error_without_baseline(self):
        stub = ScriptedClient({"big": [TransientError("down")]})
        client = ResilientClient(
            stub, policy=RetryPolicy(max_retries=0), clock=VirtualClock()
        )
        with pytest.raises(TransientError):
            client.complete("big", "prompt")
        assert client.metrics.exhausted == 1

    def test_circuit_open_error_when_whole_chain_is_open(self):
        stub = ScriptedClient({"big": [TransientError("down")]})
        client = ResilientClient(
            stub,
            policy=RetryPolicy(max_retries=0),
            failure_threshold=1,
            reset_timeout=1000.0,
            clock=VirtualClock(),
        )
        with pytest.raises(TransientError):
            client.complete("big", "prompt")
        with pytest.raises(CircuitOpenError):
            client.complete("big", "prompt")

    def test_deadline_stops_fallback_chain(self):
        clock = VirtualClock()
        stub = ScriptedClient(
            {
                "big": [RateLimitError("429", retry_after=10.0)],
                "small": ["never reached"],
            }
        )
        client = ResilientClient(
            stub,
            policy=RetryPolicy(max_retries=5, deadline=1.0),
            fallback_engines={"big": ["small"]},
            baseline=lambda prompt: "from baseline",
            clock=clock,
        )
        response = client.complete("big", "prompt")
        assert response.engine == DEGRADED_ENGINE
        assert client.metrics.deadline_exceeded == 1
        assert "small" not in stub.calls

    def test_rate_limiter_throttles(self):
        clock = VirtualClock()
        stub = ScriptedClient({"big": ["ok"]})
        client = ResilientClient(
            stub, requests_per_second=2.0, burst=1.0, clock=clock
        )
        for _ in range(3):
            client.complete("big", "p")
        assert client.metrics.throttle_seconds == pytest.approx(1.0)
        assert clock.slept == pytest.approx(1.0)

    def test_metrics_as_dict_is_complete(self):
        client = ResilientClient(ScriptedClient({"e": ["x"]}), clock=VirtualClock())
        client.complete("e", "p")
        snapshot = client.metrics.as_dict()
        assert snapshot["requests"] == 1
        assert set(snapshot) == {
            f.name for f in dataclasses.fields(client.metrics)
        }


@pytest.fixture(scope="module")
def hub(tiny_gpt_module, word_tokenizer_module):
    hub = ModelHub()
    hub.register("tiny-gpt", tiny_gpt_module, word_tokenizer_module)
    # The same weights under a second name play the "smaller engine" in
    # fallback chains.
    hub.register("tiny-gpt-mini", tiny_gpt_module, word_tokenizer_module)
    return hub


@pytest.fixture(scope="module")
def tiny_gpt_module(tiny_gpt):
    return tiny_gpt


@pytest.fixture(scope="module")
def word_tokenizer_module(word_tokenizer):
    return word_tokenizer


def _resilient_over_faults(hub, seed):
    clock = VirtualClock()
    injector = FaultInjector(HEAVY_FAULTS, seed=seed, clock=clock)
    faulty = FaultyCompletionClient(CompletionClient(hub), injector)
    resilient = ResilientClient(
        faulty,
        policy=RetryPolicy(max_retries=6, base_delay=0.05, max_delay=1.0),
        fallback_engines={"tiny-gpt": ["tiny-gpt-mini"]},
        failure_threshold=4,
        reset_timeout=5.0,
        baseline=lambda prompt: "",
        clock=clock,
        seed=seed,
    )
    return resilient, injector


class TestResilientCompletionIntegration:
    """The acceptance scenario: a real hub behind heavy injected faults."""

    PROMPTS = [f"the {noun} returns" for noun in ("database", "table", "index")] * 8

    def _run(self, hub, seed):
        client, injector = _resilient_over_faults(hub, seed)
        texts = [client.complete("tiny-gpt", p, max_tokens=4).text for p in self.PROMPTS]
        return texts, client.metrics.as_dict(), dict(injector.counts)

    def test_all_requests_answered_under_heavy_faults(self, hub):
        texts, metrics, injected = self._run(hub, seed=11)
        assert len(texts) == len(self.PROMPTS)
        assert metrics["successes"] + metrics["degraded_answers"] == len(self.PROMPTS)
        # the profile really did fire: periodic rate limits + transients
        assert injected["rate_limit"] > 0
        assert injected["transient"] + injected["timeout"] > 0
        assert metrics["retries"] > 0

    def test_same_seed_same_retries_fallbacks_results(self, hub):
        assert self._run(hub, seed=11) == self._run(hub, seed=11)

    def test_different_seed_different_fault_history(self, hub):
        _, metrics_a, injected_a = self._run(hub, seed=11)
        _, metrics_b, injected_b = self._run(hub, seed=12)
        assert (metrics_a, injected_a) != (metrics_b, injected_b)


class TestClientTranslatorReliability:
    @pytest.fixture(scope="class")
    def workload(self):
        return generate_workload(seed=0, examples_per_template=2)

    def _translator(self, hub, workload, seed):
        client, _ = _resilient_over_faults(hub, seed)
        return ClientTranslator(
            client,
            engine="tiny-gpt",
            workload=workload,
            max_new_tokens=8,
            fallback=RuleBasedTranslator(workload).translate,
        ), client

    def test_workload_completes_under_faults(self, hub, workload):
        translator, client = self._translator(hub, workload, seed=2)
        examples = workload.examples[:12]
        report = evaluate_translator(
            translator.translate, workload, examples, reliability_source=client
        )
        assert report.total == len(examples)  # zero unhandled exceptions
        assert report.reliability is not None
        assert report.reliability["requests"] == len(examples)
        assert report.reliability["retries"] > 0

    def test_deterministic_reports(self, hub, workload):
        def run():
            translator, client = self._translator(hub, workload, seed=2)
            report = evaluate_translator(
                translator.translate,
                workload,
                workload.examples[:12],
                reliability_source=client,
            )
            return (
                report.correct,
                report.reliability,
                translator.degraded,
            )

        assert run() == run()

    def test_degrades_to_rule_baseline_when_channel_dead(self, workload):
        stub = ScriptedClient({"tiny-gpt": [TransientError("down")]})
        client = ResilientClient(
            stub, policy=RetryPolicy(max_retries=0), clock=VirtualClock()
        )
        translator = ClientTranslator(
            client,
            engine="tiny-gpt",
            workload=workload,
            fallback=RuleBasedTranslator(workload).translate,
        )
        example = workload.examples[0]
        sql = translator.translate(example.question)
        assert translator.degraded == 1
        assert sql  # the rule baseline produced something

    def test_register_translator_roundtrip(self, hub, workload, tiny_gpt_module, word_tokenizer_module):
        from repro.text2sql.translator import LMTranslator

        translator = LMTranslator(
            model=tiny_gpt_module, tokenizer=word_tokenizer_module, workload=workload
        )
        name = register_translator(hub, "translator-engine", translator)
        assert name in hub


class TestCodexDBReliability:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        database.execute("CREATE TABLE emp (name TEXT, dept TEXT, salary INT)")
        database.execute(
            "INSERT INTO emp VALUES ('a', 'eng', 100), ('b', 'eng', 80), "
            "('c', 'sales', 90)"
        )
        return database

    QUERIES = [
        "SELECT name FROM emp",
        "SELECT name FROM emp WHERE salary > 85",
        "SELECT count ( * ) FROM emp",
    ]

    def _report(self, db, seed):
        # A shorter rate-limit period than HEAVY_FAULTS: this workload
        # makes far fewer requests than the completion benchmarks.
        profile = dataclasses.replace(HEAVY_FAULTS, rate_limit_every=3)
        return evaluate_codexdb(
            db,
            self.QUERIES,
            max_attempts=5,
            error_rate=0.2,
            seed=seed,
            fault_profile=profile,
            retry_policy=RetryPolicy(max_retries=6, base_delay=0.05, max_delay=1.0),
        )

    def test_workload_completes_under_faults(self, db):
        report = self._report(db, seed=1)
        assert report.total == len(self.QUERIES)  # zero unhandled exceptions
        assert report.succeeded == len(self.QUERIES)
        assert report.reliability is not None
        assert report.reliability["retries"] > 0
        assert report.reliability["injected_rate_limit"] > 0

    def test_deterministic_reports(self, db):
        a, b = self._report(db, seed=1), self._report(db, seed=1)
        assert (a.succeeded, a.attempts_used, a.reliability) == (
            b.succeeded, b.attempts_used, b.reliability,
        )

    def test_no_fault_profile_keeps_legacy_behaviour(self, db):
        report = evaluate_codexdb(db, self.QUERIES, error_rate=0.0, seed=0)
        assert report.reliability is None
        assert report.failed_transient == 0
        assert report.succeeded == len(self.QUERIES)


class TestClientImputerReliability:
    @pytest.fixture(scope="class")
    def dataset(self):
        examples = generate_imputation_dataset(num_examples=40, seed=0)
        return examples[:30], examples[30:]

    def test_predicts_without_exceptions_under_faults(self, hub, dataset):
        train, test = dataset
        client, _ = _resilient_over_faults(hub, seed=4)
        imputer = ClientImputer(client, engine="tiny-gpt", seed=0).fit(train)
        predictions = [imputer.predict(e) for e in test]
        assert len(predictions) == len(test)
        # Every answer is a legal class value (degraded ones come from
        # the majority baseline).
        assert all(p in imputer.classes for p in predictions)

    def test_deterministic_predictions(self, hub, dataset):
        train, test = dataset

        def run():
            client, _ = _resilient_over_faults(hub, seed=4)
            imputer = ClientImputer(client, engine="tiny-gpt", seed=0).fit(train)
            return (
                [imputer.predict(e) for e in test],
                imputer.degraded,
                imputer.fallbacks,
            )

        assert run() == run()

    def test_dead_channel_degrades_to_majority(self, dataset):
        train, test = dataset
        stub = ScriptedClient({"tiny-gpt": [TransientError("down")]})
        client = ResilientClient(
            stub, policy=RetryPolicy(max_retries=0), clock=VirtualClock()
        )
        imputer = ClientImputer(client, engine="tiny-gpt").fit(train)
        prediction = imputer.predict(test[0])
        assert imputer.degraded == 1
        assert prediction == imputer._fallback._majority

    def test_unfitted_rejected(self):
        from repro.errors import WrangleError

        imputer = ClientImputer(ScriptedClient({}), engine="e")
        with pytest.raises(WrangleError):
            imputer.predict(None)
