"""Tests for BPE, WordPiece and whitespace tokenizers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TokenizerError
from repro.tokenizers import (
    BPETokenizer,
    SpecialTokens,
    Vocabulary,
    WhitespaceTokenizer,
    WordPieceTokenizer,
)

CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "the lazy dog sleeps while the quick fox runs",
    "databases store rows and columns of data",
    "queries scan tables and return rows",
]


class TestVocabulary:
    def test_specials_have_stable_ids(self):
        v1, v2 = Vocabulary(), Vocabulary()
        assert v1.pad_id == v2.pad_id == 0
        assert v1.unk_id == v2.unk_id

    def test_add_is_idempotent(self):
        v = Vocabulary()
        a = v.add("hello")
        b = v.add("hello")
        assert a == b

    def test_unknown_token_maps_to_unk(self):
        v = Vocabulary()
        assert v.id_of("nonexistent") == v.unk_id

    def test_strict_lookup_raises(self):
        v = Vocabulary()
        with pytest.raises(TokenizerError):
            v.strict_id_of("nonexistent")

    def test_token_of_out_of_range(self):
        v = Vocabulary()
        with pytest.raises(TokenizerError):
            v.token_of(10_000)

    def test_roundtrip(self):
        v = Vocabulary.from_tokens(["a", "b", "c"])
        for token in ["a", "b", "c"]:
            assert v.token_of(v.id_of(token)) == token

    def test_len_counts_specials(self):
        v = Vocabulary()
        assert len(v) == len(SpecialTokens().all())


class TestBPE:
    @pytest.fixture(scope="class")
    def tok(self):
        t = BPETokenizer()
        t.train(CORPUS, vocab_size=120)
        return t

    def test_untrained_raises(self):
        with pytest.raises(TokenizerError):
            BPETokenizer().encode("hello")

    def test_empty_corpus_raises(self):
        with pytest.raises(TokenizerError):
            BPETokenizer().train([], vocab_size=50)

    def test_roundtrip_on_training_text(self, tok):
        for doc in CORPUS:
            assert tok.decode(tok.encode(doc).ids) == doc

    def test_learned_merges_compress(self, tok):
        # Frequent words should need fewer tokens than characters.
        pieces = tok.tokenize("the")
        assert len(pieces) < 3

    def test_unseen_word_falls_back_to_chars(self, tok):
        pieces = tok.tokenize("zebra")
        assert len(pieces) >= 1  # still encodable via characters/unk

    def test_bos_eos(self, tok):
        enc = tok.encode("the dog", add_bos=True, add_eos=True)
        assert enc.ids[0] == tok.vocab.bos_id
        assert enc.ids[-1] == tok.vocab.eos_id

    def test_padding_and_mask(self, tok):
        enc = tok.encode("the dog", pad_to=20)
        assert len(enc.ids) == 20
        assert sum(enc.attention_mask) < 20
        assert enc.ids[-1] == tok.vocab.pad_id

    def test_pad_too_short_raises(self, tok):
        with pytest.raises(TokenizerError):
            tok.encode("the quick brown fox jumps", pad_to=2)

    def test_truncation(self, tok):
        enc = tok.encode("the quick brown fox jumps over the lazy dog", max_length=4)
        assert len(enc.ids) == 4

    def test_deterministic_training(self):
        a, b = BPETokenizer(), BPETokenizer()
        a.train(CORPUS, vocab_size=100)
        b.train(CORPUS, vocab_size=100)
        assert a.vocab.to_dict() == b.vocab.to_dict()
        assert a.merges == b.merges

    def test_vocab_size_respected(self, tok):
        assert tok.vocab_size <= 120

    def test_word_memoization_is_transparent(self):
        tok = BPETokenizer()
        tok.train(CORPUS, vocab_size=120)
        text = "the quick fox scans rows"
        cold = tok.encode(text).ids
        assert tok._word_cache  # encode populated the memo
        assert tok.encode(text).ids == cold  # warm hit, same tokens

    def test_retrain_invalidates_word_cache(self):
        new_corpus = ["aa ab aa ab abab", "abab aa bb ab"]
        tok, twin = BPETokenizer(), BPETokenizer()
        for t in (tok, twin):
            t.train(CORPUS, vocab_size=120)
        tok.encode("the quick brown fox")  # populate the memo
        assert tok._word_cache
        # Retrain both; only `tok` ever held cached merge results. Any
        # stale entry surviving train() would make them diverge.
        for t in (tok, twin):
            t.train(new_corpus, vocab_size=160)
        assert not tok._word_cache
        for text in ("abab aa", "the quick brown fox"):
            assert tok.encode(text).ids == twin.encode(text).ids


class TestWordPiece:
    @pytest.fixture(scope="class")
    def tok(self):
        t = WordPieceTokenizer()
        t.train(CORPUS, vocab_size=150)
        return t

    def test_roundtrip_words(self, tok):
        text = "the quick brown fox"
        decoded = tok.decode(tok.encode(text).ids)
        assert decoded == text

    def test_continuation_prefix(self, tok):
        # A rare-but-seen word should split into pieces with ## continuations.
        pieces = tok.tokenize("jumps")
        rebuilt = pieces[0] + "".join(p[2:] for p in pieces[1:])
        assert rebuilt == "jumps"
        for piece in pieces[1:]:
            assert piece.startswith("##")

    def test_unseen_character_is_unk(self, tok):
        pieces = tok.tokenize("日本")
        assert pieces and all(p == tok.vocab.specials.unk for p in pieces)

    def test_lowercasing(self, tok):
        assert tok.tokenize("THE") == tok.tokenize("the")

    def test_pair_encoding_structure(self, tok):
        enc = tok.encode_pair("the fox", "the dog")
        assert enc.ids[0] == tok.vocab.cls_id
        assert enc.ids.count(tok.vocab.sep_id) == 2


class TestWhitespace:
    def test_word_level_roundtrip(self):
        t = WhitespaceTokenizer()
        t.train(CORPUS, vocab_size=100)
        text = "queries scan tables"
        assert t.decode(t.encode(text).ids) == text

    def test_oov_becomes_unk(self):
        t = WhitespaceTokenizer()
        t.train(["a b c"], vocab_size=50)
        enc = t.encode("a z")
        assert enc.ids[1] == t.vocab.unk_id


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet=st.characters(whitelist_categories=("Ll",), max_codepoint=127), min_size=1, max_size=30))
def test_bpe_roundtrip_property(word):
    """BPE decode(encode(x)) recovers any whitespace-normalized text
    composed of characters seen in training."""
    tok = BPETokenizer()
    tok.train([" ".join("abcdefghijklmnopqrstuvwxyz")], vocab_size=60)
    normalized = " ".join(word.split())
    assert tok.decode(tok.encode(normalized).ids) == normalized
