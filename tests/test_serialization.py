"""Tests for tokenizer and model-hub persistence."""

import numpy as np
import pytest

from repro.api import ModelHub
from repro.errors import ModelError, TokenizerError
from repro.tokenizers import (
    BPETokenizer,
    WhitespaceTokenizer,
    WordPieceTokenizer,
    load_tokenizer,
    save_tokenizer,
)

CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "databases store rows and columns of data",
]


class TestTokenizerSerialization:
    @pytest.mark.parametrize("cls,kwargs", [
        (BPETokenizer, {}),
        (WordPieceTokenizer, {"lowercase": True, "max_subword_len": 8}),
        (WhitespaceTokenizer, {"lowercase": False}),
    ])
    def test_roundtrip_encodes_identically(self, tmp_path, cls, kwargs):
        tokenizer = cls(**kwargs)
        tokenizer.train(CORPUS, vocab_size=150)
        path = save_tokenizer(tokenizer, tmp_path / "tok")
        restored = load_tokenizer(path)
        assert type(restored) is cls
        for doc in CORPUS + ["brown rows jump"]:
            assert restored.encode(doc).ids == tokenizer.encode(doc).ids
            assert restored.decode(restored.encode(doc).ids) == tokenizer.decode(
                tokenizer.encode(doc).ids
            )

    def test_options_preserved(self, tmp_path):
        tokenizer = WordPieceTokenizer(lowercase=False, max_subword_len=5)
        tokenizer.train(CORPUS, vocab_size=100)
        restored = load_tokenizer(save_tokenizer(tokenizer, tmp_path / "wp"))
        assert restored.lowercase is False
        assert restored.max_subword_len == 5

    def test_untrained_save_raises(self, tmp_path):
        with pytest.raises(TokenizerError):
            save_tokenizer(BPETokenizer(), tmp_path / "x")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TokenizerError):
            load_tokenizer(tmp_path / "nothere.json")

    def test_corrupt_class_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"class": "Fancy", "tokens": []}')
        with pytest.raises(TokenizerError):
            load_tokenizer(path)


class TestHubPersistence:
    def test_save_load_roundtrip(self, tmp_path, tiny_gpt, tiny_bert, word_tokenizer):
        hub = ModelHub()
        hub.register("gpt", tiny_gpt, word_tokenizer)
        hub.register("bert", tiny_bert, word_tokenizer)
        hub.save(tmp_path / "hub")

        restored = ModelHub.load(tmp_path / "hub")
        assert restored.names() == ["bert", "gpt"]
        ids = np.array([[1, 2, 3]])
        np.testing.assert_allclose(
            restored.get("gpt").model(ids).data, tiny_gpt(ids).data
        )

    def test_load_empty_dir_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ModelError):
            ModelHub.load(tmp_path / "empty")

    def test_load_missing_tokenizer_raises(self, tmp_path, tiny_gpt, word_tokenizer):
        hub = ModelHub()
        hub.register("solo", tiny_gpt, word_tokenizer)
        hub.save(tmp_path / "partial")
        (tmp_path / "partial" / "solo.tokenizer.json").unlink()
        with pytest.raises(ModelError):
            ModelHub.load(tmp_path / "partial")
