"""Tests for the interactive SQL shell."""

import io

import pytest

from repro.durability import DurableDatabase
from repro.sql import Database
from repro.sql.shell import build_database, format_result, handle_line, repl
from repro.sql.table import Table


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INT, name TEXT)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, NULL)")
    return database


class TestFormatting:
    def test_aligned_table(self, db):
        out = format_result(db.execute("SELECT * FROM t ORDER BY id"))
        lines = out.splitlines()
        assert lines[0].split() == ["id", "name"]
        assert "NULL" in out
        assert "(2 rows)" in out

    def test_dml_summary(self, db):
        out = format_result(db.execute("INSERT INTO t VALUES (3, 'c')"))
        assert "1 rows affected" in out

    def test_single_row_footer(self, db):
        out = format_result(db.execute("SELECT COUNT(*) FROM t"))
        assert "(1 row)" in out


class TestHandleLine:
    def test_sql_executes(self, db):
        out = handle_line(db, "SELECT COUNT(*) FROM t")
        assert "2" in out

    def test_tables_command(self, db):
        assert handle_line(db, ".tables") == "t"

    def test_schema_command(self, db):
        out = handle_line(db, ".schema t")
        assert "id  INT" in out
        assert "name  TEXT" in out

    def test_schema_unknown_table(self, db):
        assert "error" in handle_line(db, ".schema ghost")

    def test_help(self, db):
        assert ".tables" in handle_line(db, ".help")

    def test_error_is_reported_not_raised(self, db):
        out = handle_line(db, "SELEKT broken")
        assert out.startswith("error:")

    def test_quit_returns_none(self, db):
        assert handle_line(db, ".quit") is None

    def test_empty_line(self, db):
        assert handle_line(db, "   ") == ""


class TestRepl:
    def test_scripted_session(self, db):
        stdin = io.StringIO("SELECT COUNT(*) FROM t\n.tables\n.quit\n")
        stdout = io.StringIO()
        repl(db, stdin=stdin, stdout=stdout)
        output = stdout.getvalue()
        assert "2" in output
        assert "t" in output

    def test_eof_terminates(self, db):
        stdin = io.StringIO("")
        stdout = io.StringIO()
        repl(db, stdin=stdin, stdout=stdout)  # must not hang or raise


class TestExport:
    def test_export_writes_csv_atomically(self, db, tmp_path):
        target = tmp_path / "out.csv"
        out = handle_line(db, f".export t {target}")
        assert "exported t" in out
        loaded = Table.from_csv("t", target)
        assert len(loaded.rows) == 2

    def test_export_usage_and_unknown_table(self, db, tmp_path):
        assert "usage" in handle_line(db, ".export t")
        assert "error" in handle_line(db, f".export ghost {tmp_path}/x.csv")

    def test_export_listed_in_help(self, db):
        assert ".export" in handle_line(db, ".help")


class TestDurableShell:
    def test_build_database_plain(self):
        db, csvs = build_database(["a.csv", "b.csv"])
        assert isinstance(db, Database)
        assert csvs == ["a.csv", "b.csv"]

    def test_build_database_durable(self, tmp_path):
        db, csvs = build_database(["--durable", str(tmp_path / "d")])
        assert isinstance(db, DurableDatabase)
        assert csvs == []
        db.close()

    def test_durable_session_survives_restart(self, tmp_path):
        db, _ = build_database(["--durable", str(tmp_path / "d")])
        assert "ok" in handle_line(db, "CREATE TABLE t (id INT)")
        assert "ok" in handle_line(db, "INSERT INTO t VALUES (1), (2)")
        db.close()
        resumed, _ = build_database(["--durable", str(tmp_path / "d")])
        assert "2" in handle_line(resumed, "SELECT COUNT(*) FROM t")
        resumed.close()

    def test_missing_durable_argument(self):
        with pytest.raises(SystemExit):
            build_database(["--durable"])
