"""Tests for the text-to-SQL subsystem: workload, grammar, translators."""

import pytest

from repro.sql import Database
from repro.text2sql import (
    RuleBasedTranslator,
    SQLGrammarConstraint,
    allowed_continuations,
    evaluate_translator,
    execution_match,
    generate_workload,
    train_translator,
)
from repro.text2sql.constraint import Alt, Number, Opt, Seq, Tok, build_sql_grammar
from repro.text2sql.translator import build_prompt, linearize_example
from repro.text2sql.workload import sql_to_engine_dialect
from repro.utils.text import simple_word_tokenize


@pytest.fixture(scope="module")
def workload():
    return generate_workload(seed=0, examples_per_template=3)


@pytest.fixture(scope="module")
def trained_translator(workload):
    train, _ = workload.split(test_fraction=0.2, seed=1)
    return train_translator(workload, train, steps=120, seed=0)


class TestWorkload:
    def test_examples_cover_all_hardness_levels(self, workload):
        levels = {ex.hardness for ex in workload.examples}
        assert levels == {"easy", "medium", "hard"}

    def test_all_gold_sql_executes(self, workload):
        for example in workload.examples:
            workload.db.execute(sql_to_engine_dialect(example.sql))

    def test_deterministic_generation(self):
        a = generate_workload(seed=3, examples_per_template=2)
        b = generate_workload(seed=3, examples_per_template=2)
        assert [e.sql for e in a.examples] == [e.sql for e in b.examples]

    def test_different_seeds_use_different_domains(self):
        a = generate_workload(seed=0)
        b = generate_workload(seed=1)
        assert a.entity_table != b.entity_table

    def test_split(self, workload):
        train, test = workload.split(test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(workload.examples)
        assert test

    def test_value_lexicon_has_categorical_values(self, workload):
        lexicon = workload.value_lexicon()
        assert workload.cat_col in lexicon
        assert lexicon[workload.cat_col]

    def test_dialect_conversion(self):
        lin = "select name from t where cat = ' foo bar ' and x > = 5"
        out = sql_to_engine_dialect(lin)
        assert "'foo bar'" in out
        assert ">= 5" in out

    def test_dialect_qualified_names(self):
        assert sql_to_engine_dialect("select a . b from a") == "select a.b from a"


class TestGrammarCombinators:
    def test_tok_match_and_suggest(self):
        rule = Tok("a", "b")
        ends, allowed = rule.advance(["a"], 0)
        assert ends == {1}
        ends, allowed = rule.advance([], 0)
        assert allowed == {"a", "b"}

    def test_seq_threading(self):
        rule = Seq(Tok("a"), Tok("b"))
        ends, _ = rule.advance(["a", "b"], 0)
        assert ends == {2}
        _, allowed = rule.advance(["a"], 0)
        assert allowed == {"b"}

    def test_alt_union(self):
        rule = Alt(Seq(Tok("a"), Tok("x")), Seq(Tok("a"), Tok("y")))
        _, allowed = rule.advance(["a"], 0)
        assert allowed == {"x", "y"}

    def test_opt(self):
        rule = Seq(Tok("a"), Opt(Tok("b")), Tok("c"))
        ends, _ = rule.advance(["a", "c"], 0)
        assert 2 in ends
        ends, _ = rule.advance(["a", "b", "c"], 0)
        assert 3 in ends

    def test_number_accepts_any_integer(self):
        rule = Number(["5"])
        ends, _ = rule.advance(["123"], 0)
        assert ends == {1}
        _, allowed = rule.advance([], 0)
        assert allowed == {"5"}

    def test_invalid_prefix_dead_ends(self):
        rule = Seq(Tok("a"), Tok("b"))
        ends, allowed = rule.advance(["z"], 0)
        assert not ends and not allowed


class TestSQLGrammar:
    def test_accepts_every_gold_query(self, workload):
        grammar = build_sql_grammar(workload)
        for example in workload.examples:
            tokens = simple_word_tokenize(example.sql.lower())
            _, complete = allowed_continuations(grammar, tokens)
            assert complete, f"grammar rejects gold: {example.sql}"

    def test_starts_with_select(self, workload):
        grammar = build_sql_grammar(workload)
        allowed, complete = allowed_continuations(grammar, [])
        assert allowed == {"select"}
        assert not complete

    def test_schema_consistency_from_table(self, workload):
        """After 'select <entity column> from', only tables containing
        that column are allowed — the PICARD property."""
        grammar = build_sql_grammar(workload)
        column = workload.num_cols[0]  # lives only in the entity table
        allowed, _ = allowed_continuations(grammar, ["select", column, "from"])
        assert workload.entity_table in allowed
        assert workload.cat_table not in allowed

    def test_rejects_unknown_column(self, workload):
        grammar = build_sql_grammar(workload)
        allowed, _ = allowed_continuations(grammar, ["select"])
        assert "nonexistent_col" not in allowed

    def test_value_linking_numbers(self, workload):
        grammar = build_sql_grammar(workload, question="players with score above 42")
        column = workload.num_cols[0]
        table = workload.entity_table
        prefix = ["select", "name", "from", table, "where", column, ">"]
        allowed, _ = allowed_continuations(grammar, prefix)
        assert "42" in allowed

    def test_categorical_values_from_lexicon(self, workload):
        grammar = build_sql_grammar(workload)
        lexicon = workload.value_lexicon()
        table = workload.entity_table
        prefix = ["select", "name", "from", table, "where", workload.cat_col, "=", "'"]
        allowed, _ = allowed_continuations(grammar, prefix)
        assert set(lexicon[workload.cat_col]) <= allowed


class TestExecutionMatch:
    def test_equivalent_queries_match(self, workload):
        t = workload.entity_table
        assert execution_match(
            workload.db,
            f"select count ( * ) from {t}",
            f"select count ( * ) from {t} where 1 = 1",
        )

    def test_different_results_do_not_match(self, workload):
        t = workload.entity_table
        assert not execution_match(
            workload.db,
            f"select count ( * ) from {t}",
            f"select count ( * ) from {workload.cat_table}",
        )

    def test_invalid_prediction_is_a_miss(self, workload):
        assert not execution_match(workload.db, "select nothing sensible", "select count ( * ) from " + workload.entity_table)

    def test_order_sensitive_when_gold_orders(self, workload):
        t = workload.entity_table
        num = workload.num_cols[0]
        asc = f"select {workload.name_col} from {t} order by {num} limit 3"
        desc = f"select {workload.name_col} from {t} order by {num} desc limit 3"
        assert not execution_match(workload.db, asc, desc)


class TestRuleBaseline:
    def test_produces_valid_sql_everywhere(self, workload):
        translator = RuleBasedTranslator(workload)
        report = evaluate_translator(translator.translate, workload, workload.examples)
        assert report.validity_rate == 1.0

    def test_strong_on_easy(self, workload):
        translator = RuleBasedTranslator(workload)
        report = evaluate_translator(translator.translate, workload, workload.examples)
        assert report.hardness_accuracy("easy") >= 0.8

    def test_count_question(self, workload):
        translator = RuleBasedTranslator(workload)
        sql = translator.translate(f"how many {workload.entity_table} are there")
        assert sql == f"select count ( * ) from {workload.entity_table}"


class TestLMTranslator:
    def test_prompt_layout(self):
        prompt = build_prompt("how many rows")
        assert prompt == "q : how many rows ; sql :"

    def test_translations_are_strings(self, trained_translator):
        out = trained_translator.translate("how many are there", constrained=True)
        assert isinstance(out, str)

    def test_constrained_output_is_always_valid(self, trained_translator, workload):
        from repro.text2sql.evaluate import is_valid_sql

        _, test = workload.split(test_fraction=0.2, seed=1)
        for example in test:
            predicted = trained_translator.translate(example.question, constrained=True)
            assert predicted == "" or is_valid_sql(workload.db, predicted)

    def test_constrained_at_least_as_accurate(self, trained_translator, workload):
        _, test = workload.split(test_fraction=0.2, seed=1)
        unconstrained = evaluate_translator(
            lambda q: trained_translator.translate(q, constrained=False),
            workload, test,
        )
        constrained = evaluate_translator(
            lambda q: trained_translator.translate(q, constrained=True),
            workload, test,
        )
        assert constrained.accuracy >= unconstrained.accuracy
        assert constrained.validity_rate >= unconstrained.validity_rate

    def test_learns_the_task_at_all(self, trained_translator, workload):
        _, test = workload.split(test_fraction=0.2, seed=1)
        constrained = evaluate_translator(
            lambda q: trained_translator.translate(q, constrained=True),
            workload, test,
        )
        assert constrained.accuracy > 0.2  # far above the ~0 random baseline


class TestStaticValidity:
    """The static_valid metric: schema-level vetting without execution."""

    def test_statically_valid_query(self, workload):
        from repro.text2sql import is_statically_valid

        t = workload.entity_table
        assert is_statically_valid(workload.db, f"select count ( * ) from {t}")

    def test_unknown_column_caught_without_execution(self, workload):
        from repro.text2sql import is_statically_valid

        t = workload.entity_table
        assert not is_statically_valid(
            workload.db, f"select no_such_column from {t}"
        )

    def test_unknown_table_caught(self, workload):
        from repro.text2sql import is_statically_valid

        assert not is_statically_valid(workload.db, "select 1 from no_such_table")

    def test_report_includes_static_valid(self, workload):
        translator = RuleBasedTranslator(workload)
        report = evaluate_translator(translator.translate, workload, workload.examples)
        assert report.static_valid == report.total
        assert report.static_valid_rate == 1.0

    def test_static_valid_counts_only_clean_predictions(self, workload):
        report = evaluate_translator(
            lambda q: "select no_such_column from " + workload.entity_table,
            workload, workload.examples[:4],
        )
        assert report.static_valid == 0
        assert report.static_valid_rate == 0.0

    def test_empty_prediction_not_statically_valid(self, workload):
        report = evaluate_translator(lambda q: "", workload, workload.examples[:4])
        assert report.static_valid == 0

    def test_translate_vet_filters_invalid_sql(self, trained_translator, workload):
        _, test = workload.split(test_fraction=0.2, seed=1)
        from repro.text2sql.evaluate import is_statically_valid

        for example in test:
            predicted = trained_translator.translate(
                example.question, constrained=False, vet=True
            )
            assert predicted == "" or is_statically_valid(workload.db, predicted)
