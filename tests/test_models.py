"""Tests for model configs, GPT/BERT models, heads, registry, checkpoints."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.models import (
    BERTModel,
    GPTModel,
    HISTORICAL_MODELS,
    ModelConfig,
    RecurrentLM,
    SequenceClassifier,
    load_model,
    named_config,
    registry_names,
    save_model,
    transformer_param_count,
)
from repro.models.config import config_param_count


class TestConfig:
    def test_invalid_heads(self):
        with pytest.raises(ModelError):
            ModelConfig(vocab_size=10, dim=10, num_heads=3)

    def test_invalid_sizes(self):
        with pytest.raises(ModelError):
            ModelConfig(vocab_size=0)

    def test_param_count_matches_built_gpt(self):
        config = ModelConfig.tiny(vocab_size=50)
        model = GPTModel(config)
        assert model.num_parameters() == config_param_count(config)

    def test_param_count_matches_built_bert(self):
        config = ModelConfig.tiny(vocab_size=50, causal=False)
        model = BERTModel(config)
        assert model.num_parameters() == config_param_count(config)

    def test_param_count_untied(self):
        config = ModelConfig(
            vocab_size=50, max_seq_len=16, dim=16, num_layers=1,
            num_heads=2, ff_dim=32, tie_embeddings=False,
        )
        model = GPTModel(config)
        assert model.num_parameters() == config_param_count(config)

    def test_untied_has_more_params(self):
        tied = transformer_param_count(100, 32, 16, 2, 64, tie_embeddings=True)
        untied = transformer_param_count(100, 32, 16, 2, 64, tie_embeddings=False)
        assert untied == tied + 100 * 16 + 100


class TestGPT:
    def test_requires_causal_config(self):
        with pytest.raises(ModelError):
            GPTModel(ModelConfig.tiny(vocab_size=10, causal=False))

    def test_logits_shape(self):
        model = GPTModel(ModelConfig.tiny(vocab_size=40))
        out = model(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 40)

    def test_sequence_too_long_raises(self):
        config = ModelConfig.tiny(vocab_size=10)
        model = GPTModel(config)
        with pytest.raises(ModelError):
            model(np.zeros((1, config.max_seq_len + 1), dtype=np.int64))

    def test_1d_input_raises(self):
        model = GPTModel(ModelConfig.tiny(vocab_size=10))
        with pytest.raises(ModelError):
            model(np.array([1, 2, 3]))

    def test_causality_of_logits(self):
        """Changing a future token must not change logits at earlier
        positions."""
        model = GPTModel(ModelConfig.tiny(vocab_size=20), seed=1)
        a = np.array([[1, 2, 3, 4, 5]])
        b = np.array([[1, 2, 3, 9, 9]])
        la = model(a).data
        lb = model(b).data
        np.testing.assert_allclose(la[0, :3], lb[0, :3], atol=1e-10)

    def test_deterministic_init(self):
        m1 = GPTModel(ModelConfig.tiny(vocab_size=20), seed=5)
        m2 = GPTModel(ModelConfig.tiny(vocab_size=20), seed=5)
        np.testing.assert_array_equal(m1.token_emb.weight.data, m2.token_emb.weight.data)


class TestBERT:
    def test_requires_noncausal_config(self):
        with pytest.raises(ModelError):
            BERTModel(ModelConfig.tiny(vocab_size=10, causal=True))

    def test_bidirectional_context(self):
        """Changing a later token SHOULD change earlier hidden states."""
        model = BERTModel(ModelConfig.tiny(vocab_size=20, causal=False), seed=1)
        a = np.array([[1, 2, 3, 4]])
        b = np.array([[1, 2, 3, 9]])
        ha = model.encode(a).data
        hb = model.encode(b).data
        assert not np.allclose(ha[0, 0], hb[0, 0])

    def test_pooled_ignores_padding(self):
        model = BERTModel(ModelConfig.tiny(vocab_size=20, causal=False), seed=2)
        ids = np.array([[1, 2, 3, 0, 0]])
        mask = np.array([[1, 1, 1, 0, 0]])
        pooled_masked = model.pooled(ids, mask).data
        # Pooling over only the real prefix should equal masked pooling.
        pooled_prefix = model.encode(ids, mask).data[0, :3].mean(axis=0)
        np.testing.assert_allclose(pooled_masked[0], pooled_prefix, atol=1e-10)

    def test_embed_texts_returns_numpy(self):
        model = BERTModel(ModelConfig.tiny(vocab_size=20, causal=False))
        out = model.embed_texts(np.array([[1, 2, 3]]))
        assert isinstance(out, np.ndarray)
        assert out.shape == (1, model.config.dim)


class TestRecurrent:
    def test_logits_shape(self):
        model = RecurrentLM(ModelConfig.tiny(vocab_size=30))
        out = model(np.array([[1, 2, 3, 4]]))
        assert out.shape == (1, 4, 30)

    def test_gradients_flow(self):
        from repro.autograd import cross_entropy

        model = RecurrentLM(ModelConfig.tiny(vocab_size=30))
        logits = model(np.array([[1, 2, 3, 4]]))
        loss = cross_entropy(logits.reshape(-1, 30), np.array([2, 3, 4, 5]))
        loss.backward()
        assert model.recurrent.weight.grad is not None


class TestClassifierHead:
    def test_bert_backbone_predict_shape(self):
        backbone = BERTModel(ModelConfig.tiny(vocab_size=30, causal=False))
        clf = SequenceClassifier(backbone, num_classes=3)
        preds = clf.predict(np.array([[1, 2, 3], [4, 5, 6]]))
        assert preds.shape == (2,)
        assert set(preds) <= {0, 1, 2}

    def test_gpt_backbone_uses_last_real_position(self):
        backbone = GPTModel(ModelConfig.tiny(vocab_size=30))
        clf = SequenceClassifier(backbone, num_classes=2)
        ids = np.array([[1, 2, 3, 0]])
        mask = np.array([[1, 1, 1, 0]])
        logits_masked = clf(ids, mask).data
        # Same prefix without padding should produce identical logits.
        logits_prefix = clf(ids[:, :3], mask[:, :3]).data
        np.testing.assert_allclose(logits_masked, logits_prefix, atol=1e-9)


class TestRegistry:
    def test_all_models_within_tolerance(self):
        for model in HISTORICAL_MODELS:
            assert model.relative_error() <= model.tolerance, (
                f"{model.name}: estimated {model.estimated_params():,} vs "
                f"published {model.published_params:,}"
            )

    def test_timeline_spans_four_orders_of_magnitude(self):
        counts = [m.estimated_params() for m in HISTORICAL_MODELS]
        assert max(counts) / min(counts) > 1e3

    def test_years_sorted(self):
        years = [m.year for m in HISTORICAL_MODELS]
        assert years == sorted(years)

    def test_named_lookup(self):
        assert named_config("GPT-3").published_params == 175_000_000_000
        with pytest.raises(ModelError):
            named_config("GPT-9")

    def test_registry_names_order(self):
        names = registry_names()
        assert names[0] == "ELMo"
        assert "PaLM" in names

    def test_scaled_config_is_runnable(self):
        config = named_config("GPT-3").to_config()
        model = GPTModel(config)
        out = model(np.array([[1, 2, 3]]))
        assert out.shape[-1] == config.vocab_size


class TestCheckpoint:
    def test_save_load_roundtrip(self, tmp_path):
        model = GPTModel(ModelConfig.tiny(vocab_size=25), seed=9)
        path = save_model(model, tmp_path / "model.npz")
        restored = load_model(path)
        assert isinstance(restored, GPTModel)
        ids = np.array([[1, 2, 3]])
        np.testing.assert_allclose(model(ids).data, restored(ids).data)

    def test_bert_roundtrip(self, tmp_path):
        model = BERTModel(ModelConfig.tiny(vocab_size=25, causal=False), seed=9)
        path = save_model(model, tmp_path / "bert")
        restored = load_model(path)
        assert isinstance(restored, BERTModel)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ModelError):
            load_model(tmp_path / "nope.npz")

    def test_non_checkpoint_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ModelError):
            load_model(path)


class TestCheckpointIntegrity:
    """Every corruption mode surfaces as a typed error, never a raw
    numpy/JSON/zipfile exception, and saves are atomic under crashes."""

    @pytest.fixture()
    def saved(self, tmp_path):
        model = GPTModel(ModelConfig.tiny(vocab_size=25), seed=9)
        path = save_model(model, tmp_path / "model.npz")
        return model, path

    def test_truncated_file_raises_typed_error(self, saved):
        from repro.errors import CorruptCheckpointError

        _, path = saved
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptCheckpointError):
            load_model(path)

    def test_garbage_file_raises_typed_error(self, saved):
        from repro.errors import CorruptCheckpointError

        _, path = saved
        path.write_bytes(b"\x00\x01garbage" * 40)
        with pytest.raises(CorruptCheckpointError):
            load_model(path)

    def test_flipped_payload_byte_raises_typed_error(self, saved):
        from repro.errors import CorruptCheckpointError

        _, path = saved
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptCheckpointError):
            load_model(path)

    def test_sha_mismatch_raises_typed_error(self, tmp_path):
        import dataclasses
        import json

        from repro.errors import CorruptCheckpointError

        model = GPTModel(ModelConfig.tiny(vocab_size=25), seed=9)
        meta = {
            "model_class": "GPTModel",
            "config": dataclasses.asdict(model.config),
            "format": 1,
            "sha256": "0" * 64,
        }
        arrays = {f"param::{k}": v for k, v in model.state_dict().items()}
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        path = tmp_path / "tampered.npz"
        np.savez(path, **arrays)
        with pytest.raises(CorruptCheckpointError, match="SHA-256"):
            load_model(path)

    def test_garbled_metadata_raises_typed_error(self, tmp_path):
        from repro.errors import CorruptCheckpointError

        path = tmp_path / "bad_meta.npz"
        np.savez(
            path,
            __meta__=np.frombuffer(b"{not json", dtype=np.uint8),
        )
        with pytest.raises(CorruptCheckpointError):
            load_model(path)

    def test_wrong_schema_metadata_raises_typed_error(self, tmp_path):
        import json

        from repro.errors import CorruptCheckpointError

        path = tmp_path / "wrong_schema.npz"
        np.savez(
            path,
            __meta__=np.frombuffer(
                json.dumps({"hello": "world"}).encode("utf-8"), dtype=np.uint8
            ),
        )
        with pytest.raises(CorruptCheckpointError):
            load_model(path)

    @pytest.mark.parametrize(
        "point",
        [
            "checkpoint-before-write",
            "checkpoint-torn-write",
            "checkpoint-before-fsync",
            "mid-checkpoint-rename",
        ],
    )
    def test_interrupted_save_keeps_previous_checkpoint(self, saved, point):
        from repro.durability import CrashInjector
        from repro.errors import SimulatedCrash

        old_model, path = saved
        new_model = GPTModel(ModelConfig.tiny(vocab_size=25), seed=77)
        with pytest.raises(SimulatedCrash):
            save_model(new_model, path, crash=CrashInjector().at(point))
        restored = load_model(path)  # the old checkpoint is intact
        ids = np.array([[1, 2, 3]])
        np.testing.assert_allclose(old_model(ids).data, restored(ids).data)

    def test_interrupted_save_on_fresh_path_leaves_nothing(self, tmp_path):
        from repro.durability import CrashInjector
        from repro.errors import SimulatedCrash

        model = GPTModel(ModelConfig.tiny(vocab_size=25), seed=9)
        path = tmp_path / "fresh.npz"
        with pytest.raises(SimulatedCrash):
            save_model(
                model, path, crash=CrashInjector().at("checkpoint-torn-write")
            )
        with pytest.raises(ModelError):
            load_model(path)
