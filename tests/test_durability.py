"""Tests for repro.durability: WAL framing, crash injection, atomic writes,
DurableDatabase recovery, the crash matrix, and the durable NeuralDB."""

import pytest

from repro.durability import (
    CrashInjector,
    DurableDatabase,
    DurableNeuralDatabase,
    WriteAheadLog,
    atomic_write_bytes,
    discover_crash_points,
    dump_database,
    encode_record,
    random_dml_workload,
    read_wal,
    run_crash_matrix,
    run_crash_trial,
    scan_wal_bytes,
)
from repro.durability.wal import HEADER_LEN
from repro.errors import (
    DurabilityError,
    NeuralDBError,
    SimulatedCrash,
    SnapshotCorruptionError,
    SQLExecutionError,
    WALCorruptionError,
)
from repro.neuraldb.retriever import LexicalRetriever
from repro.sql import Database


# -- WAL framing and tail classification ------------------------------------
class TestWALFraming:
    def test_encode_scan_roundtrip(self):
        records = [{"lsn": i, "t": "stmt", "sql": f"op {i}"} for i in (1, 2, 3)]
        data = b"".join(encode_record(r) for r in records)
        result = scan_wal_bytes(data)
        assert result.records == records
        assert result.valid_bytes == len(data)
        assert result.torn_bytes == 0
        assert result.error is None
        assert result.last_lsn == 3

    def test_every_torn_prefix_classified_safely(self):
        """Cutting the log anywhere inside the final record is a torn
        tail — earlier records survive, nothing is misread, no error."""
        kept = [{"lsn": 1, "k": "first"}, {"lsn": 2, "k": "second"}]
        torn = {"lsn": 3, "k": "third record with a longer body"}
        prefix = b"".join(encode_record(r) for r in kept)
        data = prefix + encode_record(torn)
        for cut in range(len(prefix) + 1, len(data)):
            result = scan_wal_bytes(data[:cut])
            assert result.records == kept, f"cut at byte {cut}"
            assert result.error is None, f"cut at byte {cut}"
            assert result.valid_bytes == len(prefix)
            assert result.torn_bytes == cut - len(prefix)

    def test_corrupt_middle_record_is_an_error(self):
        data = bytearray(
            b"".join(encode_record({"lsn": i}) for i in (1, 2, 3))
        )
        data[len(data) // 2] ^= 0xFF
        result = scan_wal_bytes(bytes(data))
        assert result.error is not None

    def test_corrupt_payload_of_complete_final_record(self):
        """A fully written record failing its CRC is corruption, not a
        torn tail — it was acknowledged, so it must not be dropped."""
        good = encode_record({"lsn": 1, "v": "aaaa"})
        bad = bytearray(encode_record({"lsn": 2, "v": "bbbb"}))
        bad[HEADER_LEN + 2] ^= 0x01
        result = scan_wal_bytes(good + bytes(bad))
        assert result.records == [{"lsn": 1, "v": "aaaa"}]
        assert "CRC" in result.error

    def test_garbage_tail_is_an_error(self):
        good = encode_record({"lsn": 1})
        result = scan_wal_bytes(good + b"x" * (HEADER_LEN + 4))
        assert result.records == [{"lsn": 1}]
        assert result.error is not None

    def test_short_garbage_tail_reads_as_torn(self):
        # Less than a header's worth of trailing bytes cannot be told
        # apart from a half-written header: classified torn, dropped.
        good = encode_record({"lsn": 1})
        result = scan_wal_bytes(good + b"xyz")
        assert result.records == [{"lsn": 1}]
        assert result.error is None
        assert result.torn_bytes == 3

    def test_read_missing_file_is_empty(self, tmp_path):
        result = read_wal(tmp_path / "absent.log")
        assert result.records == []
        assert result.last_lsn == 0

    def test_oversized_record_rejected(self):
        with pytest.raises(DurabilityError):
            encode_record({"blob": "x" * 100_000_000})


class TestWriteAheadLog:
    def test_append_assigns_monotonic_lsns(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            assert wal.append({"t": "a"}) == 1
            assert wal.append({"t": "b"}) == 2
        result = read_wal(tmp_path / "wal.log")
        assert [r["lsn"] for r in result.records] == [1, 2]

    def test_lsns_continue_across_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"t": "a"})
        scan = read_wal(path)
        with WriteAheadLog(path, next_lsn=scan.last_lsn + 1) as wal:
            assert wal.append({"t": "b"}) == 2

    def test_unsynced_appends_group_under_one_fsync(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            wal.append({"t": "a"}, sync=False)
            wal.append({"t": "b"}, sync=False)
            assert wal.syncs == 0
            wal.sync()
            assert wal.syncs == 1
            assert wal.appends == 2

    def test_reset_keeps_lsn_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            wal.append({"t": "a"})
            wal.reset()
            assert wal.size() == 0
            assert wal.append({"t": "b"}) == 2

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(DurabilityError):
            wal.append({"t": "a"})


# -- crash injection ---------------------------------------------------------
class TestCrashInjector:
    def test_armed_point_fires_at_exact_occurrence(self):
        crash = CrashInjector().at("p", occurrence=3)
        crash.reach("p")
        crash.reach("p")
        with pytest.raises(SimulatedCrash) as exc_info:
            crash.reach("p")
        assert exc_info.value.point == "p"
        assert exc_info.value.occurrence == 3
        assert crash.crashes == 1

    def test_unarmed_injector_records_reaches(self):
        crash = CrashInjector()
        for _ in range(4):
            crash.reach("a")
        crash.reach("b")
        assert crash.seen == {"a": 4, "b": 1}
        assert crash.reached("a") == 4
        assert crash.crashes == 0

    def test_disarm(self):
        crash = CrashInjector().at("p")
        crash.disarm("p")
        crash.reach("p")  # no crash
        crash.at("p").at("q")
        crash.disarm()
        crash.reach("p")
        crash.reach("q")

    def test_seeded_random_crashes_are_deterministic(self):
        def crash_sites(seed):
            crash = CrashInjector(seed=seed, crash_rate=0.3)
            sites = []
            for step in range(50):
                try:
                    crash.reach("p")
                except SimulatedCrash:
                    sites.append(step)
            return sites

        assert crash_sites(7) == crash_sites(7)
        assert crash_sites(7) != crash_sites(8)
        assert crash_sites(7)  # rate 0.3 over 50 reaches must fire

    def test_invalid_arguments(self):
        with pytest.raises(DurabilityError):
            CrashInjector(crash_rate=1.0)
        with pytest.raises(DurabilityError):
            CrashInjector().at("p", occurrence=0)


# -- atomic writes -----------------------------------------------------------
ATOMIC_POINTS = (
    "file-before-write",
    "file-torn-write",
    "file-before-fsync",
    "mid-file-rename",
    "file-after-rename",
)


class TestAtomicWrite:
    def test_replaces_content(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"old contents")
        atomic_write_bytes(target, b"new contents")
        assert target.read_bytes() == b"new contents"

    @pytest.mark.parametrize("point", ATOMIC_POINTS)
    def test_crash_leaves_old_or_new_never_partial(self, tmp_path, point):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"old contents")
        crash = CrashInjector().at(point)
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"NEW PAYLOAD xxxx", crash=crash)
        assert target.read_bytes() in (b"old contents", b"NEW PAYLOAD xxxx")

    @pytest.mark.parametrize("point", ATOMIC_POINTS[:4])
    def test_crash_before_rename_keeps_old_version(self, tmp_path, point):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"old contents")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(
                target, b"NEW PAYLOAD xxxx", crash=CrashInjector().at(point)
            )
        assert target.read_bytes() == b"old contents"

    def test_crash_on_fresh_path_leaves_no_destination(self, tmp_path):
        target = tmp_path / "fresh.bin"
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(
                target, b"payload", crash=CrashInjector().at("file-torn-write")
            )
        assert not target.exists()


# -- the durable SQL database ------------------------------------------------
def reopened(directory):
    """Open, snapshot the state, close — what a post-crash restart sees."""
    db = DurableDatabase.open(directory)
    state = db.state()
    db.close()
    return state, db.last_recovery


class TestDurableDatabase:
    def test_reopen_replays_to_identical_state(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE emp (id INT, name TEXT)")
            db.execute("INSERT INTO emp VALUES (1, 'ada'), (2, 'bob')")
            db.execute("UPDATE emp SET name = 'ann' WHERE id = 1")
            before = db.state()
        state, stats = reopened(tmp_path / "db")
        assert state == before
        assert stats.replayed_transactions == 3

    def test_reads_pass_through(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (x INT)")
            db.execute("INSERT INTO t VALUES (1), (2), (3)")
            result = db.execute("SELECT COUNT(*) FROM t")
            assert result.rows[0][0] == 3
            assert db.table_names() == ["t"]
            assert len(db.table("t")) == 3

    def test_committed_transaction_survives(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (x INT)")
            db.begin()
            db.execute("INSERT INTO t VALUES (1)")
            db.execute("INSERT INTO t VALUES (2)")
            assert db.in_transaction
            db.commit()
            assert not db.in_transaction
        state, _ = reopened(tmp_path / "db")
        assert state["tables"][0]["rows"] == [[1], [2]]

    def test_transaction_pays_one_fsync(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (x INT)")
            before = db.wal.syncs
            db.begin()
            db.execute("INSERT INTO t VALUES (1)")
            db.execute("INSERT INTO t VALUES (2)")
            db.execute("INSERT INTO t VALUES (3)")
            db.commit()
            assert db.wal.syncs == before + 1

    def test_rollback_discards_memory_and_log(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (x INT)")
            db.execute("INSERT INTO t VALUES (1)")
            db.begin()
            db.execute("INSERT INTO t VALUES (99)")
            db.rollback()
            assert [r for r in db.table("t")] == [(1,)]
        state, _ = reopened(tmp_path / "db")
        assert state["tables"][0]["rows"] == [[1]]

    def test_uncommitted_transaction_invisible_after_crash(self, tmp_path):
        db = DurableDatabase.open(tmp_path / "db")
        db.execute("CREATE TABLE t (x INT)")
        db.begin()
        db.execute("INSERT INTO t VALUES (42)")
        db.close()  # crash before commit: the txn never became durable
        state, _ = reopened(tmp_path / "db")
        assert state["tables"][0]["rows"] == []

    def test_statement_error_aborts_transaction(self, tmp_path):
        """PostgreSQL semantics: a failed statement aborts the txn and
        the in-memory state falls back to the durable state."""
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (x INT)")
            db.begin()
            db.execute("INSERT INTO t VALUES (1)")
            with pytest.raises(SQLExecutionError):
                db.execute("INSERT INTO t VALUES ('not an int')")
            assert not db.in_transaction
            assert [r for r in db.table("t")] == []
        state, _ = reopened(tmp_path / "db")
        assert state["tables"][0]["rows"] == []

    def test_failed_autocommit_statement_leaves_no_trace(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (x INT)")
            with pytest.raises(SQLExecutionError):
                # The second row fails coercion after the first applied;
                # the whole statement must vanish, in memory and on disk.
                db.execute("INSERT INTO t VALUES (5), ('bad')")
            assert [r for r in db.table("t")] == []
        state, _ = reopened(tmp_path / "db")
        assert state["tables"][0]["rows"] == []

    def test_compaction_preserves_state(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (x INT)")
            db.execute("INSERT INTO t VALUES (1), (2)")
            db.compact()
            assert db.wal.size() == 0
            db.execute("INSERT INTO t VALUES (3)")
            before = db.state()
        state, stats = reopened(tmp_path / "db")
        assert state == before
        assert stats.snapshot_loaded
        assert stats.wal_records > 0

    def test_crash_between_snapshot_and_truncate_is_idempotent(self, tmp_path):
        """The WAL survives the snapshot rename; LSN tracking must keep
        replay from applying the snapshotted records a second time."""
        db = DurableDatabase.open(
            tmp_path / "db", crash=CrashInjector().at("before-wal-truncate")
        )
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        expected = db.state()
        with pytest.raises(SimulatedCrash):
            db.compact()
        db.close()
        state, stats = reopened(tmp_path / "db")
        assert state == expected
        assert stats.snapshot_loaded
        assert stats.replayed_statements == 0  # all records skipped by LSN

    def test_index_survives_reopen_and_compaction(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            db.execute("CREATE TABLE t (x INT, g TEXT)")
            db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
            db.execute("CREATE INDEX idx_g ON t (g)")
            db.compact()
        with DurableDatabase.open(tmp_path / "db") as db:
            assert db.table("t").has_index("g")

    def test_put_table_and_load_csv_are_durable(self, tmp_path):
        from repro.sql.table import Table

        table = Table.from_dicts(
            "people", [{"id": 1, "name": "ada"}, {"id": 2, "name": "bob"}]
        )
        csv_path = table.to_csv(tmp_path / "people.csv")
        with DurableDatabase.open(tmp_path / "db") as db:
            db.put_table(table)
            db.load_csv("people_csv", csv_path)
            before = db.state()
        state, _ = reopened(tmp_path / "db")
        assert state == before
        assert sorted(t["name"] for t in state["tables"]) == [
            "people",
            "people_csv",
        ]

    def test_torn_tail_is_repaired_silently(self, tmp_path):
        db = DurableDatabase.open(tmp_path / "db")
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("INSERT INTO t VALUES (2)")
        db.close()
        wal = tmp_path / "db" / DurableDatabase.WAL_NAME
        wal.write_bytes(wal.read_bytes()[:-3])  # tear the final commit
        state, stats = reopened(tmp_path / "db")
        assert stats.repaired_bytes > 0
        assert state["tables"][0]["rows"] == [[1]]  # last insert unacked
        # The repair truncated the file: a second open is clean.
        _, stats = reopened(tmp_path / "db")
        assert stats.repaired_bytes == 0

    def test_corrupt_wal_record_refuses_to_open(self, tmp_path):
        db = DurableDatabase.open(tmp_path / "db")
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.close()
        wal = tmp_path / "db" / DurableDatabase.WAL_NAME
        data = bytearray(wal.read_bytes())
        data[HEADER_LEN + 4] ^= 0xFF  # flip a byte of the first payload
        wal.write_bytes(bytes(data))
        with pytest.raises(WALCorruptionError):
            DurableDatabase.open(tmp_path / "db")

    def test_corrupt_snapshot_body_refuses_to_open(self, tmp_path):
        db = DurableDatabase.open(tmp_path / "db")
        db.execute("CREATE TABLE t (x INT)")
        db.execute("INSERT INTO t VALUES (1)")
        db.compact()
        db.close()
        snap = tmp_path / "db" / DurableDatabase.SNAPSHOT_NAME
        data = bytearray(snap.read_bytes())
        data[-2] ^= 0xFF
        snap.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptionError):
            DurableDatabase.open(tmp_path / "db")

    def test_garbage_snapshot_header_refuses_to_open(self, tmp_path):
        db = DurableDatabase.open(tmp_path / "db")
        db.execute("CREATE TABLE t (x INT)")
        db.compact()
        db.close()
        snap = tmp_path / "db" / DurableDatabase.SNAPSHOT_NAME
        snap.write_bytes(b"not a header\n" + snap.read_bytes())
        with pytest.raises(SnapshotCorruptionError):
            DurableDatabase.open(tmp_path / "db")

    def test_transaction_protocol_errors(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db") as db:
            with pytest.raises(DurabilityError):
                db.commit()
            with pytest.raises(DurabilityError):
                db.rollback()
            db.begin()
            with pytest.raises(DurabilityError):
                db.begin()  # no nesting
            with pytest.raises(DurabilityError):
                db.compact()  # not inside a transaction
            db.rollback()

    def test_closed_database_refuses_work(self, tmp_path):
        db = DurableDatabase.open(tmp_path / "db")
        db.close()
        with pytest.raises(DurabilityError):
            db.execute("CREATE TABLE t (x INT)")

    def test_non_durable_mode_skips_fsync_but_keeps_log(self, tmp_path):
        with DurableDatabase.open(tmp_path / "db", durable=False) as db:
            db.execute("CREATE TABLE t (x INT)")
            db.execute("INSERT INTO t VALUES (1)")
            before = db.state()
        state, _ = reopened(tmp_path / "db")
        assert state == before


# -- the crash matrix (property-style acceptance test) -----------------------
class TestCrashMatrix:
    def test_workload_is_seeded_and_structured(self):
        workload = random_dml_workload(3, num_statements=25)
        assert workload == random_dml_workload(3, num_statements=25)
        assert workload != random_dml_workload(4, num_statements=25)
        assert "BEGIN" in workload and "COMMIT" in workload
        assert "ROLLBACK" in workload and "COMPACT" in workload

    def test_discovery_finds_wal_and_snapshot_points(self, tmp_path):
        points = discover_crash_points(
            tmp_path / "d", random_dml_workload(0, num_statements=24)
        )
        assert {
            "wal-before-append",
            "wal-torn-append",
            "wal-after-append",
            "wal-before-fsync",
            "wal-after-fsync",
            "snapshot-before-write",
            "snapshot-torn-write",
            "snapshot-before-fsync",
            "mid-snapshot-rename",
            "snapshot-after-rename",
            "before-wal-truncate",
        } <= set(points)

    def test_single_trial_verifies_against_shadow(self, tmp_path):
        workload = random_dml_workload(0, num_statements=24)
        trial = run_crash_trial(
            tmp_path / "d", workload, "wal-torn-append", occurrence=3
        )
        assert trial.crashed
        assert trial.ok

    def test_every_crash_point_recovers_to_acknowledged_state(self, tmp_path):
        """The acceptance property: for seeded random DML workloads,
        crashing at every reachable point and reopening yields exactly
        the tables of an uncrashed shadow Database (modulo in-flight
        commits, which must land all-or-nothing)."""
        report = run_crash_matrix(
            tmp_path, seeds=(0, 1, 2), num_statements=26
        )
        assert report.all_ok, "\n".join(report.render())
        assert len(report.trials) >= 3 * len(report.points) >= 3 * 11
        assert all(t.crashed for t in report.trials)

    def test_uncrashed_workload_matches_plain_database(self, tmp_path):
        """With no crash at all, DurableDatabase and a plain Database
        fed the acknowledged statements are indistinguishable."""
        from repro.durability.harness import _run_workload

        workload = random_dml_workload(5, num_statements=24)
        db = DurableDatabase.open(tmp_path / "d")
        shadow, inflight, crashed = _run_workload(db, workload)
        assert not crashed and inflight is None
        assert db.state() == dump_database(shadow)
        db.close()


# -- the durable NeuralDB ----------------------------------------------------
class LastWordReader:
    """A deterministic reader stub: every fact template used in these
    tests ends '<answer> .', so the answer is the last real token."""

    def read(self, fact, question):
        return fact.rstrip(" .").split()[-1]


FACTS = [
    "alice works in engineering .",
    "bob works in sales .",
    "carol works in engineering .",
    "engineering is located in the tower .",
    "sales is located in the annex .",
]


def open_store(directory, **kwargs):
    return DurableNeuralDatabase.open(
        directory, LexicalRetriever, LastWordReader(), **kwargs
    )


class TestDurableNeuralDatabase:
    def test_reopen_reindexes_to_identical_answers(self, tmp_path):
        store = open_store(tmp_path / "ndb", initial_facts=FACTS)
        before_lookup = store.lookup("where does alice work ?")
        before_count = store.count_department("engineering")
        store.close()

        reopened_store = open_store(tmp_path / "ndb")
        assert reopened_store.facts == FACTS
        after_lookup = reopened_store.lookup("where does alice work ?")
        assert after_lookup == before_lookup
        assert reopened_store.count_department("engineering") == before_count
        assert reopened_store.join_lookup("alice").answer == "tower"
        reopened_store.close()

    def test_mutations_are_durable(self, tmp_path):
        with open_store(tmp_path / "ndb", initial_facts=FACTS) as store:
            store.add_fact("dave works in sales .")
            store.remove_fact("bob works in sales .")
        with open_store(tmp_path / "ndb") as store:
            assert "dave works in sales ." in store.facts
            assert "bob works in sales ." not in store.facts
            assert store.count_department("sales").answer == 1

    @pytest.mark.parametrize(
        "point",
        [
            "wal-before-append",
            "wal-torn-append",
            "wal-after-append",
            "wal-before-fsync",
            "wal-after-fsync",
        ],
    )
    def test_crash_during_add_fact_is_all_or_nothing(self, tmp_path, point):
        store = open_store(tmp_path / "ndb", initial_facts=FACTS)
        store.close()
        crash = CrashInjector().at(point)
        store = open_store(tmp_path / "ndb", crash=crash)
        with pytest.raises(SimulatedCrash):
            store.add_fact("dave works in sales .")
        store.close()

        recovered = open_store(tmp_path / "ndb")
        # The add was never acknowledged, so either outcome is legal —
        # but the store must be exactly one of the two, and queries must
        # match a fresh NeuralDatabase over the recovered facts.
        assert recovered.facts in (FACTS, FACTS + ["dave works in sales ."])
        from repro.neuraldb import NeuralDatabase

        fresh = NeuralDatabase(LexicalRetriever(recovered.facts), LastWordReader())
        question = "where does carol work ?"
        assert recovered.lookup(question) == fresh.lookup(question)
        assert (
            recovered.count_department("sales").answer
            == fresh.count_department("sales").answer
        )
        recovered.close()

    def test_torn_tail_is_repaired(self, tmp_path):
        with open_store(tmp_path / "ndb", initial_facts=FACTS) as store:
            store.add_fact("dave works in sales .")
        log = tmp_path / "ndb" / DurableNeuralDatabase.LOG_NAME
        log.write_bytes(log.read_bytes()[:-4])
        store = open_store(tmp_path / "ndb")
        assert store.repaired_bytes > 0
        assert store.facts == FACTS  # the torn add was never acked
        store.close()

    def test_corrupt_log_refuses_to_open(self, tmp_path):
        with open_store(tmp_path / "ndb", initial_facts=FACTS):
            pass
        log = tmp_path / "ndb" / DurableNeuralDatabase.LOG_NAME
        data = bytearray(log.read_bytes())
        data[HEADER_LEN + 6] ^= 0xFF
        log.write_bytes(bytes(data))
        with pytest.raises(WALCorruptionError):
            open_store(tmp_path / "ndb")

    def test_empty_directory_needs_seed_facts(self, tmp_path):
        with pytest.raises(NeuralDBError):
            open_store(tmp_path / "ndb")

    def test_validation_errors(self, tmp_path):
        with open_store(tmp_path / "ndb", initial_facts=FACTS[:2]) as store:
            with pytest.raises(NeuralDBError):
                store.add_fact("   ")
            with pytest.raises(NeuralDBError):
                store.remove_fact("never stored .")
            store.remove_fact(FACTS[0])
            with pytest.raises(NeuralDBError):
                store.remove_fact(FACTS[1])  # cannot drop the last fact
