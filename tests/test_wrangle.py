"""Tests for data-wrangling tasks: matching, error detection, imputation."""

import pytest

from repro.errors import WrangleError
from repro.wrangle import (
    EmbeddingSchemaMatcher,
    FinetunedErrorDetector,
    FinetunedImputer,
    FinetunedMatcher,
    MajorityImputer,
    NameSimilarityMatcher,
    PromptMatcher,
    RuleErrorDetector,
    SimilarityMatcher,
    evaluate_detector,
    evaluate_imputer,
    evaluate_matcher,
    generate_error_dataset,
    generate_imputation_dataset,
    generate_matching_dataset,
    generate_schema_match_task,
    matching_accuracy,
    serialize_pair,
    serialize_record,
)
from repro.wrangle.data import EntityPair


@pytest.fixture(scope="module")
def match_data():
    pairs = generate_matching_dataset(num_pairs=240, seed=0)
    return pairs[:180], pairs[180:]


class TestSerialization:
    def test_attribute_style_tags_columns(self):
        text = serialize_record({"brand": "acme", "color": "red"})
        assert text == "col brand val acme col color val red"

    def test_plain_style_drops_empty(self):
        text = serialize_record({"a": "x", "b": ""}, style="plain")
        assert text == "x"

    def test_pair_has_separator(self):
        text = serialize_pair({"a": "x"}, {"a": "y"})
        assert " sep " in text

    def test_unknown_style_raises(self):
        with pytest.raises(WrangleError):
            serialize_record({"a": "x"}, style="fancy")


class TestMatchingData:
    def test_balanced_labels(self):
        pairs = generate_matching_dataset(num_pairs=100, seed=1)
        matches = sum(p.match for p in pairs)
        assert matches == 50

    def test_deterministic(self):
        a = generate_matching_dataset(num_pairs=20, seed=5)
        b = generate_matching_dataset(num_pairs=20, seed=5)
        assert a == b

    def test_negatives_share_context(self):
        """Hard negatives must still overlap lexically with the left."""
        from repro.utils.text import jaccard

        pairs = generate_matching_dataset(num_pairs=100, seed=2)
        negatives = [p for p in pairs if not p.match]
        overlaps = [
            jaccard(" ".join(p.left.values()), " ".join(p.right.values()))
            for p in negatives
        ]
        assert sum(o > 0.15 for o in overlaps) / len(overlaps) > 0.8


class TestSimilarityMatcher:
    def test_fit_tunes_threshold(self, match_data):
        train, _ = match_data
        matcher = SimilarityMatcher().fit(train)
        assert 0.0 < matcher.threshold < 1.0

    def test_reasonable_but_imperfect(self, match_data):
        train, test = match_data
        matcher = SimilarityMatcher().fit(train)
        metrics = evaluate_matcher(matcher, test)
        assert 0.5 < metrics["f1"] < 1.0

    def test_fit_empty_raises(self):
        with pytest.raises(WrangleError):
            SimilarityMatcher().fit([])


class TestFinetunedMatcher:
    @pytest.fixture(scope="class")
    def fitted(self, match_data):
        train, _ = match_data
        return FinetunedMatcher(seed=0).fit(
            train, pretrain_steps=50, finetune_epochs=10
        )

    def test_beats_similarity_baseline(self, fitted, match_data):
        train, test = match_data
        baseline = SimilarityMatcher().fit(train)
        lm_metrics = evaluate_matcher(fitted, test)
        base_metrics = evaluate_matcher(baseline, test)
        assert lm_metrics["f1"] > base_metrics["f1"]

    def test_high_absolute_f1(self, fitted, match_data):
        _, test = match_data
        assert evaluate_matcher(fitted, test)["f1"] > 0.8

    def test_predict_before_fit_raises(self, match_data):
        _, test = match_data
        with pytest.raises(WrangleError):
            FinetunedMatcher().predict(test[0])

    def test_fit_empty_raises(self):
        with pytest.raises(WrangleError):
            FinetunedMatcher().fit([])


class TestPromptMatcher:
    def test_runs_and_returns_bool(self, tiny_gpt, word_tokenizer, match_data):
        train, test = match_data
        matcher = PromptMatcher(tiny_gpt, word_tokenizer, shots=train[:4])
        assert isinstance(matcher.predict(test[0]), bool)

    def test_metrics_computable(self, tiny_gpt, word_tokenizer, match_data):
        train, test = match_data
        matcher = PromptMatcher(tiny_gpt, word_tokenizer, shots=train[:2])
        metrics = evaluate_matcher(matcher, test[:10])
        assert set(metrics) == {"precision", "recall", "f1", "accuracy"}


class TestErrorDetection:
    @pytest.fixture(scope="class")
    def data(self):
        examples = generate_error_dataset(num_examples=200, seed=0)
        return examples[:150], examples[150:]

    def test_rule_detector_on_gold_fd(self, data):
        train, test = data
        detector = RuleErrorDetector().fit(train)
        metrics = evaluate_detector(detector, test)
        assert metrics["f1"] > 0.9  # clean training data recovers the FD

    def test_finetuned_detector_learns(self, data):
        train, test = data
        detector = FinetunedErrorDetector(seed=0).fit(train, epochs=12)
        metrics = evaluate_detector(detector, test)
        assert metrics["f1"] > 0.7

    def test_error_rate_controls_prevalence(self):
        low = generate_error_dataset(num_examples=200, error_rate=0.1, seed=1)
        high = generate_error_dataset(num_examples=200, error_rate=0.5, seed=1)
        assert sum(e.erroneous for e in low) < sum(e.erroneous for e in high)

    def test_fit_empty_raises(self):
        with pytest.raises(WrangleError):
            RuleErrorDetector().fit([])


class TestSchemaMatching:
    def test_task_generation_consistent(self):
        task = generate_schema_match_task(seed=0)
        assert len(task.source) == len(task.target) == len(task.gold)
        target_names = {c.name for c in task.target}
        assert set(task.gold.values()) == target_names

    def test_too_many_columns_raises(self):
        with pytest.raises(WrangleError):
            generate_schema_match_task(num_columns=99)

    def test_name_baseline_misses_synonyms(self):
        task = generate_schema_match_task(seed=0)
        accuracy = matching_accuracy(NameSimilarityMatcher().match(task), task.gold)
        assert accuracy < 0.6  # names share almost no characters

    def test_embedding_matcher_uses_values(self):
        task = generate_schema_match_task(seed=0)
        accuracy = matching_accuracy(
            EmbeddingSchemaMatcher(seed=0).match(task), task.gold
        )
        assert accuracy >= 0.8

    def test_embedding_beats_name_baseline(self):
        wins = 0
        for seed in range(3):
            task = generate_schema_match_task(seed=seed)
            name_acc = matching_accuracy(NameSimilarityMatcher().match(task), task.gold)
            emb_acc = matching_accuracy(
                EmbeddingSchemaMatcher(seed=seed).match(task), task.gold
            )
            wins += int(emb_acc > name_acc)
        assert wins >= 2

    def test_alignment_is_one_to_one(self):
        task = generate_schema_match_task(seed=1)
        mapping = NameSimilarityMatcher().match(task)
        assert len(set(mapping.values())) == len(mapping)

    def test_accuracy_empty_gold_raises(self):
        with pytest.raises(WrangleError):
            matching_accuracy({}, {})


class TestImputation:
    @pytest.fixture(scope="class")
    def data(self):
        examples = generate_imputation_dataset(num_examples=200, seed=0)
        return examples[:150], examples[150:]

    def test_majority_baseline_weak(self, data):
        train, test = data
        imputer = MajorityImputer().fit(train)
        assert evaluate_imputer(imputer, test) < 0.6

    def test_finetuned_imputer_strong(self, data):
        train, test = data
        imputer = FinetunedImputer(seed=0).fit(train, epochs=8)
        accuracy = evaluate_imputer(imputer, test)
        assert accuracy > 0.9

    def test_finetuned_beats_majority(self, data):
        train, test = data
        majority = evaluate_imputer(MajorityImputer().fit(train), test)
        finetuned = evaluate_imputer(FinetunedImputer(seed=0).fit(train, epochs=8), test)
        assert finetuned > majority

    def test_unfitted_raises(self, data):
        _, test = data
        with pytest.raises(WrangleError):
            MajorityImputer().predict(test[0])
        with pytest.raises(WrangleError):
            FinetunedImputer().predict(test[0])
