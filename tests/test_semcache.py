"""Tests for the semantic completion cache and its client wiring.

The contract under test: exact hits are byte-identical to re-decoding
(and skip the engine entirely), similarity hits are opt-in and
threshold-gated, eviction is deterministic under a seeded workload,
and a model-identity change flushes the stale engine's entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CompletionClient, ModelHub
from repro.errors import GenerationError
from repro.generation import GenerationConfig
from repro.models import GPTModel, ModelConfig
from repro.serving import (
    BatchRequest,
    SemanticCache,
    completion_request_key,
    hashed_embedding,
)


@pytest.fixture(scope="module")
def hub(tiny_gpt_module, word_tokenizer_module):
    hub = ModelHub()
    hub.register("tiny-gpt", tiny_gpt_module, word_tokenizer_module)
    return hub


@pytest.fixture(scope="module")
def tiny_gpt_module(tiny_gpt):
    return tiny_gpt


@pytest.fixture(scope="module")
def word_tokenizer_module(word_tokenizer):
    return word_tokenizer


def make_client(hub, **kwargs):
    kwargs.setdefault("semantic_cache_bytes", 64 * 1024)
    return CompletionClient(hub, **kwargs)


class TestHashedEmbedding:
    def test_normalized_and_deterministic(self):
        a = hashed_embedding("the database stores rows .")
        b = hashed_embedding("the database stores rows .")
        assert np.allclose(a, b)
        assert np.isclose(np.linalg.norm(a), 1.0)

    def test_near_duplicates_are_close(self):
        a = hashed_embedding("select name from users where id = 1")
        b = hashed_embedding("select name from users where id = 2")
        c = hashed_embedding("completely unrelated prose about weather")
        assert float(a @ b) > float(a @ c)

    def test_empty_text_is_zero_vector(self):
        assert float(np.linalg.norm(hashed_embedding(""))) == 0.0


class TestRequestKey:
    def test_covers_decode_params(self):
        config = GenerationConfig(max_new_tokens=4)
        key_a = completion_request_key(BatchRequest([1, 2, 3], config))
        key_b = completion_request_key(BatchRequest([1, 2, 3], config))
        assert key_a == key_b
        other = completion_request_key(
            BatchRequest([1, 2, 3], GenerationConfig(max_new_tokens=5))
        )
        assert key_a != other

    def test_constrained_requests_are_uncacheable(self):
        request = BatchRequest([1, 2], GenerationConfig(), constraint=object())
        assert completion_request_key(request) is None


class TestSemanticCacheUnit:
    def test_exact_hit_round_trip(self):
        cache = SemanticCache(max_bytes=4096)
        cache.insert("k", "value", prompt_tokens=3, completion_tokens=5)
        hit = cache.lookup("k")
        assert hit is not None and hit.kind == "exact"
        assert hit.value == "value"
        assert cache.stats.exact_hits == 1
        assert cache.stats.skipped_prompt_tokens == 3
        assert cache.stats.skipped_completion_tokens == 5
        assert cache.lookup("missing") is None
        assert cache.stats.misses == 1

    def test_similarity_threshold_boundary(self):
        # A two-point embedder: cosine between the stored and probed
        # prompt is exactly controllable, so the inclusive threshold
        # can be probed just above and just below.
        def embedder(text):
            angle = {"stored": 0.0, "just-above": 0.3, "just-below": 0.5}[text]
            return np.array([np.cos(angle), np.sin(angle)])

        cache = SemanticCache(
            max_bytes=4096, similarity_threshold=float(np.cos(0.4)),
            embedder=embedder,
        )
        cache.insert("k-stored", "answer", text="stored")
        above = cache.lookup("k-above", text="just-above", allow_similar=True)
        assert above is not None and above.kind == "similarity"
        assert above.value == "answer"
        assert above.similarity == pytest.approx(np.cos(0.3))
        below = cache.lookup("k-below", text="just-below", allow_similar=True)
        assert below is None
        assert cache.stats.similarity_hits == 1

    def test_similarity_requires_opt_in(self):
        cache = SemanticCache(max_bytes=4096, similarity_threshold=0.5)
        cache.insert("k1", "v", text="the quick brown fox jumps")
        assert cache.lookup("k2", text="the quick brown fox jumps .") is None
        hit = cache.lookup(
            "k2", text="the quick brown fox jumps .", allow_similar=True
        )
        assert hit is not None

    def test_lru_eviction_is_deterministic(self):
        def run_once():
            cache = SemanticCache(max_bytes=1024)
            rng = np.random.default_rng(11)
            for step in range(60):
                key = int(rng.integers(0, 30))
                if cache.lookup(key) is None:
                    cache.insert(key, "x" * 64)
            return cache.keys(), cache.stats.evictions

        first_keys, first_evictions = run_once()
        second_keys, second_evictions = run_once()
        assert first_evictions > 0
        assert first_keys == second_keys
        assert first_evictions == second_evictions

    def test_lru_evicts_least_recently_used(self):
        cache = SemanticCache(max_bytes=500)
        cache.insert("a", "x" * 80)
        cache.insert("b", "x" * 80)
        assert cache.lookup("a") is not None  # refresh a; b is now LRU
        cache.insert("c", "x" * 80)
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_oversized_value_rejected_up_front(self):
        cache = SemanticCache(max_bytes=256)
        cache.insert("small", "x" * 32)
        assert not cache.insert("huge", "x" * 10_000)
        assert cache.stats.oversized == 1
        assert "small" in cache  # nothing was evicted for the reject

    def test_invalidate_flushes_one_group_only(self):
        cache = SemanticCache(max_bytes=4096)
        cache.insert("a", "v", group="engine-a")
        cache.insert("b", "v", group="engine-b")
        assert cache.invalidate("engine-a") == 1
        assert "a" not in cache and "b" in cache
        assert cache.stats.bytes > 0

    def test_reinsert_replaces(self):
        cache = SemanticCache(max_bytes=4096)
        cache.insert("k", "old")
        cache.insert("k", "new")
        assert len(cache) == 1
        assert cache.lookup("k").value == "new"

    def test_validation(self):
        with pytest.raises(GenerationError):
            SemanticCache(max_bytes=0)
        with pytest.raises(GenerationError):
            SemanticCache(similarity_threshold=0.0)


class TestClientCacheWiring:
    def test_exact_repeat_is_byte_identical_and_skips_engine(self, hub):
        cached = make_client(hub)
        uncached = CompletionClient(hub)
        first = cached.complete("tiny-gpt", "the database", max_tokens=6)
        second = cached.complete("tiny-gpt", "the database", max_tokens=6)
        baseline = uncached.complete("tiny-gpt", "the database", max_tokens=6)
        assert second is first  # served straight from the cache
        assert first.text == baseline.text
        assert first.usage == baseline.usage
        stats = cached.engine_stats("tiny-gpt")
        assert stats.requests == 1  # the repeat never reached the engine
        assert stats.cache_exact_hits == 1
        assert stats.cache_lookups == 2
        assert stats.cache_skipped_completion_tokens == first.usage.completion_tokens

    def test_different_params_miss(self, hub):
        client = make_client(hub)
        client.complete("tiny-gpt", "the table", max_tokens=4)
        client.complete("tiny-gpt", "the table", max_tokens=5)
        assert client.engine_stats("tiny-gpt").cache_hits == 0
        assert client.engine_stats("tiny-gpt").requests == 2

    def test_model_identity_invalidation_flushes(self, hub, word_tokenizer):
        client = make_client(hub)
        original = hub.get("tiny-gpt").model
        client.complete("tiny-gpt", "the index", max_tokens=4)
        assert len(client.semantic_cache) == 1
        replacement = GPTModel(
            ModelConfig.tiny(vocab_size=word_tokenizer.vocab_size, causal=True),
            seed=99,
        )
        hub.register("tiny-gpt", replacement, word_tokenizer)
        try:
            client.complete("tiny-gpt", "the index", max_tokens=4)
            stats = client.engine_stats("tiny-gpt")
            assert stats.cache_hits == 0
            assert stats.requests == 2
            assert client.semantic_cache.stats.invalidations == 1
        finally:
            hub.register("tiny-gpt", original, word_tokenizer)

    def test_batch_serves_repeats_and_in_batch_duplicates(self, hub):
        client = make_client(hub)
        warm = client.complete_batch(
            "tiny-gpt", ["the query", "the model"], max_tokens=5
        )
        mixed = client.complete_batch(
            "tiny-gpt",
            ["the query", "the rows", "the rows", "the model"],
            max_tokens=5,
        )
        assert mixed[0] is warm[0]
        assert mixed[3] is warm[1]
        # in-batch duplicate decodes once, both copies share the result
        assert mixed[2] is mixed[1]
        stats = client.engine_stats("tiny-gpt")
        assert stats.cache_exact_hits == 3
        assert stats.requests == 3  # 2 warmup + 1 fresh prompt

    def test_batch_matches_single_path_responses(self, hub):
        client = make_client(hub)
        single = client.complete("tiny-gpt", "sorted results", max_tokens=5)
        [batched] = client.complete_batch(
            "tiny-gpt", ["sorted results"], max_tokens=5
        )
        assert batched is single  # same key: the batch path hit the cache

    def test_similarity_opt_in_on_client(self, hub):
        # A constant embedder makes every prompt maximally similar, so
        # the behavior difference is purely the allow_similar flag.
        cache = SemanticCache(
            max_bytes=64 * 1024,
            similarity_threshold=0.9,
            embedder=lambda text: np.array([1.0]),
        )
        client = CompletionClient(hub, semantic_cache=cache)
        first = client.complete("tiny-gpt", "the database stores", max_tokens=4)
        strict = client.complete("tiny-gpt", "the database scans", max_tokens=4)
        assert strict is not first
        similar = client.complete(
            "tiny-gpt", "the database returns", max_tokens=4, allow_similar=True
        )
        assert similar in (first, strict)
        stats = client.engine_stats("tiny-gpt")
        assert stats.cache_similarity_hits == 1

    def test_constrained_requests_bypass_cache(self, hub):
        class Unrestricted:
            def allowed_tokens(self, generated_ids):
                return None

        client = make_client(hub)
        for _ in range(2):
            client.complete(
                "tiny-gpt",
                "the database",
                max_tokens=4,
                constraint=Unrestricted(),
            )
        assert client.engine_stats("tiny-gpt").cache_lookups == 0
        assert len(client.semantic_cache) == 0

    def test_serving_stats_expose_cache_counters(self, hub):
        from repro.serving import engine_serving_stats

        client = make_client(hub)
        client.complete("tiny-gpt", "cached empty records", max_tokens=4)
        client.complete("tiny-gpt", "cached empty records", max_tokens=4)
        stats = engine_serving_stats(client, "tiny-gpt")
        assert stats["cache_lookups"] == 2.0
        assert stats["cache_exact_hits"] == 1.0
        assert stats["cache_hit_rate"] == 0.5
        assert stats["cache_skipped_completion_tokens"] >= 0.0

    def test_cache_disabled_by_default(self, hub):
        client = CompletionClient(hub)
        assert client.semantic_cache is None
        client.complete("tiny-gpt", "the model", max_tokens=4)
        assert client.engine_stats("tiny-gpt").cache_lookups == 0
