"""Tests for prompt templates, few-shot prompts, scoring, and parsers."""

import pytest

from repro.errors import PromptError
from repro.prompting import (
    FewShotPrompt,
    PromptClassifier,
    PromptTemplate,
    parse_final_line,
    parse_key_value,
    parse_label,
    score_continuation,
)


class TestTemplate:
    def test_fields_extracted_in_order(self):
        t = PromptTemplate("Q: {question}\nContext: {context}\nA: {question}")
        assert t.fields == ["question", "context"]

    def test_render(self):
        t = PromptTemplate("Hello {name}!")
        assert t.render(name="world") == "Hello world!"

    def test_missing_field_raises(self):
        with pytest.raises(PromptError):
            PromptTemplate("{a} {b}").render(a="x")

    def test_extra_field_raises(self):
        with pytest.raises(PromptError):
            PromptTemplate("{a}").render(a="x", b="y")

    def test_partial(self):
        t = PromptTemplate("{a} and {b}").partial(a="left")
        assert t.fields == ["b"]
        assert t.render(b="right") == "left and right"

    def test_partial_unknown_raises(self):
        with pytest.raises(PromptError):
            PromptTemplate("{a}").partial(z="?")


class TestFewShot:
    def make_prompt(self):
        template = PromptTemplate("Review: {text}")
        prompt = FewShotPrompt(template, instructions="Classify the sentiment.")
        prompt.add_example("positive", text="great product")
        prompt.add_example("negative", text="terrible quality")
        return prompt

    def test_full_layout(self):
        rendered = self.make_prompt().build(text="works fine")
        assert rendered.startswith("Classify the sentiment.")
        assert "Review: great product\nAnswer: positive" in rendered
        assert rendered.endswith("Review: works fine\nAnswer:")

    def test_zero_shot(self):
        template = PromptTemplate("Review: {text}")
        prompt = FewShotPrompt(template, instructions="Classify.")
        rendered = prompt.build(text="x")
        assert "Answer: " not in rendered  # no worked examples
        assert rendered.endswith("Answer:")

    def test_max_shots_truncates(self):
        rendered = self.make_prompt().build(max_shots=1, text="x")
        assert "great product" in rendered
        assert "terrible quality" not in rendered

    def test_invalid_example_fields_raise(self):
        prompt = FewShotPrompt(PromptTemplate("{text}"))
        with pytest.raises(PromptError):
            prompt.add_example("label", wrong_field="x")

    def test_num_shots(self):
        assert self.make_prompt().num_shots == 2


class TestScoring:
    def test_score_is_negative_logprob_sum(self, tiny_gpt, word_tokenizer):
        score = score_continuation(tiny_gpt, word_tokenizer, "the database", "stores")
        assert score < 0.0

    def test_trained_model_prefers_grammatical_continuation(
        self, tiny_gpt, word_tokenizer
    ):
        """After CLM pre-training on SVO sentences, a verb continuation
        should outscore an implausible determiner continuation."""
        plausible = score_continuation(tiny_gpt, word_tokenizer, "the database", "stores")
        implausible = score_continuation(tiny_gpt, word_tokenizer, "the database", "the")
        assert plausible > implausible

    def test_empty_continuation_raises(self, tiny_gpt, word_tokenizer):
        with pytest.raises(PromptError):
            score_continuation(tiny_gpt, word_tokenizer, "prompt", "")


class TestPromptClassifier:
    def test_predict_returns_known_class(self, tiny_gpt, word_tokenizer):
        template = PromptTemplate("Sentence: {text}")
        prompt = FewShotPrompt(template, instructions="Does the sentence mention rows?")
        prompt.add_example("rows", text="the table stores sorted rows .")
        prompt.add_example("columns", text="the table stores sorted columns .")
        clf = PromptClassifier(
            tiny_gpt, word_tokenizer, prompt, verbalizers={0: "columns", 1: "rows"}
        )
        pred = clf.predict(text="the index returns cached rows .")
        assert pred in (0, 1)
        scores = clf.scores(text="the index returns cached rows .")
        assert set(scores) == {0, 1}

    def test_single_class_raises(self, tiny_gpt, word_tokenizer):
        prompt = FewShotPrompt(PromptTemplate("{text}"))
        with pytest.raises(PromptError):
            PromptClassifier(tiny_gpt, word_tokenizer, prompt, verbalizers={0: "x"})

    def test_calibration_centers_bias(self, tiny_gpt, word_tokenizer):
        prompt = FewShotPrompt(PromptTemplate("sentence : {text}"))
        clf = PromptClassifier(
            tiny_gpt, word_tokenizer, prompt, verbalizers={0: "columns", 1: "rows"}
        )
        assert not clf.is_calibrated
        bias = clf.calibrate()
        assert clf.is_calibrated
        assert abs(sum(bias.values())) < 1e-9  # centered
        # Scores shift by exactly the (centered) bias.
        clf_raw = PromptClassifier(
            tiny_gpt, word_tokenizer,
            FewShotPrompt(PromptTemplate("sentence : {text}")),
            verbalizers={0: "columns", 1: "rows"},
        )
        raw = clf_raw.scores(text="the table stores rows .")
        calibrated = clf.scores(text="the table stores rows .")
        for label in (0, 1):
            assert calibrated[label] == pytest.approx(raw[label] - bias[label])


class TestParsers:
    def test_parse_label_first_occurrence(self):
        assert parse_label("I think it is positive, not negative", ["negative", "positive"]) == "positive"

    def test_parse_label_case_insensitive(self):
        assert parse_label("POSITIVE!", ["positive"]) == "positive"

    def test_parse_label_default(self):
        assert parse_label("no label here", ["yes"], default="yes") == "yes"

    def test_parse_label_missing_raises(self):
        with pytest.raises(PromptError):
            parse_label("nothing", ["yes", "no"])

    def test_parse_final_line(self):
        assert parse_final_line("a\nb\n\n  c  \n") == "c"

    def test_parse_final_line_empty_raises(self):
        with pytest.raises(PromptError):
            parse_final_line("  \n ")

    def test_parse_key_value(self):
        parsed = parse_key_value("buffer_size: 128MB\nmax connections = 10\nnoise")
        assert parsed == {"buffer_size": "128MB", "max connections": "10"}
