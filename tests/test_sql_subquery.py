"""Tests for uncorrelated subqueries (scalar and IN)."""

import pytest

from repro.errors import SQLAnalysisError
from repro.sql import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE emp (id INT, dept TEXT, salary INT)")
    database.execute(
        "INSERT INTO emp VALUES (1, 'eng', 120), (2, 'eng', 100), "
        "(3, 'sales', 90), (4, 'sales', 80), (5, 'hr', 70)"
    )
    database.execute("CREATE TABLE managers (dept TEXT)")
    database.execute("INSERT INTO managers VALUES ('eng'), ('hr')")
    return database


class TestScalarSubquery:
    def test_above_average(self, db):
        result = db.execute(
            "SELECT id FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) "
            "ORDER BY id"
        )
        assert result.column("id") == [1, 2]

    def test_scalar_in_projection(self, db):
        result = db.execute(
            "SELECT id, salary - (SELECT MIN(salary) FROM emp) AS above_min "
            "FROM emp ORDER BY id LIMIT 2"
        )
        assert result.column("above_min") == [50, 30]

    def test_scalar_arithmetic(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM emp "
            "WHERE salary > (SELECT AVG(salary) FROM emp) - 10"
        )
        assert result.scalar() == 3

    def test_non_scalar_raises(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute("SELECT id FROM emp WHERE salary > (SELECT salary FROM emp)")

    def test_multi_column_scalar_raises(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute(
                "SELECT id FROM emp WHERE salary > (SELECT MIN(salary), MAX(salary) FROM emp)"
            )


class TestInSubquery:
    def test_in_select(self, db):
        result = db.execute(
            "SELECT id FROM emp WHERE dept IN (SELECT dept FROM managers) "
            "ORDER BY id"
        )
        assert result.column("id") == [1, 2, 5]

    def test_not_in_select(self, db):
        result = db.execute(
            "SELECT id FROM emp WHERE dept NOT IN (SELECT dept FROM managers) "
            "ORDER BY id"
        )
        assert result.column("id") == [3, 4]

    def test_in_subquery_with_filter(self, db):
        result = db.execute(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT dept FROM managers WHERE dept = 'eng') ORDER BY id"
        )
        assert result.column("id") == [1, 2]

    def test_empty_in_subquery(self, db):
        result = db.execute(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT dept FROM managers WHERE dept = 'none')"
        )
        assert len(result) == 0

    def test_multi_column_in_raises(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute(
                "SELECT id FROM emp WHERE dept IN (SELECT dept, dept FROM managers)"
            )

    def test_nested_subqueries(self, db):
        result = db.execute(
            "SELECT COUNT(*) FROM emp WHERE salary > "
            "(SELECT AVG(salary) FROM emp WHERE dept IN (SELECT dept FROM managers))"
        )
        # avg over eng+hr = (120+100+70)/3 = 96.67 -> salaries 120, 100.
        assert result.scalar() == 2

    def test_sql_roundtrip(self):
        from repro.sql import parse_sql

        sql = "SELECT id FROM emp WHERE dept IN (SELECT dept FROM managers)"
        stmt = parse_sql(sql)
        assert parse_sql(stmt.sql()).sql() == stmt.sql()
