"""Tests for optimizers, schedules, data utilities, and training loops."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import TrainingError
from repro.models import BERTModel, GPTModel, ModelConfig, SequenceClassifier
from repro.training import (
    SGD,
    Adam,
    AdamW,
    ConstantSchedule,
    CosineSchedule,
    LabeledExample,
    LinearWarmupSchedule,
    accuracy,
    evaluate_classifier,
    f1_score,
    finetune_classifier,
    make_clm_batch,
    make_mlm_batch,
    pack_corpus,
    perplexity,
    precision_recall_f1,
    pretrain_clm,
    pretrain_mlm,
    train_test_split,
)
from repro.training.data import IGNORE_INDEX
from repro.utils.rng import SeededRNG


def quadratic_params():
    return [Tensor(np.array([5.0, -3.0]), requires_grad=True)]


def quadratic_step(params, optimizer):
    loss = (params[0] * params[0]).sum()
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestOptimizers:
    @pytest.mark.parametrize("cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.3}),
        (AdamW, {"lr": 0.3, "weight_decay": 0.01}),
    ])
    def test_minimizes_quadratic(self, cls, kwargs):
        params = quadratic_params()
        optimizer = cls(params, **kwargs)
        for _ in range(200):
            quadratic_step(params, optimizer)
        assert np.abs(params[0].data).max() < 0.1

    def test_empty_params_raises(self):
        with pytest.raises(TrainingError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(TrainingError):
            Adam(quadratic_params(), lr=0.0)

    def test_grad_clipping(self):
        params = [Tensor(np.array([1.0]), requires_grad=True)]
        optimizer = SGD(params, lr=0.1)
        (params[0] * 100.0).sum().backward()
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(100.0)
        assert np.linalg.norm(params[0].grad) == pytest.approx(1.0)

    def test_step_skips_gradless_params(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = SGD([a, b], lr=0.5)
        (a * 2.0).sum().backward()
        optimizer.step()
        assert a.data[0] != 1.0
        assert b.data[0] == 1.0


class TestSchedules:
    def test_constant(self):
        sched = ConstantSchedule()
        assert sched.multiplier(0) == sched.multiplier(100) == 1.0

    def test_linear_warmup_and_decay(self):
        sched = LinearWarmupSchedule(warmup_steps=10, total_steps=100)
        assert sched.multiplier(0) < sched.multiplier(5) < sched.multiplier(9)
        assert sched.multiplier(9) == pytest.approx(1.0)
        assert sched.multiplier(50) > sched.multiplier(90)

    def test_cosine_monotone_decay_after_warmup(self):
        sched = CosineSchedule(warmup_steps=5, total_steps=50)
        values = [sched.multiplier(s) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_ge_total_raises(self):
        with pytest.raises(TrainingError):
            CosineSchedule(warmup_steps=10, total_steps=10)


class TestData:
    def test_pack_corpus_shape(self, word_tokenizer, corpus):
        rows = pack_corpus(word_tokenizer, corpus, seq_len=16)
        assert rows.shape[1] == 16
        assert rows.dtype == np.int64

    def test_pack_corpus_too_small(self, word_tokenizer):
        with pytest.raises(TrainingError):
            pack_corpus(word_tokenizer, ["hi"], seq_len=512)

    def test_mlm_masking_statistics(self, word_tokenizer, corpus):
        rows = pack_corpus(word_tokenizer, corpus, seq_len=32)
        inputs, labels = make_mlm_batch(rows, word_tokenizer, SeededRNG(0))
        supervised = labels != IGNORE_INDEX
        rate = supervised.mean()
        assert 0.05 < rate < 0.30
        # Labels hold original ids at supervised positions.
        np.testing.assert_array_equal(labels[supervised], rows[supervised])
        # Most supervised positions are masked in the input.
        masked = inputs[supervised] == word_tokenizer.vocab.mask_id
        assert masked.mean() > 0.5

    def test_mlm_never_masks_specials(self, word_tokenizer):
        rows = np.full((4, 8), word_tokenizer.vocab.eos_id, dtype=np.int64)
        rows[:, 0] = 10  # one ordinary token so the fallback has a target
        inputs, labels = make_mlm_batch(rows, word_tokenizer, SeededRNG(1))
        special_positions = rows == word_tokenizer.vocab.eos_id
        assert (labels[special_positions] == IGNORE_INDEX).all()

    def test_clm_batch_shift(self):
        rows = np.array([[1, 2, 3, 4]])
        inputs, targets = make_clm_batch(rows)
        np.testing.assert_array_equal(inputs, [[1, 2, 3]])
        np.testing.assert_array_equal(targets, [[2, 3, 4]])

    def test_clm_too_short(self):
        with pytest.raises(TrainingError):
            make_clm_batch(np.array([[1]]))

    def test_train_test_split(self):
        train, test = train_test_split(list(range(100)), 0.2, SeededRNG(0))
        assert len(train) == 80 and len(test) == 20
        assert set(train) | set(test) == set(range(100))

    def test_split_bad_fraction(self):
        with pytest.raises(TrainingError):
            train_test_split([1, 2, 3], 1.5, SeededRNG(0))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_empty_raises(self):
        with pytest.raises(TrainingError):
            accuracy([], [])

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(TrainingError):
            accuracy([1], [1, 2])

    def test_precision_recall_f1(self):
        preds = [1, 1, 0, 0]
        labels = [1, 0, 1, 0]
        p, r, f = precision_recall_f1(preds, labels)
        assert p == 0.5 and r == 0.5 and f == 0.5

    def test_f1_degenerate(self):
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_perplexity(self):
        assert perplexity(0.0) == 1.0
        assert perplexity(np.log(50.0)) == pytest.approx(50.0)
        with pytest.raises(TrainingError):
            perplexity(-1.0)


class TestPretraining:
    def test_clm_loss_decreases(self, tiny_gpt):
        # Fixture trains 60 steps; verify the recorded trajectory dropped.
        pass  # covered via report below

    def test_clm_report(self, word_tokenizer, corpus):
        config = ModelConfig.tiny(vocab_size=word_tokenizer.vocab_size)
        model = GPTModel(config, seed=0)
        report = pretrain_clm(model, word_tokenizer, corpus, steps=40, seed=0)
        assert len(report.losses) == 40
        assert report.loss_at(1.0) < report.loss_at(0.0)
        assert report.final_perplexity < np.exp(report.losses[0])

    def test_mlm_report(self, word_tokenizer, corpus):
        config = ModelConfig.tiny(vocab_size=word_tokenizer.vocab_size, causal=False)
        model = BERTModel(config, seed=0)
        report = pretrain_mlm(model, word_tokenizer, corpus, steps=40, seed=0)
        assert len(report.losses) == 40
        assert report.loss_at(1.0) < report.loss_at(0.0)

    def test_pretraining_is_deterministic(self, word_tokenizer, corpus):
        def run():
            config = ModelConfig.tiny(vocab_size=word_tokenizer.vocab_size)
            model = GPTModel(config, seed=0)
            return pretrain_clm(model, word_tokenizer, corpus, steps=5, seed=0).losses

        assert run() == run()


def sentiment_examples():
    """A linearly separable toy classification task."""
    positive = ["the query returns sorted results", "the index returns cached rows"]
    negative = ["the table scans empty columns", "the model updates empty records"]
    examples = []
    for text in positive * 4:
        examples.append(LabeledExample(text=text, label=1))
    for text in negative * 4:
        examples.append(LabeledExample(text=text, label=0))
    return examples


class TestFinetuning:
    def test_finetune_reaches_high_train_accuracy(self, tiny_bert, word_tokenizer):
        clf = SequenceClassifier(tiny_bert, num_classes=2, seed=0)
        report = finetune_classifier(
            clf, word_tokenizer, sentiment_examples(), epochs=8, lr=2e-3, seed=0
        )
        assert report.train_accuracy >= 0.9

    def test_evaluate_classifier(self, tiny_bert, word_tokenizer):
        clf = SequenceClassifier(tiny_bert, num_classes=2, seed=0)
        examples = sentiment_examples()
        finetune_classifier(clf, word_tokenizer, examples, epochs=8, lr=2e-3, seed=0)
        acc = evaluate_classifier(clf, word_tokenizer, examples)
        assert 0.0 <= acc <= 1.0

    def test_empty_examples_raise(self, tiny_bert, word_tokenizer):
        clf = SequenceClassifier(tiny_bert, num_classes=2)
        with pytest.raises(TrainingError):
            finetune_classifier(clf, word_tokenizer, [], epochs=1)
