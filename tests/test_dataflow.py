"""Tests for the CFG/dataflow engine, the golden corpus, and sandbox fuel."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.corpus import (
    FIXTURES,
    legacy_false_positives,
    legacy_rejects,
    safe_fixtures,
    unsafe_fixtures,
)
from repro.analysis.dataflow import (
    analyze_program,
    build_cfg,
    solve_forward,
)
from repro.analysis.findings import error_findings, warning_findings
from repro.analysis.pycheck import (
    BANNED_NAMES,
    DEFAULT_KNOWN_NAMES,
    TAINT_SINKS,
    TAINT_SOURCES,
    check_python,
)
from repro.codexdb.sandbox import run_generated_code
from repro.errors import FuelExhaustedError
from repro.sql import Database


def cfg_of(code):
    return build_cfg(ast.parse(code).body)


def analyze(code):
    return analyze_program(
        ast.parse(code),
        known=DEFAULT_KNOWN_NAMES,
        banned=BANNED_NAMES,
        taint_sources=TAINT_SOURCES,
        taint_sinks=TAINT_SINKS,
    )


class TestCFGConstruction:
    def test_straight_line_is_fully_reachable(self):
        cfg = cfg_of("a = 1\nb = a + 1\n")
        assert cfg.exit.index in cfg.reachable()

    def test_if_false_branch_is_unreachable(self):
        report = analyze("if False:\n    x = 1\ny = 2\n")
        assert 2 not in report.reachable_lines
        assert 3 in report.reachable_lines

    def test_if_true_else_is_unreachable(self):
        report = analyze("if True:\n    x = 1\nelse:\n    y = 2\nz = 3\n")
        assert 2 in report.reachable_lines
        assert 4 not in report.reachable_lines

    def test_code_after_return_semantics_via_while_true(self):
        # statements after a loop that never exits have no incoming edge
        report = analyze("while True:\n    x = 1\ny = 2\n")
        assert 3 not in report.reachable_lines

    def test_break_makes_loop_exit_reachable(self):
        report = analyze("while True:\n    break\ny = 2\n")
        assert 3 in report.reachable_lines

    def test_loops_are_recorded(self):
        cfg = cfg_of("while True:\n    x = 1\nfor i in range(3):\n    y = i\n")
        kinds = [type(node).__name__ for node, _frame in cfg.loops]
        assert kinds == ["While", "For"]


class TestWorklistSolver:
    def test_reaches_fixpoint_on_loop(self):
        # classic: definite assignment through a loop converges
        cfg = cfg_of("x = 1\nwhile x < 10:\n    x = x + 1\ny = x\n")

        def transfer(block, state):
            out = set(state)
            for element in block.elements:
                if element[0] == "stmt" and isinstance(element[1], ast.Assign):
                    for target in element[1].targets:
                        if isinstance(target, ast.Name):
                            out.add(target.id)
            return frozenset(out)

        def join(existing, incoming):
            if existing is None:
                return incoming
            return existing & incoming

        states = solve_forward(cfg, frozenset(), transfer, join)
        assert "x" in states[cfg.exit.index]

    def test_unreachable_blocks_get_no_state(self):
        cfg = cfg_of("if False:\n    x = 1\ny = 2\n")
        states = solve_forward(
            cfg, frozenset(), lambda b, s: s, lambda a, b: b if a is None else a
        )
        reachable = cfg.reachable()
        assert set(states) <= reachable


class TestDefiniteAssignment:
    def test_both_branches_definite(self):
        report = analyze(
            "if len(tables) > 0:\n    x = 1\nelse:\n    x = 2\nresult = [x]\n"
        )
        assert not any(f.rule == "use-before-def" for f in report.findings)

    def test_one_branch_not_definite(self):
        report = analyze("if len(tables) > 0:\n    x = 1\nresult = [x]\n")
        assert any(f.rule == "use-before-def" for f in report.findings)

    def test_loop_body_not_definite_after_loop(self):
        report = analyze("for i in range(3):\n    x = i\nresult = [x]\n")
        assert any(f.rule == "use-before-def" for f in report.findings)

    def test_exit_state_reports_module_results(self):
        report = analyze("result = []\ncolumns = []\n")
        assert report.definitely_assigned_at_exit is not None
        assert {"result", "columns"} <= set(report.definitely_assigned_at_exit)

    def test_walrus_binds(self):
        report = analyze("if (n := len(tables)) > 0:\n    y = n\nz = n\n")
        assert not any(f.rule == "use-before-def" for f in report.findings)

    def test_comprehension_target_does_not_leak(self):
        report = analyze("xs = [i for i in range(3)]\nresult = [i]\n")
        assert any(
            f.rule in ("use-before-def", "unknown-name") for f in report.findings
        )


class TestGoldenCorpus:
    """Exact verdicts over the labeled adversarial/benign fixtures."""

    @pytest.mark.parametrize(
        "fixture", unsafe_fixtures(), ids=lambda f: f.name
    )
    def test_unsafe_fixture_rejected_with_expected_rules(self, fixture):
        errors = error_findings(check_python(fixture.code))
        assert errors, f"{fixture.name} must be rejected"
        assert {f.rule for f in errors} == set(fixture.expect_rules)

    @pytest.mark.parametrize("fixture", safe_fixtures(), ids=lambda f: f.name)
    def test_safe_fixture_accepted(self, fixture):
        errors = error_findings(check_python(fixture.code))
        assert errors == [], f"{fixture.name} wrongly rejected: {errors}"

    def test_corpus_is_adversarial_and_benign(self):
        assert len(FIXTURES) >= 20
        assert len(unsafe_fixtures()) >= 10
        assert len(safe_fixtures()) >= 5

    def test_at_least_three_legacy_false_positives_fixed(self):
        fixed = legacy_false_positives()
        assert len(fixed) >= 3
        for fixture in fixed:
            assert legacy_rejects(fixture.code), (
                f"{fixture.name} should be rejected by the legacy rules"
            )
            assert error_findings(check_python(fixture.code)) == [], (
                f"{fixture.name} must be accepted by the flow-sensitive rules"
            )

    def test_legacy_misses_flow_bugs_the_new_pass_catches(self):
        # recall also improves: these escapes/bugs slipped past PR-1
        caught_only_by_new = [
            f
            for f in unsafe_fixtures()
            if not legacy_rejects(f.code)
        ]
        assert len(caught_only_by_new) >= 3


class TestSandboxFuel:
    def tables(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        return {"t": db.table("t")}

    def test_bounded_program_runs_untraced(self):
        code = (
            "result = [(r['a'],) for r in tables['t']]\n"
            "columns = ['a']\n"
        )
        outcome = run_generated_code(code, self.tables())
        assert outcome.rows == [(1,), (2,)]

    def test_data_dependent_loop_completes_under_fuel(self):
        code = (
            "i = 0\n"
            "while True:\n"
            "    i = i + 1\n"
            "    if i >= 5:\n"
            "        break\n"
            "result = [(i,)]\ncolumns = ['i']\n"
        )
        outcome = run_generated_code(code, self.tables())
        assert outcome.rows == [(5,)]

    def test_runaway_loop_exhausts_explicit_fuel(self):
        # provably-infinite loops are rejected statically, so simulate a
        # long-running data-dependent loop with a tiny explicit budget
        code = (
            "i = 0\n"
            "while True:\n"
            "    i = i + 1\n"
            "    if i >= 10**9:\n"
            "        break\n"
            "result = [(i,)]\ncolumns = ['i']\n"
        )
        with pytest.raises(FuelExhaustedError) as excinfo:
            run_generated_code(code, self.tables(), fuel=1000)
        assert excinfo.value.fuel == 1000

    def test_warning_findings_do_not_block_vetting(self):
        from repro.codexdb.sandbox import vet_generated_code

        code = (
            "i = 0\n"
            "while True:\n"
            "    i = i + 1\n"
            "    if i >= 2:\n"
            "        break\n"
            "result = [(i,)]\ncolumns = ['i']\n"
        )
        findings = vet_generated_code(code)
        assert any(f.rule == "unbounded-work" for f in findings)
        assert not error_findings(findings)
        assert warning_findings(findings)
