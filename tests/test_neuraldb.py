"""Tests for the NeuralDB subsystem."""

import pytest

from repro.errors import NeuralDBError
from repro.neuraldb import (
    EmbeddingRetriever,
    LexicalRetriever,
    NeuralDatabase,
    evaluate_neuraldb,
    generate_fact_world,
    train_reader,
)
from repro.neuraldb.facts import contrastive_pairs, training_qa_pairs


@pytest.fixture(scope="module")
def world():
    return generate_fact_world(num_people=10, seed=42)


@pytest.fixture(scope="module")
def reader():
    return train_reader(training_qa_pairs(seed=0, num_worlds=4), steps=200, seed=0)


@pytest.fixture(scope="module")
def lexical_db(world, reader):
    return NeuralDatabase(LexicalRetriever(world.facts), reader)


class TestFactWorld:
    def test_every_relation_has_a_fact(self, world):
        assert len(world.facts) == len(world.works_in) + len(world.located_in)

    def test_ground_truth_helpers(self, world):
        person = world.people[0]
        dept = world.works_in[person]
        assert world.building_of_person(person) == world.located_in[dept]
        total = sum(world.count_in_department(d) for d in world.departments)
        assert total == len(world.works_in)

    def test_deterministic(self):
        a = generate_fact_world(seed=7)
        b = generate_fact_world(seed=7)
        assert a.facts == b.facts

    def test_training_pairs_cover_generic_phrasing(self):
        triples = training_qa_pairs(seed=0, num_worlds=1)
        questions = {q for _, q, _ in triples}
        assert "where does this person work ?" in questions


class TestRetrievers:
    def test_lexical_finds_person_fact(self, world):
        retriever = LexicalRetriever(world.facts)
        person = world.people[0]
        hits = retriever.retrieve(f"where does {person} work ?", top_k=1)
        assert person in hits[0][0]

    def test_lexical_scores_sorted(self, world):
        retriever = LexicalRetriever(world.facts)
        hits = retriever.retrieve("where is engineering located ?", top_k=5)
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_empty_facts_raise(self):
        with pytest.raises(NeuralDBError):
            LexicalRetriever([])
        with pytest.raises(NeuralDBError):
            EmbeddingRetriever([])

    def test_contrastive_training_improves_retrieval(self, world):
        untrained = EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0)

        def hit_rate(retriever):
            hits = 0
            for person in world.people:
                top = retriever.retrieve(f"where does {person} work ?", top_k=1)
                hits += int(person in top[0][0])
            return hits / len(world.people)

        before = hit_rate(untrained)
        untrained.train_contrastive(contrastive_pairs(seed=0, num_worlds=4), steps=100, seed=0)
        after = hit_rate(untrained)
        assert after > before
        assert after >= 0.8

    def test_contrastive_empty_raises(self, world):
        retriever = EmbeddingRetriever(world.facts, pretrain_steps=5, seed=0)
        with pytest.raises(NeuralDBError):
            retriever.train_contrastive([])


class TestReader:
    def test_reads_department_from_fact(self, reader, world):
        person = world.people[0]
        dept = world.works_in[person]
        fact = next(f for f in world.facts if person in f)
        assert reader.read(fact, f"where does {person} work ?") == dept

    def test_empty_training_raises(self):
        with pytest.raises(NeuralDBError):
            train_reader([], steps=1)


class TestFactMutations:
    def test_added_fact_becomes_retrievable(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        db.add_fact("zoe works in engineering .")
        outcome = db.lookup("where does zoe work ?")
        assert "zoe" in outcome.supporting_facts[0]

    def test_removed_fact_is_gone(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        victim = world.facts[0]
        db.remove_fact(victim)
        assert victim not in db.facts

    def test_remove_unknown_fact_raises(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        with pytest.raises(NeuralDBError):
            db.remove_fact("this fact was never stored .")

    def test_add_empty_fact_raises(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        with pytest.raises(NeuralDBError):
            db.add_fact("   ")

    def test_count_sees_added_fact(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        dept = world.departments[0]
        before = db.count_department(dept).answer
        db.add_fact(f"zoe works in {dept} .")
        after = db.count_department(dept).answer
        assert after == before + 1


class TestNeuralDatabase:
    def test_lookup_returns_provenance(self, lexical_db, world):
        person = world.people[0]
        outcome = lexical_db.lookup(f"where does {person} work ?")
        assert outcome.supporting_facts
        assert str(outcome.answer) in world.departments or outcome.answer

    def test_lookup_accuracy_high(self, lexical_db, world):
        report = evaluate_neuraldb(lexical_db, world)
        assert report.lookup_accuracy >= 0.8

    def test_count_matches_ground_truth(self, lexical_db, world):
        report = evaluate_neuraldb(lexical_db, world)
        assert report.count_accuracy >= 0.75

    def test_join_composes_two_lookups(self, lexical_db, world):
        person = world.people[0]
        outcome = lexical_db.join_lookup(person)
        assert len(outcome.supporting_facts) == 2

    def test_overall_report(self, lexical_db, world):
        report = evaluate_neuraldb(lexical_db, world)
        assert 0.0 <= report.overall() <= 1.0
        assert report.overall() > 0.6


class TestInvertedIndex:
    def make(self, texts):
        from repro.neuraldb import InvertedIndex

        index = InvertedIndex()
        for doc_id, text in enumerate(texts):
            index.add(doc_id, text)
        return index

    def test_candidates_ranked_by_idf_overlap(self):
        index = self.make(
            [
                "alice works in engineering .",
                "bob works in sales .",
                "engineering is located in the tower .",
            ]
        )
        candidates = index.candidates("where does alice work ?")
        # "alice" appears in one doc; that doc must rank first.
        assert candidates[0] == 0

    def test_common_tokens_are_stopworded(self):
        texts = [f"person{i} works in engineering ." for i in range(10)]
        texts.append("zoe sits in the annex .")
        index = self.make(texts)
        # "works" matches 10/11 docs (> max_df_fraction) and is skipped;
        # only the selective name token proposes candidates.
        assert index.candidates("where does person3 works ?") == [3]

    def test_all_stopword_query_falls_back_to_matches(self):
        texts = [f"person{i} works in engineering ." for i in range(10)]
        index = self.make(texts)
        # Every query token is ubiquitous — keep them anyway rather
        # than returning no candidates.
        assert len(index.candidates("works in engineering")) == 10

    def test_no_match_returns_empty(self):
        index = self.make(["alice works in engineering ."])
        assert index.candidates("xyzzy ?") == []

    def test_remove_drops_postings(self):
        index = self.make(["alice works here .", "bob works here ."])
        index.remove(0)
        assert len(index) == 1
        assert index.candidates("alice") == []
        assert index.candidates("bob") == [1]

    def test_add_duplicate_id_and_remove_missing_raise(self):
        index = self.make(["alice works here ."])
        with pytest.raises(NeuralDBError):
            index.add(0, "again")
        with pytest.raises(NeuralDBError):
            index.remove(5)

    def test_limit_truncates_after_ranking(self):
        index = self.make(
            ["alice and bob .", "alice alone .", "carol alone ."]
        )
        candidates = index.candidates("alice bob", limit=1)
        assert candidates == [0]


class TestIncrementalEmbeddingIndex:
    @pytest.fixture(scope="class")
    def retriever(self, request):
        world = generate_fact_world(num_people=10, seed=42)
        return EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0)

    def test_add_fact_embeds_exactly_one_text(self, retriever):
        before = retriever.stats.embedded_texts
        retriever.add_fact("zoe works in engineering .")
        assert retriever.stats.embedded_texts == before + 1
        hits = retriever.retrieve("where does zoe work ?", top_k=3, mode="two_stage")
        assert any("zoe" in fact for fact, _ in hits)

    def test_remove_fact_embeds_nothing(self, retriever):
        retriever.add_fact("yuri works in sales .")
        before = retriever.stats.embedded_texts
        retriever.remove_fact("yuri works in sales .")
        assert retriever.stats.embedded_texts == before
        assert "yuri works in sales ." not in retriever.facts

    def test_tombstoned_fact_never_retrieved(self, retriever):
        retriever.add_fact("xena works in finance .")
        retriever.remove_fact("xena works in finance .")
        hits = retriever.retrieve("where does xena work ?", top_k=len(retriever.facts))
        assert all("xena" not in fact for fact, _ in hits)

    def test_duplicate_fact_removed_one_copy_at_a_time(self, retriever):
        retriever.add_fact("twin works in sales .")
        retriever.add_fact("twin works in sales .")
        retriever.remove_fact("twin works in sales .")
        assert retriever.facts.count("twin works in sales .") == 1
        hits = retriever.retrieve("where does twin work ?", top_k=3, mode="two_stage")
        assert any("twin" in fact for fact, _ in hits)
        retriever.remove_fact("twin works in sales .")
        assert "twin works in sales ." not in retriever.facts

    def test_remove_unknown_raises(self, retriever):
        with pytest.raises(NeuralDBError):
            retriever.remove_fact("never stored .")

    def test_two_stage_ranks_candidates_like_dense(self, retriever):
        # Two-stage is dense scoring restricted to the candidate set:
        # its results must be dense's ranking filtered to candidates.
        query = "where does alice work ?"
        candidates = {
            retriever._row_fact[row]
            for row in retriever._iindex.candidates(query)
        }
        dense = retriever.retrieve(query, top_k=len(retriever.facts), mode="dense")
        expected = [fact for fact, _ in dense if fact in candidates]
        two_stage = retriever.retrieve(
            query, top_k=len(retriever.facts), mode="two_stage"
        )
        assert [fact for fact, _ in two_stage] == expected
        assert any("alice" in fact for fact, _ in two_stage[:1])

    def test_two_stage_scores_fewer_facts(self, retriever):
        start = retriever.stats.facts_scored
        retriever.retrieve("where does alice work ?", mode="dense")
        dense_work = retriever.stats.facts_scored - start
        start = retriever.stats.facts_scored
        retriever.retrieve("where does alice work ?", mode="two_stage")
        two_stage_work = retriever.stats.facts_scored - start
        assert two_stage_work < dense_work

    def test_unmatched_query_falls_back_to_dense(self, retriever):
        before = retriever.stats.dense_fallbacks
        hits = retriever.retrieve("xyzzy plugh ?", top_k=2, mode="two_stage")
        assert retriever.stats.dense_fallbacks == before + 1
        assert len(hits) == 2

    def test_auto_mode_picks_by_corpus_size(self, retriever):
        assert len(retriever.facts) <= retriever.dense_cutoff
        before = retriever.stats.dense_queries
        retriever.retrieve("where does alice work ?", mode="auto")
        assert retriever.stats.dense_queries == before + 1

    def test_unknown_mode_raises(self, retriever):
        with pytest.raises(NeuralDBError):
            retriever.retrieve("anything", mode="fuzzy")


class TestEmbedFallbacks:
    def test_all_unk_row_falls_back_to_full_mask(self):
        world = generate_fact_world(num_people=6, seed=3)
        retriever = EmbeddingRetriever(world.facts, pretrain_steps=5, seed=0)
        # Every token out-of-vocabulary: the informative mask would be
        # all-zero, so pooling must fall back to the attention mask
        # instead of dividing by zero.
        import numpy as np

        vectors = retriever._embed(["xyzzy plugh qwop"])
        assert np.all(np.isfinite(vectors))
        assert np.linalg.norm(vectors[0]) == pytest.approx(1.0)

    def test_blocked_embedding_matches_single_batch(self):
        world = generate_fact_world(num_people=10, seed=3)
        blocked = EmbeddingRetriever(
            world.facts, pretrain_steps=5, seed=0, embed_block=4
        )
        whole = EmbeddingRetriever(
            world.facts, pretrain_steps=5, seed=0, embed_block=4096
        )
        import numpy as np

        a = blocked._embed(world.facts)
        b = whole._embed(world.facts)
        assert np.allclose(a, b, atol=1e-10)


class TestBatchedReader:
    def test_read_batch_matches_sequential_read(self, reader, world):
        items = [
            (fact, "where does this person work ?")
            for fact in world.facts
            if "located" not in fact and "sits" not in fact
        ]
        sequential = [reader.read(f, q) for f, q in items]
        batched = reader.read_batch(items)
        assert batched == sequential

    def test_read_batch_empty(self, reader):
        assert reader.read_batch([]) == []

    def test_lookup_batch_matches_lookups(self, lexical_db, world):
        questions = [f"where does {p} work ?" for p in world.people[:4]]
        batched = lexical_db.lookup_batch(questions)
        singles = [lexical_db.lookup(q) for q in questions]
        assert [o.answer for o in batched] == [o.answer for o in singles]
        assert [o.supporting_facts for o in batched] == [
            o.supporting_facts for o in singles
        ]

    def test_join_lookup_batch_matches_joins(self, lexical_db, world):
        persons = world.people[:3]
        batched = lexical_db.join_lookup_batch(persons)
        singles = [lexical_db.join_lookup(p) for p in persons]
        assert [o.answer for o in batched] == [o.answer for o in singles]


class TestScaledFactWorld:
    def test_scaled_world_has_synthetic_entities(self):
        world = generate_fact_world(
            num_people=40, seed=1, num_departments=10, num_buildings=6
        )
        assert len(world.located_in) == 10
        assert any(d.startswith("dept") for d in world.departments)
        assert len(world.facts) == 40 + 10

    def test_default_world_unchanged_by_scale_params(self):
        a = generate_fact_world(num_people=12, seed=9)
        b = generate_fact_world(
            num_people=12, seed=9, num_departments=4, num_buildings=4
        )
        assert a.facts == b.facts
        assert a.located_in == b.located_in

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            generate_fact_world(num_people=0)
        with pytest.raises(ValueError):
            generate_fact_world(num_departments=0)
