"""Tests for the NeuralDB subsystem."""

import pytest

from repro.errors import NeuralDBError
from repro.neuraldb import (
    EmbeddingRetriever,
    LexicalRetriever,
    NeuralDatabase,
    evaluate_neuraldb,
    generate_fact_world,
    train_reader,
)
from repro.neuraldb.facts import contrastive_pairs, training_qa_pairs


@pytest.fixture(scope="module")
def world():
    return generate_fact_world(num_people=10, seed=42)


@pytest.fixture(scope="module")
def reader():
    return train_reader(training_qa_pairs(seed=0, num_worlds=4), steps=200, seed=0)


@pytest.fixture(scope="module")
def lexical_db(world, reader):
    return NeuralDatabase(LexicalRetriever(world.facts), reader)


class TestFactWorld:
    def test_every_relation_has_a_fact(self, world):
        assert len(world.facts) == len(world.works_in) + len(world.located_in)

    def test_ground_truth_helpers(self, world):
        person = world.people[0]
        dept = world.works_in[person]
        assert world.building_of_person(person) == world.located_in[dept]
        total = sum(world.count_in_department(d) for d in world.departments)
        assert total == len(world.works_in)

    def test_deterministic(self):
        a = generate_fact_world(seed=7)
        b = generate_fact_world(seed=7)
        assert a.facts == b.facts

    def test_training_pairs_cover_generic_phrasing(self):
        triples = training_qa_pairs(seed=0, num_worlds=1)
        questions = {q for _, q, _ in triples}
        assert "where does this person work ?" in questions


class TestRetrievers:
    def test_lexical_finds_person_fact(self, world):
        retriever = LexicalRetriever(world.facts)
        person = world.people[0]
        hits = retriever.retrieve(f"where does {person} work ?", top_k=1)
        assert person in hits[0][0]

    def test_lexical_scores_sorted(self, world):
        retriever = LexicalRetriever(world.facts)
        hits = retriever.retrieve("where is engineering located ?", top_k=5)
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_empty_facts_raise(self):
        with pytest.raises(NeuralDBError):
            LexicalRetriever([])
        with pytest.raises(NeuralDBError):
            EmbeddingRetriever([])

    def test_contrastive_training_improves_retrieval(self, world):
        untrained = EmbeddingRetriever(world.facts, pretrain_steps=30, seed=0)

        def hit_rate(retriever):
            hits = 0
            for person in world.people:
                top = retriever.retrieve(f"where does {person} work ?", top_k=1)
                hits += int(person in top[0][0])
            return hits / len(world.people)

        before = hit_rate(untrained)
        untrained.train_contrastive(contrastive_pairs(seed=0, num_worlds=4), steps=100, seed=0)
        after = hit_rate(untrained)
        assert after > before
        assert after >= 0.8

    def test_contrastive_empty_raises(self, world):
        retriever = EmbeddingRetriever(world.facts, pretrain_steps=5, seed=0)
        with pytest.raises(NeuralDBError):
            retriever.train_contrastive([])


class TestReader:
    def test_reads_department_from_fact(self, reader, world):
        person = world.people[0]
        dept = world.works_in[person]
        fact = next(f for f in world.facts if person in f)
        assert reader.read(fact, f"where does {person} work ?") == dept

    def test_empty_training_raises(self):
        with pytest.raises(NeuralDBError):
            train_reader([], steps=1)


class TestFactMutations:
    def test_added_fact_becomes_retrievable(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        db.add_fact("zoe works in engineering .")
        outcome = db.lookup("where does zoe work ?")
        assert "zoe" in outcome.supporting_facts[0]

    def test_removed_fact_is_gone(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        victim = world.facts[0]
        db.remove_fact(victim)
        assert victim not in db.facts

    def test_remove_unknown_fact_raises(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        with pytest.raises(NeuralDBError):
            db.remove_fact("this fact was never stored .")

    def test_add_empty_fact_raises(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        with pytest.raises(NeuralDBError):
            db.add_fact("   ")

    def test_count_sees_added_fact(self, reader, world):
        db = NeuralDatabase(LexicalRetriever(list(world.facts)), reader)
        dept = world.departments[0]
        before = db.count_department(dept).answer
        db.add_fact(f"zoe works in {dept} .")
        after = db.count_department(dept).answer
        assert after == before + 1


class TestNeuralDatabase:
    def test_lookup_returns_provenance(self, lexical_db, world):
        person = world.people[0]
        outcome = lexical_db.lookup(f"where does {person} work ?")
        assert outcome.supporting_facts
        assert str(outcome.answer) in world.departments or outcome.answer

    def test_lookup_accuracy_high(self, lexical_db, world):
        report = evaluate_neuraldb(lexical_db, world)
        assert report.lookup_accuracy >= 0.8

    def test_count_matches_ground_truth(self, lexical_db, world):
        report = evaluate_neuraldb(lexical_db, world)
        assert report.count_accuracy >= 0.75

    def test_join_composes_two_lookups(self, lexical_db, world):
        person = world.people[0]
        outcome = lexical_db.join_lookup(person)
        assert len(outcome.supporting_facts) == 2

    def test_overall_report(self, lexical_db, world):
        report = evaluate_neuraldb(lexical_db, world)
        assert 0.0 <= report.overall() <= 1.0
        assert report.overall() > 0.6
