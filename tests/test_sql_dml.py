"""Tests for UPDATE, DELETE, DROP, and EXPLAIN."""

import pytest

from repro.errors import CatalogError, SQLAnalysisError, SQLSyntaxError
from repro.sql import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE items (id INT, name TEXT, price FLOAT)")
    database.execute(
        "INSERT INTO items VALUES (1, 'pen', 2.0), (2, 'book', 10.0), "
        "(3, 'lamp', 25.0), (4, 'desk', NULL)"
    )
    return database


class TestUpdate:
    def test_update_with_where(self, db):
        result = db.execute("UPDATE items SET price = 3.0 WHERE name = 'pen'")
        assert result.rowcount == 1
        assert db.execute("SELECT price FROM items WHERE id = 1").scalar() == 3.0

    def test_update_all_rows(self, db):
        result = db.execute("UPDATE items SET price = 1.0")
        assert result.rowcount == 4

    def test_update_expression_uses_old_values(self, db):
        db.execute("UPDATE items SET price = price * 2 WHERE id = 2")
        assert db.execute("SELECT price FROM items WHERE id = 2").scalar() == 20.0

    def test_update_multiple_columns(self, db):
        db.execute("UPDATE items SET name = 'pencil', price = 0.5 WHERE id = 1")
        row = db.execute("SELECT name, price FROM items WHERE id = 1").rows[0]
        assert row == ("pencil", 0.5)

    def test_update_null_where_excludes_row(self, db):
        # price IS NULL row: "price > 5" is unknown -> untouched.
        result = db.execute("UPDATE items SET name = 'x' WHERE price > 5")
        assert result.rowcount == 2

    def test_update_unknown_column_raises(self, db):
        with pytest.raises(SQLAnalysisError):
            db.execute("UPDATE items SET missing = 1")

    def test_update_coerces_types(self, db):
        db.execute("UPDATE items SET price = 7 WHERE id = 1")
        value = db.execute("SELECT price FROM items WHERE id = 1").scalar()
        assert isinstance(value, float)

    def test_update_syntax_error(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("UPDATE items SET price 3")


class TestDelete:
    def test_delete_with_where(self, db):
        result = db.execute("DELETE FROM items WHERE price > 9")
        assert result.rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 2

    def test_delete_all(self, db):
        result = db.execute("DELETE FROM items")
        assert result.rowcount == 4
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == 0

    def test_delete_null_predicate_keeps_row(self, db):
        db.execute("DELETE FROM items WHERE price > 0")
        names = db.execute("SELECT name FROM items").column("name")
        assert names == ["desk"]  # NULL price row survives

    def test_delete_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("DELETE FROM ghosts")


class TestDrop:
    def test_drop_removes_table(self, db):
        db.execute("DROP TABLE items")
        assert "items" not in db.table_names()

    def test_drop_missing_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE ghosts")


class TestExplain:
    def test_explain_returns_plan_rows(self, db):
        result = db.execute("EXPLAIN SELECT name FROM items WHERE price > 5")
        assert result.columns == ["plan"]
        text = "\n".join(r[0] for r in result.rows)
        assert "Scan items" in text
        assert "Project: name" in text

    def test_explain_shows_pushdown(self, db):
        db.execute("CREATE TABLE other (id INT, tag TEXT)")
        db.execute("INSERT INTO other VALUES (1, 'a')")
        result = db.execute(
            "EXPLAIN SELECT i.name FROM items i JOIN other o ON i.id = o.id "
            "WHERE i.price > 5"
        )
        text = "\n".join(r[0] for r in result.rows)
        assert "pushed-filter" in text
        assert "hash join" in text

    def test_explain_nested_loop_for_non_equi(self, db):
        db.execute("CREATE TABLE other (id INT, tag TEXT)")
        db.execute("INSERT INTO other VALUES (1, 'a')")
        result = db.execute(
            "EXPLAIN SELECT i.name FROM items i JOIN other o ON i.id > o.id"
        )
        text = "\n".join(r[0] for r in result.rows)
        assert "nested-loop join" in text

    def test_explain_aggregate_and_sort(self, db):
        result = db.execute(
            "EXPLAIN SELECT name, COUNT(*) FROM items GROUP BY name "
            "ORDER BY name LIMIT 2"
        )
        text = "\n".join(r[0] for r in result.rows)
        assert "Aggregate: group by name" in text
        assert "Sort:" in text
        assert "Limit: 2" in text

    def test_explain_does_not_execute(self, db):
        before = db.execute("SELECT COUNT(*) FROM items").scalar()
        db.execute("EXPLAIN SELECT * FROM items")
        assert db.execute("SELECT COUNT(*) FROM items").scalar() == before


class TestRoundTripSQL:
    def test_update_ast_roundtrip(self):
        from repro.sql import parse_sql

        stmt = parse_sql("UPDATE t SET a = 1, b = 'x' WHERE c > 2")
        reparsed = parse_sql(stmt.sql())
        assert reparsed.sql() == stmt.sql()

    def test_delete_ast_roundtrip(self):
        from repro.sql import parse_sql

        stmt = parse_sql("DELETE FROM t WHERE a IS NULL")
        assert parse_sql(stmt.sql()).sql() == stmt.sql()
