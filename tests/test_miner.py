"""Tests for NL pattern mining (BABOONS/NaturalMiner-style)."""

import pytest

from repro.errors import ReproError
from repro.miner import (
    KeywordRelevanceScorer,
    enumerate_facts,
    exhaustive_summary,
    generate_sales_table,
    greedy_summary,
    sampled_summary,
    train_relevance_scorer,
)


@pytest.fixture(scope="module")
def db():
    return generate_sales_table(num_rows=80, seed=0)


@pytest.fixture(scope="module")
def facts(db):
    return enumerate_facts(db, "sales", ["category", "region"], ["price", "revenue"])


@pytest.fixture(scope="module")
def lm_scorer(facts):
    return train_relevance_scorer(facts, steps=180, seed=0)


class TestFactEnumeration:
    def test_cardinality(self, facts):
        # (4 categories + 4 regions) filters x 2 metrics x 2 aggs = 32.
        assert len(facts) == 32

    def test_planted_pattern_visible_in_facts(self, facts):
        dairy_price = next(
            f for f in facts
            if f.filter_value == "dairy" and f.metric == "price" and f.agg == "avg"
        )
        assert dairy_price.direction == "higher than"
        west_revenue = next(
            f for f in facts
            if f.filter_value == "west" and f.metric == "revenue" and f.agg == "avg"
        )
        assert west_revenue.direction == "lower than"

    def test_sentences_are_readable(self, facts):
        sentence = facts[0].sentence()
        assert "overall" in sentence
        assert facts[0].filter_value in sentence

    def test_empty_enumeration_raises(self, db):
        with pytest.raises(ReproError):
            enumerate_facts(db, "sales", [], [])


class TestScorers:
    def test_keyword_counts_overlap(self, facts):
        scorer = KeywordRelevanceScorer()
        dairy_fact = next(f for f in facts if f.filter_value == "dairy")
        other_fact = next(f for f in facts if f.filter_value == "north")
        assert scorer.score("dairy price", dairy_fact) > scorer.score(
            "dairy price", other_fact
        )
        assert scorer.calls == 2

    def test_lm_scorer_ranks_planted_fact_first(self, lm_scorer, facts):
        goal = "how does dairy differ on price"
        ranked = sorted(facts, key=lambda f: -lm_scorer.score(goal, f))
        assert ranked[0].filter_value == "dairy"
        assert ranked[0].metric == "price"

    def test_lm_scorer_generalizes_across_goals(self, lm_scorer, facts):
        goal = "why is revenue unusual for west"
        ranked = sorted(facts, key=lambda f: -lm_scorer.score(goal, f))
        assert ranked[0].filter_value == "west"
        assert ranked[0].metric == "revenue"

    def test_empty_training_raises(self):
        with pytest.raises(ReproError):
            train_relevance_scorer([], steps=1)


class TestSearch:
    def test_greedy_summary_is_diverse(self, lm_scorer, facts):
        result = greedy_summary(lm_scorer, "how does dairy differ on price", facts, k=3)
        dims = [f.dimensions for f in result.facts]
        assert len(set(dims)) == len(dims)
        assert len(result.facts) == 3

    def test_greedy_recovers_planted_pattern(self, lm_scorer, facts):
        result = greedy_summary(lm_scorer, "how does dairy differ on price", facts, k=2)
        assert result.facts[0].dimensions == ("category=dairy", "price")

    def test_exhaustive_equals_greedy_quality(self, lm_scorer, facts):
        goal = "tell me about revenue in the west group"
        greedy = greedy_summary(lm_scorer, goal, facts, k=2)
        exhaustive = exhaustive_summary(lm_scorer, goal, facts, k=2)
        assert [f.dimensions for f in greedy.facts] == [
            f.dimensions for f in exhaustive.facts
        ]

    def test_sampled_uses_fewer_calls(self, lm_scorer, facts):
        goal = "how does dairy differ on price"
        sampled = sampled_summary(lm_scorer, goal, facts, k=2, budget=6, seed=0)
        full = greedy_summary(lm_scorer, goal, facts, k=2)
        assert sampled.scorer_calls < full.scorer_calls
        assert sampled.scorer_calls <= 6

    def test_small_budget_can_miss_pattern(self, lm_scorer, facts):
        goal = "how does dairy differ on price"
        hits = 0
        for seed in range(6):
            result = sampled_summary(lm_scorer, goal, facts, k=2, budget=4, seed=seed)
            hits += int(
                any(f.dimensions == ("category=dairy", "price") for f in result.facts)
            )
        assert hits < 6  # with 4/32 facts scored, some runs miss it

    def test_invalid_k_raises(self, lm_scorer, facts):
        with pytest.raises(ReproError):
            greedy_summary(lm_scorer, "goal", facts, k=0)

    def test_invalid_budget_raises(self, lm_scorer, facts):
        with pytest.raises(ReproError):
            sampled_summary(lm_scorer, "goal", facts, budget=0)

    def test_render_is_multiline(self, lm_scorer, facts):
        result = greedy_summary(lm_scorer, "dairy price", facts, k=2)
        assert result.render().count("\n") == 1
