"""Tests for the neural-network layer library."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ModelError
from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    TransformerBlock,
    TransformerStack,
    causal_mask,
    chunk_causal_mask,
    padding_mask,
)
from repro.utils.rng import SeededRNG


@pytest.fixture
def rng():
    return SeededRNG(0)


class TestModule:
    def test_parameter_registration(self, rng):
        layer = Linear(4, 3, rng)
        names = [n for n, _ in layer.named_parameters()]
        assert set(names) == {"weight", "bias"}

    def test_nested_registration(self, rng):
        block = TransformerBlock(8, 2, 16, rng)
        names = [n for n, _ in block.named_parameters()]
        assert any(n.startswith("attn.query.") for n in names)
        assert any(n.startswith("ff.up.") for n in names)

    def test_num_parameters(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self, rng):
        a = Linear(4, 3, rng.spawn("a"))
        b = Linear(4, 3, rng.spawn("b"))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self, rng):
        a = Linear(4, 3, rng)
        with pytest.raises(ModelError):
            a.load_state_dict({"weight": np.zeros((4, 3))})  # missing bias

    def test_state_dict_shape_mismatch_raises(self, rng):
        a = Linear(4, 3, rng)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ModelError):
            a.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        block = TransformerBlock(8, 2, 16, rng, dropout=0.5)
        block.eval()
        assert not block.attn.attn_dropout.training
        block.train()
        assert block.attn.attn_dropout.training

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = Linear(5, 7, rng)
        out = layer(Tensor(np.zeros((2, 3, 5))))
        assert out.shape == (2, 3, 7)

    def test_linear_no_bias(self, rng):
        layer = Linear(5, 7, rng, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 35

    def test_embedding_shapes(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_embedding_invalid_size(self, rng):
        with pytest.raises(ModelError):
            Embedding(0, 4, rng)

    def test_layer_norm_normalizes(self):
        ln = LayerNorm(6)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, (4, 6)))
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)

    def test_dropout_bad_p(self, rng):
        with pytest.raises(ModelError):
            Dropout(1.0, rng)


class TestMasks:
    def test_causal_mask_blocks_future(self):
        mask = causal_mask(4)
        assert not mask[2, 1]  # past allowed
        assert mask[1, 2]      # future blocked
        assert not mask.diagonal().any()

    def test_padding_mask_shape(self):
        attn = np.array([[1, 1, 0], [1, 0, 0]])
        mask = padding_mask(attn)
        assert mask.shape == (2, 1, 1, 3)
        assert mask[0, 0, 0].tolist() == [False, False, True]

    def test_cached_mask_matches_fresh_triu_across_sizes(self):
        # Shrinking, growing, and regrowing must all slice correctly
        # out of the shared cached triangle.
        for seq_len in (5, 3, 70, 12, 200, 1):
            mask = causal_mask(seq_len)
            assert mask.shape == (seq_len, seq_len)
            np.testing.assert_array_equal(
                mask, np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)
            )

    def test_cached_mask_is_read_only_view(self):
        mask = causal_mask(6)
        assert not mask.flags.writeable
        with pytest.raises(ValueError):
            mask[0, 0] = True
        # Repeated same-size calls share the cache's buffer.
        assert causal_mask(6).base is causal_mask(6).base

    def test_chunk_causal_mask_covers_absolute_columns(self):
        chunk = chunk_causal_mask(3, 7)
        assert chunk.shape == (4, 7)
        np.testing.assert_array_equal(chunk, causal_mask(7)[3:7])
        # Query at absolute position 3 sees keys 0..3, not 4..6.
        assert chunk[0].tolist() == [False] * 4 + [True] * 3
        assert not chunk[-1].any()


class TestAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadAttention(16, 4, rng)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_dim_head_divisibility(self, rng):
        with pytest.raises(ModelError):
            MultiHeadAttention(10, 3, rng)

    def test_attention_rows_sum_to_one(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        attn(Tensor(np.random.default_rng(1).normal(size=(1, 4, 8))))
        weights = attn.last_attention
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-9)

    def test_causal_attention_is_lower_triangular(self, rng):
        attn = MultiHeadAttention(8, 2, rng, causal=True)
        attn(Tensor(np.random.default_rng(2).normal(size=(1, 5, 8))))
        weights = attn.last_attention[0, 0]
        upper = np.triu(weights, k=1)
        np.testing.assert_allclose(upper, 0.0, atol=1e-9)

    def test_padding_is_not_attended(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        mask = np.array([[1, 1, 1, 0, 0]])
        attn(Tensor(np.random.default_rng(3).normal(size=(1, 5, 8))), mask)
        weights = attn.last_attention[0, 0]
        np.testing.assert_allclose(weights[:, 3:], 0.0, atol=1e-9)

    def test_causal_output_prefix_invariance(self, rng):
        """Causal attention output at position t must not change when
        future tokens change — the defining property of a decoder."""
        attn = MultiHeadAttention(8, 2, rng, causal=True)
        gen = np.random.default_rng(4)
        x = gen.normal(size=(1, 6, 8))
        y = x.copy()
        y[0, 4:] = gen.normal(size=(2, 8))
        out_x = attn(Tensor(x)).data
        out_y = attn(Tensor(y)).data
        np.testing.assert_allclose(out_x[0, :4], out_y[0, :4], atol=1e-10)

    def test_gradients_flow_through_attention(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        x = Tensor(np.random.default_rng(5).normal(size=(1, 3, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.query.weight.grad is not None


class TestTransformer:
    def test_block_preserves_shape(self, rng):
        block = TransformerBlock(16, 4, 32, rng)
        out = block(Tensor(np.zeros((2, 7, 16))))
        assert out.shape == (2, 7, 16)

    def test_stack_layers_registered(self, rng):
        stack = TransformerStack(3, 8, 2, 16, rng)
        block_params = {n.split(".")[0] for n, _ in stack.named_parameters()}
        assert {"block0", "block1", "block2", "final_norm"} <= block_params

    def test_stack_forward_and_backward(self, rng):
        stack = TransformerStack(2, 8, 2, 16, rng)
        x = Tensor(np.random.default_rng(6).normal(size=(2, 4, 8)), requires_grad=True)
        stack(x).sum().backward()
        assert x.grad is not None
        for param in stack.parameters():
            assert param.grad is not None, "every parameter should receive gradient"


class TestFusedAttention:
    """The blocked online-softmax kernel vs the naive materialized path."""

    def _naive(self, q, keys, values, blocked=None, scale=1.0):
        scores = (q @ keys.transpose(0, 1, 3, 2)) * scale
        if blocked is not None:
            from repro.nn.attention import NEG_INF

            scores = np.where(blocked, NEG_INF, scores)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        weights = np.exp(shifted)
        weights = weights / weights.sum(axis=-1, keepdims=True)
        return weights @ values

    def test_matches_naive_unmasked(self):
        from repro.nn import fused_attention

        gen = np.random.default_rng(0)
        q = gen.normal(size=(2, 3, 5, 4))
        keys = gen.normal(size=(2, 3, 11, 4))
        values = gen.normal(size=(2, 3, 11, 4))
        out = fused_attention(q, keys, values, scale=0.5, block_size=4)
        np.testing.assert_allclose(
            out, self._naive(q, keys, values, scale=0.5), atol=1e-12
        )

    def test_matches_naive_with_causal_mask_across_blocks(self):
        from repro.nn import fused_attention

        gen = np.random.default_rng(1)
        q = gen.normal(size=(1, 2, 9, 4))
        keys = gen.normal(size=(1, 2, 9, 4))
        values = gen.normal(size=(1, 2, 9, 4))
        blocked = causal_mask(9)[None, None]
        # block_size=3 forces the online recurrence across 3 key blocks,
        # including blocks that are fully masked for early queries.
        out = fused_attention(q, keys, values, blocked=blocked, block_size=3)
        np.testing.assert_allclose(
            out, self._naive(q, keys, values, blocked=blocked), atol=1e-12
        )

    def test_single_block_degenerates_to_naive_order(self):
        from repro.nn import fused_attention

        gen = np.random.default_rng(2)
        q = gen.normal(size=(1, 1, 2, 3))
        kv = gen.normal(size=(1, 1, 6, 3))
        out = fused_attention(q, kv, kv, block_size=64)
        np.testing.assert_allclose(out, self._naive(q, kv, kv), atol=1e-12)

    def test_fused_incremental_matches_default_path(self, rng):
        from repro.nn import set_fused_attention
        from repro.serving import KVCache

        attn = MultiHeadAttention(8, 2, rng, causal=True)
        x = Tensor(np.random.default_rng(3).normal(size=(2, 5, 8)))
        blocked = causal_mask(5)[None, None]
        base = attn.incremental(x, KVCache(), blocked=blocked).data
        set_fused_attention(attn)
        fused = attn.incremental(x, KVCache(), blocked=blocked).data
        np.testing.assert_allclose(fused, base, atol=1e-10)
        # The fused path never materializes the weight matrix.
        assert attn.last_attention is None
        set_fused_attention(attn, enabled=False)
        assert attn.fused is False

    def test_fused_greedy_decode_identical(self):
        from repro.generation import GenerationConfig, generate
        from repro.models import GPTModel, ModelConfig
        from repro.nn import set_fused_attention

        model = GPTModel(ModelConfig.tiny(vocab_size=40), seed=5)
        prompt = [3, 17, 9, 24]
        config = GenerationConfig(max_new_tokens=10)
        expected = generate(model, prompt, config)
        import copy

        fused = set_fused_attention(copy.deepcopy(model))
        assert generate(fused, prompt, config) == expected


class TestQuantization:
    def test_quantize_weight_roundtrip_error_bound(self, rng):
        from repro.nn import quantize_weight

        weight = np.random.default_rng(0).normal(size=(16, 8))
        w_q, scales = quantize_weight(weight)
        assert w_q.dtype == np.int8
        assert np.abs(w_q).max() <= 127
        # Symmetric rounding: per-channel error is at most half a step.
        error = np.abs(weight - w_q.astype(np.float64) * scales)
        assert (error <= scales / 2 + 1e-12).all()

    def test_zero_channel_gets_unit_scale(self):
        from repro.nn import quantize_weight

        weight = np.zeros((4, 3))
        weight[:, 0] = [1.0, -2.0, 0.5, 0.0]
        w_q, scales = quantize_weight(weight)
        assert scales[1] == 1.0 and scales[2] == 1.0
        assert (w_q[:, 1:] == 0).all()

    def test_quantized_linear_close_to_float(self, rng):
        from repro.nn import QuantizedLinear

        layer = Linear(12, 6, rng)
        qlayer = QuantizedLinear(layer)
        x = np.random.default_rng(1).normal(size=(4, 12))
        base = layer(Tensor(x)).data
        quant = qlayer(Tensor(x)).data
        # Error budget: ~in_features * (max|x| * scale/2); loose 2e-2.
        np.testing.assert_allclose(quant, base, atol=2e-2)

    def test_quantize_model_reports_and_preserves_original(self):
        from repro.models import GPTModel, ModelConfig
        from repro.nn import Linear, quantize_model
        from repro.nn.quant import QuantizedLinear

        model = GPTModel(ModelConfig.tiny(vocab_size=40), seed=5)
        before = {
            name: param.data.copy() for name, param in model.named_parameters()
        }
        quantized, report = quantize_model(model)
        # One report entry per replaced Linear, all with finite error.
        linears = sum(
            1 for _ in filter(
                lambda m: isinstance(m, QuantizedLinear), _walk(quantized)
            )
        )
        assert linears == len(report.layers) > 0
        assert 0 < report.max_abs_error < 0.1
        assert report.compression > 4.0
        # The original keeps its float Linears and exact weights.
        assert not any(isinstance(m, QuantizedLinear) for m in _walk(model))
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])

    def test_quantize_model_greedy_decode_identical(self):
        from repro.generation import GenerationConfig, generate
        from repro.models import GPTModel, ModelConfig
        from repro.nn import quantize_model

        model = GPTModel(ModelConfig.tiny(vocab_size=40), seed=5)
        quantized, _ = quantize_model(model)
        config = GenerationConfig(max_new_tokens=10)
        for prompt in ([3, 17, 9, 24], [1], [30, 2, 2, 8, 19]):
            assert generate(quantized, prompt, config) == generate(
                model, prompt, config
            )

    def test_quantize_without_linears_rejected(self):
        from repro.nn import quantize_model

        with pytest.raises(ModelError):
            quantize_model(LayerNorm(8))


def _walk(module):
    yield module
    for child in module._modules.values():
        yield from _walk(child)
