"""Tests for the fact-checking pipeline."""

import pytest

from repro.errors import FactCheckError
from repro.factcheck import (
    CandidateQuery,
    FactChecker,
    KeywordRanker,
    Verdict,
    enumerate_candidates,
    evaluate_checker,
    generate_claim_workload,
    train_lm_ranker,
)


@pytest.fixture(scope="module")
def workload():
    return generate_claim_workload(num_rows=30, num_claims=60, seed=0)


@pytest.fixture(scope="module")
def lm_checker(workload):
    train, _ = workload.split(test_fraction=0.3, seed=1)
    ranker = train_lm_ranker(workload, train, steps=150, seed=0)
    return FactChecker(workload, ranker)


class TestClaimGeneration:
    def test_balanced_truthfulness(self, workload):
        truthful = sum(c.truthful for c in workload.claims)
        assert truthful == len(workload.claims) // 2

    def test_true_claims_match_data(self, workload):
        for claim in workload.claims:
            if not claim.truthful:
                continue
            gold = CandidateQuery(
                agg=claim.agg, column=claim.column, filter_value=claim.filter_value
            )
            assert gold.execute(workload) == pytest.approx(claim.claimed_value)

    def test_false_claims_diverge(self, workload):
        for claim in workload.claims:
            if claim.truthful:
                continue
            gold = CandidateQuery(
                agg=claim.agg, column=claim.column, filter_value=claim.filter_value
            )
            true_value = gold.execute(workload)
            assert abs(claim.claimed_value - true_value) > 1.0

    def test_deterministic(self):
        a = generate_claim_workload(num_claims=10, seed=4)
        b = generate_claim_workload(num_claims=10, seed=4)
        assert [c.text for c in a.claims] == [c.text for c in b.claims]


class TestCandidates:
    def test_enumeration_size(self, workload):
        # (1 count + 4 aggs * 2 cols) per (no-filter + 4 filters) = 45.
        assert len(enumerate_candidates(workload)) == 45

    def test_all_candidates_execute(self, workload):
        for candidate in enumerate_candidates(workload):
            value = candidate.execute(workload)
            assert isinstance(value, float)

    def test_description_is_stable(self):
        c = CandidateQuery(agg="avg", column="salary", filter_value="sales")
        assert c.description() == "avg salary where sales"

    def test_sql_shape(self, workload):
        c = CandidateQuery(agg="count", column=None, filter_value="sales")
        assert "COUNT(*)" in c.sql(workload)
        assert "WHERE" in c.sql(workload)


class TestKeywordRanker:
    def test_transparent_claim_resolved(self, workload):
        ranker = KeywordRanker()
        candidates = enumerate_candidates(workload)
        best = ranker.best(
            "the average salary of sales employees is 100", candidates
        )
        assert best.agg == "avg"
        assert best.column == "salary"
        assert best.filter_value == "sales"

    def test_rank_returns_all_candidates(self, workload):
        ranker = KeywordRanker()
        candidates = enumerate_candidates(workload)
        ranked = ranker.rank("there are 12 employees in sales", candidates)
        assert len(ranked) == len(candidates)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestLMChecker:
    def test_verdicts_are_verdicts(self, workload, lm_checker):
        result = lm_checker.verify(workload.claims[0])
        assert result.verdict in (Verdict.SUPPORTED, Verdict.REFUTED)

    def test_lm_beats_keyword_ranker(self, workload, lm_checker):
        _, test = workload.split(test_fraction=0.3, seed=1)
        keyword = evaluate_checker(FactChecker(workload, KeywordRanker()), test)
        lm = evaluate_checker(lm_checker, test)
        assert lm["interpretation_accuracy"] >= keyword["interpretation_accuracy"]
        assert lm["verdict_accuracy"] >= keyword["verdict_accuracy"]

    def test_lm_verdict_accuracy_high(self, workload, lm_checker):
        _, test = workload.split(test_fraction=0.3, seed=1)
        metrics = evaluate_checker(lm_checker, test)
        assert metrics["verdict_accuracy"] >= 0.8

    def test_empty_training_raises(self, workload):
        with pytest.raises(FactCheckError):
            train_lm_ranker(workload, [], steps=1)


class TestVerificationMechanics:
    def test_tolerance_accepts_rounding(self, workload):
        checker = FactChecker(workload, KeywordRanker(), tolerance=0.05)
        # A claim value within 5% of computed counts as supported.
        candidates = enumerate_candidates(workload)
        gold = candidates[0]
        computed = gold.execute(workload)
        assert checker._values_match(computed * 1.01, computed)
        assert not checker._values_match(computed * 1.5, computed)

    def test_result_metadata(self, workload, lm_checker):
        claim = workload.claims[0]
        result = lm_checker.verify(claim)
        assert result.claim is claim
        assert isinstance(result.computed_value, float)
        assert isinstance(result.interpreted_correctly, bool)
