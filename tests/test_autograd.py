"""Tests for the autograd engine, including finite-difference checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    concat,
    cross_entropy,
    dropout,
    embedding,
    gelu,
    layer_norm,
    log_softmax,
    no_grad,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.errors import ShapeError


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. array ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, tol=1e-5):
    """Compare autograd gradient against finite differences."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)

    t = Tensor(x.copy(), requires_grad=True)
    loss = build_loss(t)
    loss.backward()
    analytic = t.grad

    numeric = numeric_grad(lambda arr: build_loss(Tensor(arr)).item(), x.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


class TestBasicOps:
    def test_add_and_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 1.0])

    def test_mul_grad(self):
        check_gradient(lambda t: (t * t * 3.0).sum(), (4, 3))

    def test_div_grad(self):
        check_gradient(lambda t: (t / 2.5 + 1.0 / (t + 10.0)).sum(), (3, 3))

    def test_pow_grad(self):
        check_gradient(lambda t: ((t + 5.0) ** 3).sum(), (5,))

    def test_neg_sub(self):
        a = Tensor([2.0], requires_grad=True)
        (5.0 - a).backward()
        np.testing.assert_array_equal(a.grad, [-1.0])

    def test_matmul_grad(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), (4, 3))

    def test_batched_matmul_grad(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(2, 4, 3))
        check_gradient(lambda t: (t @ Tensor(w)).sum(), (2, 5, 4))

    def test_broadcast_add_grad(self):
        rng = np.random.default_rng(3)
        b = rng.normal(size=(3,))
        check_gradient(lambda t: ((t + Tensor(b)) ** 2).sum(), (4, 3))

    def test_broadcast_bias_receives_summed_grad(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_array_equal(b.grad, [4.0, 4.0, 4.0])

    def test_exp_log_grad(self):
        check_gradient(lambda t: (t.exp() + (t + 10.0).log()).sum(), (6,))

    def test_sum_axis_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), (3, 4))

    def test_mean_grad(self):
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), (5, 2))

    def test_reshape_transpose_grad(self):
        check_gradient(
            lambda t: (t.reshape(2, 6).transpose(1, 0) ** 2).sum(), (3, 4)
        )

    def test_getitem_grad(self):
        check_gradient(lambda t: (t[1:3] ** 2).sum(), (5, 2))

    def test_masked_fill(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        mask = np.array([True, False, True, False])
        out = x.masked_fill(mask, -99.0)
        np.testing.assert_array_equal(out.data, [-99.0, 1.0, -99.0, 3.0])
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0, 1.0])

    def test_max_along(self):
        check_gradient(lambda t: (t.max_along(axis=1) ** 2).sum(), (4, 5))

    def test_diamond_graph_accumulates(self):
        # x used twice: grad must be the sum of both paths.
        x = Tensor([3.0], requires_grad=True)
        y = x * 2.0
        z = x * 5.0
        (y + z).backward()
        np.testing.assert_array_equal(x.grad, [7.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        np.testing.assert_array_equal(x.grad, [5.0])
        x.zero_grad()
        assert x.grad is None


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 7)))
        out = softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_softmax_grad(self):
        rng = np.random.default_rng(4)
        w = rng.normal(size=(5,))
        check_gradient(lambda t: (softmax(t) * Tensor(w)).sum(), (3, 5))

    def test_softmax_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        out = softmax(x)
        assert np.isfinite(out.data).all()

    def test_log_softmax_grad(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(4,))
        check_gradient(lambda t: (log_softmax(t) * Tensor(w)).sum(), (2, 4))

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        expected = -np.log(np.exp(2) / (np.exp(2) + 1))
        np.testing.assert_allclose(loss.item(), expected, rtol=1e-9)

    def test_cross_entropy_grad(self):
        targets = np.array([0, 2, 1])
        check_gradient(lambda t: cross_entropy(t, targets), (3, 4))

    def test_cross_entropy_ignore_index(self):
        targets = np.array([0, -100, 1])
        logits_data = np.random.default_rng(6).normal(size=(3, 4))
        t = Tensor(logits_data, requires_grad=True)
        loss = cross_entropy(t, targets, ignore_index=-100)
        loss.backward()
        # Ignored row gets zero gradient.
        np.testing.assert_array_equal(t.grad[1], np.zeros(4))

    def test_cross_entropy_all_ignored_raises(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([-1, -1]), ignore_index=-1)

    def test_cross_entropy_bad_shapes(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_layer_norm_output_stats(self):
        x = Tensor(np.random.default_rng(7).normal(5.0, 3.0, size=(4, 8)))
        w = Tensor(np.ones(8))
        b = Tensor(np.zeros(8))
        out = layer_norm(x, w, b)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-3)

    def test_layer_norm_grad(self):
        w = np.random.default_rng(8).normal(size=(6,))
        b = np.random.default_rng(9).normal(size=(6,))
        check_gradient(
            lambda t: (layer_norm(t, Tensor(w), Tensor(b)) ** 2).sum(), (3, 6)
        )

    def test_embedding_forward(self):
        weight = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        ids = np.array([[0, 2], [1, 1]])
        out = embedding(weight, ids)
        assert out.shape == (2, 2, 3)
        np.testing.assert_array_equal(out.data[0, 1], [6.0, 7.0, 8.0])

    def test_embedding_grad_scatter(self):
        weight = Tensor(np.zeros((4, 2)), requires_grad=True)
        ids = np.array([1, 1, 3])
        embedding(weight, ids).sum().backward()
        np.testing.assert_array_equal(weight.grad[1], [2.0, 2.0])
        np.testing.assert_array_equal(weight.grad[3], [1.0, 1.0])
        np.testing.assert_array_equal(weight.grad[0], [0.0, 0.0])

    def test_embedding_out_of_range(self):
        with pytest.raises(ShapeError):
            embedding(Tensor(np.zeros((3, 2))), np.array([5]))

    @pytest.mark.parametrize("fn", [tanh, sigmoid, relu, gelu])
    def test_activation_grads(self, fn):
        check_gradient(lambda t: (fn(t) ** 2).sum(), (4, 3))

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((10, 10)))
        rng = np.random.default_rng(0)
        out = dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_training_scales(self):
        x = Tensor(np.ones((200, 200)))
        rng = np.random.default_rng(0)
        out = dropout(x, 0.25, rng, training=True)
        # Inverted dropout keeps the expectation ~1.
        assert abs(out.data.mean() - 1.0) < 0.02
        kept = out.data != 0
        assert abs(kept.mean() - 0.75) < 0.02

    def test_concat_grad(self):
        rng = np.random.default_rng(10)
        other = rng.normal(size=(3, 2))
        check_gradient(
            lambda t: (concat([t, Tensor(other)], axis=1) ** 2).sum(), (3, 4)
        )

    def test_concat_axis0(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((1, 3)), requires_grad=True)
        concat([a, b], axis=0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))
        np.testing.assert_array_equal(b.grad, np.ones((1, 3)))


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_is_thread_local(self):
        # Grad mode must be per-thread: the serving gateway decodes on
        # concurrent worker threads, and with a process-global flag two
        # overlapping no_grad blocks could restore each other's stale
        # snapshots, disabling autograd for the whole process.
        import threading

        from repro.autograd.tensor import grad_enabled

        barrier = threading.Barrier(2)
        seen = []

        def worker():
            with no_grad():
                barrier.wait()  # both threads inside no_grad at once
                seen.append(grad_enabled())
                barrier.wait()
            seen.append(grad_enabled())

        threads = [threading.Thread(target=worker) for _ in range(2)]
        with no_grad():
            pass  # the main thread's own toggle must not leak either
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == [False, False, True, True]
        assert grad_enabled()
        assert Tensor([1.0], requires_grad=True).requires_grad

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(ShapeError):
            Tensor([1.0]).backward()

    def test_backward_on_vector_without_grad_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ShapeError):
            (x * 2).backward()

    def test_backward_vector_with_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_array_equal(x.grad, [3.0, 30.0])

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3.0).detach()
        assert not y.requires_grad

    def test_item_requires_scalar(self):
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.0
        y.backward()
        np.testing.assert_array_equal(x.grad, [1.0])
