"""Tests for repro.analysis: pycheck, sqlcheck, and the repo linter."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import check_python, check_sql
from repro.analysis.findings import (
    Finding,
    error_findings,
    render_findings,
    warning_findings,
)
from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.pycheck import IMPORT_ALLOWLIST, assert_safe
from repro.errors import CodexDBError, StaticAnalysisError
from repro.sql import Database

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute("CREATE TABLE emp (name TEXT, dept TEXT, salary INT)")
    database.execute(
        "INSERT INTO emp VALUES ('a', 'eng', 100), ('b', 'sales', 80)"
    )
    database.execute("CREATE TABLE dept (dept TEXT, building TEXT)")
    database.execute("INSERT INTO dept VALUES ('eng', 'A'), ('sales', 'B')")
    return database


def rules_of(findings):
    return [f.rule for f in findings]


class TestPycheck:
    def test_clean_generated_style_program(self):
        code = (
            "rows = [dict(r) for r in tables['emp']]\n"
            "result = [(r['name'],) for r in rows]\n"
            "columns = ['name']\n"
        )
        assert check_python(code) == []

    def test_allowlisted_import_ok(self):
        code = "import time\n_t = time.perf_counter()\nresult = []\ncolumns = []\n"
        assert check_python(code) == []

    def test_banned_import_with_line(self):
        code = "x = 1\nimport os\nresult = []\ncolumns = []\n"
        findings = check_python(code)
        assert rules_of(findings) == ["banned-import"]
        assert findings[0].line == 2
        assert "os" in findings[0].message

    def test_from_import_banned(self):
        findings = check_python("from subprocess import run\nresult = []\ncolumns = []\n")
        assert rules_of(findings) == ["banned-import"]

    def test_class_escape_chain(self):
        code = (
            "result = ().__class__.__bases__[0].__subclasses__()\n"
            "columns = []\n"
        )
        findings = check_python(code)
        assert set(rules_of(findings)) == {"banned-attribute"}
        assert all(f.line == 1 for f in findings)

    def test_globals_attribute(self):
        code = "f = min\nresult = f.__globals__\ncolumns = []\n"
        assert "banned-attribute" in rules_of(check_python(code))

    def test_open_and_eval_banned(self):
        code = "result = open('x').read()\ncolumns = []\n"
        assert "banned-call" in rules_of(check_python(code))
        code = "result = eval('1')\ncolumns = []\n"
        assert "banned-call" in rules_of(check_python(code))

    def test_getattr_banned(self):
        code = "result = getattr(tables, 'clear')\ncolumns = []\n"
        assert "banned-call" in rules_of(check_python(code))

    def test_infinite_loop_flagged(self):
        code = "while True:\n    x = 1\nresult = []\ncolumns = []\n"
        assert "unbounded-loop" in rules_of(check_python(code))

    def test_loop_with_break_ok(self):
        code = (
            "while True:\n    if len(tables) >= 0:\n        break\n"
            "result = []\ncolumns = []\n"
        )
        findings = check_python(code)
        # accepted (no errors), but the trip count is data-dependent, so
        # the sandbox gets an unbounded-work warning to convert into fuel
        assert error_findings(findings) == []
        assert rules_of(warning_findings(findings)) == ["unbounded-work"]

    def test_break_in_nested_loop_does_not_count(self):
        code = (
            "while True:\n"
            "    for i in range(3):\n"
            "        break\n"
            "result = []\ncolumns = []\n"
        )
        assert "unbounded-loop" in rules_of(check_python(code))

    def test_unknown_name(self):
        findings = check_python("result = mystery\ncolumns = []\n")
        assert rules_of(findings) == ["unknown-name"]
        assert "mystery" in findings[0].message

    def test_missing_result_contract(self):
        findings = check_python("x = 1\n")
        assert rules_of(findings) == ["output-contract", "output-contract"]

    def test_contract_must_hold_on_both_branches(self):
        code = (
            "if len(tables) > 0:\n    result = []\n    columns = []\n"
            "else:\n    result = []\n"
        )
        findings = check_python(code)
        assert rules_of(findings) == ["output-contract"]
        assert "columns" in findings[0].message

    def test_contract_in_loop_is_not_definite(self):
        code = "for i in range(3):\n    result = []\n    columns = []\n"
        assert rules_of(check_python(code)) == ["output-contract", "output-contract"]

    def test_syntax_error_is_a_finding(self):
        findings = check_python("result = (\n")
        assert rules_of(findings) == ["syntax"]

    def test_assert_safe_raises_with_findings(self):
        with pytest.raises(StaticAnalysisError) as excinfo:
            assert_safe("import os\nresult = []\ncolumns = []\n")
        assert excinfo.value.findings
        assert "line 1" in str(excinfo.value)

    def test_allowlist_contents(self):
        assert {"time", "math", "collections", "itertools"} == set(IMPORT_ALLOWLIST)


class TestFlowSensitivePycheck:
    """The CFG-based passes: verdicts the old mention-ban checker got wrong."""

    def test_banned_name_in_dead_branch_accepted(self):
        code = (
            "if False:\n    result = eval('1')\n"
            "result = list(tables['t'])\ncolumns = ['a']\n"
        )
        findings = check_python(code)
        assert error_findings(findings) == []
        assert "unreachable-code" in rules_of(warning_findings(findings))

    def test_shadowed_builtin_accepted(self):
        code = (
            "open = 0\nfor r in tables['t']:\n    open = open + 1\n"
            "result = [open]\ncolumns = ['n']\n"
        )
        assert error_findings(check_python(code)) == []

    def test_half_shadowed_builtin_still_banned(self):
        # only one path assigns `open`, so the builtin shines through
        code = (
            "if len(tables) > 0:\n    open = 0\n"
            "result = [open('x')]\ncolumns = ['n']\n"
        )
        assert "banned-call" in rules_of(error_findings(check_python(code)))

    def test_use_before_def_on_one_path(self):
        code = (
            "if len(tables) > 0:\n    x = 1\n"
            "result = [x]\ncolumns = ['x']\n"
        )
        findings = check_python(code)
        assert rules_of(error_findings(findings)) == ["use-before-def"]

    def test_nested_def_binding_not_visible_at_module_level(self):
        # regression for the flat _bound_names: `inner` is bound only
        # inside helper(), so the module-level read must be flagged
        code = (
            "def helper():\n    inner = [1]\n    return inner\n"
            "result = inner\ncolumns = ['x']\n"
        )
        findings = check_python(code)
        assert "unknown-name" in rules_of(error_findings(findings))

    def test_module_names_visible_inside_nested_def(self):
        code = (
            "base = list(tables['t'])\n"
            "def helper():\n    return base\n"
            "result = helper()\ncolumns = ['x']\n"
        )
        assert error_findings(check_python(code)) == []

    def test_banned_builtin_alias_flow(self):
        code = (
            "g = getattr\nresult = [g(tables, 'clear')]\ncolumns = ['x']\n"
        )
        assert "banned-call" in rules_of(error_findings(check_python(code)))

    def test_taint_reaches_getattr_sink(self):
        code = (
            "name = tables['t'][0][0]\n"
            "result = [getattr([], name)]\ncolumns = ['x']\n"
        )
        assert "taint-flow" in rules_of(error_findings(check_python(code)))

    def test_constant_attribute_name_is_not_taint(self):
        # dangerous only via the banned-call rule; no taint-flow finding
        code = "result = [getattr([], 'append')]\ncolumns = ['x']\n"
        assert "taint-flow" not in rules_of(check_python(code))

    def test_frozen_while_condition_rejected(self):
        code = (
            "n = 5\ntotal = 0\nwhile n > 0:\n    total = total + 1\n"
            "result = [total]\ncolumns = ['t']\n"
        )
        assert "unbounded-loop" in rules_of(error_findings(check_python(code)))

    def test_while_condition_mutated_in_body_accepted(self):
        code = (
            "n = 5\nwhile n > 0:\n    n = n - 1\n"
            "result = [n]\ncolumns = ['n']\n"
        )
        findings = check_python(code)
        assert error_findings(findings) == []
        assert "unbounded-work" in rules_of(warning_findings(findings))

    def test_itertools_count_rejected(self):
        code = (
            "import itertools\ntotal = 0\n"
            "for i in itertools.count():\n    total = total + i\n"
            "result = [total]\ncolumns = ['t']\n"
        )
        assert "unbounded-loop" in rules_of(error_findings(check_python(code)))

    def test_contract_satisfied_by_try_except(self):
        code = (
            "try:\n    result = [r for r in tables['t']]\n"
            "except:\n    result = []\n"
            "columns = ['a']\n"
        )
        assert error_findings(check_python(code)) == []

    def test_code_after_infinite_loop_cannot_satisfy_contract(self):
        code = (
            "while True:\n    x = 1\n"
            "result = []\ncolumns = []\n"
        )
        rules = rules_of(error_findings(check_python(code)))
        assert "unbounded-loop" in rules
        assert "output-contract" in rules

    def test_import_in_dead_branch_accepted(self):
        code = "if False:\n    import os\nresult = []\ncolumns = []\n"
        assert error_findings(check_python(code)) == []

    def test_assert_safe_ignores_warnings(self):
        code = (
            "i = 0\nwhile True:\n    i = i + 1\n    if i > 3:\n        break\n"
            "result = [i]\ncolumns = ['i']\n"
        )
        findings = assert_safe(code)  # must not raise
        assert "unbounded-work" in rules_of(findings)


class TestConcurrencyLint:
    """shared-state-mutation and blocking-call-in-async (gateway gates)."""

    def test_async_self_mutation_flagged(self):
        code = (
            "class Engine:\n"
            "    async def handle(self, req):\n"
            "        self.stats = req\n"
        )
        assert "shared-state-mutation" in rules_of(lint_source(code))

    def test_async_mutating_method_call_flagged(self):
        code = (
            "class Engine:\n"
            "    async def handle(self, req):\n"
            "        self.queue.append(req)\n"
        )
        assert "shared-state-mutation" in rules_of(lint_source(code))

    def test_sync_self_mutation_not_flagged(self):
        code = (
            "class Engine:\n"
            "    def handle(self, req):\n"
            "        self.stats = req\n"
        )
        assert "shared-state-mutation" not in rules_of(lint_source(code))

    def test_local_mutation_in_async_not_flagged(self):
        code = (
            "class Engine:\n"
            "    async def handle(self, req):\n"
            "        out = []\n"
            "        out.append(req)\n"
            "        return out\n"
        )
        assert "shared-state-mutation" not in rules_of(lint_source(code))

    def test_blocking_sleep_in_async_flagged(self):
        code = (
            "import time\n"
            "async def handle(req):\n"
            "    time.sleep(1)\n"
        )
        findings = lint_source(code, rules=frozenset({"blocking-call-in-async"}))
        assert rules_of(findings) == ["blocking-call-in-async"]

    def test_blocking_open_in_async_flagged(self):
        code = "async def handle(path):\n    return open(path)\n"
        findings = lint_source(code, rules=frozenset({"blocking-call-in-async"}))
        assert rules_of(findings) == ["blocking-call-in-async"]

    def test_blocking_call_in_sync_not_flagged(self):
        code = "def handle(path):\n    return open(path)\n"
        findings = lint_source(code, rules=frozenset({"blocking-call-in-async"}))
        assert findings == []

    def test_gateway_shaped_async_mutation_flagged(self):
        # A naive gateway that mutates shared counters directly inside
        # its async dispatch loop — exactly the bug class the real
        # gateway avoids by confining mutation to sync helper methods.
        code = (
            "class Gateway:\n"
            "    async def dispatch_loop(self, replica):\n"
            "        while True:\n"
            "            batch = self.queue.pop(0)\n"
            "            self.in_flight += len(batch)\n"
            "            await replica.decode(batch)\n"
            "            self.in_flight -= len(batch)\n"
        )
        findings = lint_source(code, rules=frozenset({"shared-state-mutation"}))
        assert len(findings) == 3  # pop, +=, -= all cross an await
        assert {f.rule for f in findings} == {"shared-state-mutation"}

    def test_gateway_shaped_blocking_decode_flagged(self):
        # Decoding synchronously inside the event loop (instead of a
        # worker thread) stalls every other tenant for the whole batch.
        code = (
            "import time\n"
            "class Gateway:\n"
            "    async def run_batch(self, replica, batch):\n"
            "        results = replica.scheduler.run()\n"
            "        time.sleep(replica.service_seconds)\n"
            "        return results\n"
        )
        findings = lint_source(code, rules=frozenset({"blocking-call-in-async"}))
        assert [f.rule for f in findings] == ["blocking-call-in-async"]

    def test_real_gateway_modules_are_clean(self):
        # Non-vacuous proof: the rules fire on gateway-shaped fixtures
        # above, and the shipped gateway/loadgen/aclock pass unwaived.
        serving = REPO_ROOT / "src" / "repro" / "serving"
        reliability = REPO_ROOT / "src" / "repro" / "reliability"
        findings = lint_paths(
            [
                serving / "gateway.py",
                serving / "loadgen.py",
                reliability / "aclock.py",
            ]
        )
        assert findings == []

    def test_concurrency_rules_are_noqa_able(self):
        code = (
            "class Engine:\n"
            "    async def handle(self, req):\n"
            "        self.stats = req  # repro: noqa[shared-state-mutation]\n"
        )
        assert "shared-state-mutation" not in rules_of(lint_source(code))

    def test_shared_state_report_inventories_writes(self):
        from repro.analysis.concurrency import audit_source

        code = (
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self.data = {}\n"
            "    def put(self, k, v):\n"
            "        self.data[k] = v\n"
            "        self.hits += 1\n"
        )
        entries = audit_source(code, path="cache.py")
        assert len(entries) == 1
        attrs = entries[0]["shared_attributes"]
        # __init__ writes are construction, not shared-state mutation
        assert set(attrs) == {"data", "hits"}
        kinds = {w["kind"] for w in attrs["data"]}
        assert kinds == {"subscript"}

    def test_serving_classes_appear_in_report(self):
        from repro.analysis.concurrency import shared_state_report

        report = shared_state_report([REPO_ROOT / "src" / "repro" / "serving"])
        classes = {entry["class"] for entry in report["classes"]}
        assert "BatchedGenerator" in classes
        assert "PrefixCache" in classes


class TestLintCLIErgonomics:
    def run_cli(self, *args):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", *args],
            capture_output=True, text=True, env=env,
        )

    def test_format_json(self, tmp_path):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def f(items=[]):\n    return items\n"
            "try:\n    x = 1\nexcept:\n    pass\n"
        )
        proc = self.run_cli("--format", "json", str(dirty))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert [f["rule"] for f in payload] == ["mutable-default", "bare-except"]
        assert all(f["path"] == str(dirty) for f in payload)

    def test_rules_filter(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "def f(items=[]):\n    return items\n"
            "try:\n    x = 1\nexcept:\n    pass\n"
        )
        proc = self.run_cli("--rules", "bare-except", str(dirty))
        assert proc.returncode == 1
        assert "bare-except" in proc.stdout
        assert "mutable-default" not in proc.stdout

    def test_unknown_rule_rejected(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        proc = self.run_cli("--rules", "no-such-rule", str(clean))
        assert proc.returncode == 2
        assert "unknown rule" in proc.stdout

    def test_findings_sorted_by_path_then_line(self, tmp_path):
        import json

        b = tmp_path / "b.py"
        b.write_text("def f(items=[]):\n    return items\n")
        a = tmp_path / "a.py"
        a.write_text("x = 1\ndef g(cache={}):\n    return cache\n")
        proc = self.run_cli("--format", "json", str(tmp_path))
        payload = json.loads(proc.stdout)
        keys = [(f["path"], f["line"]) for f in payload]
        assert keys == sorted(keys)

    def test_shared_state_flag_emits_json(self):
        import json

        proc = self.run_cli(
            "--shared-state", str(REPO_ROOT / "src" / "repro" / "serving")
        )
        assert proc.returncode == 0
        report = json.loads(proc.stdout)
        assert report["files_scanned"] > 0
        assert any(
            entry["class"] == "BatchedGenerator" for entry in report["classes"]
        )


class TestSqlcheck:
    def test_clean_query(self, db):
        assert check_sql("SELECT name FROM emp WHERE salary > 50", db.catalog) == []

    def test_unknown_table(self, db):
        findings = check_sql("SELECT x FROM nowhere", db.catalog)
        assert "unknown-table" in rules_of(findings)

    def test_unknown_column(self, db):
        findings = check_sql("SELECT bogus FROM emp", db.catalog)
        assert rules_of(findings) == ["unknown-column"]
        assert "bogus" in findings[0].message

    def test_unknown_qualified_column(self, db):
        findings = check_sql(
            "SELECT e.bogus FROM emp e JOIN dept d ON e.dept = d.dept",
            db.catalog,
        )
        assert "unknown-column" in rules_of(findings)

    def test_unknown_alias(self, db):
        findings = check_sql("SELECT z.name FROM emp e", db.catalog)
        assert rules_of(findings) == ["unknown-alias"]

    def test_ambiguous_column_across_join(self, db):
        findings = check_sql(
            "SELECT dept FROM emp e JOIN dept d ON e.dept = d.dept",
            db.catalog,
        )
        assert rules_of(findings) == ["ambiguous-column"]

    def test_type_mismatch_comparison(self, db):
        findings = check_sql("SELECT name FROM emp WHERE salary > 'abc'", db.catalog)
        assert rules_of(findings) == ["type-mismatch"]

    def test_numeric_comparison_ok(self, db):
        assert check_sql("SELECT name FROM emp WHERE salary > 1.5", db.catalog) == []

    def test_arithmetic_on_text(self, db):
        findings = check_sql("SELECT name + 1 FROM emp", db.catalog)
        assert rules_of(findings) == ["type-mismatch"]

    def test_aggregate_over_text(self, db):
        findings = check_sql("SELECT SUM(name) FROM emp", db.catalog)
        assert rules_of(findings) == ["aggregate-type"]

    def test_aggregate_in_where(self, db):
        findings = check_sql(
            "SELECT name FROM emp WHERE COUNT(*) > 1", db.catalog
        )
        assert "misplaced-aggregate" in rules_of(findings)

    def test_order_by_output_alias_ok(self, db):
        sql = "SELECT dept, COUNT(*) AS cnt FROM emp GROUP BY dept ORDER BY cnt DESC"
        assert check_sql(sql, db.catalog) == []

    def test_having_may_aggregate(self, db):
        sql = "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 1"
        assert check_sql(sql, db.catalog) == []

    def test_syntax_error_is_a_finding(self, db):
        findings = check_sql("SELECT FROM WHERE", db.catalog)
        assert rules_of(findings) == ["syntax"]

    def test_in_list_type_mismatch(self, db):
        findings = check_sql(
            "SELECT name FROM emp WHERE salary IN (1, 'two')", db.catalog
        )
        assert "type-mismatch" in rules_of(findings)

    def test_between_type_mismatch(self, db):
        findings = check_sql(
            "SELECT name FROM emp WHERE salary BETWEEN 1 AND 'nine'", db.catalog
        )
        assert "type-mismatch" in rules_of(findings)

    def test_non_select_statements_pass(self, db):
        assert check_sql("CREATE TABLE t (x INT)", db.catalog) == []


class TestLintRules:
    def test_mutable_default_list(self):
        code = "def f(x, items=[]):\n    return items\n"
        findings = lint_source(code)
        assert rules_of(findings) == ["mutable-default"]

    def test_mutable_default_dict_call(self):
        code = "def f(cache=dict()):\n    return cache\n"
        assert rules_of(lint_source(code)) == ["mutable-default"]

    def test_none_default_ok(self):
        code = "def f(items=None):\n    return items or []\n"
        assert lint_source(code) == []

    def test_bare_except(self):
        code = "try:\n    x = 1\nexcept:\n    pass\n"
        findings = lint_source(code)
        assert rules_of(findings) == ["bare-except"]
        assert findings[0].line == 3

    def test_typed_except_ok(self):
        code = "try:\n    x = 1\nexcept ValueError:\n    pass\n"
        assert lint_source(code) == []

    def test_future_annotations_required_when_annotating(self):
        code = "def f(x: int) -> int:\n    return x\n"
        assert rules_of(lint_source(code)) == ["future-annotations"]

    def test_future_annotations_satisfied(self):
        code = (
            "from __future__ import annotations\n"
            "def f(x: int) -> int:\n    return x\n"
        )
        assert lint_source(code) == []

    def test_no_annotations_no_requirement(self):
        assert lint_source("def f(x):\n    return x\n") == []

    def test_init_module_exempt(self):
        code = "def f(x: int) -> int:\n    return x\n"
        assert lint_source(code, path="pkg/__init__.py") == []

    def test_numpy_random_flagged(self):
        code = "import numpy as np\nx = np.random.default_rng(0).normal()\n"
        assert "numpy-random" in rules_of(lint_source(code))

    def test_numpy_random_exempt_in_rng_module(self):
        code = "import numpy as np\nx = np.random.default_rng(0)\n"
        assert lint_source(code, path="src/repro/utils/rng.py") == []

    def test_exec_eval_flagged(self):
        code = "exec('x = 1')\n"
        assert rules_of(lint_source(code)) == ["exec-eval"]
        code = "y = eval('2')\n"
        assert rules_of(lint_source(code)) == ["exec-eval"]

    def test_exec_exempt_in_sandbox(self):
        code = "exec('x = 1')\n"
        assert lint_source(code, path="src/repro/codexdb/sandbox.py") == []

    def test_method_named_eval_not_flagged(self):
        code = "model.eval()\n"
        assert lint_source(code) == []

    def test_wall_clock_sleep_flagged(self):
        code = "import time\ntime.sleep(1.0)\n"
        assert rules_of(lint_source(code)) == ["wall-clock"]

    def test_wall_clock_monotonic_flagged(self):
        code = "import time\nstart = time.monotonic()\n"
        assert rules_of(lint_source(code)) == ["wall-clock"]

    def test_wall_clock_from_import_flagged(self):
        code = "from time import sleep\nsleep(2)\n"
        assert rules_of(lint_source(code)) == ["wall-clock"]

    def test_wall_clock_aliased_import_flagged(self):
        code = "from time import sleep as snooze\nsnooze(2)\n"
        assert rules_of(lint_source(code)) == ["wall-clock"]

    def test_wall_clock_perf_counter_allowed(self):
        code = "import time\nstart = time.perf_counter()\n"
        assert lint_source(code) == []

    def test_wall_clock_other_sleep_not_flagged(self):
        code = "clock.sleep(1.0)\n"
        assert lint_source(code) == []

    def test_wall_clock_exempt_in_clock_module(self):
        code = "import time\ntime.sleep(1.0)\n"
        assert lint_source(code, path="src/repro/reliability/clock.py") == []

    def test_wall_clock_noqa_escape_hatch(self):
        code = "import time\ntime.sleep(1.0)  # repro: noqa[wall-clock]\n"
        assert lint_source(code) == []


    def test_atomic_write_open_w_flagged(self):
        code = "handle = open('out.txt', 'w')\n"
        assert rules_of(lint_source(code)) == ["atomic-write"]

    def test_atomic_write_open_wb_flagged(self):
        code = "with open(path, 'wb') as f:\n    f.write(b'x')\n"
        assert "atomic-write" in rules_of(lint_source(code))

    def test_atomic_write_mode_keyword_flagged(self):
        code = "handle = open(path, mode='a')\n"
        assert rules_of(lint_source(code)) == ["atomic-write"]

    def test_atomic_write_read_modes_ok(self):
        assert lint_source("h = open(path)\n") == []
        assert lint_source("h = open(path, 'rb')\n") == []

    def test_atomic_write_exempt_in_durability(self):
        code = "h = open(path, 'wb')\n"
        assert lint_source(code, path="src/repro/durability/io.py") == []

    def test_atomic_write_exempt_in_tests(self):
        code = "h = open(path, 'w')\n"
        assert lint_source(code, path="tests/test_x.py") == []

    def test_atomic_write_noqa_escape_hatch(self):
        code = "h = open(path, 'w')  # repro: noqa[atomic-write]\n"
        assert lint_source(code) == []

    def test_atomic_write_write_text_flagged(self):
        code = "path.write_text('data')\n"
        assert rules_of(lint_source(code)) == ["atomic-write"]

    def test_atomic_write_write_bytes_flagged(self):
        code = "Path(out).write_bytes(blob)\n"
        assert rules_of(lint_source(code)) == ["atomic-write"]

    def test_atomic_write_path_open_write_mode_flagged(self):
        code = "with path.open('w') as f:\n    f.write('x')\n"
        assert "atomic-write" in rules_of(lint_source(code))

    def test_atomic_write_path_open_read_mode_ok(self):
        assert lint_source("h = path.open()\n") == []
        assert lint_source("h = path.open('r')\n") == []

    def test_atomic_write_read_text_ok(self):
        assert lint_source("data = path.read_text()\n") == []


class TestNoqaSuppression:
    def test_noqa_suppresses_named_rule(self):
        code = "def f(items=[]):  # repro: noqa[mutable-default]\n    return items\n"
        assert lint_source(code) == []

    def test_noqa_wrong_rule_does_not_suppress(self):
        code = "def f(items=[]):  # repro: noqa[bare-except]\n    return items\n"
        assert rules_of(lint_source(code)) == ["mutable-default"]

    def test_noqa_comma_list(self):
        code = (
            "def f(items=[], cache={}):  "
            "# repro: noqa[mutable-default, bare-except]\n"
            "    return items, cache\n"
        )
        assert lint_source(code) == []

    def test_noqa_only_applies_to_its_line(self):
        code = (
            "x = 1  # repro: noqa[bare-except]\n"
            "try:\n    x = 2\nexcept:\n    pass\n"
        )
        assert rules_of(lint_source(code)) == ["bare-except"]


class TestLintGate:
    """The repo linter is part of the tier-1 gate: src/ must stay clean."""

    def test_src_tree_is_clean(self):
        findings = lint_paths([REPO_ROOT / "src"])
        assert findings == [], "\n" + render_findings(findings)

    def test_tests_and_benchmarks_are_clean(self):
        findings = lint_paths([REPO_ROOT / "tests", REPO_ROOT / "benchmarks"])
        assert findings == [], "\n" + render_findings(findings)

    def test_cli_exit_codes(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x):\n    return x\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(items=[]):\n    return items\n")
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        ok = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(clean)],
            capture_output=True, text=True, env=env,
        )
        assert ok.returncode == 0
        bad = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", str(dirty)],
            capture_output=True, text=True, env=env,
        )
        assert bad.returncode == 1
        assert "mutable-default" in bad.stdout

    def test_cli_rejects_missing_path(self):
        from repro.analysis.lint import main

        assert main(["/no/such/dir"]) == 2


class TestFindingRendering:
    def test_render_with_line(self):
        f = Finding(rule="bare-except", message="msg", line=3, source="a.py")
        assert f.render() == "a.py:line 3: [bare-except] msg"

    def test_render_without_line(self):
        f = Finding(rule="output-contract", message="msg")
        assert f.render() == "[output-contract] msg"
