"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, cross_entropy, softmax
from repro.sql import Database
from repro.sql.types import sql_and, sql_not, sql_or
from repro.tokenizers import Vocabulary, WhitespaceTokenizer
from repro.utils.rng import SeededRNG

# ---------------------------------------------------------------------------
# Autograd invariants
# ---------------------------------------------------------------------------
finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


@settings(max_examples=40, deadline=None)
@given(st.lists(finite_floats, min_size=2, max_size=8))
def test_softmax_is_a_distribution(values):
    out = softmax(Tensor(np.array([values])))
    assert np.all(out.data >= 0)
    assert out.data.sum() == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(st.lists(finite_floats, min_size=2, max_size=8), finite_floats)
def test_softmax_shift_invariance(values, shift):
    base = softmax(Tensor(np.array([values]))).data
    shifted = softmax(Tensor(np.array([values]) + shift)).data
    np.testing.assert_allclose(base, shifted, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=10))
def test_cross_entropy_of_uniform_logits_is_log_v(vocab):
    logits = Tensor(np.zeros((3, vocab)))
    loss = cross_entropy(logits, np.array([0, 1, vocab - 1]))
    assert loss.item() == pytest.approx(np.log(vocab))


@settings(max_examples=40, deadline=None)
@given(
    st.lists(finite_floats, min_size=3, max_size=3),
    st.lists(finite_floats, min_size=3, max_size=3),
)
def test_gradient_of_linear_function_is_its_weights(weights, point):
    x = Tensor(np.array(point), requires_grad=True)
    (x * Tensor(np.array(weights))).sum().backward()
    np.testing.assert_allclose(x.grad, weights, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.lists(finite_floats, min_size=1, max_size=6))
def test_grad_accumulation_is_additive(values):
    x = Tensor(np.array(values), requires_grad=True)
    (x * 2.0).sum().backward()
    (x * 3.0).sum().backward()
    np.testing.assert_allclose(x.grad, np.full(len(values), 5.0), atol=1e-9)


# ---------------------------------------------------------------------------
# Three-valued (Kleene) logic
# ---------------------------------------------------------------------------
TRUTH = [True, False, None]


def test_kleene_tables_exhaustively():
    for a in TRUTH:
        for b in TRUTH:
            # Commutativity.
            assert sql_and(a, b) == sql_and(b, a)
            assert sql_or(a, b) == sql_or(b, a)
            # De Morgan.
            assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))
            assert sql_not(sql_or(a, b)) == sql_and(sql_not(a), sql_not(b))
    # Domination.
    assert sql_and(False, None) is False
    assert sql_or(True, None) is True
    # Unknown propagation.
    assert sql_and(True, None) is None
    assert sql_or(False, None) is None
    assert sql_not(None) is None


# ---------------------------------------------------------------------------
# Vocabulary invariants
# ---------------------------------------------------------------------------
tokens_strategy = st.lists(
    st.text(alphabet="abcdefg", min_size=1, max_size=4), min_size=0, max_size=20
)


@settings(max_examples=40, deadline=None)
@given(tokens_strategy)
def test_vocabulary_ids_are_dense_and_stable(tokens):
    vocab = Vocabulary()
    for token in tokens:
        vocab.add(token)
    # Dense: every id below len(vocab) maps to a token, round-trips.
    for token_id in range(len(vocab)):
        token = vocab.token_of(token_id)
        assert vocab.id_of(token) == token_id
    # Idempotent: re-adding changes nothing.
    size = len(vocab)
    for token in tokens:
        vocab.add(token)
    assert len(vocab) == size


# ---------------------------------------------------------------------------
# Tokenizer invariants
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["apple", "banana", "cherry", "date"]),
                min_size=1, max_size=8))
def test_word_tokenizer_roundtrip_over_known_words(words):
    tokenizer = WhitespaceTokenizer()
    tokenizer.train(["apple banana cherry date"], vocab_size=50)
    text = " ".join(words)
    assert tokenizer.decode(tokenizer.encode(text).ids) == text


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10))
def test_truncation_bounds_length(max_length):
    tokenizer = WhitespaceTokenizer()
    tokenizer.train(["a b c d e f g h i j k"], vocab_size=50)
    encoding = tokenizer.encode("a b c d e f g h i j k", max_length=max_length)
    assert len(encoding.ids) <= max_length


# ---------------------------------------------------------------------------
# SQL engine invariants over random tables
# ---------------------------------------------------------------------------
rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-100, max_value=100),
        st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
    ),
    min_size=0,
    max_size=25,
)


def build_db(rows):
    db = Database()
    db.execute("CREATE TABLE t (id INT, v INT)")
    for row_id, value in rows:
        rendered = "NULL" if value is None else str(value)
        db.execute(f"INSERT INTO t VALUES ({row_id}, {rendered})")
    return db


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_count_star_counts_all_rows(rows):
    db = build_db(rows)
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_count_column_skips_nulls(rows):
    db = build_db(rows)
    expected = sum(1 for _, v in rows if v is not None)
    assert db.execute("SELECT COUNT(v) FROM t").scalar() == expected


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_sum_matches_python(rows):
    db = build_db(rows)
    values = [v for _, v in rows if v is not None]
    result = db.execute("SELECT SUM(v) FROM t").scalar()
    if not values:
        assert result is None
    else:
        assert result == sum(values)


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_where_partitions_rows(rows):
    """WHERE p, WHERE NOT p, and WHERE v IS NULL partition the table."""
    db = build_db(rows)
    positive = db.execute("SELECT COUNT(*) FROM t WHERE v > 0").scalar()
    negative = db.execute("SELECT COUNT(*) FROM t WHERE NOT v > 0").scalar()
    nulls = db.execute("SELECT COUNT(*) FROM t WHERE v IS NULL").scalar()
    assert positive + negative + nulls == len(rows)


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_order_by_sorts_with_nulls_last(rows):
    db = build_db(rows)
    ordered = db.execute("SELECT v FROM t ORDER BY v").column("v")
    non_null = [v for v in ordered if v is not None]
    assert non_null == sorted(non_null)
    if None in ordered:
        first_null = ordered.index(None)
        assert all(v is None for v in ordered[first_null:])


@settings(max_examples=30, deadline=None)
@given(rows_strategy, st.integers(min_value=0, max_value=30))
def test_limit_bounds_output(rows, limit):
    db = build_db(rows)
    result = db.execute(f"SELECT id FROM t LIMIT {limit}")
    assert len(result) == min(limit, len(rows))


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_distinct_has_no_duplicates_and_loses_nothing(rows):
    db = build_db(rows)
    distinct = db.execute("SELECT DISTINCT v FROM t").column("v")
    assert len(distinct) == len(set(distinct))
    assert set(distinct) == {v for _, v in rows}


@settings(max_examples=25, deadline=None)
@given(rows_strategy, st.integers(min_value=-50, max_value=50))
def test_delete_removes_exactly_matching_rows(rows, threshold):
    db = build_db(rows)
    expected_deleted = sum(1 for _, v in rows if v is not None and v > threshold)
    result = db.execute(f"DELETE FROM t WHERE v > {threshold}")
    assert result.rowcount == expected_deleted
    assert db.execute(f"SELECT COUNT(*) FROM t WHERE v > {threshold}").scalar() == 0
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows) - expected_deleted


@settings(max_examples=25, deadline=None)
@given(rows_strategy)
def test_update_preserves_cardinality(rows):
    db = build_db(rows)
    db.execute("UPDATE t SET v = 0 WHERE v IS NOT NULL")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)
    non_null = db.execute("SELECT COUNT(*) FROM t WHERE v = 0").scalar()
    assert non_null == sum(1 for _, v in rows if v is not None)


# ---------------------------------------------------------------------------
# RNG determinism
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.text(min_size=1, max_size=8))
def test_rng_spawn_is_stable(seed, label):
    a = SeededRNG(seed).spawn(label)
    b = SeededRNG(seed).spawn(label)
    assert [a.randint(0, 1000) for _ in range(5)] == [
        b.randint(0, 1000) for _ in range(5)
    ]
