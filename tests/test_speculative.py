"""Tests for repro.serving.speculative: draft-and-verify decoding.

The load-bearing property everywhere: greedy speculative output is
**token-identical** to plain decoding — the draft model only changes how
many tokens each target forward advances, never which tokens come out.
Every test here asserts identity against the plain path, across drafts
of every quality (always-wrong, perfect, distilled).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CompletionClient, ModelHub
from repro.errors import GenerationError
from repro.generation import GenerationConfig, generate
from repro.models import GPTModel, ModelConfig
from repro.serving import (
    BatchRequest,
    BatchScheduler,
    BatchedGenerator,
    KVCache,
    PrefixCache,
    SpeculativeGenerator,
    distill_draft,
    draft_config,
    engine_serving_stats,
    speculative_generate,
)


@pytest.fixture(scope="module")
def model():
    return GPTModel(ModelConfig.tiny(vocab_size=48), seed=7)


@pytest.fixture(scope="module")
def bad_draft(model):
    """A randomly initialised draft: proposes mostly wrong tokens."""
    return GPTModel(draft_config(model.config, num_layers=1), seed=99)


@pytest.fixture(scope="module")
def ragged_prompts():
    rng = np.random.default_rng(0)
    return [list(map(int, rng.integers(1, 48, size=n))) for n in (3, 9, 1, 12, 6, 4)]


@pytest.fixture(scope="module")
def distilled_draft(model, ragged_prompts):
    return distill_draft(model, ragged_prompts, steps=40, max_new_tokens=10)


def _plain(model, prompts, config, **kwargs):
    return BatchedGenerator(model).generate(
        [BatchRequest(p, config, **kwargs) for p in prompts]
    )


class EvenOnly:
    """Constraint fixture: only even ids, abort after six tokens."""

    def __init__(self, vocab):
        self.vocab = vocab

    def allowed_tokens(self, generated_ids):
        if len(generated_ids) >= 6:
            return []
        return list(range(0, self.vocab, 2))


class TestKVCacheTruncate:
    def test_truncate_rewinds_live_prefix(self):
        cache = KVCache()
        step = np.arange(2 * 2 * 3 * 4, dtype=float).reshape(2, 2, 3, 4)
        cache.append(step, step * 2)
        cache.truncate(1)
        assert len(cache) == 1
        keys, values = cache.append(step[:, :, :1], step[:, :, :1])
        # Column 0 survives the rewind; column 1 is the new append.
        np.testing.assert_array_equal(keys[:, :, 0], step[:, :, 0])
        assert keys.shape[2] == 2

    def test_truncate_to_full_length_is_noop(self):
        cache = KVCache()
        cache.append(np.ones((1, 2, 4, 3)), np.ones((1, 2, 4, 3)))
        cache.truncate(4)
        assert len(cache) == 4

    def test_truncate_bounds_checked(self):
        cache = KVCache()
        cache.append(np.ones((1, 2, 3, 3)), np.ones((1, 2, 3, 3)))
        with pytest.raises(ValueError):
            cache.truncate(4)
        with pytest.raises(ValueError):
            cache.truncate(-1)

    def test_truncated_columns_are_overwritten_not_reused(self, model):
        """Decoding, rewinding, and decoding a different token must give
        the same logits as never having decoded the rejected token."""
        from repro.autograd import no_grad

        caches = model.init_cache()
        fresh = model.init_cache()
        with no_grad():
            prompt = np.array([[5, 9, 2]])
            positions = np.arange(3)[None, :]
            from repro.nn import chunk_causal_mask

            blocked = chunk_causal_mask(0, 3)[None, None]
            model.forward_chunk(prompt, positions, caches, blocked=blocked)
            model.forward_chunk(prompt, positions, fresh, blocked=blocked)
            # Optimistically decode token 7, then reject it.
            model.forward_incremental(np.array([[7]]), 3, caches)
            for cache in caches:
                cache.truncate(3)
            a = model.forward_incremental(np.array([[11]]), 3, caches)
            b = model.forward_incremental(np.array([[11]]), 3, fresh)
            np.testing.assert_array_equal(a.data, b.data)


class TestSpeculativeIdentity:
    """Satellite: edge-case sweep, every case asserting token-identity."""

    def test_always_wrong_draft_is_identical(self, model, bad_draft, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        base = _plain(model, ragged_prompts, config)
        spec = SpeculativeGenerator(model, bad_draft, k=3)
        out = spec.generate([BatchRequest(p, config) for p in ragged_prompts])
        assert [r.sequences for r in out] == [r.sequences for r in base]
        # Even a useless draft must not fall back to plain decode.
        assert spec.stats.verify_forwards > 0
        assert spec.stats.draft_tokens > 0

    def test_perfect_draft_accepts_everything(self, model, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        base = _plain(model, ragged_prompts, config)
        spec = SpeculativeGenerator(model, model, k=4)
        out = spec.generate([BatchRequest(p, config) for p in ragged_prompts])
        assert [r.sequences for r in out] == [r.sequences for r in base]
        assert spec.stats.acceptance_rate == 1.0

    def test_distilled_draft_is_identical(self, model, distilled_draft, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        base = _plain(model, ragged_prompts, config)
        spec = SpeculativeGenerator(model, distilled_draft, k=4)
        out = spec.generate([BatchRequest(p, config) for p in ragged_prompts])
        assert [r.sequences for r in out] == [r.sequences for r in base]
        assert spec.stats.acceptance_rate > 0.0

    def test_stop_token_inside_accepted_run(self, model, ragged_prompts):
        """A stop id hit mid-run must end the sequence exactly where the
        plain engine ends it, discarding the speculated tail."""
        # Use the model's own greedy stream to find a token that appears
        # mid-sequence, then decode again with it as a stop id.
        config = GenerationConfig(max_new_tokens=10)
        probe = _plain(model, ragged_prompts, config)
        stop = None
        for result in probe:
            seq = result.sequences[0]
            if len(seq) >= 4:
                stop = seq[2]  # lands inside the first k=4 verify run
                break
        assert stop is not None
        stopped = GenerationConfig(max_new_tokens=10, stop_ids=(stop,))
        base = _plain(model, ragged_prompts, stopped)
        spec = SpeculativeGenerator(model, model, k=4)
        out = spec.generate([BatchRequest(p, stopped) for p in ragged_prompts])
        assert [r.sequences for r in out] == [r.sequences for r in base]

    def test_constraints_and_multi_choice(self, model, distilled_draft, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        constraint = EvenOnly(model.config.vocab_size)
        base = _plain(model, ragged_prompts, config, constraint=constraint, n=2)
        spec = SpeculativeGenerator(model, distilled_draft, k=3)
        out = spec.generate(
            [
                BatchRequest(p, config, constraint=constraint, n=2)
                for p in ragged_prompts
            ]
        )
        assert [r.sequences for r in out] == [r.sequences for r in base]
        for result in out:
            assert len(result.sequences) == 2
            for seq in result.sequences:
                assert all(t % 2 == 0 for t in seq)

    def test_sampled_requests_fall_back_to_plain_engine(self, model, bad_draft, ragged_prompts):
        config = GenerationConfig(
            max_new_tokens=8, strategy="sample", temperature=0.8, seed=5
        )
        base = _plain(model, ragged_prompts, config)
        spec = SpeculativeGenerator(model, bad_draft, k=3)
        out = spec.generate([BatchRequest(p, config) for p in ragged_prompts])
        assert [r.sequences for r in out] == [r.sequences for r in base]
        assert spec.stats.verify_forwards == 0  # no speculative work

    def test_oversized_prompt_uses_sequential_fallback(self, model, bad_draft):
        rng = np.random.default_rng(4)
        big = list(map(int, rng.integers(1, 48, size=60)))
        config = GenerationConfig(max_new_tokens=20)
        spec = SpeculativeGenerator(model, bad_draft, k=3)
        out = spec.generate([BatchRequest(big, config)])
        assert out[0].batched is False
        assert out[0].sequences == [generate(model, big, config)]

    def test_speculative_path_exercised_guard(self, model, distilled_draft, ragged_prompts):
        """Tier-1 guard: the sweep must actually run the speculative
        loop — draft proposals made, verify forwards issued, and fewer
        target decode passes than tokens generated."""
        config = GenerationConfig(max_new_tokens=10)
        spec = SpeculativeGenerator(model, distilled_draft, k=4)
        spec.generate([BatchRequest(p, config) for p in ragged_prompts])
        stats = spec.stats
        assert stats.draft_tokens > 0
        assert stats.verify_forwards > 0
        assert stats.draft_accepted_tokens > 0
        # With any acceptance at all, verify rounds < generated tokens.
        assert stats.verify_forwards < stats.generated_tokens
        assert stats.sequential_fallbacks == 0
        assert stats.decode_steps == 0  # plain decode loop never ran


class TestSpeculativeSingleSequence:
    def test_matches_generate_across_prompts(self, model, distilled_draft, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        for prompt in ragged_prompts:
            expected = generate(model, prompt, config)
            actual = speculative_generate(
                model, distilled_draft, prompt, config, k=4
            )
            assert actual == expected

    def test_matches_generate_with_bad_draft(self, model, bad_draft, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        for prompt in ragged_prompts[:3]:
            assert speculative_generate(
                model, bad_draft, prompt, config, k=3
            ) == generate(model, prompt, config)

    def test_constraint_identity(self, model, bad_draft, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        constraint = EvenOnly(model.config.vocab_size)
        for prompt in ragged_prompts[:3]:
            assert speculative_generate(
                model, bad_draft, prompt, config, constraint, k=3
            ) == generate(model, prompt, config, constraint)

    def test_sampled_config_delegates(self, model, bad_draft, ragged_prompts):
        config = GenerationConfig(
            max_new_tokens=6, strategy="sample", temperature=0.7, seed=9
        )
        prompt = ragged_prompts[0]
        assert speculative_generate(
            model, bad_draft, prompt, config, k=3
        ) == generate(model, prompt, config)

    def test_empty_prompt_rejected(self, model, bad_draft):
        with pytest.raises(GenerationError):
            speculative_generate(model, bad_draft, [])


class TestSpeculativeValidation:
    def test_nonpositive_k_rejected(self, model, bad_draft):
        with pytest.raises(GenerationError):
            SpeculativeGenerator(model, bad_draft, k=0)
        with pytest.raises(GenerationError):
            speculative_generate(model, bad_draft, [1, 2], k=0)

    def test_vocab_mismatch_rejected(self, model):
        other = GPTModel(ModelConfig.tiny(vocab_size=32), seed=1)
        with pytest.raises(GenerationError):
            SpeculativeGenerator(model, other)

    def test_draft_config_bounds(self, model):
        assert draft_config(model.config, 1).num_layers == 1
        with pytest.raises(GenerationError):
            draft_config(model.config, 0)
        with pytest.raises(GenerationError):
            draft_config(model.config, model.config.num_layers + 1)

    def test_distill_requires_prompts(self, model):
        with pytest.raises(GenerationError):
            distill_draft(model, [])


class TestSpeculativeScheduler:
    def test_scheduler_with_draft_is_identical(self, model, distilled_draft, ragged_prompts):
        config = GenerationConfig(max_new_tokens=10)
        plain = BatchScheduler(model, max_batch_size=4)
        spec = BatchScheduler(
            model, max_batch_size=4, draft_model=distilled_draft, speculative_k=4
        )
        plain_tickets = [plain.submit(BatchRequest(p, config)) for p in ragged_prompts]
        spec_tickets = [spec.submit(BatchRequest(p, config)) for p in ragged_prompts]
        plain_results = plain.run()
        spec_results = spec.run()
        for pt, st in zip(plain_tickets, spec_tickets):
            assert spec_results[st].sequences == plain_results[pt].sequences
        assert spec.stats.verify_forwards > 0
        assert spec.stats.draft_tokens > 0
        assert 0.0 < spec.stats.acceptance_rate <= 1.0

    def test_continuous_with_draft_rejected(self, model, bad_draft):
        with pytest.raises(GenerationError):
            BatchScheduler(model, draft_model=bad_draft, continuous=True)

    def test_prefix_caches_stay_separate(self, model, distilled_draft, ragged_prompts):
        """Target and draft prefix caches must never mix K/V states."""
        config = GenerationConfig(max_new_tokens=6)
        target_cache = PrefixCache()
        draft_cache = PrefixCache()
        scheduler = BatchScheduler(
            model,
            draft_model=distilled_draft,
            prefix_cache=target_cache,
            draft_prefix_cache=draft_cache,
        )
        for p in ragged_prompts:
            scheduler.submit(BatchRequest(p, config))
        results = scheduler.run()
        plain = _plain(model, ragged_prompts, config)
        assert [results[t].sequences for t in sorted(results)] == [
            r.sequences for r in plain
        ]
        assert target_cache.stats.inserted_tokens > 0
        assert draft_cache.stats.inserted_tokens > 0


@pytest.fixture(scope="module")
def spec_hub(tiny_gpt, word_tokenizer, corpus):
    hub = ModelHub()
    hub.register("tiny-gpt", tiny_gpt, word_tokenizer)
    sentences = [" ".join(doc.split()[:4]) for doc in corpus[:8]]
    prompts = [
        word_tokenizer.encode(s, add_bos=True).ids for s in sentences
    ]
    draft = distill_draft(tiny_gpt, prompts, steps=40, max_new_tokens=8)
    hub.register("tiny-draft", draft, word_tokenizer)
    return hub, sentences[:6]


class TestSpeculativeClient:
    def test_complete_batch_identity_and_stats(self, spec_hub):
        hub, prompts = spec_hub
        base = CompletionClient(hub).complete_batch(
            "tiny-gpt", prompts, max_tokens=8
        )
        client = CompletionClient(
            hub, speculative_draft="tiny-draft", speculative_k=4
        )
        out = client.complete_batch("tiny-gpt", prompts, max_tokens=8)
        assert [r.text for r in out] == [r.text for r in base]
        stats = engine_serving_stats(client, "tiny-gpt")
        assert stats["verify_forwards"] > 0
        assert stats["draft_tokens"] > 0
        assert 0.0 < stats["acceptance_rate"] <= 1.0

    def test_complete_single_identity(self, spec_hub):
        hub, prompts = spec_hub
        base = CompletionClient(hub).complete("tiny-gpt", prompts[0], max_tokens=8)
        client = CompletionClient(hub, speculative_draft="tiny-draft")
        assert client.complete("tiny-gpt", prompts[0], max_tokens=8).text == base.text

    def test_sampled_batch_still_identical(self, spec_hub):
        hub, prompts = spec_hub
        base = CompletionClient(hub).complete_batch(
            "tiny-gpt", prompts, max_tokens=6, temperature=0.8, seed=3
        )
        client = CompletionClient(hub, speculative_draft="tiny-draft")
        out = client.complete_batch(
            "tiny-gpt", prompts, max_tokens=6, temperature=0.8, seed=3
        )
        assert [r.text for r in out] == [r.text for r in base]
