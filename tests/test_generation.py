"""Tests for decoding strategies, constraints, and beam search."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.generation import GenerationConfig, beam_search, generate, generate_text
from repro.models import GPTModel, ModelConfig


class FixedConstraint:
    """Only permits tokens from a fixed allowed set."""

    def __init__(self, allowed):
        self.allowed = list(allowed)

    def allowed_tokens(self, generated_ids):
        return self.allowed


class ScriptedConstraint:
    """Forces an exact token sequence, then stops."""

    def __init__(self, script):
        self.script = list(script)

    def allowed_tokens(self, generated_ids):
        if len(generated_ids) >= len(self.script):
            return []
        return [self.script[len(generated_ids)]]


@pytest.fixture(scope="module")
def model():
    return GPTModel(ModelConfig.tiny(vocab_size=32), seed=11)


class TestGenerationConfig:
    def test_bad_strategy(self):
        with pytest.raises(GenerationError):
            GenerationConfig(strategy="mcts")

    def test_bad_temperature(self):
        with pytest.raises(GenerationError):
            GenerationConfig(temperature=0.0)

    def test_bad_top_p(self):
        with pytest.raises(GenerationError):
            GenerationConfig(top_p=0.0)

    def test_bad_max_tokens(self):
        with pytest.raises(GenerationError):
            GenerationConfig(max_new_tokens=0)


class TestGenerate:
    def test_respects_token_budget(self, model):
        out = generate(model, [1, 2, 3], GenerationConfig(max_new_tokens=5))
        assert len(out) <= 5

    def test_greedy_is_deterministic(self, model):
        a = generate(model, [1, 2], GenerationConfig(max_new_tokens=8))
        b = generate(model, [1, 2], GenerationConfig(max_new_tokens=8))
        assert a == b

    def test_sampling_seed_determinism(self, model):
        cfg = GenerationConfig(max_new_tokens=8, strategy="sample", seed=7)
        a = generate(model, [1, 2], cfg)
        b = generate(model, [1, 2], cfg)
        assert a == b

    def test_different_seeds_can_differ(self, model):
        outs = {
            tuple(
                generate(
                    model,
                    [1, 2],
                    GenerationConfig(
                        max_new_tokens=8, strategy="sample", temperature=2.0, seed=s
                    ),
                )
            )
            for s in range(5)
        }
        assert len(outs) > 1

    def test_stop_token_halts(self, model):
        # Find greedy's first choice, then make it a stop token.
        first = generate(model, [1, 2], GenerationConfig(max_new_tokens=1))[0]
        out = generate(
            model, [1, 2], GenerationConfig(max_new_tokens=8, stop_ids=(first,))
        )
        assert out == []

    def test_empty_prompt_raises(self, model):
        with pytest.raises(GenerationError):
            generate(model, [])

    def test_constraint_restricts_tokens(self, model):
        allowed = [4, 5, 6]
        out = generate(
            model, [1], GenerationConfig(max_new_tokens=10),
            constraint=FixedConstraint(allowed),
        )
        assert out and set(out) <= set(allowed)

    def test_scripted_constraint_forces_sequence(self, model):
        script = [9, 8, 7]
        out = generate(
            model, [1], GenerationConfig(max_new_tokens=10),
            constraint=ScriptedConstraint(script),
        )
        assert out == script

    def test_constraint_applies_under_sampling(self, model):
        out = generate(
            model, [1],
            GenerationConfig(max_new_tokens=10, strategy="sample", temperature=3.0),
            constraint=FixedConstraint([2, 3]),
        )
        assert set(out) <= {2, 3}

    def test_top_k_limits_support(self, model):
        # With top_k=1, sampling degenerates to greedy.
        greedy = generate(model, [1, 2], GenerationConfig(max_new_tokens=6))
        topk = generate(
            model, [1, 2],
            GenerationConfig(max_new_tokens=6, strategy="sample", top_k=1, seed=3),
        )
        assert greedy == topk

    def test_context_window_slides(self):
        small = GPTModel(
            ModelConfig(vocab_size=16, max_seq_len=8, dim=16, num_layers=1,
                        num_heads=2, ff_dim=32),
            seed=0,
        )
        out = generate(small, [1] * 8, GenerationConfig(max_new_tokens=12))
        assert len(out) <= 12  # must not crash past the window


class TestGenerateText:
    def test_text_in_text_out(self, model_and_tokenizer=None):
        pass  # covered by integration tests with trained models


class TestBeamSearch:
    def test_beam_matches_or_beats_greedy_logprob(self, model):
        prompt = [1, 2, 3]
        greedy = generate(model, prompt, GenerationConfig(max_new_tokens=4))
        beam = beam_search(model, prompt, num_beams=4, max_new_tokens=4,
                           length_penalty=1.0)

        def seq_logprob(seq):
            total = 0.0
            ids = list(prompt)
            for token in seq:
                from repro.autograd import no_grad
                with no_grad():
                    logits = model(np.array([ids]))
                row = logits.data[0, -1]
                row = row - row.max()
                total += float(row[token] - np.log(np.exp(row).sum()))
                ids.append(token)
            return total

        assert seq_logprob(beam) >= seq_logprob(greedy) - 1e-9

    def test_beam_respects_constraint(self, model):
        out = beam_search(
            model, [1], num_beams=3, max_new_tokens=5,
            constraint=FixedConstraint([10, 11]),
        )
        assert set(out) <= {10, 11}

    def test_beam_invalid_args(self, model):
        with pytest.raises(GenerationError):
            beam_search(model, [1], num_beams=0)
        with pytest.raises(GenerationError):
            beam_search(model, [], num_beams=2)

    def test_beam_stops_on_stop_token(self, model):
        first = beam_search(model, [1, 2], num_beams=1, max_new_tokens=1)[0]
        out = beam_search(model, [1, 2], num_beams=1, max_new_tokens=6,
                          stop_ids=(first,))
        assert first not in out


class TestKVCache:
    def test_cached_greedy_matches_uncached(self, model):
        config = GenerationConfig(max_new_tokens=10)
        plain = generate(model, [1, 2, 3], config, use_cache=False)
        cached = generate(model, [1, 2, 3], config, use_cache=True)
        assert plain == cached

    def test_cached_sampling_matches_uncached(self, model):
        config = GenerationConfig(max_new_tokens=10, strategy="sample", seed=5)
        plain = generate(model, [1, 2], config, use_cache=False)
        cached = generate(model, [1, 2], config, use_cache=True)
        assert plain == cached

    def test_cached_respects_constraint(self, model):
        out = generate(
            model, [1], GenerationConfig(max_new_tokens=6),
            constraint=FixedConstraint([4, 5]), use_cache=True,
        )
        assert out and set(out) <= {4, 5}

    def test_cache_falls_back_when_context_exceeded(self):
        small = GPTModel(
            ModelConfig(vocab_size=16, max_seq_len=8, dim=16, num_layers=1,
                        num_heads=2, ff_dim=32),
            seed=0,
        )
        # prompt 6 + 12 new > 8: must not crash (falls back to windowing).
        out = generate(
            small, [1] * 6, GenerationConfig(max_new_tokens=12), use_cache=True
        )
        assert len(out) <= 12

    def test_incremental_logits_match_full_forward(self, model):
        import numpy as np

        from repro.autograd import no_grad

        ids = [1, 2, 3, 4, 5]
        with no_grad():
            full = model(np.array([ids]))
        caches = model.init_cache()
        with no_grad():
            for position, token in enumerate(ids):
                step = model.forward_incremental(
                    np.array([[token]]), position, caches
                )
        np.testing.assert_allclose(step.data[0, 0], full.data[0, -1], atol=1e-9)

    def test_incremental_bad_shape_raises(self, model):
        import numpy as np

        from repro.errors import ModelError

        with pytest.raises(ModelError):
            model.forward_incremental(np.array([[1, 2]]), 0, model.init_cache())

    def test_incremental_position_overflow_raises(self, model):
        import numpy as np

        from repro.errors import ModelError

        with pytest.raises(ModelError):
            model.forward_incremental(
                np.array([[1]]), model.config.max_seq_len, model.init_cache()
            )


class TestTrainedModelGeneration:
    def test_trained_model_continues_plausibly(self, tiny_gpt, word_tokenizer):
        text = generate_text(
            tiny_gpt, word_tokenizer, "the database",
            GenerationConfig(max_new_tokens=6),
        )
        # The toy grammar is SVO: a verb should follow a subject.
        verbs = {"stores", "scans", "joins", "returns", "updates"}
        assert any(v in text.split() for v in verbs)


class TestDecodingEdgeCases:
    """Edge cases of the token-filtering strategies themselves."""

    def _support(self, logits, config, draws=300):
        from repro.generation.decoding import _pick_token
        from repro.utils.rng import SeededRNG

        rng = SeededRNG(0)
        return {_pick_token(np.array(logits, dtype=float), config, rng)
                for _ in range(draws)}

    def test_top_k_keeps_exactly_k_under_ties(self):
        # Three tokens tie for the top; a cutoff comparison would keep
        # all three. Exactly k must survive, ties broken by lowest id.
        config = GenerationConfig(
            strategy="sample", top_k=2, temperature=1.0, max_new_tokens=1
        )
        support = self._support([1.0, 1.0, 1.0, 0.0], config)
        assert support == {0, 1}

    def test_top_k_all_tied_vocabulary(self):
        config = GenerationConfig(
            strategy="sample", top_k=3, temperature=1.0, max_new_tokens=1
        )
        support = self._support([2.0] * 6, config)
        assert support == {0, 1, 2}

    def test_top_k_at_least_vocab_is_no_filter(self):
        config = GenerationConfig(
            strategy="sample", top_k=10, temperature=2.0, max_new_tokens=1
        )
        support = self._support([0.1, 0.0, -0.1], config, draws=600)
        assert support == {0, 1, 2}

    def test_top_p_exact_cumulative_boundary(self):
        # probs == [0.5, 0.3, 0.2]; top_p = 0.5 must keep the *smallest*
        # set reaching the threshold — only token 0.
        logits = list(np.log([0.5, 0.3, 0.2]))
        config = GenerationConfig(
            strategy="sample", top_p=0.5, temperature=1.0, max_new_tokens=1
        )
        assert self._support(logits, config) == {0}

    def test_top_p_just_past_boundary_keeps_two(self):
        logits = list(np.log([0.5, 0.3, 0.2]))
        config = GenerationConfig(
            strategy="sample", top_p=0.51, temperature=1.0, max_new_tokens=1
        )
        assert self._support(logits, config) == {0, 1}

    def test_top_p_float_accumulation_error_does_not_widen_nucleus(self):
        # 0.3 + 0.3 + 0.3 accumulates to 0.8999999999999999 in float64.
        # Without the comparison tolerance the cumsum "misses" top_p=0.9
        # and a fourth token leaks into the nucleus; the boundary rule
        # says three tokens exactly reach it.
        logits = list(np.log([0.3, 0.3, 0.3, 0.1]))
        config = GenerationConfig(
            strategy="sample", top_p=0.9, temperature=1.0, max_new_tokens=1
        )
        assert self._support(logits, config) == {0, 1, 2}

    def test_top_p_boundary_tolerance_across_adversarial_vectors(self):
        # Each case lands a cumulative sum a few ulps *below* the exact
        # threshold; the keep-count must match exact rational arithmetic.
        cases = [
            ([0.35, 0.25, 0.2, 0.2], 0.6, {0, 1}),
            ([0.3, 0.3, 0.2, 0.2], 0.6, {0, 1}),
            ([0.1] * 7 + [0.3], 0.3, {7}),
        ]
        for probs, top_p, expected in cases:
            config = GenerationConfig(
                strategy="sample", top_p=top_p, temperature=1.0,
                max_new_tokens=1,
            )
            support = self._support(list(np.log(probs)), config, draws=400)
            assert support == expected, (probs, top_p, support)

    def test_top_p_tolerance_does_not_shrink_clear_margins(self):
        # A top_p sitting comfortably between two cumulative sums is
        # unaffected by the tolerance: it is orders of magnitude smaller
        # than any meaningful threshold gap.
        logits = list(np.log([0.5, 0.3, 0.2]))
        config = GenerationConfig(
            strategy="sample", top_p=0.79, temperature=1.0, max_new_tokens=1
        )
        assert self._support(logits, config) == {0, 1}

    def test_cached_constraint_masks_under_sampling(self, model):
        config = GenerationConfig(
            max_new_tokens=8, strategy="sample", temperature=2.5, seed=2
        )
        out = generate(
            model, [1], config, constraint=FixedConstraint([3, 7]), use_cache=True
        )
        assert out and set(out) <= {3, 7}
        assert out == generate(
            model, [1], config, constraint=FixedConstraint([3, 7]), use_cache=False
        )

    def test_incremental_records_last_attention(self, model):
        from repro.autograd import no_grad

        attn = model.stack.blocks[0].attn
        caches = model.init_cache()
        with no_grad():
            model.forward_incremental(np.array([[1]]), 0, caches)
            first = attn.last_attention
            assert first is not None and first.shape[-1] == 1
            model.forward_incremental(np.array([[2]]), 1, caches)
            second = attn.last_attention
        # The cached step must refresh the recorded weights, never leave
        # stale introspection from an earlier call.
        assert second is not None and second.shape[-1] == 2

    def test_generate_defaults_to_cache(self, model):
        # The cached and recompute paths must agree on default settings.
        config = GenerationConfig(max_new_tokens=12, stop_ids=())
        assert generate(model, [2, 4, 6], config) == generate(
            model, [2, 4, 6], config, use_cache=False
        )
