"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql import parse_sql, tokenize_sql
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    CreateTable,
    FuncCall,
    InList,
    InsertInto,
    IsNull,
    Literal,
    SelectQuery,
    Star,
    UnaryOp,
)
from repro.sql.lexer import TokenKind
from repro.sql.types import SQLType


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize_sql("select From WHERE")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize_sql("myTable my_col2")
        assert [t.text for t in tokens[:-1]] == ["myTable", "my_col2"]

    def test_numbers(self):
        tokens = tokenize_sql("42 3.14 .5")
        assert [t.text for t in tokens[:-1]] == ["42", "3.14", ".5"]
        assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])

    def test_string_with_escaped_quote(self):
        tokens = tokenize_sql("'it''s'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("'oops")

    def test_operators_longest_match(self):
        tokens = tokenize_sql("<= <> != >=")
        assert [t.text for t in tokens[:-1]] == ["<=", "<>", "!=", ">="]

    def test_bad_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("SELECT @")

    def test_eof_token(self):
        assert tokenize_sql("")[-1].kind is TokenKind.EOF

    def test_quoted_identifier(self):
        tokens = tokenize_sql('"weird name"')
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "weird name"


class TestParserSelect:
    def test_minimal(self):
        q = parse_sql("SELECT * FROM t")
        assert isinstance(q, SelectQuery)
        assert isinstance(q.items[0].expr, Star)
        assert q.table.name == "t"

    def test_projection_aliases(self):
        q = parse_sql("SELECT a AS x, b y, a + 1 FROM t")
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"
        assert q.items[2].alias is None
        assert isinstance(q.items[2].expr, BinaryOp)

    def test_where_precedence(self):
        q = parse_sql("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert isinstance(q.where, BinaryOp) and q.where.op == "OR"
        assert isinstance(q.where.right, BinaryOp) and q.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        q = parse_sql("SELECT a + b * c FROM t")
        expr = q.items[0].expr
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parenthesized(self):
        q = parse_sql("SELECT (a + b) * c FROM t")
        expr = q.items[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "+"

    def test_qualified_columns(self):
        q = parse_sql("SELECT t1.a FROM t t1")
        assert q.items[0].expr == ColumnRef(name="a", table="t1")
        assert q.table.alias == "t1"

    def test_join_clauses(self):
        q = parse_sql(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT JOIN c ON b.y = c.y CROSS JOIN d"
        )
        kinds = [j.kind for j in q.joins]
        assert kinds == ["INNER", "LEFT", "CROSS"]
        assert q.joins[2].condition is None

    def test_inner_join_keyword(self):
        q = parse_sql("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert q.joins[0].kind == "INNER"

    def test_group_by_having(self):
        q = parse_sql(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 2"
        )
        assert len(q.group_by) == 1
        assert isinstance(q.having, BinaryOp)

    def test_order_by_directions(self):
        q = parse_sql("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in q.order_by] == [True, False, False]

    def test_limit(self):
        q = parse_sql("SELECT a FROM t LIMIT 5")
        assert q.limit == 5

    def test_limit_non_integer_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t LIMIT 5.5")

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct

    def test_in_list(self):
        q = parse_sql("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(q.where, InList)
        assert len(q.where.items) == 3

    def test_not_in(self):
        q = parse_sql("SELECT * FROM t WHERE a NOT IN (1)")
        assert isinstance(q.where, InList) and q.where.negated

    def test_between(self):
        q = parse_sql("SELECT * FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(q.where, Between)

    def test_is_null_and_is_not_null(self):
        q = parse_sql("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        assert isinstance(q.where.left, IsNull) and not q.where.left.negated
        assert isinstance(q.where.right, IsNull) and q.where.right.negated

    def test_like(self):
        q = parse_sql("SELECT * FROM t WHERE name LIKE 'a%'")
        assert q.where.op == "LIKE"

    def test_not_like(self):
        q = parse_sql("SELECT * FROM t WHERE name NOT LIKE 'a%'")
        assert isinstance(q.where, UnaryOp) and q.where.op == "NOT"

    def test_aggregates(self):
        q = parse_sql("SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t")
        names = [item.expr.name for item in q.items]
        assert names == ["COUNT", "SUM", "AVG", "MIN", "MAX"]
        assert isinstance(q.items[0].expr.args[0], Star)

    def test_count_distinct(self):
        q = parse_sql("SELECT COUNT(DISTINCT x) FROM t")
        assert q.items[0].expr.distinct

    def test_case_when(self):
        q = parse_sql(
            "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t"
        )
        expr = q.items[0].expr
        assert len(expr.branches) == 1
        assert expr.default == Literal("neg")

    def test_not_equal_normalized(self):
        q = parse_sql("SELECT * FROM t WHERE a != 1")
        assert q.where.op == "<>"

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t garbage garbage")

    def test_missing_from_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a WHERE x = 1")

    def test_sql_roundtrip_reparses(self):
        original = parse_sql(
            "SELECT dept, COUNT(*) AS n FROM emp e JOIN d ON e.did = d.id "
            "WHERE e.salary > 100 GROUP BY dept HAVING COUNT(*) > 1 "
            "ORDER BY n DESC LIMIT 3"
        )
        reparsed = parse_sql(original.sql())
        assert reparsed.sql() == original.sql()


class TestParserDDLDML:
    def test_create_table(self):
        stmt = parse_sql("CREATE TABLE t (id INT, name VARCHAR, score FLOAT)")
        assert isinstance(stmt, CreateTable)
        assert stmt.columns == (
            ("id", SQLType.INT), ("name", SQLType.TEXT), ("score", SQLType.FLOAT),
        )

    def test_insert_values(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, InsertInto)
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_sql("INSERT INTO t (id, name) VALUES (1, 'x')")
        assert stmt.columns == ("id", "name")

    def test_insert_negative_and_null(self):
        stmt = parse_sql("INSERT INTO t VALUES (-1, NULL)")
        assert isinstance(stmt.rows[0][0], UnaryOp)
        assert stmt.rows[0][1] == Literal(None)
