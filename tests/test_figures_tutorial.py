"""Tests for the Figure 1 and Table 1 reproductions."""

import pytest

from repro.figures import (
    figure1_points,
    growth_orders_of_magnitude,
    render_figure1_ascii,
)
from repro.tutorial import (
    TUTORIAL_PARTS,
    render_table1,
    run_tutorial,
    total_duration_minutes,
)


class TestFigure1:
    def test_eleven_models(self):
        assert len(figure1_points()) == 11

    def test_points_sorted_by_year(self):
        years = [p.year for p in figure1_points()]
        assert years == sorted(years)

    def test_every_point_within_documented_tolerance(self):
        from repro.models.registry import HISTORICAL_MODELS

        for point, model in zip(figure1_points(), HISTORICAL_MODELS):
            assert point.relative_error <= model.tolerance

    def test_growth_spans_three_plus_orders(self):
        # The paper's log-scale figure spans ~1e8 (ELMo) to >5e11 (PaLM).
        assert growth_orders_of_magnitude() > 3.0

    def test_first_and_last_models(self):
        points = figure1_points()
        assert points[0].name == "ELMo"
        assert points[-1].name == "PaLM"

    def test_ascii_render_mentions_every_model(self):
        rendered = render_figure1_ascii()
        for point in figure1_points():
            assert point.name in rendered

    def test_ascii_render_has_log_axis(self):
        assert "log10(parameters)" in render_figure1_ascii()


class TestAttentionViz:
    def test_matrix_shape_and_rows_sum(self, tiny_gpt, word_tokenizer):
        from repro.figures import attention_matrix

        tokens, weights = attention_matrix(
            tiny_gpt, word_tokenizer, "the database stores rows ."
        )
        assert weights.shape == (len(tokens), len(tokens))
        import numpy as np

        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-9)

    def test_causal_model_upper_triangle_empty(self, tiny_gpt, word_tokenizer):
        from repro.figures import attention_matrix
        import numpy as np

        _, weights = attention_matrix(tiny_gpt, word_tokenizer, "the database stores")
        np.testing.assert_allclose(np.triu(weights, k=1), 0.0, atol=1e-9)

    def test_render_contains_tokens(self, tiny_gpt, word_tokenizer):
        from repro.figures import render_attention

        out = render_attention(tiny_gpt, word_tokenizer, "the database stores rows")
        assert "database" in out
        assert "scale:" in out

    def test_bert_attention_renders(self, tiny_bert, word_tokenizer):
        from repro.figures import render_attention

        out = render_attention(tiny_bert, word_tokenizer, "the table scans rows")
        assert "attention" in out

    def test_bad_head_raises(self, tiny_gpt, word_tokenizer):
        from repro.errors import ModelError
        from repro.figures import attention_matrix

        with pytest.raises(ModelError):
            attention_matrix(tiny_gpt, word_tokenizer, "the database", head=99)

    def test_empty_text_raises(self, tiny_gpt, word_tokenizer):
        from repro.errors import ModelError
        from repro.figures import attention_matrix

        with pytest.raises(ModelError):
            attention_matrix(tiny_gpt, word_tokenizer, "")


class TestTable1:
    def test_seven_parts(self):
        assert len(TUTORIAL_PARTS) == 7

    def test_total_is_ninety_minutes(self):
        assert total_duration_minutes() == 90

    def test_paper_titles_verbatim(self):
        titles = [p.title for p in TUTORIAL_PARTS]
        assert titles == [
            "Welcome and introduction",
            "Rise of the Transformer",
            "Pre-trained language models",
            "Fine-tuning and prompting",
            "APIs and libraries",
            "Applications in data management",
            "Final discussion and conclusion",
        ]

    def test_paper_durations_verbatim(self):
        durations = [p.duration_minutes for p in TUTORIAL_PARTS]
        assert durations == [5, 10, 10, 10, 20, 25, 10]

    def test_render_contains_rows(self):
        rendered = render_table1()
        assert "Rise of the Transformer" in rendered
        assert "25 min" in rendered

    def test_run_tutorial_executes_every_demo(self):
        outputs = run_tutorial(seed=0)
        assert len(outputs) == 7
        assert "attention" in outputs["Rise of the Transformer"].lower()
        assert "loss" in outputs["Pre-trained language models"]
        assert "engine=tiny-gpt" in outputs["APIs and libraries"]
        assert "text-to-sql" in outputs["Applications in data management"].lower()
