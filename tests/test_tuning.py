"""Tests for the simulated DBMS, manuals, extractors, and tuner."""

import pytest

from repro.errors import TuningError
from repro.tuning import (
    DBMSConfig,
    LMHintExtractor,
    RegexHintExtractor,
    SimulatedDBMS,
    Workload,
    generate_manual,
    train_lm_extractor,
    tune,
)
from repro.tuning.extractor import Hint


class TestSimulator:
    def test_deterministic(self):
        dbms = SimulatedDBMS(Workload())
        config = DBMSConfig()
        assert dbms.throughput(config) == dbms.throughput(config)

    def test_bigger_buffer_helps_reads(self):
        dbms = SimulatedDBMS(Workload(read_fraction=0.95))
        small = dbms.throughput(DBMSConfig(buffer_pool_mb=64))
        large = dbms.throughput(DBMSConfig(buffer_pool_mb=2048))
        assert large > small

    def test_oversized_buffer_thrashes(self):
        dbms = SimulatedDBMS(Workload())
        good = dbms.throughput(DBMSConfig(buffer_pool_mb=2048))
        oversized = dbms.throughput(DBMSConfig(buffer_pool_mb=8192))
        assert oversized < good

    def test_threads_help_up_to_cores(self):
        dbms = SimulatedDBMS(Workload(cores=8))
        one = dbms.throughput(DBMSConfig(worker_threads=1))
        eight = dbms.throughput(DBMSConfig(worker_threads=8))
        sixteen = dbms.throughput(DBMSConfig(worker_threads=16))
        assert eight > one
        assert sixteen < eight

    def test_compression_depends_on_io_boundedness(self):
        io_bound = SimulatedDBMS(Workload(io_bound=True))
        cpu_bound = SimulatedDBMS(Workload(io_bound=False))
        on = DBMSConfig(compression=True)
        off = DBMSConfig(compression=False)
        assert io_bound.throughput(on) > io_bound.throughput(off)
        assert cpu_bound.throughput(on) < cpu_bound.throughput(off)

    def test_log_buffer_helps_writes(self):
        dbms = SimulatedDBMS(Workload(read_fraction=0.2))
        small = dbms.throughput(DBMSConfig(log_buffer_kb=32))
        large = dbms.throughput(DBMSConfig(log_buffer_kb=2048))
        assert large > small

    def test_invalid_config_raises(self):
        dbms = SimulatedDBMS(Workload())
        with pytest.raises(TuningError):
            dbms.throughput(DBMSConfig(buffer_pool_mb=0))

    def test_unknown_knob_raises(self):
        with pytest.raises(TuningError):
            DBMSConfig().with_knob("turbo_mode", 1)

    def test_evaluation_counter(self):
        dbms = SimulatedDBMS(Workload())
        dbms.throughput(DBMSConfig())
        dbms.throughput(DBMSConfig())
        assert dbms.evaluations == 2


class TestManuals:
    def test_hint_fraction(self):
        manual = generate_manual(num_sentences=100, hint_fraction=0.4, seed=0)
        hints = [s for s in manual if s.is_hint]
        assert len(hints) == 40

    def test_all_knobs_covered(self):
        manual = generate_manual(num_sentences=60, seed=0)
        knobs = {s.knob for s in manual if s.is_hint}
        assert knobs == set(DBMSConfig.KNOBS)

    def test_deterministic(self):
        a = generate_manual(num_sentences=20, seed=3)
        b = generate_manual(num_sentences=20, seed=3)
        assert [s.text for s in a] == [s.text for s in b]


class TestRegexExtractor:
    def test_finds_transparent_hints_only(self):
        manual = generate_manual(num_sentences=120, seed=0)
        hints = RegexHintExtractor().extract(manual)
        gold_hints = [s for s in manual if s.is_hint]
        assert 0 < len(hints) < len(gold_hints)
        # Everything it finds is correct.
        gold_map = {(s.text): (s.knob, s.value) for s in gold_hints}
        for hint in hints:
            assert gold_map[hint.source] == (hint.knob, hint.value)

    def test_handles_on_off_values(self):
        from repro.tuning.manuals import ManualSentence

        hints = RegexHintExtractor().extract(
            [ManualSentence(text="set compression to on .", knob="compression", value=1)]
        )
        assert hints == [
            Hint(knob="compression", value=1, source="set compression to on .")
        ]


class TestLMExtractor:
    @pytest.fixture(scope="class")
    def extractor(self):
        train = generate_manual(num_sentences=120, seed=1)
        return train_lm_extractor(train, epochs=8, seed=0)

    def test_high_classification_accuracy(self, extractor):
        manual = generate_manual(num_sentences=60, seed=0)
        correct = sum(
            extractor.classify(s) == (s.knob or "none") for s in manual
        )
        assert correct / len(manual) > 0.9

    def test_recovers_more_hints_than_regex(self, extractor):
        manual = generate_manual(num_sentences=60, seed=0)
        lm_hints = extractor.extract(manual)
        regex_hints = RegexHintExtractor().extract(manual)
        assert len(lm_hints) > len(regex_hints)

    def test_empty_training_raises(self):
        with pytest.raises(TuningError):
            train_lm_extractor([], epochs=1)


class TestTuner:
    def test_tuning_improves_throughput(self):
        manual = generate_manual(num_sentences=60, seed=0)
        hints = RegexHintExtractor().extract(manual)
        report = tune(SimulatedDBMS(Workload()), hints)
        assert report.speedup > 1.0
        assert report.final_throughput > report.initial_throughput

    def test_bad_hints_are_rejected(self):
        bad = [Hint(knob="buffer_pool_mb", value=99999, source="bad advice")]
        report = tune(SimulatedDBMS(Workload()), bad,
                      initial=DBMSConfig(buffer_pool_mb=2048))
        assert report.final_config.buffer_pool_mb == 2048
        assert report.rejected_hints == bad

    def test_lm_hints_at_least_as_good(self):
        manual = generate_manual(num_sentences=40, seed=0)
        train = generate_manual(num_sentences=120, seed=1)
        extractor = train_lm_extractor(train, epochs=8, seed=0)
        lm_report = tune(SimulatedDBMS(Workload()), extractor.extract(manual))
        regex_report = tune(
            SimulatedDBMS(Workload()), RegexHintExtractor().extract(manual)
        )
        assert lm_report.final_throughput >= regex_report.final_throughput
