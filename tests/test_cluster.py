"""Tests for repro.sql.cluster: hash partitioning, distributed queries,
WAL log shipping (including fuzzed frames), failover with exactly-once
re-routing, and the cluster crash matrix."""

import pytest

from repro.durability import CrashInjector, DurableDatabase, dump_database
from repro.durability.harness import random_dml_workload, run_crash_matrix
from repro.durability.wal import encode_record, scan_wal_bytes
from repro.errors import (
    ClusterError,
    ReplicationError,
    ShardUnavailableError,
)
from repro.sql import Database
from repro.sql.cluster import (
    GATHER,
    PARTIAL_AGG,
    RECEIVE_CORRUPT,
    RECEIVE_OK,
    RECEIVE_REORDER,
    RECEIVE_TORN,
    SCATTER,
    SINGLE_SHARD,
    ClusterDatabase,
    PartitionMap,
    ShardReplica,
    canonicalize,
    hash_value,
    plan_select,
    run_cluster_crash_matrix,
    run_cluster_crash_trial,
    run_cluster_failover_matrix,
)
from repro.sql.schema import TableSchema
from repro.sql.types import SQLType


def seeded_cluster(tmp_path, num_shards=2, rows=24, **kwargs):
    """A single-node database and its partitioned twin, same content."""
    single = Database()
    single.execute("CREATE TABLE users (id INT, grp TEXT, score FLOAT)")
    single.execute("CREATE TABLE bonus (id INT, pts INT)")
    for i in range(rows):
        single.execute(
            f"INSERT INTO users VALUES ({i}, 'g{i % 3}', {i % 7}.5)"
        )
        if i % 2 == 0:
            single.execute(f"INSERT INTO bonus VALUES ({i}, {i * 10})")
    cluster = ClusterDatabase.from_database(
        single, tmp_path / "cluster", num_shards=num_shards, **kwargs
    )
    return single, cluster


# -- partitioning ------------------------------------------------------------
class TestPartitioning:
    def test_hash_routing_is_deterministic(self):
        assert hash_value(42, 4) == hash_value(42, 4)
        assert all(0 <= hash_value(v, 3) < 3 for v in (None, 0, -1, "x", 2.5))

    def test_register_defaults_to_first_column(self):
        pmap = PartitionMap(2)
        schema = TableSchema.build(
            "t", [("id", SQLType.INT), ("v", SQLType.TEXT)]
        )
        pmap.register(schema)
        assert pmap.key_column("t") == "id"
        assert pmap.is_registered("T")  # case-insensitive

    def test_same_key_same_shard_across_types(self):
        pmap = PartitionMap(4)
        schema = TableSchema.build("t", [("id", SQLType.INT)])
        pmap.register(schema)
        # values are coerced through the key's SQL type before hashing,
        # so 7 and 7.0 land on the same shard
        assert pmap.shard_of("t", 7) == pmap.shard_of("t", 7.0)

    def test_roundtrip_through_dict(self):
        pmap = PartitionMap(3)
        pmap.register(TableSchema.build("t", [("id", SQLType.INT)]))
        clone = PartitionMap.from_dict(pmap.to_dict())
        assert clone.num_shards == 3
        assert clone.key_column("t") == "id"
        for value in range(20):
            assert clone.shard_of("t", value) == pmap.shard_of("t", value)

    def test_unknown_table_is_typed_error(self):
        with pytest.raises(ClusterError):
            PartitionMap(2).partitioning("nope")


# -- distributed queries: row-identical to single-node -----------------------
EQUIVALENCE_QUERIES = [
    "SELECT * FROM users ORDER BY id",
    "SELECT id, score FROM users WHERE score > 2 ORDER BY id",
    "SELECT grp, COUNT(*), SUM(score), AVG(score), MIN(id), MAX(id) "
    "FROM users GROUP BY grp ORDER BY grp",
    "SELECT COUNT(*) FROM users",
    "SELECT AVG(score) FROM users WHERE grp = 'g1'",
    "SELECT DISTINCT grp FROM users ORDER BY grp",
    "SELECT id FROM users ORDER BY id LIMIT 5",
    "SELECT grp, COUNT(*) AS n FROM users GROUP BY grp "
    "HAVING COUNT(*) > 2 ORDER BY n, grp",
    "SELECT users.id, bonus.pts FROM users "
    "JOIN bonus ON users.id = bonus.id ORDER BY users.id",
    "SELECT id FROM users WHERE id = 7",
    "SELECT grp FROM users WHERE score > "
    "(SELECT AVG(score) FROM users) ORDER BY id",
]


class TestQueryEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_cluster_matches_single_node(self, tmp_path, num_shards):
        single, cluster = seeded_cluster(tmp_path, num_shards=num_shards)
        for sql in EQUIVALENCE_QUERIES:
            expected = single.execute(sql)
            got = cluster.execute(sql)
            assert got.columns == expected.columns, sql
            assert got.rows == expected.rows, sql
        cluster.close()

    def test_strategies_chosen(self, tmp_path):
        _, cluster = seeded_cluster(tmp_path, num_shards=2)
        cases = [
            ("SELECT id FROM users WHERE id = 3", SINGLE_SHARD),
            ("SELECT id FROM users ORDER BY id", SCATTER),
            ("SELECT COUNT(*) FROM users", PARTIAL_AGG),
            ("SELECT id FROM users WHERE score > "
             "(SELECT AVG(score) FROM users)", GATHER),
        ]
        for sql, strategy in cases:
            result = cluster.execute(sql)
            assert result.strategy == strategy, sql
        single_shard = cluster.execute("SELECT id FROM users WHERE id = 3")
        assert len(single_shard.shards) == 1
        cluster.close()

    def test_gather_reason_is_recorded(self, tmp_path):
        _, cluster = seeded_cluster(tmp_path)
        result = cluster.execute(
            "SELECT id FROM users WHERE score > (SELECT AVG(score) FROM users)"
        )
        assert "subquery" in result.reason
        cluster.close()

    def test_explain_names_the_strategy(self, tmp_path):
        _, cluster = seeded_cluster(tmp_path)
        plan = cluster.execute("EXPLAIN SELECT COUNT(*) FROM users")
        text = "\n".join(row[0] for row in plan.rows)
        assert "partial-aggregate" in text
        cluster.close()


# -- DML routing -------------------------------------------------------------
class TestDMLRouting:
    def test_insert_splits_rows_by_key_hash(self, tmp_path):
        cluster = ClusterDatabase(tmp_path / "c", num_shards=3)
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        cluster.execute(
            "INSERT INTO t VALUES " +
            ", ".join(f"({i}, {i})" for i in range(30))
        )
        per_shard = [
            len(shard.primary.db.catalog.resolve("t").rows)
            for shard in cluster.shards
        ]
        assert sum(per_shard) == 30
        assert all(count > 0 for count in per_shard)  # 30 keys spread
        for shard in cluster.shards:
            for row in shard.primary.db.catalog.resolve("t").rows:
                assert cluster.pmap.shard_of("t", row[0]) == shard.shard_id
        cluster.close()

    def test_update_and_delete_match_single_node(self, tmp_path):
        single, cluster = seeded_cluster(tmp_path)
        for sql in (
            "UPDATE users SET score = score * 2 WHERE grp = 'g0'",
            "UPDATE users SET score = 0 WHERE id = 5",  # pruned to 1 shard
            "DELETE FROM users WHERE id = 9",           # pruned to 1 shard
            "DELETE FROM users WHERE score > 10",
        ):
            single.execute(sql)
            cluster.execute(sql)
        assert cluster.state() == canonicalize(dump_database(single))
        cluster.close()

    def test_partition_key_update_is_rejected(self, tmp_path):
        _, cluster = seeded_cluster(tmp_path)
        with pytest.raises(ClusterError, match="partition key"):
            cluster.execute("UPDATE users SET id = id + 100")
        cluster.close()

    def test_cross_shard_transaction_commit_and_rollback(self, tmp_path):
        cluster = ClusterDatabase(tmp_path / "c", num_shards=2)
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        cluster.begin()
        cluster.execute("INSERT INTO t VALUES (0, 0), (1, 1), (2, 2), (3, 3)")
        cluster.commit()
        assert cluster.execute("SELECT COUNT(*) FROM t").rows == [(4,)]
        cluster.begin()
        cluster.execute("DELETE FROM t WHERE v >= 0")
        cluster.rollback()
        assert cluster.execute("SELECT COUNT(*) FROM t").rows == [(4,)]
        cluster.close()

    def test_ddl_inside_transaction_is_rejected(self, tmp_path):
        cluster = ClusterDatabase(tmp_path / "c", num_shards=2)
        cluster.begin()
        with pytest.raises(ClusterError, match="transaction"):
            cluster.execute("CREATE TABLE t (id INT)")
        cluster.rollback()
        cluster.close()


# -- replication -------------------------------------------------------------
class TestReplication:
    def test_acknowledged_writes_are_on_the_replica(self, tmp_path):
        _, cluster = seeded_cluster(tmp_path)
        for shard in cluster.shards:
            assert shard.replication_lag() == 0
            assert shard.replica.state() == dump_database(shard.primary.db)
            assert shard.replicator.stats.ships > 0
        cluster.close()

    def test_reshipped_frames_are_skipped_as_duplicates(self, tmp_path):
        _, cluster = seeded_cluster(tmp_path)
        shard = cluster.shards[0]
        assert shard.replicator.ship() == 0  # nothing new
        shard.replicator.shipped_bytes = 0   # simulate a lost ack
        assert shard.replicator.ship() == 0  # re-ship applies nothing
        assert shard.replicator.stats.duplicates_skipped > 0
        assert shard.replica.state() == dump_database(shard.primary.db)
        cluster.close()

    def test_compaction_reseeds_the_replica(self, tmp_path):
        _, cluster = seeded_cluster(tmp_path)
        cluster.compact()
        for shard in cluster.shards:
            assert shard.replicator.stats.reseeds >= 1
            assert shard.replica.state() == dump_database(shard.primary.db)
        cluster.execute("INSERT INTO users VALUES (100, 'g0', 1.5)")
        assert cluster.replication_lag() == 0
        cluster.close()


# -- log-shipping fuzz: bit-flips, truncation, reordering --------------------
def primary_frames(tmp_path, n=4):
    """Real WAL bytes from a primary, plus the expected row count."""
    primary = DurableDatabase(tmp_path / "primary")
    primary.execute("CREATE TABLE t (id INT, v INT)")
    for i in range(n):
        primary.execute(f"INSERT INTO t VALUES ({i}, {i * 10})")
    raw = primary.wal_path.read_bytes()
    primary.close()
    return raw


class TestShippingFuzz:
    def test_clean_chunk_applies_fully(self, tmp_path):
        raw = primary_frames(tmp_path)
        replica = ShardReplica(tmp_path / "replica")
        result = replica.receive(raw)
        assert result.status == RECEIVE_OK
        assert result.applied == len(scan_wal_bytes(raw).records)
        assert replica.query("SELECT COUNT(*) FROM t").rows == [(4,)]
        replica.close()

    def test_truncated_chunk_is_torn_then_completes(self, tmp_path):
        raw = primary_frames(tmp_path)
        replica = ShardReplica(tmp_path / "replica")
        for cut in (len(raw) // 3, len(raw) // 2, len(raw) - 3):
            shutil_replica = ShardReplica(tmp_path / f"r{cut}")
            first = shutil_replica.receive(raw[:cut])
            assert first.status in (RECEIVE_OK, RECEIVE_TORN)
            second = shutil_replica.receive(raw[cut:])
            assert second.status == RECEIVE_OK
            assert shutil_replica.watermark == scan_wal_bytes(raw).last_lsn
            assert (
                shutil_replica.query("SELECT COUNT(*) FROM t").rows == [(4,)]
            )
            shutil_replica.close()
        replica.close()

    def test_bit_flip_is_classified_corrupt_and_never_applied(self, tmp_path):
        raw = primary_frames(tmp_path)
        records = scan_wal_bytes(raw).records
        # flip one payload byte in the middle of the log
        target = len(raw) // 2
        mutated = bytearray(raw)
        mutated[target] ^= 0xFF
        replica = ShardReplica(tmp_path / "replica")
        result = replica.receive(bytes(mutated))
        assert result.status == RECEIVE_CORRUPT
        assert result.error
        # only the frames before the flipped one were applied
        assert replica.watermark < records[-1]["lsn"]
        valid_prefix = scan_wal_bytes(bytes(mutated)).records
        assert replica.watermark == (
            valid_prefix[-1]["lsn"] if valid_prefix else 0
        )
        replica.close()

    def test_reordered_frames_are_rejected(self, tmp_path):
        raw = primary_frames(tmp_path)
        records = scan_wal_bytes(raw).records
        assert len(records) >= 4
        skipped = b"".join(
            encode_record(r) for r in (records[0], records[2], records[3])
        )
        replica = ShardReplica(tmp_path / "replica")
        result = replica.receive(skipped)
        assert result.status == RECEIVE_REORDER
        assert result.applied == 1  # only the in-order first frame
        assert replica.watermark == records[0]["lsn"]
        replica.close()

    def test_duplicate_chunk_is_idempotent(self, tmp_path):
        raw = primary_frames(tmp_path)
        replica = ShardReplica(tmp_path / "replica")
        replica.receive(raw)
        before = replica.state()
        again = replica.receive(raw)
        assert again.applied == 0
        assert again.duplicates == len(scan_wal_bytes(raw).records)
        assert replica.state() == before
        replica.close()

    def test_replica_survives_reopen_after_torn_tail(self, tmp_path):
        raw = primary_frames(tmp_path)
        replica = ShardReplica(tmp_path / "replica")
        replica.receive(raw[: len(raw) - 5])  # torn tail buffered
        watermark = replica.watermark
        replica.close()
        reopened = ShardReplica(tmp_path / "replica")
        assert reopened.watermark == watermark
        reopened.close()


# -- failover ----------------------------------------------------------------
class TestFailover:
    def test_crash_before_ship_reroutes_the_statement(self, tmp_path):
        crash = CrashInjector().at("ship-before-send", 4)
        cluster = ClusterDatabase(
            tmp_path / "c", num_shards=2, crash=crash, failover=True
        )
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        for i in range(8):
            cluster.execute(f"INSERT INTO t VALUES ({i}, {i})")
        assert cluster.stats.failovers == 1
        assert cluster.stats.reroutes_applied >= 1
        assert cluster.execute("SELECT COUNT(*) FROM t").rows == [(8,)]
        cluster.close()

    def test_crash_after_ship_is_deduplicated(self, tmp_path):
        # ship-after-send: the write is durable on BOTH sides, only the
        # ack was lost — re-routing must skip it (exactly-once).
        crash = CrashInjector().at("ship-after-send", 4)
        cluster = ClusterDatabase(
            tmp_path / "c", num_shards=2, crash=crash, failover=True
        )
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        for i in range(8):
            cluster.execute(f"INSERT INTO t VALUES ({i}, {i})")
        assert cluster.stats.failovers == 1
        assert cluster.stats.reroutes_deduped >= 1
        assert cluster.execute("SELECT COUNT(*) FROM t").rows == [(8,)]
        assert cluster.execute("SELECT SUM(v) FROM t").rows == [(28,)]
        cluster.close()

    def test_promotion_flips_role_and_survives_reopen(self, tmp_path):
        cluster = ClusterDatabase(tmp_path / "c", num_shards=2)
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        cluster.execute("INSERT INTO t VALUES (0, 0), (1, 1), (2, 2)")
        shard = cluster.shards[0]
        old_home = shard.primary_home
        shard.kill()
        shard.promote()
        assert shard.primary_home != old_home
        assert not shard.dead
        count = cluster.execute("SELECT COUNT(*) FROM t").rows
        cluster.close()
        reopened = ClusterDatabase(tmp_path / "c", num_shards=2)
        assert reopened.shards[0].primary_home != old_home
        assert reopened.execute("SELECT COUNT(*) FROM t").rows == count
        reopened.close()

    def test_killed_shard_write_promotes_before_executing(self, tmp_path):
        # An externally killed shard (dead *before* the statement, no
        # SimulatedCrash in flight) must fail over on the write path,
        # not leak ShardUnavailableError despite failover=True.
        cluster = ClusterDatabase(tmp_path / "c", num_shards=2)
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        cluster.execute("INSERT INTO t VALUES (0, 0), (1, 1), (2, 2)")
        dead_key = next(
            k for k in range(50) if cluster.pmap.shard_of("t", k) == 1
        )
        cluster.shards[1].kill()
        cluster.execute(f"INSERT INTO t VALUES ({dead_key}, 9)")
        assert cluster.stats.failovers == 1
        assert cluster.execute("SELECT COUNT(*) FROM t").rows == [(4,)]
        cluster.close()

    def test_killed_shard_mid_transaction_rebuilds_and_commits(self, tmp_path):
        cluster = ClusterDatabase(tmp_path / "c", num_shards=2)
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        shard1_keys = [
            k for k in range(50) if cluster.pmap.shard_of("t", k) == 1
        ][:2]
        cluster.begin()
        cluster.execute(f"INSERT INTO t VALUES ({shard1_keys[0]}, 1)")
        cluster.shards[1].kill()
        # next statement on the same shard: promote, rebuild the open
        # transaction from the coordinator's buffer, keep going
        cluster.execute(f"INSERT INTO t VALUES ({shard1_keys[1]}, 2)")
        cluster.commit()
        assert cluster.stats.failovers == 1
        assert cluster.execute("SELECT SUM(v) FROM t").rows == [(3,)]
        cluster.close()

    def test_killed_shard_between_statement_and_commit(self, tmp_path):
        cluster = ClusterDatabase(tmp_path / "c", num_shards=2)
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        key = next(k for k in range(50) if cluster.pmap.shard_of("t", k) == 0)
        cluster.begin()
        cluster.execute(f"INSERT INTO t VALUES ({key}, 7)")
        cluster.shards[0].kill()
        cluster.commit()  # rolls the buffered statement forward, tag-checked
        assert cluster.stats.failovers == 1
        assert cluster.stats.reroutes_applied >= 1
        assert cluster.execute("SELECT SUM(v) FROM t").rows == [(7,)]
        cluster.close()

    def test_dead_shard_without_failover_degrades(self, tmp_path):
        cluster = ClusterDatabase(
            tmp_path / "c", num_shards=2, failover=False, allow_stale=True
        )
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        cluster.execute("INSERT INTO t VALUES (0, 0), (1, 1), (2, 2), (3, 3)")
        cluster.shards[0].kill()
        dead_key = next(
            k for k in range(50) if cluster.pmap.shard_of("t", k) == 0
        )
        with pytest.raises(ShardUnavailableError) as failure:
            cluster.execute(f"INSERT INTO t VALUES ({dead_key}, 9)")
        assert failure.value.shard == 0
        stale = cluster.execute("SELECT id FROM t ORDER BY id")
        assert stale.stale
        assert stale.rows == [(0,), (1,), (2,), (3,)]
        cluster.close()

    def test_dead_shard_without_stale_reads_fails_typed(self, tmp_path):
        cluster = ClusterDatabase(
            tmp_path / "c", num_shards=2, failover=False, allow_stale=False
        )
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        cluster.shards[1].kill()
        with pytest.raises(ShardUnavailableError):
            cluster.execute("SELECT COUNT(*) FROM t")
        cluster.close()


# -- exactly-once across coordinator restarts --------------------------------
class TestPrepareRecovery:
    def two_shard_keys(self, cluster):
        """Two INT keys that land on different shards."""
        first = cluster.pmap.shard_of("t", 0)
        for candidate in range(1, 50):
            if cluster.pmap.shard_of("t", candidate) != first:
                return 0, candidate
        raise AssertionError("no key found for the second shard")

    def test_indoubt_prepare_rolls_forward(self, tmp_path):
        cluster = ClusterDatabase(tmp_path / "c", num_shards=2)
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        key_a, key_b = self.two_shard_keys(cluster)
        shard_a = cluster.pmap.shard_of("t", key_a)
        shard_b = cluster.pmap.shard_of("t", key_b)
        tag_a, tag_b = f"e1.900.s{shard_a}", f"e1.901.s{shard_b}"
        # the crash left shard A committed but shard B untouched, with
        # the prepare (= commit decision) durable and no done record
        cluster.shards[shard_a].execute(
            f"INSERT INTO t VALUES ({key_a}, 1)", tag=tag_a
        )
        cluster.coordinator_log.append(
            {
                "t": "prepare",
                "xid": "x1.999",
                "shards": {
                    str(shard_a): [[tag_a, f"INSERT INTO t VALUES ({key_a}, 1)"]],
                    str(shard_b): [[tag_b, f"INSERT INTO t VALUES ({key_b}, 2)"]],
                },
            },
            sync=True,
        )
        cluster.close()
        recovered = ClusterDatabase(tmp_path / "c", num_shards=2)
        rows = recovered.execute("SELECT id, v FROM t ORDER BY id").rows
        assert rows == [(key_a, 1), (key_b, 2)]  # rolled forward, once
        assert recovered.shards[shard_a].has_applied(tag_a)
        assert recovered.shards[shard_b].has_applied(tag_b)
        recovered.close()
        # a second reopen must not re-apply anything
        again = ClusterDatabase(tmp_path / "c", num_shards=2)
        assert again.execute("SELECT COUNT(*) FROM t").rows == [(2,)]
        again.close()

    def test_unacknowledged_prepare_is_presumed_aborted(self, tmp_path):
        cluster = ClusterDatabase(tmp_path / "c", num_shards=2)
        cluster.execute("CREATE TABLE t (id INT, v INT)")
        cluster.coordinator_log.append(
            {
                "t": "prepare",
                "xid": "x1.998",
                "shards": {"0": [["e1.800.s0", "INSERT INTO t VALUES (1, 1)"]]},
            },
            sync=True,
        )
        cluster.close()
        recovered = ClusterDatabase(tmp_path / "c", num_shards=2)
        assert recovered.execute("SELECT COUNT(*) FROM t").rows == [(0,)]
        recovered.close()


# -- the cluster crash matrix ------------------------------------------------
class TestClusterCrashMatrix:
    def test_whole_cluster_matrix_passes(self, tmp_path):
        report = run_cluster_crash_matrix(
            tmp_path, seeds=(0,), num_statements=14, num_shards=2
        )
        assert report.trials, "no crash points were discovered"
        assert report.all_ok, "\n".join(report.render())
        names = set(report.points)
        assert any(name.startswith("ship-") for name in names)
        assert any(name.startswith("wal-") for name in names)
        assert any("role" in name for name in names)

    def test_failover_matrix_covers_promotion(self, tmp_path):
        report = run_cluster_failover_matrix(
            tmp_path, seed=0, num_statements=14, num_shards=2
        )
        assert report.all_ok, "\n".join(report.render())
        double = [t for t in report.trials if t.trigger_point]
        assert double, "no double-crash promotion trials ran"
        assert any(t.point.startswith("promote-") for t in double)
        line = double[0].repro_line()
        assert "run_cluster_crash_trial" in line
        assert "trigger_point=" in line

    def test_run_crash_matrix_delegates_to_cluster_topology(self, tmp_path):
        report = run_crash_matrix(
            tmp_path, seeds=(0,), num_statements=12, topology="cluster"
        )
        assert report.all_ok, "\n".join(report.render())
        assert all(t.topology == "cluster" for t in report.trials)

    def test_single_trial_reports_topology_and_repro(self, tmp_path):
        workload = random_dml_workload(0, num_statements=12)
        trial = run_cluster_crash_trial(
            tmp_path / "t", workload, "wal-after-fsync", 1,
            seed=0, num_statements=12,
        )
        assert trial.ok
        assert trial.topology == "cluster"
        assert "run_cluster_crash_trial" in trial.repro_line()
        assert "seed=0" in trial.repro_line()


# -- text2sql scored against the cluster engine ------------------------------
class TestText2SQLOnCluster:
    def test_verdicts_match_single_node(self, tmp_path):
        from repro.text2sql.evaluate import evaluate_translator
        from repro.text2sql.workload import generate_workload

        workload = generate_workload(seed=0, num_rows=24)
        examples = workload.examples[:12]
        gold = {e.question: e.sql for e in examples}

        def translate(question):
            # perfect on even examples, broken SQL on odd ones, so both
            # verdict kinds are exercised
            answer = gold[question]
            if list(gold).index(question) % 3 == 2:
                return "SELECT missing_column FROM nowhere"
            return answer

        baseline = evaluate_translator(translate, workload, examples)
        cluster = ClusterDatabase.from_database(
            workload.db, tmp_path / "cluster", num_shards=2
        )
        sharded = evaluate_translator(
            translate, workload, examples, engine=cluster
        )
        cluster.close()
        assert sharded.total == baseline.total
        assert sharded.correct == baseline.correct
        assert sharded.valid_sql == baseline.valid_sql
        assert sharded.static_valid == baseline.static_valid
        assert sharded.by_hardness == baseline.by_hardness
