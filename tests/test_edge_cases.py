"""Edge-case coverage: empty inputs, degenerate shapes, boundary values."""

import numpy as np
import pytest

from repro.errors import (
    GenerationError,
    SQLAnalysisError,
    SQLExecutionError,
    TokenizerError,
)
from repro.generation import GenerationConfig, generate
from repro.models import GPTModel, ModelConfig
from repro.sql import Database


@pytest.fixture
def empty_db():
    db = Database()
    db.execute("CREATE TABLE t (id INT, v INT, tag TEXT)")
    return db


class TestEmptyTables:
    def test_select_star_empty(self, empty_db):
        result = empty_db.execute("SELECT * FROM t")
        assert result.rows == []

    def test_count_empty_is_zero(self, empty_db):
        assert empty_db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_aggregates_empty_are_null(self, empty_db):
        row = empty_db.execute("SELECT SUM(v), AVG(v), MIN(v), MAX(v) FROM t").rows[0]
        assert row == (None, None, None, None)

    def test_group_by_empty_produces_no_groups(self, empty_db):
        result = empty_db.execute("SELECT tag, COUNT(*) FROM t GROUP BY tag")
        assert result.rows == []

    def test_join_with_empty_side(self, empty_db):
        empty_db.execute("CREATE TABLE u (id INT)")
        empty_db.execute("INSERT INTO u VALUES (1), (2)")
        inner = empty_db.execute("SELECT * FROM u JOIN t ON u.id = t.id")
        assert inner.rows == []
        left = empty_db.execute(
            "SELECT u.id, t.v FROM u LEFT JOIN t ON u.id = t.id ORDER BY u.id"
        )
        assert left.rows == [(1, None), (2, None)]

    def test_order_limit_distinct_empty(self, empty_db):
        result = empty_db.execute(
            "SELECT DISTINCT v FROM t ORDER BY v DESC LIMIT 3"
        )
        assert result.rows == []

    def test_update_delete_empty(self, empty_db):
        assert empty_db.execute("UPDATE t SET v = 1").rowcount == 0
        assert empty_db.execute("DELETE FROM t").rowcount == 0

    def test_index_on_empty_table(self, empty_db):
        empty_db.execute("CREATE INDEX i ON t (tag)")
        result = empty_db.execute("SELECT * FROM t WHERE tag = 'x'")
        assert result.rows == []


class TestBoundaryValues:
    def test_limit_zero(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        assert db.execute("SELECT id FROM t LIMIT 0").rows == []

    def test_single_row_single_column(self):
        db = Database()
        db.execute("CREATE TABLE t (id INT)")
        db.execute("INSERT INTO t VALUES (42)")
        assert db.execute("SELECT id FROM t").scalar() == 42

    def test_all_null_column_aggregation(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (NULL), (NULL)")
        assert db.execute("SELECT COUNT(v) FROM t").scalar() == 0
        assert db.execute("SELECT SUM(v) FROM t").scalar() is None

    def test_negative_numbers_in_where(self):
        db = Database()
        db.execute("CREATE TABLE t (v INT)")
        db.execute("INSERT INTO t VALUES (-5), (5)")
        assert db.execute("SELECT COUNT(*) FROM t WHERE v < -1").scalar() == 1

    def test_string_with_quote(self):
        db = Database()
        db.execute("CREATE TABLE t (s TEXT)")
        db.execute("INSERT INTO t VALUES ('it''s')")
        assert db.execute("SELECT s FROM t").scalar() == "it's"

    def test_duplicate_alias_columns_allowed_in_output(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        result = db.execute("SELECT a AS x, a AS x FROM t")
        assert result.columns == ["x", "x"]


class TestGenerationEdges:
    def test_max_one_token(self):
        model = GPTModel(ModelConfig.tiny(vocab_size=16), seed=0)
        out = generate(model, [1], GenerationConfig(max_new_tokens=1))
        assert len(out) <= 1

    def test_prompt_at_exact_window(self):
        config = ModelConfig(vocab_size=16, max_seq_len=4, dim=16,
                             num_layers=1, num_heads=2, ff_dim=32)
        model = GPTModel(config, seed=0)
        out = generate(model, [1, 2, 3, 4], GenerationConfig(max_new_tokens=3))
        assert len(out) <= 3

    def test_vocab_boundary_ids(self):
        model = GPTModel(ModelConfig.tiny(vocab_size=16), seed=0)
        logits = model(np.array([[15]]))  # the last valid id
        assert logits.shape[-1] == 16
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            model(np.array([[16]]))


class TestTokenizerEdges:
    def test_encode_empty_string(self, word_tokenizer):
        encoding = word_tokenizer.encode("")
        assert encoding.ids == []
        padded = word_tokenizer.encode("", pad_to=4)
        assert padded.ids == [word_tokenizer.vocab.pad_id] * 4
        assert sum(padded.attention_mask) == 0

    def test_decode_empty(self, word_tokenizer):
        assert word_tokenizer.decode([]) == ""

    def test_whitespace_only_input(self, word_tokenizer):
        assert word_tokenizer.encode("   \t\n ").ids == []

    def test_max_length_zero_tokens(self, word_tokenizer):
        encoding = word_tokenizer.encode("the database", max_length=0)
        assert encoding.ids == []
