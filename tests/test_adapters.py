"""Tests for LoRA-style parameter-efficient fine-tuning."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import TrainingError
from repro.models import BERTModel, GPTModel, ModelConfig, SequenceClassifier
from repro.nn.layers import Linear
from repro.training import (
    LabeledExample,
    evaluate_classifier,
    finetune_classifier,
    inject_adapters,
    merge_adapters,
    trainable_parameter_count,
)
from repro.training.adapters import LoRALinear
from repro.utils.rng import SeededRNG


@pytest.fixture
def model():
    return GPTModel(ModelConfig.tiny(vocab_size=30), seed=0)


class TestLoRALinear:
    def test_identity_at_init(self):
        rng = SeededRNG(0)
        base = Linear(6, 4, rng.spawn("base"))
        adapter = LoRALinear(base, rank=2, rng=rng.spawn("lora"))
        x = Tensor(np.random.default_rng(0).normal(size=(3, 6)))
        base_out = (x @ base.weight + base.bias).data
        np.testing.assert_allclose(adapter(x).data, base_out, atol=1e-12)

    def test_base_is_frozen(self):
        rng = SeededRNG(0)
        base = Linear(6, 4, rng.spawn("base"))
        adapter = LoRALinear(base, rank=2, rng=rng.spawn("lora"))
        x = Tensor(np.ones((2, 6)))
        adapter(x).sum().backward()
        assert base.weight.grad is None
        assert adapter.lora_a.grad is not None

    def test_invalid_rank(self):
        rng = SeededRNG(0)
        with pytest.raises(TrainingError):
            LoRALinear(Linear(4, 4, rng), rank=0, rng=rng)


class TestInjection:
    def test_adapters_replace_targets(self, model):
        adapters = inject_adapters(model, rank=2, seed=0)
        # Two adapters (query, value) per layer.
        assert len(adapters) == 2 * model.config.num_layers
        first_block = model.stack.blocks[0]
        assert isinstance(first_block.attn.query, LoRALinear)
        assert isinstance(first_block.attn.key, Linear)

    def test_trainable_count_drops_dramatically(self, model):
        total = model.num_parameters()
        inject_adapters(model, rank=2, seed=0)
        trainable = trainable_parameter_count(model)
        assert 0 < trainable < total * 0.15

    def test_forward_unchanged_at_init(self, model):
        ids = np.array([[1, 2, 3, 4]])
        before = model(ids).data.copy()
        inject_adapters(model, rank=2, seed=0)
        after = model(ids).data
        np.testing.assert_allclose(before, after, atol=1e-12)

    def test_no_targets_raises(self, model):
        with pytest.raises(TrainingError):
            inject_adapters(model, rank=2, target_names=("nonexistent",))


class TestMerge:
    def test_merge_preserves_function(self, model):
        ids = np.array([[1, 2, 3, 4]])
        adapters = inject_adapters(model, rank=2, seed=0)
        # Perturb the adapters so the merge is non-trivial.
        for adapter in adapters:
            adapter.lora_b.data += 0.05
        adapted = model(ids).data.copy()
        merged = merge_adapters(model)
        assert merged == len(adapters)
        np.testing.assert_allclose(model(ids).data, adapted, atol=1e-10)
        assert isinstance(model.stack.blocks[0].attn.query, Linear)


class TestAdapterFinetuning:
    def test_adapter_finetuning_learns(self):
        backbone = BERTModel(ModelConfig.tiny(vocab_size=64, causal=False), seed=0)
        from repro.tokenizers import WhitespaceTokenizer

        texts_pos = ["the fast query returns rows", "a fast scan returns rows"]
        texts_neg = ["the slow scan drops columns", "a slow filter drops columns"]
        tokenizer = WhitespaceTokenizer(lowercase=True)
        tokenizer.train(texts_pos + texts_neg, vocab_size=64)

        classifier = SequenceClassifier(backbone, num_classes=2, seed=0)
        inject_adapters(backbone, rank=2, seed=0)
        # The classifier head itself stays trainable.
        examples = [
            LabeledExample(text=t, label=1) for t in texts_pos * 4
        ] + [LabeledExample(text=t, label=0) for t in texts_neg * 4]
        frozen_snapshot = backbone.stack.blocks[0].ff.up.weight.data.copy()
        report = finetune_classifier(
            classifier, tokenizer, examples, epochs=10, lr=5e-3, seed=0
        )
        # Frozen weights did not move; the model still learned.
        np.testing.assert_array_equal(
            backbone.stack.blocks[0].ff.up.weight.data, frozen_snapshot
        )
        assert report.train_accuracy >= 0.9
