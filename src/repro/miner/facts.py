"""Candidate data facts: aggregate comparisons over table subgroups."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.sql import Database
from repro.utils.rng import SeededRNG


@dataclass(frozen=True)
class DataFact:
    """One candidate fact: a subgroup aggregate vs. the population.

    Attributes:
        filter_column/filter_value: the subgroup ("category = dairy").
        metric: the numeric column aggregated.
        agg: the aggregate (avg/min/max).
        group_value: the aggregate within the subgroup.
        overall_value: the aggregate over the whole table.
    """

    filter_column: str
    filter_value: str
    metric: str
    agg: str
    group_value: float
    overall_value: float

    @property
    def direction(self) -> str:
        if self.overall_value == 0:
            return "equal to"
        ratio = self.group_value / self.overall_value
        if ratio > 1.05:
            return "higher than"
        if ratio < 0.95:
            return "lower than"
        return "close to"

    @property
    def dimensions(self) -> Tuple[str, str]:
        """The (filter, metric) slot this fact occupies in a summary."""
        return (f"{self.filter_column}={self.filter_value}", self.metric)

    def sentence(self) -> str:
        """Render the fact as a natural-language sentence."""
        return (
            f"for {self.filter_column} {self.filter_value} , the {self.agg} "
            f"{self.metric} is {self.group_value:g} , {self.direction} the "
            f"overall {self.agg} {self.metric} of {self.overall_value:g}"
        )


def enumerate_facts(
    db: Database,
    table: str,
    filter_columns: List[str],
    metric_columns: List[str],
    aggs: Tuple[str, ...] = ("avg", "max"),
) -> List[DataFact]:
    """All (filter value, metric, aggregate) facts for the table."""
    facts: List[DataFact] = []
    for filter_column in filter_columns:
        values = sorted(
            {
                v
                for v in db.table(table).column_values(filter_column)
                if isinstance(v, str)
            }
        )
        for metric in metric_columns:
            for agg in aggs:
                overall = db.execute(
                    f"SELECT {agg.upper()}({metric}) FROM {table}"
                ).scalar()
                if overall is None:
                    continue
                for value in values:
                    group = db.execute(
                        f"SELECT {agg.upper()}({metric}) FROM {table} "
                        f"WHERE {filter_column} = '{value}'"
                    ).scalar()
                    if group is None:
                        continue
                    facts.append(
                        DataFact(
                            filter_column=filter_column,
                            filter_value=value,
                            metric=metric,
                            agg=agg,
                            group_value=round(float(group), 2),
                            overall_value=round(float(overall), 2),
                        )
                    )
    if not facts:
        raise ReproError("no candidate facts could be enumerated")
    return facts


# -- demo dataset ---------------------------------------------------------------
_CATEGORIES = ["dairy", "bakery", "produce", "frozen"]
_REGIONS = ["north", "south", "east", "west"]


def generate_sales_table(num_rows: int = 80, seed: int = 0) -> Database:
    """A sales table with planted patterns.

    Planted signal (so goals have objectively relevant facts): dairy
    products are priced well above average; the west region discounts
    heavily (low revenue); everything else is flat.
    """
    rng = SeededRNG(seed)
    db = Database()
    db.execute(
        "CREATE TABLE sales (id INT, category TEXT, region TEXT, "
        "price INT, revenue INT)"
    )
    for i in range(num_rows):
        category = rng.choice(_CATEGORIES)
        region = rng.choice(_REGIONS)
        price = rng.randint(20, 40)
        revenue = rng.randint(80, 120)
        if category == "dairy":
            price += 30  # planted: dairy is expensive
        if region == "west":
            revenue -= 50  # planted: west underperforms
        db.execute(
            f"INSERT INTO sales VALUES ({i}, '{category}', '{region}', "
            f"{price}, {revenue})"
        )
    return db
