"""Mining data patterns described in natural language (§1: [83], [88]).

BABOONS [83] and NaturalMiner [88] search a dataset for *abstract
patterns described in natural language*: the user states a goal ("how do
premium products differ on price?"), the system enumerates candidate
data facts (aggregate comparisons over subgroups), scores each fact's
relevance to the goal with a language model, and uses black-box search
to assemble the best summary without scoring the whole fact space.

This module reproduces that pipeline:

* :func:`enumerate_facts` — candidate facts over (filter, column,
  aggregate) triples, each rendered as an NL sentence with its
  direction vs. the overall population;
* :class:`LMRelevanceScorer` — a fine-tuned LM scores goal/fact
  relevance (with a keyword baseline for comparison);
* :func:`greedy_summary` / :func:`sampled_summary` /
  :func:`exhaustive_summary` — summary search strategies traded off by
  scorer-call budget (the black-box-optimization story).
"""

from repro.miner.facts import DataFact, enumerate_facts, generate_sales_table
from repro.miner.scorer import (
    KeywordRelevanceScorer,
    LMRelevanceScorer,
    train_relevance_scorer,
)
from repro.miner.search import (
    SummaryResult,
    exhaustive_summary,
    greedy_summary,
    sampled_summary,
    summary_relevance,
)

__all__ = [
    "DataFact",
    "enumerate_facts",
    "generate_sales_table",
    "KeywordRelevanceScorer",
    "LMRelevanceScorer",
    "train_relevance_scorer",
    "SummaryResult",
    "greedy_summary",
    "sampled_summary",
    "exhaustive_summary",
    "summary_relevance",
]
