"""Black-box search over summary compositions (the BABOONS core).

A summary is a set of ``k`` facts with distinct (filter, metric)
dimensions. The objective is total goal-relevance as judged by a scorer
whose calls are expensive (each is an LM evaluation) — so strategies
are compared by both summary quality and scorer-call budget:

* :func:`exhaustive_summary` — score everything, pick the best
  (the quality ceiling, maximum cost);
* :func:`greedy_summary`    — score everything once, then greedily
  fill slots (same cost here, canonical quality);
* :func:`sampled_summary`   — score only a random subset (the budget
  regime black-box optimization targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.miner.facts import DataFact
from repro.utils.rng import SeededRNG


@dataclass
class SummaryResult:
    """A selected summary plus its cost accounting."""

    facts: List[DataFact]
    total_score: float
    scorer_calls: int

    def render(self) -> str:
        return "\n".join(f"- {fact.sentence()}" for fact in self.facts)


def summary_relevance(scorer, goal: str, facts: Sequence[DataFact]) -> float:
    """Total relevance of a fact set (fresh scorer calls)."""
    return sum(scorer.score(goal, fact) for fact in facts)


def _select_diverse(
    scored: List[Tuple[float, DataFact]], k: int
) -> Tuple[List[DataFact], float]:
    """Pick the top-k facts with pairwise distinct dimensions."""
    chosen: List[DataFact] = []
    used: Set[Tuple[str, str]] = set()
    total = 0.0
    for score, fact in sorted(scored, key=lambda pair: -pair[0]):
        if fact.dimensions in used:
            continue
        chosen.append(fact)
        used.add(fact.dimensions)
        total += score
        if len(chosen) == k:
            break
    return chosen, total


def greedy_summary(
    scorer, goal: str, facts: Sequence[DataFact], k: int = 3
) -> SummaryResult:
    """Score every fact once; fill the summary greedily by score."""
    if k <= 0:
        raise ReproError("summary size must be positive")
    calls_before = scorer.calls
    scored = [(scorer.score(goal, fact), fact) for fact in facts]
    chosen, total = _select_diverse(scored, k)
    return SummaryResult(
        facts=chosen, total_score=total, scorer_calls=scorer.calls - calls_before
    )


def exhaustive_summary(
    scorer, goal: str, facts: Sequence[DataFact], k: int = 3
) -> SummaryResult:
    """Alias of the full-scoring strategy (the quality ceiling)."""
    return greedy_summary(scorer, goal, facts, k)


def sampled_summary(
    scorer,
    goal: str,
    facts: Sequence[DataFact],
    k: int = 3,
    budget: int = 10,
    seed: int = 0,
) -> SummaryResult:
    """Score only ``budget`` randomly sampled facts, then select.

    The cheap strategy a black-box optimizer must beat: with a small
    budget it often misses the goal-relevant facts entirely.
    """
    if budget <= 0:
        raise ReproError("scoring budget must be positive")
    rng = SeededRNG(seed)
    sample = rng.sample(list(facts), min(budget, len(facts)))
    calls_before = scorer.calls
    scored = [(scorer.score(goal, fact), fact) for fact in sample]
    chosen, total = _select_diverse(scored, k)
    return SummaryResult(
        facts=chosen, total_score=total, scorer_calls=scorer.calls - calls_before
    )
