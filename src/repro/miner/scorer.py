"""Goal-to-fact relevance scoring for summary mining."""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.miner.facts import DataFact
from repro.models import GPTModel, ModelConfig
from repro.prompting import score_continuation
from repro.tokenizers import WhitespaceTokenizer
from repro.training.data import IGNORE_INDEX
from repro.training.optim import AdamW
from repro.autograd import cross_entropy
from repro.utils.rng import SeededRNG
from repro.utils.text import simple_word_tokenize


class RelevanceScorer(Protocol):
    """Scores how relevant a fact is to a natural-language goal."""

    def score(self, goal: str, fact: DataFact) -> float:
        ...


class KeywordRelevanceScorer:
    """Baseline: count goal words occurring in the fact sentence."""

    def __init__(self) -> None:
        self.calls = 0

    def score(self, goal: str, fact: DataFact) -> float:
        self.calls += 1
        goal_words = set(simple_word_tokenize(goal.lower()))
        fact_words = set(simple_word_tokenize(fact.sentence().lower()))
        return len(goal_words & fact_words)


def _fact_key(fact: DataFact) -> str:
    """The canonical description a scorer learns to associate with goals."""
    return f"{fact.filter_column} {fact.filter_value} {fact.agg} {fact.metric} {fact.direction}"


class LMRelevanceScorer:
    """A fine-tuned LM scores ``goal ; fact : <description>`` likelihood."""

    def __init__(self, model: GPTModel, tokenizer) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.calls = 0

    def score(self, goal: str, fact: DataFact) -> float:
        self.calls += 1
        description = _fact_key(fact)
        length = max(len(simple_word_tokenize(description)), 1)
        return score_continuation(
            self.model, self.tokenizer, f"goal : {goal} ; fact :", description
        ) / length


# Training goals pair a phenomenon phrasing with its fact signature.
_GOAL_TEMPLATES = [
    ("how does {value} differ on {metric}", "{column} {value} {{agg}} {metric} {{direction}}"),
    ("why is {metric} unusual for {value}", "{column} {value} {{agg}} {metric} {{direction}}"),
    ("tell me about {metric} in the {value} group", "{column} {value} {{agg}} {metric} {{direction}}"),
]


def train_relevance_scorer(
    facts: Sequence[DataFact],
    steps: int = 200,
    dim: int = 48,
    seq_len: int = 40,
    seed: int = 0,
) -> LMRelevanceScorer:
    """Fine-tune a small LM on synthetic (goal, relevant fact) pairs.

    For every candidate fact we render goals that a user interested in
    that fact would state; the LM learns to complete goals with the
    matching fact signature, which at scoring time ranks relevant facts
    above unrelated ones.
    """
    if not facts:
        raise ReproError("no facts to train the scorer on")
    rng = SeededRNG(seed)
    texts: List[str] = []
    for fact in facts:
        for goal_template, _ in _GOAL_TEMPLATES:
            goal = goal_template.format(
                value=fact.filter_value, metric=fact.metric, column=fact.filter_column
            )
            texts.append(f"goal : {goal} ; fact : {_fact_key(fact)}")

    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(texts, vocab_size=2048)
    config = ModelConfig(
        vocab_size=tokenizer.vocab_size, max_seq_len=seq_len, dim=dim,
        num_layers=2, num_heads=max(2, dim // 16), ff_dim=4 * dim, causal=True,
    )
    model = GPTModel(config, seed=seed)

    rows = []
    for text in texts:
        ids = tokenizer.encode(text, add_bos=True, add_eos=True, max_length=seq_len).ids
        rows.append(ids + [tokenizer.vocab.pad_id] * (seq_len - len(ids)))
    data = np.array(rows, dtype=np.int64)
    pad = tokenizer.vocab.pad_id

    optimizer = AdamW(model.parameters(), lr=3e-3)
    model.train()
    for _ in range(steps):
        idx = rng.generator.choice(data.shape[0], size=min(16, data.shape[0]), replace=False)
        inputs = data[idx, :-1]
        targets = data[idx, 1:].copy()
        targets[targets == pad] = IGNORE_INDEX
        logits = model(inputs)
        loss = cross_entropy(
            logits.reshape(-1, config.vocab_size), targets.reshape(-1),
            ignore_index=IGNORE_INDEX,
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.step()
    model.eval()
    return LMRelevanceScorer(model=model, tokenizer=tokenizer)
