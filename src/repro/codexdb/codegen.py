"""Emit Python source code for a query plan.

The generated program is honest Python — list comprehensions over row
dictionaries — parameterized by the customization options CodexDB sells:
human-readable comments, per-step logging, and per-step wall-clock
profiling. The program reads ``tables`` (name -> list of row dicts) and
leaves ``result`` (list of tuples) and ``columns`` (list of names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import CodexDBError
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Literal,
    OrderItem,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.codexdb.planner import PlanStep


@dataclass(frozen=True)
class CodeGenOptions:
    """Customizations requested in natural language by the user."""

    logging: bool = False
    comments: bool = False
    profile: bool = False


def generate_python(steps: Sequence[PlanStep], options: Optional[CodeGenOptions] = None) -> str:
    """Render the plan as a self-contained Python program."""
    options = options or CodeGenOptions()
    lines: List[str] = []
    emit = lines.append
    if options.profile:
        emit("import time")
        emit("profile = {}")
    emit("logs = []")

    def comment(text: str) -> None:
        if options.comments:
            emit(f"# {text}")

    def log(expr: str) -> None:
        if options.logging:
            emit(f"logs.append({expr})")

    def profiled(step_name: str, body: List[str]) -> None:
        if options.profile:
            emit(f"_t0 = time.perf_counter()")
        for line in body:
            emit(line)
        if options.profile:
            emit(f"profile['{step_name}'] = time.perf_counter() - _t0")

    for index, step in enumerate(steps):
        name = f"{step.kind}{index}"
        if step.kind == "load":
            table = step.args["table"]
            alias = step.args["alias"]
            comment(f"load table {table} as {alias}")
            body = [
                f"rows = [dict(r) for r in tables[{table!r}]]",
                f"for _r in rows:",
                f"    _r.update({{'{alias}.' + _k: _v for _k, _v in list(_r.items())}})",
            ]
            profiled(name, body)
            log(f"'loaded {table}: ' + str(len(rows)) + ' rows'")
        elif step.kind == "join":
            table = step.args["table"]
            alias = step.args["alias"]
            left_key = step.args["left_key"]
            right_key = step.args["right_key"]
            comment(f"hash join with {table} on {left_key} = {right_key}")
            bare_right = right_key.split(".")[1]
            body = [
                f"_right = [dict(r) for r in tables[{table!r}]]",
                f"for _r in _right:",
                f"    _r.update({{'{alias}.' + _k: _v for _k, _v in list(_r.items())}})",
                f"_index = {{}}",
                f"for _r in _right:",
                f"    _k = _r[{right_key!r}]",
                f"    if _k is not None:",
                f"        _index.setdefault(_k, []).append(_r)",
                f"_joined = []",
                f"for _l in rows:",
                f"    for _r in _index.get(_l[{left_key!r}], []):",
                f"        _m = dict(_l)",
                f"        _m.update(_r)",
                f"        _joined.append(_m)",
                f"rows = _joined",
            ]
            profiled(name, body)
            log(f"'joined {table}: ' + str(len(rows)) + ' rows'")
        elif step.kind == "filter":
            predicate = expr_to_python(step.args["predicate"])
            comment(f"filter rows")
            profiled(name, [f"rows = [r for r in rows if ({predicate}) is True]"])
            log(f"'filtered: ' + str(len(rows)) + ' rows remain'")
        elif step.kind == "group":
            _emit_group(emit, comment, profiled, log, step, name)
        elif step.kind == "project":
            items: List[SelectItem] = step.args["items"]  # type: ignore[assignment]
            comment("project output columns")
            exprs = ", ".join(_projection_source(item) for item in items)
            trailing = "," if len(items) == 1 else ""
            profiled(name, [f"result = [({exprs}{trailing}) for r in rows]"])
            emit(f"columns = {_output_names(items)!r}")
            log(f"'projected: ' + str(len(result)) + ' rows'")
        elif step.kind == "order":
            _emit_order(emit, comment, profiled, step, name)
        elif step.kind == "distinct":
            comment("deduplicate")
            body = [
                "_seen = set()",
                "_out = []",
                "for _row in result:",
                "    if _row not in _seen:",
                "        _seen.add(_row)",
                "        _out.append(_row)",
                "result = _out",
            ]
            profiled(name, body)
        elif step.kind == "limit":
            count = step.args["count"]
            comment(f"keep the first {count} rows")
            profiled(name, [f"result = result[:{count}]"])
        else:
            raise CodexDBError(f"unknown plan step kind {step.kind!r}")
    return "\n".join(lines) + "\n"


def _emit_group(emit, comment, profiled, log, step: PlanStep, name: str) -> None:
    keys: List[Expr] = step.args["keys"]  # type: ignore[assignment]
    items: List[SelectItem] = step.args["items"]  # type: ignore[assignment]
    comment("group rows and compute aggregates")
    body: List[str] = []
    if keys:
        key_src = ", ".join(expr_to_python(k) for k in keys)
        body += [
            "_groups = {}",
            f"for r in rows:",
            f"    _groups.setdefault(({key_src},), []).append(r)",
        ]
    else:
        body += ["_groups = {(): rows}"]
    value_sources = [_aggregate_item_source(item) for item in items]
    row_src = ", ".join(value_sources)
    trailing = "," if len(items) == 1 else ""
    body += [
        "result = []",
        "for _key, _grp in _groups.items():",
        "    r = _grp[0] if _grp else {}",
        f"    result.append(({row_src}{trailing}))",
    ]
    profiled(name, body)
    emit(f"columns = {_output_names(items)!r}")
    log("'groups: ' + str(len(result))")


def _emit_order(emit, comment, profiled, step: PlanStep, name: str) -> None:
    orders: List[OrderItem] = step.args["orders"]  # type: ignore[assignment]
    on_raw: bool = bool(step.args.get("on_raw", True))
    comment("sort")
    body: List[str] = []
    target = "rows" if on_raw else "result"
    for order in reversed(orders):
        reverse = "True" if order.descending else "False"
        if on_raw:
            key = expr_to_python(order.expr)
            body.append(
                f"{target}.sort(key=lambda r: (({key}) is None, {key}), reverse={reverse})"
            )
            body.append(
                f"{target}.sort(key=lambda r: ({key}) is None)"
            )
        else:
            if not isinstance(order.expr, ColumnRef):
                raise CodexDBError(
                    "aggregate ORDER BY must reference an output column"
                )
            column = order.expr.name
            body.append(
                f"_pos = columns.index({column!r})"
            )
            body.append(
                f"{target}.sort(key=lambda t: (t[_pos] is None, t[_pos]), reverse={reverse})"
            )
            body.append(f"{target}.sort(key=lambda t: t[_pos] is None)")
    profiled(name, body)


def _projection_source(item: SelectItem) -> str:
    if isinstance(item.expr, Star):
        raise CodexDBError("'*' projections are not supported by codegen")
    return expr_to_python(item.expr)


def _output_names(items: Sequence[SelectItem]) -> List[str]:
    return [item.output_name(i) for i, item in enumerate(items)]


def _aggregate_item_source(item: SelectItem) -> str:
    expr = item.expr
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return _aggregate_source(expr)
    return expr_to_python(expr)


def _aggregate_source(call: FuncCall) -> str:
    name = call.name.upper()
    if name == "COUNT" and len(call.args) == 1 and isinstance(call.args[0], Star):
        return "len(_grp)"
    if len(call.args) != 1:
        raise CodexDBError(f"{name} takes exactly one argument")
    value = expr_to_python(call.args[0], row_var="g")
    collected = f"[{value} for g in _grp if ({value}) is not None]"
    if call.distinct:
        collected = f"list(dict.fromkeys({collected}))"
    if name == "COUNT":
        return f"len({collected})"
    if name == "SUM":
        return f"(sum({collected}) if {collected} else None)"
    if name == "AVG":
        return f"((lambda _v: sum(_v) / len(_v) if _v else None)({collected}))"
    if name == "MIN":
        return f"(min({collected}) if {collected} else None)"
    if name == "MAX":
        return f"(max({collected}) if {collected} else None)"
    raise CodexDBError(f"unknown aggregate {name}")


def _null_guard(
    left_expr: Expr, left_src: str, right_expr: Expr, right_src: str
) -> str:
    """``is None`` checks for the operands that can actually be NULL.

    Literal operands are skipped (their nullability is known statically),
    which also avoids emitting ``<literal> is None``.
    """
    checks = []
    if not isinstance(left_expr, Literal):
        checks.append(f"({left_src}) is None")
    elif left_expr.value is None:
        checks.append("True")
    if not isinstance(right_expr, Literal):
        checks.append(f"({right_src}) is None")
    elif right_expr.value is None:
        checks.append("True")
    return " or ".join(checks)


def expr_to_python(expr: Expr, row_var: str = "r") -> str:
    """Compile a SQL expression tree to a Python expression string.

    Comparisons guard against NULL (None) operands, mirroring the
    engine's semantics closely enough for the supported workloads.
    """
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, ColumnRef):
        key = f"{expr.table}.{expr.name}" if expr.table else expr.name
        return f"{row_var}[{key!r}]"
    if isinstance(expr, BinaryOp):
        left = expr_to_python(expr.left, row_var)
        right = expr_to_python(expr.right, row_var)
        op = expr.op
        null_guard = _null_guard(expr.left, left, expr.right, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            python_op = {"=": "==", "<>": "!="}.get(op, op)
            comparison = f"({left}) {python_op} ({right})"
            if null_guard:
                return f"(None if {null_guard} else {comparison})"
            return f"({comparison})"
        if op == "AND":
            return f"(False if ({left}) is False or ({right}) is False else (None if ({left}) is None or ({right}) is None else True))"
        if op == "OR":
            return f"(True if ({left}) is True or ({right}) is True else (None if ({left}) is None or ({right}) is None else False))"
        if op == "||":
            return f"(str({left}) + str({right}))"
        if op in ("+", "-", "*"):
            arithmetic = f"({left}) {op} ({right})"
            if null_guard:
                return f"(None if {null_guard} else {arithmetic})"
            return f"({arithmetic})"
        if op == "/":
            division = f"({left}) / ({right})"
            zero_guard = f"({right}) == 0"
            guard = f"{null_guard} or {zero_guard}" if null_guard else zero_guard
            return f"(None if {guard} else {division})"
        raise CodexDBError(f"unsupported operator {op!r} in codegen")
    if isinstance(expr, UnaryOp):
        operand = expr_to_python(expr.operand, row_var)
        if expr.op == "NOT":
            return f"(None if ({operand}) is None else not ({operand}))"
        if expr.op == "-":
            return f"(None if ({operand}) is None else -({operand}))"
        raise CodexDBError(f"unsupported unary {expr.op!r}")
    if isinstance(expr, IsNull):
        operand = expr_to_python(expr.operand, row_var)
        return f"(({operand}) is not None)" if expr.negated else f"(({operand}) is None)"
    if isinstance(expr, InList):
        operand = expr_to_python(expr.operand, row_var)
        values = ", ".join(expr_to_python(i, row_var) for i in expr.items)
        core = f"(({operand}) in ({values},))"
        return f"(not {core})" if expr.negated else core
    if isinstance(expr, Between):
        operand = expr_to_python(expr.operand, row_var)
        low = expr_to_python(expr.low, row_var)
        high = expr_to_python(expr.high, row_var)
        guards = []
        for sub_expr, src in ((expr.operand, operand), (expr.low, low), (expr.high, high)):
            if not isinstance(sub_expr, Literal):
                guards.append(f"({src}) is None")
            elif sub_expr.value is None:
                guards.append("True")
        check = f"({low}) <= ({operand}) <= ({high})"
        core = f"(None if {' or '.join(guards)} else {check})" if guards else f"({check})"
        return f"(None if ({core}) is None else not ({core}))" if expr.negated else core
    raise CodexDBError(f"cannot compile {type(expr).__name__} to Python")
