"""Translate a parsed SELECT query into a linear plan of steps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import render_findings
from repro.analysis.sqlcheck import check_query
from repro.errors import CodexDBError, StaticAnalysisError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    SelectQuery,
    Star,
)
from repro.sql.catalog import Catalog
from repro.sql.parser import parse_sql


@dataclass(frozen=True)
class PlanStep:
    """One step of a synthesized program.

    ``kind`` is one of ``load``, ``join``, ``filter``, ``group``,
    ``project``, ``order``, ``limit``, ``distinct``; ``args`` carries the
    kind-specific payload.
    """

    kind: str
    args: Dict[str, object] = field(default_factory=dict)


def plan_query(sql: str, catalog: Optional[Catalog] = None) -> List[PlanStep]:
    """Parse ``sql`` and lower it into plan steps.

    Supports the engine's SELECT subset restricted to shapes CodexDB's
    code templates cover: one base table, INNER equi-joins, a WHERE
    tree, single-column GROUP BY with aggregates, ORDER BY, LIMIT and
    DISTINCT.

    When a ``catalog`` is given, the query is first semantically vetted
    against it (:func:`repro.analysis.sqlcheck.check_query`); findings
    raise :class:`StaticAnalysisError` so no plan — and hence no
    program — is synthesized from a schema-invalid query.
    """
    query = parse_sql(sql)
    if not isinstance(query, SelectQuery):
        raise CodexDBError("only SELECT statements can be synthesized")
    if catalog is not None:
        findings = check_query(query, catalog)
        if findings:
            raise StaticAnalysisError(
                "query rejected before synthesis:\n" + render_findings(findings),
                findings=findings,
            )

    steps: List[PlanStep] = [
        PlanStep(kind="load", args={"table": query.table.name,
                                    "alias": query.table.effective_name})
    ]
    for join in query.joins:
        if join.kind != "INNER" or join.condition is None:
            raise CodexDBError(f"unsupported join kind {join.kind}")
        left_ref, right_ref = _equi_condition(join.condition)
        steps.append(
            PlanStep(
                kind="join",
                args={
                    "table": join.table.name,
                    "alias": join.table.effective_name,
                    "left_key": f"{left_ref.table}.{left_ref.name}",
                    "right_key": f"{right_ref.table}.{right_ref.name}",
                },
            )
        )
    if query.where is not None:
        steps.append(PlanStep(kind="filter", args={"predicate": query.where}))

    aggregates = [
        item for item in query.items
        if isinstance(item.expr, FuncCall) and item.expr.is_aggregate
    ]
    if query.group_by or aggregates:
        steps.append(
            PlanStep(
                kind="group",
                args={"keys": list(query.group_by), "items": list(query.items)},
            )
        )
        if query.order_by:
            # Aggregate queries order by output columns/aliases.
            steps.append(
                PlanStep(kind="order", args={"orders": list(query.order_by),
                                             "on_raw": False})
            )
    else:
        if query.order_by:
            # Plain queries order raw rows before projection, so sort
            # keys need not appear in the select list (argmax queries).
            steps.append(
                PlanStep(kind="order", args={"orders": list(query.order_by),
                                             "on_raw": True})
            )
        steps.append(PlanStep(kind="project", args={"items": list(query.items)}))

    if query.distinct:
        steps.append(PlanStep(kind="distinct"))
    if query.limit is not None:
        steps.append(PlanStep(kind="limit", args={"count": query.limit}))
    return steps


def _equi_condition(condition: Expr) -> Tuple[ColumnRef, ColumnRef]:
    if (
        isinstance(condition, BinaryOp)
        and condition.op == "="
        and isinstance(condition.left, ColumnRef)
        and isinstance(condition.right, ColumnRef)
        and condition.left.table is not None
        and condition.right.table is not None
    ):
        return condition.left, condition.right
    raise CodexDBError(
        f"join condition must be a qualified equality, got {condition.sql()}"
    )
