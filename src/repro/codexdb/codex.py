"""The simulated Codex model and the CodexDB generate/validate/retry loop.

The real CodexDB samples multiple programs from GPT-3 Codex, executes
each, and keeps the first that runs (validating against reference
results where available). :class:`SimulatedCodex` reproduces exactly that
interface: it synthesizes a program per request, but a seeded error
model corrupts a fraction of candidates (wrong column, dropped filter,
flipped comparison) so the retry loop and the success-at-k metric stay
meaningful.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, render_findings
from repro.analysis.sqlcheck import check_sql
from repro.errors import (
    CodexDBError,
    DeadlineExceededError,
    StaticAnalysisError,
    TransientError,
)
from repro.reliability.retry import Retrier
from repro.serving import complete_many, engine_serving_stats
from repro.sql import Database, Table
from repro.sql.ast import BinaryOp, ColumnRef, Literal, SelectItem
from repro.codexdb.codegen import CodeGenOptions, generate_python
from repro.codexdb.planner import PlanStep, plan_query
from repro.codexdb.sandbox import ExecutionOutcome, run_generated_code
from repro.utils.rng import SeededRNG


@dataclass
class SynthesisResult:
    """Outcome of one CodexDB request.

    ``static_rejections`` and ``runtime_failures`` break down the failed
    attempts: candidates the analyzer refused to execute versus
    candidates that crashed (or misbehaved) while running.
    ``transient_failures`` counts attempts lost to the serving channel
    itself — requests that still failed after the retrier gave up.
    """

    code: str
    outcome: Optional[ExecutionOutcome]
    attempts: int
    succeeded: bool
    static_rejections: int = 0
    runtime_failures: int = 0
    transient_failures: int = 0


class SimulatedCodex:
    """Stands in for the GPT-3 Codex API.

    ``error_rate`` is the probability that a sampled candidate program
    is corrupted. Corruptions are the realistic failure modes of LM code
    generation: referencing the wrong column, dropping a filter, or
    flipping a comparison operator. ``unsafe_rate`` adds a second
    failure mode: the candidate gratuitously imports ``os`` — exactly
    the kind of program static analysis must stop before it runs.

    When the caller passes the previous attempt's analyzer findings as
    ``feedback``, the simulated model "reads the error report" and
    produces a repaired, uncorrupted candidate — mirroring how the real
    CodexDB folds failure messages into the regeneration prompt.
    """

    def __init__(
        self, error_rate: float = 0.3, seed: int = 0, unsafe_rate: float = 0.0
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise CodexDBError("error_rate must be in [0, 1)")
        if not 0.0 <= unsafe_rate < 1.0:
            raise CodexDBError("unsafe_rate must be in [0, 1)")
        self.error_rate = error_rate
        self.unsafe_rate = unsafe_rate
        self._rng = SeededRNG(seed)
        self.samples_served = 0

    def sample_program(
        self,
        sql: str,
        options: CodeGenOptions,
        feedback: Optional[Sequence[Finding]] = None,
    ) -> str:
        """Return one candidate Python program for ``sql``."""
        self.samples_served += 1
        steps = plan_query(sql)
        if feedback:
            # Regeneration with the analyzer's findings in the prompt:
            # the model fixes the reported problem.
            return generate_python(steps, options)
        if self._rng.coin(self.unsafe_rate):
            return "import os\n" + generate_python(steps, options)
        if self._rng.coin(self.error_rate):
            steps = self._corrupt(steps)
        return generate_python(steps, options)

    def sample_programs(
        self,
        sql: str,
        options: CodeGenOptions,
        k: int,
        feedback: Optional[Sequence[Finding]] = None,
    ) -> List[str]:
        """Draw ``k`` candidate programs in one batched request.

        Candidate ``i`` consumes the error-model RNG exactly as the
        ``i``-th :meth:`sample_program` call would, so a batch of ``k``
        is bit-identical to ``k`` sequential draws.
        """
        if k <= 0:
            raise CodexDBError("k must be positive")
        return [self.sample_program(sql, options, feedback=feedback) for _ in range(k)]

    def _corrupt(self, steps: List[PlanStep]) -> List[PlanStep]:
        """Inject one plausible bug into the plan."""
        mode = self._rng.randint(0, 3)
        corrupted = list(steps)
        if mode == 0:
            # Drop the filter (if any): program runs but over-counts.
            corrupted = [s for s in corrupted if s.kind != "filter"]
        elif mode == 1:
            # Reference a bogus column in the projection: crashes.
            for i, step in enumerate(corrupted):
                if step.kind == "project":
                    items = list(step.args["items"])
                    items[0] = SelectItem(expr=ColumnRef(name="nonexistent_col"))
                    corrupted[i] = PlanStep(kind="project", args={"items": items})
                    break
            else:
                corrupted = [s for s in corrupted if s.kind != "filter"]
        else:
            # Flip a comparison in the filter: wrong rows survive.
            for i, step in enumerate(corrupted):
                if step.kind == "filter":
                    predicate = step.args["predicate"]
                    if isinstance(predicate, BinaryOp) and predicate.op in ("<", ">"):
                        flipped = BinaryOp(
                            op=">" if predicate.op == "<" else "<",
                            left=predicate.left,
                            right=predicate.right,
                        )
                        corrupted[i] = PlanStep(
                            kind="filter", args={"predicate": flipped}
                        )
                        break
            else:
                corrupted = corrupted[:-1] if len(corrupted) > 1 else corrupted
        return corrupted


#: instruction header shared by every ClientCodex prompt — the constant
#: prefix is what the serving layer's prefix cache amortizes across a
#: workload of queries.
CODEX_PROMPT_HEADER = (
    "task : translate sql queries into python programs over in-memory "
    "tables ; emit only code ;"
)


class ClientCodex:
    """Codex served over the completion-API channel.

    Drop-in for :class:`SimulatedCodex` in the :class:`CodexDB` loop,
    but the candidate programs come from a hub-registered LM through a
    :class:`~repro.api.CompletionClient`-shaped object. Every prompt is
    the fixed :data:`CODEX_PROMPT_HEADER` plus the query (and any
    analyzer feedback as comment lines), so across a workload the
    engine's prefix cache absorbs the header's prefill and a ``k``-wide
    speculative wave shares one prompt prefill (``n=k``).

    The tiny models in this repo do not actually emit runnable Python —
    candidates flow into the sandbox and are rejected statically, which
    exercises exactly the CodexDB failure path the paper describes for
    unvetted model output.
    """

    def __init__(self, client, engine: str, max_tokens: int = 48) -> None:
        self.client = client
        self.engine = engine
        self.max_tokens = max_tokens
        self.samples_served = 0

    def build_prompt(
        self, sql: str, feedback: Optional[Sequence[Finding]] = None
    ) -> str:
        """Header + query (+ feedback comments) — header first, so every
        prompt for the same engine shares the cacheable prefix."""
        parts = [CODEX_PROMPT_HEADER]
        if feedback:
            parts.extend(f"# fix : {f.message}" for f in feedback)
        parts.append(f"# sql : {sql}")
        return " ".join(parts)

    def sample_program(
        self,
        sql: str,
        options: CodeGenOptions,
        feedback: Optional[Sequence[Finding]] = None,
    ) -> str:
        """Return one candidate program from the serving channel."""
        return self.sample_programs(sql, options, 1, feedback=feedback)[0]

    def sample_programs(
        self,
        sql: str,
        options: CodeGenOptions,
        k: int,
        feedback: Optional[Sequence[Finding]] = None,
    ) -> List[str]:
        """Draw ``k`` candidates as one ``n=k`` batched request."""
        if k <= 0:
            raise CodexDBError("k must be positive")
        response = complete_many(
            self.client,
            self.engine,
            [self.build_prompt(sql, feedback)],
            max_tokens=self.max_tokens,
            n=k,
        )[0]
        self.samples_served += k
        return [choice.text for choice in response.choices]

    def serving_stats(self) -> dict:
        """Prefix-cache / batching counters for this Codex's engine."""
        return engine_serving_stats(self.client, self.engine)


class CodexDB:
    """Synthesize, validate, and retry — CodexDB's outer loop.

    Validation compares candidate output against the native engine's
    result for the same query (CodexDB validates on examples with known
    results; our engine plays that role).
    """

    def __init__(
        self,
        db: Database,
        codex: SimulatedCodex,
        options: CodeGenOptions = CodeGenOptions(),
        retrier: Optional[Retrier] = None,
        speculative: int = 1,
    ) -> None:
        if speculative <= 0:
            raise CodexDBError("speculative must be positive")
        self.db = db
        self.codex = codex
        self.options = options
        #: when set, every sample_program call runs under retry/backoff
        #: (the resilient path for a fault-injected Codex channel)
        self.retrier = retrier
        #: candidates drawn per Codex request: > 1 samples a speculative
        #: wave up-front (one batched request covers several attempts)
        self.speculative = speculative

    def run(self, sql: str, max_attempts: int = 4) -> SynthesisResult:
        """Request programs until one validates (or attempts run out).

        Candidates that static analysis rejects never execute; their
        findings are fed back into the next :meth:`sample_program` call
        so the simulated model can regenerate a repaired candidate.
        With a retrier configured, transient serving failures (rate
        limits, server errors, timeouts) are retried with backoff; an
        attempt whose retries run out is recorded as a transient
        failure, not an unhandled exception.
        """
        query_findings = check_sql(sql, self.db.catalog)
        if query_findings:
            raise StaticAnalysisError(
                "input query rejected before synthesis:\n"
                + render_findings(query_findings),
                findings=query_findings,
            )
        reference = self._reference_rows(sql)
        tables = {name: self.db.table(name) for name in self.db.table_names()}
        last_code = ""
        static_rejections = 0
        runtime_failures = 0
        transient_failures = 0
        feedback: Optional[Sequence[Finding]] = None
        queue: List[str] = []
        for attempt in range(1, max_attempts + 1):
            try:
                code = self._next_candidate(
                    sql, feedback, queue, max_attempts - attempt + 1
                )
            except (TransientError, DeadlineExceededError):
                transient_failures += 1
                feedback = None
                continue
            last_code = code
            feedback = None
            try:
                outcome = run_generated_code(code, tables)
            except StaticAnalysisError as exc:
                static_rejections += 1
                feedback = exc.findings
                continue
            except CodexDBError as exc:
                if isinstance(exc.__cause__, StaticAnalysisError):
                    static_rejections += 1
                    feedback = exc.__cause__.findings
                else:
                    runtime_failures += 1
                continue
            if sorted(map(repr, outcome.rows)) == sorted(map(repr, reference)):
                return SynthesisResult(
                    code=code,
                    outcome=outcome,
                    attempts=attempt,
                    succeeded=True,
                    static_rejections=static_rejections,
                    runtime_failures=runtime_failures,
                    transient_failures=transient_failures,
                )
            runtime_failures += 1
        return SynthesisResult(
            code=last_code,
            outcome=None,
            attempts=max_attempts,
            succeeded=False,
            static_rejections=static_rejections,
            runtime_failures=runtime_failures,
            transient_failures=transient_failures,
        )

    def _next_candidate(
        self,
        sql: str,
        feedback: Optional[Sequence[Finding]],
        queue: List[str],
        remaining: int,
    ) -> str:
        """The next candidate to execute, refilling the speculative queue.

        Analyzer feedback invalidates any queued candidates — they were
        drawn without the error report in the prompt — so the repair
        path always regenerates sequentially.
        """
        if feedback is not None:
            queue.clear()
            return self._sample(sql, feedback)
        if not queue:
            wave = min(self.speculative, remaining)
            if wave <= 1:
                return self._sample(sql, None)
            queue.extend(self._sample_wave(sql, wave))
        return queue.pop(0)

    def _sample(self, sql: str, feedback: Optional[Sequence[Finding]]) -> str:
        """One Codex request, retried with backoff when configured."""
        def request() -> str:
            return self.codex.sample_program(sql, self.options, feedback=feedback)

        if self.retrier is None:
            return request()
        return self.retrier.call(request)

    def _sample_wave(self, sql: str, k: int) -> List[str]:
        """One batched Codex request for ``k`` speculative candidates."""
        def request() -> List[str]:
            return list(self.codex.sample_programs(sql, self.options, k))

        if self.retrier is None:
            return request()
        return self.retrier.call(request)

    def _reference_rows(self, sql: str) -> List[Tuple]:
        return self.db.execute(sql).rows
