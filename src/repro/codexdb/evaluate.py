"""CodexDB evaluation: success-at-k against the native engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import StaticAnalysisError
from repro.sql import Database
from repro.codexdb.codegen import CodeGenOptions
from repro.codexdb.codex import CodexDB, SimulatedCodex


@dataclass
class CodexDBReport:
    """Aggregate metrics of a CodexDB evaluation run.

    Failed candidate attempts are broken down into programs the static
    analyzer rejected before execution (``rejected_static``) and
    programs that executed but crashed or returned wrong rows
    (``failed_runtime``) — the two call for different fixes: tighter
    generation versus better validation.
    """

    total: int = 0
    succeeded: int = 0
    attempts_used: List[int] = field(default_factory=list)
    rejected_static: int = 0
    failed_runtime: int = 0
    rejected_queries: int = 0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.total if self.total else 0.0

    @property
    def mean_attempts(self) -> float:
        return (
            sum(self.attempts_used) / len(self.attempts_used)
            if self.attempts_used
            else 0.0
        )


def evaluate_codexdb(
    db: Database,
    queries: Sequence[str],
    max_attempts: int = 4,
    error_rate: float = 0.3,
    options: CodeGenOptions = CodeGenOptions(),
    seed: int = 0,
    unsafe_rate: float = 0.0,
) -> CodexDBReport:
    """Run CodexDB over ``queries``; report success rate and retries.

    Queries that the SQL vetting pass rejects outright (unknown table or
    column, type mismatch) are counted in ``rejected_queries`` and never
    reach synthesis.
    """
    codex = SimulatedCodex(error_rate=error_rate, seed=seed, unsafe_rate=unsafe_rate)
    system = CodexDB(db, codex, options)
    report = CodexDBReport()
    for sql in queries:
        report.total += 1
        try:
            result = system.run(sql, max_attempts=max_attempts)
        except StaticAnalysisError:
            report.rejected_queries += 1
            continue
        report.succeeded += int(result.succeeded)
        report.attempts_used.append(result.attempts)
        report.rejected_static += result.static_rejections
        report.failed_runtime += result.runtime_failures
    return report
