"""CodexDB evaluation: success-at-k against the native engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.sql import Database
from repro.codexdb.codegen import CodeGenOptions
from repro.codexdb.codex import CodexDB, SimulatedCodex


@dataclass
class CodexDBReport:
    """Aggregate metrics of a CodexDB evaluation run."""

    total: int = 0
    succeeded: int = 0
    attempts_used: List[int] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.total if self.total else 0.0

    @property
    def mean_attempts(self) -> float:
        return (
            sum(self.attempts_used) / len(self.attempts_used)
            if self.attempts_used
            else 0.0
        )


def evaluate_codexdb(
    db: Database,
    queries: Sequence[str],
    max_attempts: int = 4,
    error_rate: float = 0.3,
    options: CodeGenOptions = CodeGenOptions(),
    seed: int = 0,
) -> CodexDBReport:
    """Run CodexDB over ``queries``; report success rate and retries."""
    codex = SimulatedCodex(error_rate=error_rate, seed=seed)
    system = CodexDB(db, codex, options)
    report = CodexDBReport()
    for sql in queries:
        result = system.run(sql, max_attempts=max_attempts)
        report.total += 1
        report.succeeded += int(result.succeeded)
        report.attempts_used.append(result.attempts)
    return report
