"""CodexDB evaluation: success-at-k against the native engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import StaticAnalysisError
from repro.reliability.clock import Clock, VirtualClock
from repro.reliability.faults import FaultInjector, FaultProfile, FaultyCodex
from repro.reliability.retry import Retrier, RetryPolicy
from repro.sql import Database
from repro.codexdb.codegen import CodeGenOptions
from repro.codexdb.codex import CodexDB, SimulatedCodex


@dataclass
class CodexDBReport:
    """Aggregate metrics of a CodexDB evaluation run.

    Failed candidate attempts are broken down into programs the static
    analyzer rejected before execution (``rejected_static``) and
    programs that executed but crashed or returned wrong rows
    (``failed_runtime``) — the two call for different fixes: tighter
    generation versus better validation. Under fault injection,
    ``reliability`` carries what the serving channel did to us and what
    the retry layer did about it (injected fault counts, retries,
    backoff time, attempts lost after retries ran out).
    """

    total: int = 0
    succeeded: int = 0
    attempts_used: List[int] = field(default_factory=list)
    rejected_static: int = 0
    failed_runtime: int = 0
    rejected_queries: int = 0
    failed_transient: int = 0
    reliability: Optional[Dict[str, float]] = None
    serving: Optional[Dict[str, float]] = None

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.total if self.total else 0.0

    @property
    def mean_attempts(self) -> float:
        return (
            sum(self.attempts_used) / len(self.attempts_used)
            if self.attempts_used
            else 0.0
        )


def evaluate_codexdb(
    db: Database,
    queries: Sequence[str],
    max_attempts: int = 4,
    error_rate: float = 0.3,
    options: CodeGenOptions = CodeGenOptions(),
    seed: int = 0,
    unsafe_rate: float = 0.0,
    fault_profile: Optional[FaultProfile] = None,
    retry_policy: Optional[RetryPolicy] = None,
    clock: Optional[Clock] = None,
    speculative: int = 1,
    codex: Optional[object] = None,
) -> CodexDBReport:
    """Run CodexDB over ``queries``; report success rate and retries.

    Queries that the SQL vetting pass rejects outright (unknown table or
    column, type mismatch) are counted in ``rejected_queries`` and never
    reach synthesis. With a ``fault_profile``, the Codex channel is
    wrapped in a seeded :class:`FaultInjector` and every request runs
    under retry/backoff on a deterministic virtual clock (pass ``clock``
    to override); the report then carries a ``reliability`` section.
    ``speculative > 1`` draws that many candidates per Codex request (a
    batched wave covering several attempts) instead of one at a time.
    ``codex`` overrides the model channel entirely (e.g. a
    :class:`~repro.codexdb.codex.ClientCodex` over a hub engine); when
    it exposes ``serving_stats`` the report carries a ``serving``
    section with the engine's prefix-cache and batching counters.
    """
    if codex is None:
        codex = SimulatedCodex(
            error_rate=error_rate, seed=seed, unsafe_rate=unsafe_rate
        )
    retrier = None
    injector = None
    if fault_profile is not None:
        clock = clock if clock is not None else VirtualClock()
        injector = FaultInjector(fault_profile, seed=seed, clock=clock)
        codex = FaultyCodex(codex, injector)
        retrier = Retrier(
            retry_policy if retry_policy is not None else RetryPolicy(),
            clock=clock,
            seed=seed,
        )
    system = CodexDB(db, codex, options, retrier=retrier, speculative=speculative)
    report = CodexDBReport()
    for sql in queries:
        report.total += 1
        try:
            result = system.run(sql, max_attempts=max_attempts)
        except StaticAnalysisError:
            report.rejected_queries += 1
            continue
        report.succeeded += int(result.succeeded)
        report.attempts_used.append(result.attempts)
        report.rejected_static += result.static_rejections
        report.failed_runtime += result.runtime_failures
        report.failed_transient += result.transient_failures
    serving_stats = getattr(codex, "serving_stats", None)
    if serving_stats is not None:
        report.serving = dict(serving_stats())
    if retrier is not None and injector is not None:
        report.reliability = {
            "retries": retrier.retries,
            "rate_limited": retrier.rate_limited,
            "backoff_seconds": retrier.backoff_seconds,
            "failed_transient": report.failed_transient,
            **{f"injected_{kind}": n for kind, n in injector.counts.items()},
        }
    return report
