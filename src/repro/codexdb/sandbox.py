"""Execute synthesized programs in a restricted, statically vetted namespace.

No generated program runs unvetted: :func:`run_generated_code` first
passes the source through :func:`repro.analysis.pycheck.check_python`
and raises :class:`~repro.errors.StaticAnalysisError` (listing every
error finding with its line number) *before* any byte of it executes.
The namespace itself no longer exposes raw ``__import__``; a guarded
importer consults the same allowlist the analyzer enforces, as defense
in depth.

Warning-severity findings do not block. In particular, when the
flow-sensitive analyzer marks a loop ``unbounded-work`` (it might
terminate, but the trip count is not statically bounded), the sandbox
runs the program anyway — under a line-event fuel budget enforced with
``sys.settrace``. A program that spends its fuel raises
:class:`~repro.errors.FuelExhaustedError` instead of hanging the
caller; statically *provable* infinite loops are ``unbounded-loop``
errors and never execute at all. Programs the analyzer fully bounds
run untraced, so the common path pays nothing.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding, error_findings, render_findings
from repro.analysis.pycheck import IMPORT_ALLOWLIST, check_python
from repro.errors import CodexDBError, FuelExhaustedError, StaticAnalysisError
from repro.sql import Table

#: line events a fuel-limited program may execute before it is killed;
#: generous enough for any sane per-query program over small tables,
#: small enough to bound a runaway loop to well under a second
DEFAULT_FUEL = 200_000


def _guarded_import(name, globals=None, locals=None, fromlist=(), level=0):
    """Import restricted to the pycheck allowlist (runtime backstop)."""
    root = name.split(".")[0]
    if level or root not in IMPORT_ALLOWLIST:
        raise ImportError(
            f"import of {name!r} is not allowed in the sandbox "
            f"(allowlist: {sorted(IMPORT_ALLOWLIST)})"
        )
    return __import__(name, globals, locals, fromlist, level)


_SAFE_BUILTINS = {
    "len": len, "sum": sum, "min": min, "max": max, "sorted": sorted,
    "list": list, "dict": dict, "set": set, "tuple": tuple, "str": str,
    "int": int, "float": float, "bool": bool, "range": range,
    "enumerate": enumerate, "zip": zip, "abs": abs, "round": round,
    "__import__": _guarded_import,  # allowlisted modules only
}

#: names generated programs may reference without binding them first
SANDBOX_KNOWN_NAMES = frozenset(_SAFE_BUILTINS) | {
    "True", "False", "None", "tables",
}

#: backwards-compatible alias (pre-dates the public name)
_SANDBOX_NAMES = SANDBOX_KNOWN_NAMES


@dataclass
class ExecutionOutcome:
    """What a synthesized program produced."""

    columns: List[str]
    rows: List[Tuple]
    logs: List[str] = field(default_factory=list)
    profile: Dict[str, float] = field(default_factory=dict)


def vet_generated_code(code: str) -> List[Finding]:
    """Statically analyze ``code``; raise on any *error* finding.

    Raises :class:`StaticAnalysisError` carrying the individual
    findings (rule, message, line) when the program imports outside the
    allowlist in reachable code, touches escape attributes, calls (or
    aliases) banned builtins, leaks untrusted data into dangerous
    sinks, loops provably forever, reads names before assignment, or
    fails to assign the ``result``/``columns`` output contract on every
    normally-completing path.

    Returns the full finding list — including warnings such as
    ``unbounded-work`` and ``unreachable-code`` — so callers can apply
    policy (the runner converts ``unbounded-work`` into a fuel limit).
    """
    findings = check_python(code, known_names=SANDBOX_KNOWN_NAMES)
    errors = error_findings(findings)
    if errors:
        raise StaticAnalysisError(
            "generated program rejected by static analysis:\n"
            + render_findings(errors),
            findings=findings,
        )
    return findings


def run_generated_code(
    code: str, tables: Dict[str, Table], fuel: Optional[int] = None
) -> ExecutionOutcome:
    """Vet and run a generated program against tables; wrap all failures.

    Raises :class:`StaticAnalysisError` (a :class:`CodexDBError`
    subclass) if static analysis rejects the program — nothing executes
    in that case — and :class:`CodexDBError` if it crashes at runtime or
    does not produce the ``result``/``columns`` contract. Runtime
    crashes carry the original exception in ``__cause__``; static
    rejections carry their findings on the error itself.

    ``fuel`` bounds execution to that many traced line events and
    raises :class:`FuelExhaustedError` when spent. When ``fuel`` is
    ``None`` (the default), a budget of :data:`DEFAULT_FUEL` is applied
    automatically iff the analyzer reported an ``unbounded-work``
    warning; statically bounded programs run untraced.
    """
    findings = vet_generated_code(code)
    if fuel is None and any(f.rule == "unbounded-work" for f in findings):
        fuel = DEFAULT_FUEL
    table_dicts = {name: table.to_dicts() for name, table in tables.items()}
    namespace: Dict[str, object] = {
        "tables": table_dicts,
        "__builtins__": _SAFE_BUILTINS,
    }
    code_obj = compile(code, "<codexdb>", "exec")
    try:
        if fuel is None:
            exec(code_obj, namespace)  # noqa: S102
        else:
            _exec_with_fuel(code_obj, namespace, fuel)
    except FuelExhaustedError:
        raise
    except Exception as exc:
        raise CodexDBError(f"generated program crashed: {exc}") from exc
    if "result" not in namespace or "columns" not in namespace:
        raise CodexDBError("generated program did not set result/columns")
    rows = namespace["result"]
    columns = namespace["columns"]
    if not isinstance(rows, list) or not isinstance(columns, list):
        raise CodexDBError("generated program produced malformed output")
    return ExecutionOutcome(
        columns=list(columns),
        rows=[tuple(row) for row in rows],
        logs=list(namespace.get("logs", [])),
        profile=dict(namespace.get("profile", {})),
    )


def _exec_with_fuel(code_obj, namespace: Dict[str, object], fuel: int) -> None:
    """Run ``code_obj`` under a line-event budget enforced by settrace."""
    budget = int(fuel)

    def tracer(frame, event, arg):
        nonlocal budget
        if event == "line":
            budget -= 1
            if budget < 0:
                raise FuelExhaustedError(
                    f"generated program exceeded its fuel budget of {fuel} "
                    "line events (statically unbounded loop did not "
                    "terminate in time)",
                    fuel=fuel,
                )
        return tracer

    previous = sys.gettrace()
    sys.settrace(tracer)
    try:
        exec(code_obj, namespace)  # noqa: S102
    finally:
        sys.settrace(previous)
