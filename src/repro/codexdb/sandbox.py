"""Execute synthesized programs in a restricted, statically vetted namespace.

No generated program runs unvetted: :func:`run_generated_code` first
passes the source through :func:`repro.analysis.pycheck.check_python`
and raises :class:`~repro.errors.StaticAnalysisError` (listing every
finding with its line number) *before* any byte of it executes. The
namespace itself no longer exposes raw ``__import__``; a guarded
importer consults the same allowlist the analyzer enforces, as
defense in depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import render_findings
from repro.analysis.pycheck import IMPORT_ALLOWLIST, check_python
from repro.errors import CodexDBError, StaticAnalysisError
from repro.sql import Table


def _guarded_import(name, globals=None, locals=None, fromlist=(), level=0):
    """Import restricted to the pycheck allowlist (runtime backstop)."""
    root = name.split(".")[0]
    if level or root not in IMPORT_ALLOWLIST:
        raise ImportError(
            f"import of {name!r} is not allowed in the sandbox "
            f"(allowlist: {sorted(IMPORT_ALLOWLIST)})"
        )
    return __import__(name, globals, locals, fromlist, level)


_SAFE_BUILTINS = {
    "len": len, "sum": sum, "min": min, "max": max, "sorted": sorted,
    "list": list, "dict": dict, "set": set, "tuple": tuple, "str": str,
    "int": int, "float": float, "bool": bool, "range": range,
    "enumerate": enumerate, "zip": zip, "abs": abs, "round": round,
    "__import__": _guarded_import,  # allowlisted modules only
}

#: names generated programs may reference without binding them first
_SANDBOX_NAMES = frozenset(_SAFE_BUILTINS) | {"True", "False", "None", "tables"}


@dataclass
class ExecutionOutcome:
    """What a synthesized program produced."""

    columns: List[str]
    rows: List[Tuple]
    logs: List[str] = field(default_factory=list)
    profile: Dict[str, float] = field(default_factory=dict)


def vet_generated_code(code: str) -> None:
    """Statically analyze ``code``; raise on any finding.

    Raises :class:`StaticAnalysisError` carrying the individual
    findings (rule, message, line) when the program imports outside the
    allowlist, touches escape attributes, calls banned builtins, loops
    unboundedly, references unknown names, or fails to assign the
    ``result``/``columns`` output contract on every path.
    """
    findings = check_python(code, known_names=_SANDBOX_NAMES)
    if findings:
        raise StaticAnalysisError(
            "generated program rejected by static analysis:\n"
            + render_findings(findings),
            findings=findings,
        )


def run_generated_code(
    code: str, tables: Dict[str, Table]
) -> ExecutionOutcome:
    """Vet and run a generated program against tables; wrap all failures.

    Raises :class:`StaticAnalysisError` (a :class:`CodexDBError`
    subclass) if static analysis rejects the program — nothing executes
    in that case — and :class:`CodexDBError` if it crashes at runtime or
    does not produce the ``result``/``columns`` contract. Runtime
    crashes carry the original exception in ``__cause__``; static
    rejections carry their findings on the error itself.
    """
    vet_generated_code(code)
    table_dicts = {name: table.to_dicts() for name, table in tables.items()}
    namespace: Dict[str, object] = {
        "tables": table_dicts,
        "__builtins__": _SAFE_BUILTINS,
    }
    try:
        exec(compile(code, "<codexdb>", "exec"), namespace)  # noqa: S102
    except Exception as exc:
        raise CodexDBError(f"generated program crashed: {exc}") from exc
    if "result" not in namespace or "columns" not in namespace:
        raise CodexDBError("generated program did not set result/columns")
    rows = namespace["result"]
    columns = namespace["columns"]
    if not isinstance(rows, list) or not isinstance(columns, list):
        raise CodexDBError("generated program produced malformed output")
    return ExecutionOutcome(
        columns=list(columns),
        rows=[tuple(row) for row in rows],
        logs=list(namespace.get("logs", [])),
        profile=dict(namespace.get("profile", {})),
    )
