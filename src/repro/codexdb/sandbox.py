"""Execute synthesized programs in a restricted namespace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CodexDBError
from repro.sql import Table

_SAFE_BUILTINS = {
    "len": len, "sum": sum, "min": min, "max": max, "sorted": sorted,
    "list": list, "dict": dict, "set": set, "tuple": tuple, "str": str,
    "int": int, "float": float, "bool": bool, "range": range,
    "enumerate": enumerate, "zip": zip, "abs": abs, "round": round,
    "__import__": __import__,  # the generated code imports only `time`
}


@dataclass
class ExecutionOutcome:
    """What a synthesized program produced."""

    columns: List[str]
    rows: List[Tuple]
    logs: List[str] = field(default_factory=list)
    profile: Dict[str, float] = field(default_factory=dict)


def run_generated_code(
    code: str, tables: Dict[str, Table]
) -> ExecutionOutcome:
    """Run a generated program against tables; wrap all failures.

    Raises :class:`CodexDBError` if the program crashes or does not
    produce the ``result``/``columns`` contract.
    """
    table_dicts = {name: table.to_dicts() for name, table in tables.items()}
    namespace: Dict[str, object] = {
        "tables": table_dicts,
        "__builtins__": _SAFE_BUILTINS,
    }
    try:
        exec(compile(code, "<codexdb>", "exec"), namespace)  # noqa: S102
    except Exception as exc:
        raise CodexDBError(f"generated program crashed: {exc}") from exc
    if "result" not in namespace or "columns" not in namespace:
        raise CodexDBError("generated program did not set result/columns")
    rows = namespace["result"]
    columns = namespace["columns"]
    if not isinstance(rows, list) or not isinstance(columns, list):
        raise CodexDBError("generated program produced malformed output")
    return ExecutionOutcome(
        columns=list(columns),
        rows=[tuple(row) for row in rows],
        logs=list(namespace.get("logs", [])),
        profile=dict(namespace.get("profile", {})),
    )
