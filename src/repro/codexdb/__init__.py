"""CodexDB-style code synthesis for query processing (§2.5, [84]).

CodexDB sends a SQL query plus natural-language instructions to GPT-3
Codex and executes the Python program that comes back, validating
candidates and retrying on failure. Here the remote Codex model is
substituted by :class:`SimulatedCodex`: a deterministic SQL-to-Python
synthesizer wrapped in a seeded *error model* that corrupts a fraction
of candidates — exercising the same generate / validate / retry loop and
the same success-at-k metric, with the same customization hooks
(logging, comments, per-step profiling) that motivate synthesizing code
instead of running a fixed engine.
"""

from repro.codexdb.planner import PlanStep, plan_query
from repro.codexdb.codegen import CodeGenOptions, generate_python
from repro.codexdb.sandbox import run_generated_code, vet_generated_code
from repro.codexdb.codex import (
    ClientCodex,
    CodexDB,
    SimulatedCodex,
    SynthesisResult,
)
from repro.codexdb.evaluate import CodexDBReport, evaluate_codexdb

__all__ = [
    "PlanStep",
    "plan_query",
    "CodeGenOptions",
    "generate_python",
    "run_generated_code",
    "vet_generated_code",
    "SimulatedCodex",
    "ClientCodex",
    "CodexDB",
    "SynthesisResult",
    "CodexDBReport",
    "evaluate_codexdb",
]
