"""LM4DB — language models for data management, from scratch.

A reproduction of the system landscape of *"From BERT to GPT-3 Codex:
Harnessing the Potential of Very Large Language Models for Data
Management"* (Trummer, VLDB 2022): a complete numpy-only language-model
stack (tokenizers, autograd, Transformers, pre-training, fine-tuning,
prompting, generation, HF-style pipelines, OpenAI-style completion
client) and every data-management application the tutorial surveys
(text-to-SQL with PICARD-style constrained decoding, data wrangling,
fact checking, database tuning, CodexDB-style code synthesis, NeuralDB)
over a from-scratch in-memory SQL engine.

Quick start::

    from repro.api import bootstrap_hub, CompletionClient

    hub = bootstrap_hub()
    client = CompletionClient(hub)
    print(client.complete("tiny-gpt", "the database", max_tokens=8).text)
"""

from repro.errors import ReproError
from repro.models import BERTModel, GPTModel, ModelConfig
from repro.sql import Database
from repro.tokenizers import BPETokenizer, WhitespaceTokenizer, WordPieceTokenizer

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ModelConfig",
    "GPTModel",
    "BERTModel",
    "Database",
    "BPETokenizer",
    "WordPieceTokenizer",
    "WhitespaceTokenizer",
    "__version__",
]
