"""Parsers that read structured answers out of free-form completions."""

from __future__ import annotations

import re
from typing import Dict, Optional, Sequence

from repro.errors import PromptError


def parse_label(
    completion: str, labels: Sequence[str], default: Optional[str] = None
) -> str:
    """Find the first known label word in a completion (case-insensitive).

    Raises :class:`PromptError` if no label is present and no default
    was provided.
    """
    lowered = completion.lower()
    best: Optional[tuple[int, str]] = None
    for label in labels:
        # Whole-word match so "no" does not fire inside "nothing".
        match = re.search(rf"\b{re.escape(label.lower())}\b", lowered)
        if match and (best is None or match.start() < best[0]):
            best = (match.start(), label)
    if best is not None:
        return best[1]
    if default is not None:
        return default
    raise PromptError(
        f"no label from {list(labels)} found in completion {completion!r}"
    )


def parse_final_line(completion: str) -> str:
    """Return the last non-empty line of a completion, stripped."""
    lines = [line.strip() for line in completion.splitlines() if line.strip()]
    if not lines:
        raise PromptError("completion is empty")
    return lines[-1]


_KV_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_ ]*?)\s*[:=]\s*(.+?)\s*$")


def parse_key_value(completion: str) -> Dict[str, str]:
    """Parse ``key: value`` / ``key = value`` lines into a dict."""
    out: Dict[str, str] = {}
    for line in completion.splitlines():
        match = _KV_RE.match(line)
        if match:
            out[match.group(1).strip().lower()] = match.group(2).strip()
    return out
