"""Classification by label-likelihood scoring (zero/few-shot prompting).

Rather than parsing free-form completions, the classifier computes the
model's log-probability of each label verbalization continuing the
prompt and predicts the argmax — the robust reading of "prompting for
classification" that works for any model size.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.autograd import no_grad
from repro.errors import PromptError
from repro.models.gpt import GPTModel
from repro.prompting.fewshot import FewShotPrompt
from repro.tokenizers import Tokenizer


def score_continuation(
    model: GPTModel, tokenizer: Tokenizer, prompt: str, continuation: str
) -> float:
    """Total log-probability of ``continuation`` following ``prompt``."""
    prompt_ids = tokenizer.encode(prompt, add_bos=True).ids
    continuation_ids = tokenizer.encode(" " + continuation).ids
    if not continuation_ids:
        raise PromptError(f"continuation {continuation!r} tokenized to nothing")
    full = (prompt_ids + continuation_ids)[-model.config.max_seq_len:]
    boundary = len(full) - len(continuation_ids)
    with no_grad():
        logits = model(np.array([full], dtype=np.int64))
    log_probs = _log_softmax_rows(logits.data[0])
    total = 0.0
    for position in range(boundary, len(full)):
        token = full[position]
        total += float(log_probs[position - 1, token])
    return total


def _log_softmax_rows(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class PromptClassifier:
    """Few-shot text classifier driven by a causal LM.

    Args:
        model: a (pre-trained) GPT-style model.
        tokenizer: the tokenizer the model was trained with.
        prompt: a :class:`FewShotPrompt` describing the task.
        verbalizers: mapping from class index to the label word the
            model should find likely (e.g. ``{0: "no", 1: "yes"}``).
    """

    CONTENT_FREE_INPUT = "n/a"

    def __init__(
        self,
        model: GPTModel,
        tokenizer: Tokenizer,
        prompt: FewShotPrompt,
        verbalizers: Dict[int, str],
    ) -> None:
        if len(verbalizers) < 2:
            raise PromptError("need at least two classes to classify")
        self.model = model
        self.tokenizer = tokenizer
        self.prompt = prompt
        self.verbalizers = dict(verbalizers)
        self._bias: Dict[int, float] = {}

    def scores(self, max_shots: Optional[int] = None, **query_inputs: str) -> Dict[int, float]:
        """Return per-class log-probability scores for one input.

        If :meth:`calibrate` has run, the content-free bias is
        subtracted from each class score.
        """
        rendered = self.prompt.build(max_shots=max_shots, **query_inputs)
        return {
            label: score_continuation(self.model, self.tokenizer, rendered, word)
            - self._bias.get(label, 0.0)
            for label, word in self.verbalizers.items()
        }

    def predict(self, max_shots: Optional[int] = None, **query_inputs: str) -> int:
        """Return the most likely class index for one input."""
        scores = self.scores(max_shots=max_shots, **query_inputs)
        return max(scores, key=lambda k: scores[k])

    def calibrate(self, max_shots: Optional[int] = None) -> Dict[int, float]:
        """Contextual calibration (Zhao et al., 2021).

        Few-shot classifiers inherit a label bias from the prompt (word
        frequency, example order). Scoring a *content-free* input
        estimates that bias per class; subtracting it re-centers the
        decision. Returns the estimated bias and enables it for all
        subsequent :meth:`scores`/:meth:`predict` calls.
        """
        self._bias = {}
        fields = self.prompt.template.fields
        neutral = {field: self.CONTENT_FREE_INPUT for field in fields}
        rendered = self.prompt.build(max_shots=max_shots, **neutral)
        self._bias = {
            label: score_continuation(self.model, self.tokenizer, rendered, word)
            for label, word in self.verbalizers.items()
        }
        # Center the bias so calibration never changes score magnitudes
        # wholesale, only their balance.
        mean_bias = sum(self._bias.values()) / len(self._bias)
        self._bias = {k: v - mean_bias for k, v in self._bias.items()}
        return dict(self._bias)

    @property
    def is_calibrated(self) -> bool:
        return bool(self._bias)
