"""Prompting: templates, few-shot prompts, LM-scored classification.

Implements the tutorial's Section 2.3 story: instead of updating weights
(fine-tuning), describe the task in the model's input — instructions plus
zero or more worked examples — and read the answer out of the completion.
"""

from repro.prompting.template import PromptTemplate
from repro.prompting.fewshot import FewShotPrompt
from repro.prompting.classify import PromptClassifier, score_continuation
from repro.prompting.parsers import (
    parse_final_line,
    parse_key_value,
    parse_label,
)

__all__ = [
    "PromptTemplate",
    "FewShotPrompt",
    "PromptClassifier",
    "score_continuation",
    "parse_label",
    "parse_key_value",
    "parse_final_line",
]
