"""Prompt templates with named placeholders and validation."""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import PromptError

_FIELD_RE = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")


class PromptTemplate:
    """A text template with ``{field}`` placeholders.

    Rendering validates that exactly the declared fields are supplied,
    catching prompt-construction bugs early instead of silently emitting
    prompts with literal ``{question}`` holes.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.fields: List[str] = list(dict.fromkeys(_FIELD_RE.findall(text)))

    def render(self, **values: str) -> str:
        """Substitute placeholder values; raise on missing/extra fields."""
        missing = [f for f in self.fields if f not in values]
        extra = [k for k in values if k not in self.fields]
        if missing:
            raise PromptError(f"missing template fields: {missing}")
        if extra:
            raise PromptError(f"unknown template fields: {extra}")
        out = self.text
        for name, value in values.items():
            out = out.replace("{" + name + "}", str(value))
        return out

    def partial(self, **values: str) -> "PromptTemplate":
        """Pre-fill a subset of fields, returning a new template."""
        unknown = [k for k in values if k not in self.fields]
        if unknown:
            raise PromptError(f"unknown template fields: {unknown}")
        out = self.text
        for name, value in values.items():
            out = out.replace("{" + name + "}", str(value))
        return PromptTemplate(out)

    def __repr__(self) -> str:
        return f"PromptTemplate(fields={self.fields})"
