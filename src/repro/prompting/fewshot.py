"""Few-shot prompt construction: instructions + worked examples + query."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import PromptError
from repro.prompting.template import PromptTemplate


@dataclass(frozen=True)
class _Shot:
    """One worked example: the filled input plus its expected output."""

    inputs: Dict[str, str]
    output: str


class FewShotPrompt:
    """Builds k-shot prompts in the standard in-context-learning layout::

        <instructions>

        <example input rendered from template> <answer_prefix> <output>
        ...k times...

        <query input rendered from template> <answer_prefix>

    With zero shots this degrades gracefully to instruction-only
    (zero-shot) prompting.
    """

    def __init__(
        self,
        template: PromptTemplate,
        instructions: str = "",
        answer_prefix: str = "Answer:",
        separator: str = "\n\n",
    ) -> None:
        self.template = template
        self.instructions = instructions.strip()
        self.answer_prefix = answer_prefix
        self.separator = separator
        self._shots: List[_Shot] = []

    def add_example(self, output: str, **inputs: str) -> "FewShotPrompt":
        """Append one worked example; returns self for chaining."""
        self.template.render(**inputs)  # validate eagerly
        self._shots.append(_Shot(inputs=dict(inputs), output=output))
        return self

    @property
    def num_shots(self) -> int:
        return len(self._shots)

    def build(self, max_shots: Optional[int] = None, **query_inputs: str) -> str:
        """Render the complete prompt for ``query_inputs``."""
        parts: List[str] = []
        if self.instructions:
            parts.append(self.instructions)
        shots = self._shots if max_shots is None else self._shots[:max_shots]
        for shot in shots:
            rendered = self.template.render(**shot.inputs)
            parts.append(f"{rendered}\n{self.answer_prefix} {shot.output}")
        rendered_query = self.template.render(**query_inputs)
        parts.append(f"{rendered_query}\n{self.answer_prefix}")
        return self.separator.join(parts)
