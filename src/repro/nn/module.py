"""Base class for neural-network modules (parameter registry, modes)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.errors import ModelError

ParameterDict = Dict[str, np.ndarray]


class Module:
    """Base class providing parameter registration and train/eval modes.

    Assigning a :class:`Tensor` with ``requires_grad=True`` or another
    :class:`Module` to an attribute registers it automatically, so
    subclasses just assign in ``__init__`` and get ``parameters()``,
    ``state_dict()`` and friends for free.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- parameter access ---------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield (qualified name, parameter) pairs, depth-first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Tensor]:
        """Return all trainable parameters (depth-first order)."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Return the total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # -- modes ----------------------------------------------------------------
    def train(self) -> "Module":
        """Put this module and all submodules into training mode."""
        return self._set_mode(True)

    def eval(self) -> "Module":
        """Put this module and all submodules into inference mode."""
        return self._set_mode(False)

    def _set_mode(self, training: bool) -> "Module":
        object.__setattr__(self, "training", training)
        for module in self._modules.values():
            module._set_mode(training)
        return self

    # -- serialization ----------------------------------------------------------
    def state_dict(self) -> ParameterDict:
        """Return a name -> array snapshot of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: ParameterDict) -> None:
        """Load parameter values from a :meth:`state_dict` snapshot."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ModelError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.shape:
                raise ModelError(
                    f"shape mismatch for {name}: "
                    f"checkpoint {value.shape} vs model {param.shape}"
                )
            param.data = value.copy()

    # -- niceties ----------------------------------------------------------------
    def __call__(self, *args: object, **kwargs: object) -> object:
        return self.forward(*args, **kwargs)

    def forward(self, *args: object, **kwargs: object) -> object:
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.num_parameters():,})"
