"""Scaled dot-product multi-head attention (the heart of the Transformer).

The implementation follows "Attention Is All You Need": queries, keys and
values are linear projections of the input, split into heads, attended
with scaled dot products, re-merged and projected out. Causal and padding
masks are boolean numpy arrays (True = *blocked* position).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.errors import ModelError
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.utils.rng import SeededRNG

NEG_INF = -1e9

# One cached upper-triangular mask, grown geometrically and sliced per
# request: every (seq, cached_len) mask shape used by full forwards,
# chunked prefill, and decode steps is a view into this triangle, so the
# hot path never rebuilds a boolean matrix per forward. The cache is
# read-only; callers that need to mutate must copy.
_MASK_CAPACITY = 0
_MASK: Optional[np.ndarray] = None


def causal_mask(seq_len: int) -> np.ndarray:
    """Return a (seq_len, seq_len) bool mask blocking future positions.

    The returned array is a read-only view into a shared cached
    triangle (rebuilt only when a larger ``seq_len`` is requested), so
    repeated calls cost a slice, not an allocation.
    """
    global _MASK, _MASK_CAPACITY
    if seq_len > _MASK_CAPACITY:
        _MASK_CAPACITY = max(seq_len, 2 * _MASK_CAPACITY, 64)
        _MASK = np.triu(
            np.ones((_MASK_CAPACITY, _MASK_CAPACITY), dtype=bool), k=1
        )
        _MASK.setflags(write=False)
    return _MASK[:seq_len, :seq_len]


def chunk_causal_mask(start: int, stop: int) -> np.ndarray:
    """Causal mask for a prefill chunk over absolute columns.

    Shape (stop - start, stop): the query at absolute position
    ``start + t`` may attend keys ``0..start + t`` (earlier chunks and
    any cache-preloaded prefix included). A read-only view into the
    same cached triangle as :func:`causal_mask`.
    """
    return causal_mask(stop)[start:stop]


#: key-block width of the fused attention path; bounds the widest score
#: slab materialized at once to (B, H, T, _FUSED_BLOCK)
_FUSED_BLOCK = 128


def fused_attention(
    q: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    blocked: Optional[np.ndarray] = None,
    scale: float = 1.0,
    block_size: int = _FUSED_BLOCK,
) -> np.ndarray:
    """Blocked score+softmax+value attention with an online softmax.

    Computes ``softmax(q @ keys^T * scale) @ values`` without ever
    materializing the full (B, H, T, S) score matrix: keys are swept in
    blocks of ``block_size`` columns and the running max / denominator /
    context are rescaled as each block lands (the flash-attention
    recurrence, in numpy). Peak intermediate memory is bounded by the
    block width instead of the key length, which is what keeps a
    long-context prefill from allocating a quadratic score slab.

    ``q`` is (B, H, T, head_dim); ``keys``/``values`` are
    (B, H, S, head_dim); ``blocked`` is broadcastable to (B, H, T, S)
    with True = masked. Results match the unfused path up to float
    rounding (the summation order differs), not bit-exactly.
    """
    batch, heads, t, head_dim = q.shape
    s = keys.shape[2]
    running_max = np.full((batch, heads, t, 1), -np.inf)
    denom = np.zeros((batch, heads, t, 1))
    acc = np.zeros((batch, heads, t, head_dim))
    for start in range(0, s, block_size):
        stop = min(start + block_size, s)
        scores = (q @ keys[:, :, start:stop].transpose(0, 1, 3, 2)) * scale
        if blocked is not None:
            scores = np.where(blocked[..., start:stop], NEG_INF, scores)
        block_max = scores.max(axis=-1, keepdims=True)
        new_max = np.maximum(running_max, block_max)
        # exp(-inf - finite) == 0, so the first block's correction
        # cleanly zeroes the empty running state.
        correction = np.exp(running_max - new_max)
        weights = np.exp(scores - new_max)
        denom = denom * correction + weights.sum(axis=-1, keepdims=True)
        acc = acc * correction + weights @ values[:, :, start:stop]
        running_max = new_max
    return acc / denom


def padding_mask(attention_mask: np.ndarray) -> np.ndarray:
    """Turn a (B, T) 1/0 attention mask into a (B, 1, 1, T) blocked mask.

    Broadcasting against (B, H, T, T) attention scores blocks every
    query's view of padded key positions.
    """
    attn = np.asarray(attention_mask)
    return (attn == 0)[:, None, None, :]


class MultiHeadAttention(Module):
    """Multi-head self-attention with optional causal masking."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        rng: SeededRNG,
        causal: bool = False,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ModelError(f"dim {dim} must be divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        self.query = Linear(dim, dim, rng.spawn("q"))
        self.key = Linear(dim, dim, rng.spawn("k"))
        self.value = Linear(dim, dim, rng.spawn("v"))
        self.out = Linear(dim, dim, rng.spawn("o"))
        self.attn_dropout = Dropout(dropout, rng.spawn("attn_drop"))
        self._last_attention: Optional[np.ndarray] = None
        # Opt-in blocked/fused softmax for the incremental path (see
        # fused_attention); off by default so serving stays bit-identical.
        self.fused = False

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Attend over ``x`` of shape (B, T, D).

        Args:
            x: input activations, shape (batch, seq, dim).
            attention_mask: optional (batch, seq) array of 1s (keep) and
                0s (padding) in the HuggingFace convention.
        """
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        blocked = np.zeros((batch, 1, seq, seq), dtype=bool)
        if self.causal:
            blocked = blocked | causal_mask(seq)[None, None, :, :]
        if attention_mask is not None:
            blocked = blocked | padding_mask(attention_mask)
        scores = scores.masked_fill(blocked, NEG_INF)

        weights = F.softmax(scores, axis=-1)
        self._last_attention = weights.data
        weights = self.attn_dropout(weights)
        context = weights @ v
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out(merged)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        """(B, T, D) -> (B, H, T, D/H)."""
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    @property
    def last_attention(self) -> Optional[np.ndarray]:
        """Attention weights of the most recent forward pass (B, H, T, S).

        Recorded by both the full :meth:`forward` and the cached
        :meth:`incremental` path, so introspection never returns stale
        weights from a previous non-cached call.
        """
        return self._last_attention

    def incremental(
        self,
        x: Tensor,
        cache: dict,
        blocked: Optional[np.ndarray] = None,
        write_cols: Optional[object] = None,
        kv_len: Optional[int] = None,
    ) -> Tensor:
        """Attend new positions against cached keys/values.

        Inference-only fast path for autoregressive decoding: ``x`` holds
        the new positions (B, T, D) — a single decode step (T = 1) or a
        prompt-prefill chunk (T > 1, with ``blocked`` carrying the
        in-chunk causal mask). The cache accumulates this layer's K/V
        across steps so earlier positions are never recomputed.

        Three cache layouts are supported:

        * **slab** (``write_cols is None``, cache is a
          :class:`repro.serving.kvcache.KVCache`): the new K/V columns
          are written in place into a preallocated slab with amortized
          capacity doubling — the default single-sequence layout of
          :func:`repro.generation.generate` (recognized by duck typing
          so ``repro.nn`` never imports ``repro.serving``).
        * **growing** (``write_cols is None``, cache is a dict):
          ``cache["k"]``/``"v"`` are concatenated along the sequence
          axis each call — the legacy O(n²)-traffic layout, kept as the
          regression reference for the slab path.
        * **slotted** (``write_cols`` given): ``cache["k"]``/``"v"`` are
          preallocated slabs of shape (B, H, capacity, D/H); the new K/V
          are scattered at ``write_cols`` (a ``slice`` of columns for a
          prefill chunk, a per-row int array for ragged decode steps, or
          a per-row (B, T) column matrix for ragged multi-token chunks —
          the speculative verify forward) and only the first ``kv_len``
          key columns are attended. This is the padding-aware batched
          layout of :mod:`repro.serving`.

        ``blocked`` is a boolean mask broadcastable to (B, H, T, S_kv),
        True = position blocked (causal future, padding, or another
        row's slots).
        """
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq).data
        k = self._split_heads(self.key(x), batch, seq).data
        v = self._split_heads(self.value(x), batch, seq).data
        if write_cols is None:
            if isinstance(cache, dict):
                # Legacy growing layout: O(n²) traffic over a decode,
                # kept only as the regression reference for the slab.
                cache["k"] = (
                    k if "k" not in cache else np.concatenate([cache["k"], k], axis=2)
                )
                cache["v"] = (
                    v if "v" not in cache else np.concatenate([cache["v"], v], axis=2)
                )
                keys, values = cache["k"], cache["v"]
            else:
                keys, values = cache.append(k, v)
        elif isinstance(write_cols, slice):
            cache["k"][:, :, write_cols] = k
            cache["v"][:, :, write_cols] = v
            keys, values = cache["k"][:, :, :kv_len], cache["v"][:, :, :kv_len]
        else:
            rows = np.arange(batch)
            cols = np.asarray(write_cols)
            if cols.ndim == 2:
                # Ragged multi-token chunk: row r's T new columns land at
                # cols[r]. The fancy-indexed view is (B, T, H, D/H).
                cache["k"][rows[:, None], :, cols] = k.transpose(0, 2, 1, 3)
                cache["v"][rows[:, None], :, cols] = v.transpose(0, 2, 1, 3)
            else:
                cache["k"][rows, :, cols] = k[:, :, 0]
                cache["v"][rows, :, cols] = v[:, :, 0]
            keys, values = cache["k"][:, :, :kv_len], cache["v"][:, :, :kv_len]

        if self.fused:
            # Blocked online-softmax path; attention weights are never
            # materialized in full, so last_attention is not recorded.
            self._last_attention = None
            context = fused_attention(
                q, keys, values, blocked=blocked,
                scale=1.0 / np.sqrt(self.head_dim),
            )
            merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
            return self.out(Tensor(merged))
        scores = (q @ keys.transpose(0, 1, 3, 2)) / np.sqrt(self.head_dim)
        if blocked is not None:
            scores = np.where(blocked, NEG_INF, scores)
        shifted = scores - scores.max(axis=-1, keepdims=True)
        weights = np.exp(shifted)
        weights = weights / weights.sum(axis=-1, keepdims=True)
        self._last_attention = weights
        context = weights @ values
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out(Tensor(merged))


def set_fused_attention(module: Module, enabled: bool = True) -> Module:
    """Toggle the blocked/fused incremental softmax on every attention layer.

    Walks the module tree and flips :attr:`MultiHeadAttention.fused` in
    place; returns ``module`` for chaining. Off is the default
    everywhere, so only callers that opt in (e.g.
    ``CompletionClient(fused_attention=True)``) see the fused numerics.
    """
    if isinstance(module, MultiHeadAttention):
        module.fused = enabled
    for child in module._modules.values():
        set_fused_attention(child, enabled)
    return module
