"""Int8 weight quantization for :class:`~repro.nn.layers.Linear` layers.

The serving-efficiency literature (the implementation survey in
PAPERS.md, arXiv 2403.18969) lists weight-only quantization as the
cheapest decode-speed rung after batching: weights are stored once per
model but streamed through the matmul on every token, so shrinking them
8x cuts exactly the bandwidth the decode loop is bound by. This module
implements the symmetric per-output-channel scheme:

* each output channel ``j`` gets one scale ``s_j = max_i |W_ij| / 127``;
* the stored weight is ``W_q = round(W / s_j)``, an int8 matrix;
* the forward pass is *dequantize-free*: instead of reconstructing
  ``W_q * s_j`` per call, the activation is cast to float32 and
  multiplied against the raw integer matrix (exactly representable in
  float32), and the per-channel scales are applied to the **output**
  row: ``y = (x_f32 @ W_q_f32) * s + b``. One fp32 sgemm replaces the
  fp64 dgemm — about half the memory traffic — and the scales touch
  ``out_features`` values instead of ``in*out``.

Quantized layers are inference-only: the integer weights do not carry
gradients, so :func:`quantize_model` works on a deep copy and leaves the
original trainable model untouched.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.errors import ModelError
from repro.nn.layers import Linear
from repro.nn.module import Module


@dataclass(frozen=True)
class LayerQuantReport:
    """Round-trip error of one quantized linear layer."""

    name: str
    shape: Tuple[int, int]
    max_abs_error: float
    mean_abs_error: float


@dataclass
class QuantizationReport:
    """Aggregate round-trip error report for one :func:`quantize_model`.

    ``max_abs_error`` is the worst ``|W - W_q * s|`` element across every
    quantized weight — the number that bounds how far any single
    activation product can drift. ``int8_bytes``/``float_bytes`` compare
    the stored weight footprints.
    """

    layers: List[LayerQuantReport] = field(default_factory=list)
    int8_bytes: int = 0
    float_bytes: int = 0

    @property
    def max_abs_error(self) -> float:
        return max((l.max_abs_error for l in self.layers), default=0.0)

    @property
    def mean_abs_error(self) -> float:
        if not self.layers:
            return 0.0
        return float(np.mean([l.mean_abs_error for l in self.layers]))

    @property
    def compression(self) -> float:
        """Weight-bytes shrink factor (float64 stored vs int8 stored)."""
        return self.float_bytes / self.int8_bytes if self.int8_bytes else 0.0


def quantize_weight(weight: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-output-channel int8 quantization of ``(in, out)``.

    Returns ``(w_q, scales)`` with ``w_q`` int8 and ``scales`` shaped
    ``(out,)`` such that ``w_q * scales`` reconstructs the weight to
    within half a quantization step per element. All-zero channels get
    scale 1.0 so the round trip stays exact.
    """
    scales = np.abs(weight).max(axis=0) / 127.0
    scales[scales == 0.0] = 1.0
    w_q = np.clip(np.rint(weight / scales), -127, 127).astype(np.int8)
    return w_q, scales


class QuantizedLinear(Module):
    """Inference-only int8 drop-in for :class:`~repro.nn.layers.Linear`.

    Stores the weight as int8 plus per-output-channel float scales, and
    keeps one cached float32 copy of the *integer* matrix (int8 values
    are exactly representable in float32) so the hot path is a single
    sgemm with the scales applied to the output — never a dequantized
    weight materialization. The bias stays float64 and is added after
    scaling, exactly as in the float layer.
    """

    def __init__(self, linear: Linear) -> None:
        super().__init__()
        self.in_features = linear.in_features
        self.out_features = linear.out_features
        self.weight_q, self.scales = quantize_weight(linear.weight.data)
        self._weight_f32 = self.weight_q.astype(np.float32)
        self.bias = None if linear.bias is None else linear.bias.data.copy()

    def forward(self, x: object) -> Tensor:
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        out = (data.astype(np.float32) @ self._weight_f32).astype(np.float64)
        out *= self.scales
        if self.bias is not None:
            out += self.bias
        return Tensor(out)

    @property
    def max_abs_error(self) -> float:
        """Worst per-element round-trip error of this layer's weight."""
        # The integer matrix times the scales is the dequantized weight;
        # each element is within scale/2 of the original by construction.
        return float(np.max(self.scales) * 0.5)


def quantize_model(model: Module) -> Tuple[Module, QuantizationReport]:
    """Return an int8-weight copy of ``model`` plus a round-trip report.

    Every :class:`Linear` in the module tree is replaced by a
    :class:`QuantizedLinear` on a deep copy — the original model keeps
    its float weights and gradients. Embeddings and layer norms stay in
    float (they are lookup/normalization, not matmul-bound). The copy is
    inference-only: its quantized layers expose no trainable parameters.
    """
    quantized = copy.deepcopy(model)
    report = QuantizationReport()
    _replace_linears(quantized, "", report)
    if not report.layers:
        raise ModelError("model contains no Linear layers to quantize")
    return quantized, report


def _replace_linears(module: Module, prefix: str, report: QuantizationReport) -> None:
    for name, child in list(module._modules.items()):
        path = f"{prefix}{name}"
        if isinstance(child, Linear):
            original = child.weight.data
            qlin = QuantizedLinear(child)
            dequantized = qlin.weight_q.astype(np.float64) * qlin.scales
            error = np.abs(original - dequantized)
            report.layers.append(
                LayerQuantReport(
                    name=path,
                    shape=(child.in_features, child.out_features),
                    max_abs_error=float(error.max()),
                    mean_abs_error=float(error.mean()),
                )
            )
            report.int8_bytes += qlin.weight_q.nbytes + qlin.scales.nbytes
            report.float_bytes += original.nbytes
            setattr(module, name, qlin)
        else:
            _replace_linears(child, f"{path}.", report)
