"""Elementary layers: Linear, Embedding, LayerNorm, Dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.errors import ModelError
from repro.nn.module import Module
from repro.utils.rng import SeededRNG


class Linear(Module):
    """Affine projection ``y = x W + b`` with Xavier-uniform init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: SeededRNG,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        bound = float(np.sqrt(6.0 / (in_features + out_features)))
        self.weight = Tensor(
            rng.uniform_array((in_features, out_features), -bound, bound),
            requires_grad=True,
        )
        self.bias: Optional[Tensor] = None
        if bias:
            self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: SeededRNG) -> None:
        super().__init__()
        if num_embeddings <= 0 or dim <= 0:
            raise ModelError("embedding sizes must be positive")
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(
            rng.normal((num_embeddings, dim), std=0.02), requires_grad=True
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return F.embedding(self.weight, ids)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Tensor(np.ones(dim), requires_grad=True)
        self.bias = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float, rng: SeededRNG) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ModelError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng.generator

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)
