"""Transformer blocks (pre-norm) and stacks of them."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, LayerNorm, Linear
from repro.nn.module import Module
from repro.utils.rng import SeededRNG


class FeedForward(Module):
    """Position-wise feed-forward network with GELU activation."""

    def __init__(self, dim: int, hidden_dim: int, rng: SeededRNG, dropout: float = 0.0) -> None:
        super().__init__()
        self.up = Linear(dim, hidden_dim, rng.spawn("up"))
        self.down = Linear(hidden_dim, dim, rng.spawn("down"))
        self.drop = Dropout(dropout, rng.spawn("drop"))

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.down(F.gelu(self.up(x))))


class TransformerBlock(Module):
    """Pre-norm Transformer block: LN -> attention -> residual, LN -> FFN -> residual."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ff_dim: int,
        rng: SeededRNG,
        causal: bool = False,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.attn_norm = LayerNorm(dim)
        self.attn = MultiHeadAttention(
            dim, num_heads, rng.spawn("attn"), causal=causal, dropout=dropout
        )
        self.ff_norm = LayerNorm(dim)
        self.ff = FeedForward(dim, ff_dim, rng.spawn("ff"), dropout=dropout)
        self.resid_drop = Dropout(dropout, rng.spawn("resid"))

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        x = x + self.resid_drop(self.attn(self.attn_norm(x), attention_mask))
        x = x + self.ff(self.ff_norm(x))
        return x

    def incremental(
        self,
        x: Tensor,
        cache: dict,
        blocked: Optional[np.ndarray] = None,
        write_cols: Optional[object] = None,
        kv_len: Optional[int] = None,
    ) -> Tensor:
        """Cached forward over new positions using this block's K/V cache."""
        x = x + self.attn.incremental(
            self.attn_norm(x), cache,
            blocked=blocked, write_cols=write_cols, kv_len=kv_len,
        )
        x = x + self.ff(self.ff_norm(x))
        return x


class TransformerStack(Module):
    """A stack of Transformer blocks with a final layer norm."""

    def __init__(
        self,
        num_layers: int,
        dim: int,
        num_heads: int,
        ff_dim: int,
        rng: SeededRNG,
        causal: bool = False,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.blocks: List[TransformerBlock] = []
        for i in range(num_layers):
            block = TransformerBlock(
                dim, num_heads, ff_dim, rng.spawn(f"block{i}"),
                causal=causal, dropout=dropout,
            )
            self.blocks.append(block)
            # Register via attribute assignment so parameters are tracked.
            setattr(self, f"block{i}", block)
        self.final_norm = LayerNorm(dim)

    def forward(
        self, x: Tensor, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        for block in self.blocks:
            x = block(x, attention_mask)
        return self.final_norm(x)

    def init_cache(
        self,
        batch_size: Optional[int] = None,
        capacity: Optional[int] = None,
        layout: str = "slab",
    ) -> List[object]:
        """Fresh per-block K/V caches for incremental decoding.

        With no arguments the caches are preallocated
        :class:`~repro.serving.kvcache.KVCache` slabs that append in
        place with amortized capacity doubling (``layout="legacy"``
        returns the old empty dicts that grow by ``np.concatenate`` —
        kept as the regression reference). With ``batch_size`` and
        ``capacity`` they are preallocated slotted slabs
        (B, H, capacity, D/H) for the padding-aware batched layout (see
        :meth:`MultiHeadAttention.incremental`).
        """
        if batch_size is None:
            if layout == "legacy":
                return [{} for _ in self.blocks]
            if layout != "slab":
                raise ValueError(f"unknown cache layout {layout!r}")
            # Imported here (not at module top) because repro.serving
            # imports repro.nn; at call time both are fully loaded.
            from repro.serving.kvcache import KVCache

            return [KVCache() for _ in self.blocks]
        if capacity is None or capacity <= 0 or batch_size <= 0:
            raise ValueError("slotted caches need positive batch_size and capacity")
        caches = []
        for block in self.blocks:
            attn = block.attn
            shape = (batch_size, attn.num_heads, capacity, attn.head_dim)
            caches.append({"k": np.zeros(shape), "v": np.zeros(shape)})
        return caches

    def incremental(
        self,
        x: Tensor,
        caches: List[dict],
        blocked: Optional[np.ndarray] = None,
        write_cols: Optional[object] = None,
        kv_len: Optional[int] = None,
    ) -> Tensor:
        """Cached forward over new positions through all blocks."""
        for block, cache in zip(self.blocks, caches):
            x = block.incremental(
                x, cache, blocked=blocked, write_cols=write_cols, kv_len=kv_len
            )
        return self.final_norm(x)
