"""Neural-network layers built on the autograd substrate.

Provides the standard Transformer building blocks: linear projections,
embeddings, layer norm, dropout, multi-head attention, feed-forward
blocks, and the full pre-norm Transformer block used by both the
BERT-style encoder and the GPT-style decoder.
"""

from repro.nn.module import Module, ParameterDict
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.attention import (
    MultiHeadAttention,
    causal_mask,
    chunk_causal_mask,
    fused_attention,
    padding_mask,
    set_fused_attention,
)
from repro.nn.quant import (
    QuantizationReport,
    QuantizedLinear,
    quantize_model,
    quantize_weight,
)
from repro.nn.transformer import FeedForward, TransformerBlock, TransformerStack

__all__ = [
    "Module",
    "ParameterDict",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "MultiHeadAttention",
    "QuantizationReport",
    "QuantizedLinear",
    "causal_mask",
    "chunk_causal_mask",
    "fused_attention",
    "padding_mask",
    "quantize_model",
    "quantize_weight",
    "set_fused_attention",
    "FeedForward",
    "TransformerBlock",
    "TransformerStack",
]
