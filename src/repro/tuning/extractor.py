"""Hint extraction from manual text: regex baseline vs fine-tuned LM.

The regex extractor implements the obvious pattern (``set <knob> to
<value>``) and therefore only finds transparently phrased hints. The LM
extractor classifies each sentence's *target knob* (or filler) with a
fine-tuned encoder — paraphrases like "allocate 2048 mb to the page
cache" resolve to ``buffer_pool_mb`` — and then pulls the value out of
the sentence, which is how DB-BERT reads real manuals.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import TuningError
from repro.models import BERTModel, ModelConfig, SequenceClassifier
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training import LabeledExample, finetune_classifier
from repro.tuning.manuals import ManualSentence
from repro.tuning.simulator import DBMSConfig


@dataclass(frozen=True)
class Hint:
    """One extracted recommendation."""

    knob: str
    value: int
    source: str  # the sentence it came from


_SET_RE = re.compile(
    r"set\s+([a-z_]+)\s+to\s+(\d+|on|off)", re.IGNORECASE
)
_NUMBER_RE = re.compile(r"\d+")


def _parse_value(raw: str) -> int:
    if raw.lower() == "on":
        return 1
    if raw.lower() == "off":
        return 0
    return int(raw)


class RegexHintExtractor:
    """Baseline: only the transparent ``set <knob> to <value>`` shape."""

    def extract(self, sentences: Sequence[ManualSentence]) -> List[Hint]:
        hints: List[Hint] = []
        for sentence in sentences:
            match = _SET_RE.search(sentence.text)
            if not match:
                continue
            knob = match.group(1).lower()
            if knob not in DBMSConfig.KNOBS:
                continue
            hints.append(
                Hint(knob=knob, value=_parse_value(match.group(2)), source=sentence.text)
            )
        return hints


# Class layout for the LM extractor: 0 = filler, 1.. = knob index.
_CLASSES = ["none"] + list(DBMSConfig.KNOBS)


class LMHintExtractor:
    """Fine-tuned sentence classifier (knob or filler) + value parsing."""

    def __init__(self, classifier: SequenceClassifier, tokenizer: Tokenizer, max_len: int) -> None:
        self._classifier = classifier
        self._tokenizer = tokenizer
        self._max_len = max_len

    def classify(self, sentence: ManualSentence) -> str:
        encoding = self._tokenizer.encode(
            sentence.text, max_length=self._max_len, pad_to=self._max_len
        )
        prediction = self._classifier.predict(
            np.array([encoding.ids]), np.array([encoding.attention_mask])
        )
        return _CLASSES[int(prediction[0])]

    def extract(self, sentences: Sequence[ManualSentence]) -> List[Hint]:
        hints: List[Hint] = []
        for sentence in sentences:
            knob = self.classify(sentence)
            if knob == "none":
                continue
            value = self._extract_value(sentence.text, knob)
            if value is None:
                continue
            hints.append(Hint(knob=knob, value=value, source=sentence.text))
        return hints

    @staticmethod
    def _extract_value(text: str, knob: str) -> Optional[int]:
        if knob == "compression":
            if "off" in text or "disable" in text:
                return 0
            return 1
        numbers = _NUMBER_RE.findall(text)
        return int(numbers[0]) if numbers else None


def train_lm_extractor(
    train_sentences: Sequence[ManualSentence],
    epochs: int = 10,
    dim: int = 32,
    seed: int = 0,
) -> LMHintExtractor:
    """Fine-tune the knob classifier on labeled manual sentences."""
    if not train_sentences:
        raise TuningError("no training sentences")
    texts = [s.text for s in train_sentences]
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(texts, vocab_size=1024)
    max_len = max(len(tokenizer.encode(t).ids) for t in texts) + 2

    config = ModelConfig(
        vocab_size=tokenizer.vocab_size,
        max_seq_len=max_len,
        dim=dim,
        num_layers=2,
        num_heads=2,
        ff_dim=4 * dim,
        causal=False,
    )
    classifier = SequenceClassifier(
        BERTModel(config, seed=seed), num_classes=len(_CLASSES), seed=seed
    )
    examples = [
        LabeledExample(
            text=s.text,
            label=_CLASSES.index(s.knob) if s.knob else 0,
        )
        for s in train_sentences
    ]
    finetune_classifier(
        classifier, tokenizer, examples,
        epochs=epochs, lr=2e-3, max_length=max_len, seed=seed,
    )
    return LMHintExtractor(classifier=classifier, tokenizer=tokenizer, max_len=max_len)
