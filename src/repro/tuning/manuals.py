"""Synthetic DBMS manuals: tuning hints buried in prose.

Each manual sentence either carries a (knob, value) recommendation —
phrased transparently or as a paraphrase — or is filler. Sentences are
labeled so extractors can be trained and evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.utils.rng import SeededRNG


@dataclass(frozen=True)
class ManualSentence:
    """One sentence with its gold annotation (None for filler)."""

    text: str
    knob: Optional[str] = None
    value: Optional[int] = None  # booleans encoded as 1/0

    @property
    def is_hint(self) -> bool:
        return self.knob is not None


# (template, is_transparent). Transparent hints follow the "set X to Y"
# shape a regex can catch; paraphrases need understanding.
_HINT_TEMPLATES = {
    "buffer_pool_mb": [
        ("set buffer_pool_mb to {v} for analytical workloads .", True),
        ("we recommend a buffer pool of {v} megabytes for scan heavy use .", False),
        ("allocating {v} mb to the page cache avoids repeated disk reads .", False),
    ],
    "worker_threads": [
        ("set worker_threads to {v} on multicore servers .", True),
        ("parallel scans benefit from {v} execution threads .", False),
        ("use one thread per core , typically {v} on modern hardware .", False),
    ],
    "log_buffer_kb": [
        ("set log_buffer_kb to {v} for write intensive workloads .", True),
        ("a write ahead log staging area of {v} kilobytes reduces flushes .", False),
        ("sizing the wal buffer at {v} kb batches commits efficiently .", False),
    ],
    "compression": [
        ("set compression to {v} when storage bandwidth is the bottleneck .", True),
        ("enabling page compression trades cpu for io , worthwhile on slow disks .", False),
    ],
}

_GOOD_VALUES = {
    "buffer_pool_mb": [1024, 2048],
    "worker_threads": [8],
    "log_buffer_kb": [1024, 2048],
    "compression": [1],
}

_FILLER = [
    "the query optimizer chooses join orders based on estimated cardinalities .",
    "statistics are refreshed automatically during low activity periods .",
    "backups should be scheduled outside of business hours .",
    "the parser rejects statements with unbalanced parentheses .",
    "views are expanded inline before optimization .",
    "user privileges are checked at statement compilation time .",
    "temporary tables live only for the duration of a session .",
    "the catalog stores one schema record per table .",
    "deadlock detection runs every few seconds .",
    "foreign keys enforce referential integrity on updates .",
]


def generate_manual(
    num_sentences: int = 60, hint_fraction: float = 0.4, seed: int = 0
) -> List[ManualSentence]:
    """A shuffled manual with the given fraction of hint sentences."""
    rng = SeededRNG(seed)
    sentences: List[ManualSentence] = []
    num_hints = int(num_sentences * hint_fraction)
    knobs = list(_HINT_TEMPLATES)
    for i in range(num_hints):
        knob = knobs[i % len(knobs)]
        template, _ = rng.choice(_HINT_TEMPLATES[knob])
        value = rng.choice(_GOOD_VALUES[knob])
        rendered_value = value
        if knob == "compression":
            rendered_value = "on" if value else "off"
        sentences.append(
            ManualSentence(
                text=template.format(v=rendered_value), knob=knob, value=value
            )
        )
    for _ in range(num_sentences - num_hints):
        sentences.append(ManualSentence(text=rng.choice(_FILLER)))
    return rng.shuffled(sentences)
