"""A simulated DBMS with tunable knobs and an analytic cost model.

The model is deliberately simple but captures the qualitative effects a
manual describes: a larger buffer pool raises the cache hit rate with
diminishing returns (until it exceeds RAM and thrashes), more worker
threads help scans up to the core count (then contention), a bigger log
buffer helps write-heavy workloads, and compression trades CPU for I/O
so it helps only when the workload is I/O-bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Union

from repro.errors import TuningError

KnobValue = Union[int, bool]


@dataclass(frozen=True)
class DBMSConfig:
    """One configuration of the simulated DBMS."""

    buffer_pool_mb: int = 128
    worker_threads: int = 1
    log_buffer_kb: int = 64
    compression: bool = False

    KNOBS = ("buffer_pool_mb", "worker_threads", "log_buffer_kb", "compression")

    def with_knob(self, knob: str, value: KnobValue) -> "DBMSConfig":
        """Return a copy with one knob changed."""
        if knob not in self.KNOBS:
            raise TuningError(f"unknown knob {knob!r}; knobs: {self.KNOBS}")
        return replace(self, **{knob: value})

    def as_dict(self) -> Dict[str, KnobValue]:
        return {knob: getattr(self, knob) for knob in self.KNOBS}


@dataclass(frozen=True)
class Workload:
    """Workload characteristics the cost model responds to."""

    data_mb: int = 2048
    read_fraction: float = 0.9
    cores: int = 8
    io_bound: bool = True


class SimulatedDBMS:
    """Evaluates configurations: returns throughput in ops/second."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self.evaluations = 0

    def throughput(self, config: DBMSConfig) -> float:
        """Deterministic throughput of ``config`` on the workload."""
        self._validate(config)
        self.evaluations += 1
        w = self.workload

        # Cache hit rate grows with buffer size relative to data size,
        # with diminishing returns; oversizing past 4 GiB thrashes.
        ratio = config.buffer_pool_mb / w.data_mb
        hit_rate = 1.0 - math.exp(-3.0 * ratio)
        thrash = 0.7 if config.buffer_pool_mb > 4096 else 1.0
        read_speed = (0.2 + 0.8 * hit_rate) * thrash

        # Thread scaling: near-linear to the core count, then contention.
        threads = config.worker_threads
        if threads <= w.cores:
            scan_speed = threads**0.8
        else:
            scan_speed = w.cores**0.8 * (1.0 - 0.05 * (threads - w.cores))
        scan_speed = max(scan_speed, 0.1)

        # Log buffer matters for writes only (diminishing returns at 1 MiB).
        log_factor = 1.0 - math.exp(-config.log_buffer_kb / 256.0)
        write_speed = 0.3 + 0.7 * log_factor

        # Compression: ~30% I/O saving when I/O-bound, ~20% CPU tax always.
        compression_factor = 1.0
        if config.compression:
            compression_factor = 1.3 if w.io_bound else 0.8

        read_part = w.read_fraction * read_speed * scan_speed
        write_part = (1.0 - w.read_fraction) * write_speed
        return 1000.0 * (read_part + write_part) * compression_factor

    @staticmethod
    def _validate(config: DBMSConfig) -> None:
        if config.buffer_pool_mb <= 0:
            raise TuningError("buffer_pool_mb must be positive")
        if config.worker_threads <= 0:
            raise TuningError("worker_threads must be positive")
        if config.log_buffer_kb <= 0:
            raise TuningError("log_buffer_kb must be positive")
