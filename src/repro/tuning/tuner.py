"""The tuning loop: apply extracted hints greedily, keep improvements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.tuning.extractor import Hint
from repro.tuning.simulator import DBMSConfig, SimulatedDBMS


@dataclass
class TuningReport:
    """Before/after throughput and the hints that were kept."""

    initial_config: DBMSConfig
    final_config: DBMSConfig
    initial_throughput: float
    final_throughput: float
    applied_hints: List[Hint] = field(default_factory=list)
    rejected_hints: List[Hint] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.final_throughput / self.initial_throughput


def tune(
    dbms: SimulatedDBMS,
    hints: Sequence[Hint],
    initial: DBMSConfig = DBMSConfig(),
) -> TuningReport:
    """Greedy hill-climbing over hints: apply each, keep if it helps.

    This replaces DB-BERT's reinforcement-learning loop with its greedy
    core: hints are candidate actions, the simulator is the environment,
    and only actions that improve measured throughput survive.
    """
    config = initial
    best = dbms.throughput(config)
    report = TuningReport(
        initial_config=initial,
        final_config=initial,
        initial_throughput=best,
        final_throughput=best,
    )
    for hint in hints:
        value = bool(hint.value) if hint.knob == "compression" else hint.value
        candidate = config.with_knob(hint.knob, value)
        throughput = dbms.throughput(candidate)
        if throughput > best:
            config = candidate
            best = throughput
            report.applied_hints.append(hint)
        else:
            report.rejected_hints.append(hint)
    report.final_config = config
    report.final_throughput = best
    return report
