"""NLP-enhanced database tuning (§2.5: DB-BERT [85], [80]).

A simulated DBMS exposes tuning knobs whose good values are described —
in prose — in a synthetic manual. Hint extractors (a regex baseline and
a fine-tuned LM classifier) recover (knob, value) recommendations from
the text; a greedy tuner applies them and keeps improvements, closing
the "read the manual -> faster database" loop end to end.
"""

from repro.tuning.simulator import DBMSConfig, SimulatedDBMS, Workload
from repro.tuning.manuals import ManualSentence, generate_manual
from repro.tuning.extractor import (
    Hint,
    LMHintExtractor,
    RegexHintExtractor,
    train_lm_extractor,
)
from repro.tuning.tuner import TuningReport, tune

__all__ = [
    "DBMSConfig",
    "SimulatedDBMS",
    "Workload",
    "ManualSentence",
    "generate_manual",
    "Hint",
    "RegexHintExtractor",
    "LMHintExtractor",
    "train_lm_extractor",
    "TuningReport",
    "tune",
]
