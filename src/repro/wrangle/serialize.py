"""Row serialization for LM consumption (the Ditto design choice).

Two styles are provided — the benchmark ablates them:

* ``attribute`` — ``col brand val northwind corp col title val ...``
  (Ditto's tagged serialization, giving the model column structure);
* ``plain`` — the bare values concatenated.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import WrangleError

STYLES = ("attribute", "plain")


def serialize_record(record: Dict[str, str], style: str = "attribute") -> str:
    """Render one record as a token-friendly string."""
    if style == "attribute":
        parts = []
        for column, value in record.items():
            parts.append(f"col {column} val {value}".strip())
        return " ".join(parts)
    if style == "plain":
        return " ".join(v for v in record.values() if v)
    raise WrangleError(f"unknown serialization style {style!r}; use {STYLES}")


def serialize_pair(
    left: Dict[str, str], right: Dict[str, str], style: str = "attribute"
) -> str:
    """Render a record pair with a separator (classifier input)."""
    return f"{serialize_record(left, style)} sep {serialize_record(right, style)}"
