"""Entity matchers: classical similarity, fine-tuned LM, few-shot prompting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WrangleError
from repro.models import BERTModel, GPTModel, ModelConfig
from repro.nn import Linear, Module
from repro.prompting import FewShotPrompt, PromptClassifier, PromptTemplate
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training import pretrain_mlm
from repro.training.metrics import f1_score
from repro.utils.rng import SeededRNG
from repro.wrangle.data import EntityPair
from repro.wrangle.serialize import serialize_pair, serialize_record
from repro.utils.text import jaccard


class SimilarityMatcher:
    """Classical baseline: word-set Jaccard similarity with a tuned cutoff."""

    def __init__(self, threshold: Optional[float] = None) -> None:
        self.threshold = threshold if threshold is not None else 0.5

    def fit(self, pairs: Sequence[EntityPair]) -> "SimilarityMatcher":
        """Grid-search the threshold that maximizes F1 on ``pairs``."""
        if not pairs:
            raise WrangleError("cannot fit on zero pairs")
        scores = [self._score(p) for p in pairs]
        labels = [int(p.match) for p in pairs]
        best = (0.0, self.threshold)
        for candidate in [i / 20 for i in range(1, 20)]:
            predictions = [int(s >= candidate) for s in scores]
            f1 = f1_score(predictions, labels)
            if f1 > best[0]:
                best = (f1, candidate)
        self.threshold = best[1]
        return self

    def predict(self, pair: EntityPair) -> bool:
        return self._score(pair) >= self.threshold

    @staticmethod
    def _score(pair: EntityPair) -> float:
        left = " ".join(pair.left.values())
        right = " ".join(pair.right.values())
        return jaccard(left, right)


class _AlignmentHead(Module):
    """Token-alignment matcher over contextual embeddings.

    For every token on one side, find its best cosine match on the other
    side; the *mismatch* ``1 - max_sim`` is weighted by a learned
    per-token importance and summed. Two such penalties (left-to-right
    and right-to-left) feed a linear classifier. This is the
    decomposable-attention recipe of embedding-based entity matchers:
    noise tokens learn zero importance, identity tokens high importance,
    and format-dialect synonyms (``corp``/``corporation``) are pulled
    together in embedding space during fine-tuning.
    """

    def __init__(self, backbone: BERTModel, seed: int = 0) -> None:
        super().__init__()
        self.backbone = backbone
        rng = SeededRNG(seed)
        self.importance = Linear(backbone.config.dim, 1, rng.spawn("imp"))
        self.head = Linear(2, 2, rng.spawn("head"))

    def forward(self, left: Tuple, right: Tuple) -> "object":
        left_ids, left_mask = left
        right_ids, right_mask = right
        hidden_left = self.backbone.encode(left_ids, left_mask)
        hidden_right = self.backbone.encode(right_ids, right_mask)
        penalty_lr = self._penalty(hidden_left, left_mask, hidden_right, right_mask)
        penalty_rl = self._penalty(hidden_right, right_mask, hidden_left, left_mask)
        from repro.autograd import functional as F

        batch = left_ids.shape[0]
        features = F.concat(
            [penalty_lr.reshape(batch, 1), penalty_rl.reshape(batch, 1)], axis=-1
        )
        return self.head(features)

    def _penalty(self, hidden_a, mask_a, hidden_b, mask_b):
        """Sum of importance-weighted mismatches of side A against side B."""
        import numpy as np

        norm_a = self._normalize(hidden_a)
        norm_b = self._normalize(hidden_b)
        sims = norm_a @ norm_b.transpose(0, 2, 1)  # (B, Ta, Tb)
        pad_b = (np.asarray(mask_b) == 0)[:, None, :]
        best = sims.masked_fill(pad_b, -1e9).max_along(axis=2)  # (B, Ta)
        mismatch = 1.0 - best
        raw_importance = self.importance(hidden_a)  # (B, Ta, 1)
        batch, seq = np.asarray(mask_a).shape
        softplus = (raw_importance.reshape(batch, seq).exp() + 1.0).log()
        from repro.autograd import Tensor

        valid_a = Tensor(np.asarray(mask_a, dtype=np.float64))
        return (softplus * mismatch * valid_a).sum(axis=1)

    @staticmethod
    def _normalize(hidden):
        sq = (hidden * hidden).sum(axis=-1, keepdims=True)
        return hidden * ((sq + 1e-8) ** -0.5)


class FinetunedMatcher:
    """Learned entity matcher: MLM-pretrained encoder + alignment head.

    The encoder is pre-trained with masked language modeling on the
    (unlabeled) serialized records, then the token-alignment head is
    fine-tuned end-to-end on labeled pairs — the transfer-learning
    recipe of Ditto-style matchers.
    """

    def __init__(
        self,
        style: str = "attribute",
        dim: int = 32,
        num_layers: int = 2,
        seed: int = 0,
    ) -> None:
        self.style = style
        self.seed = seed
        self._dim = dim
        self._num_layers = num_layers
        self.tokenizer: Optional[Tokenizer] = None
        self._head: Optional[_AlignmentHead] = None
        self._max_len = 0

    def fit(
        self,
        pairs: Sequence[EntityPair],
        pretrain_steps: int = 60,
        finetune_epochs: int = 10,
        lr: float = 2e-3,
        batch_size: int = 16,
    ) -> "FinetunedMatcher":
        """Pre-train the encoder (MLM), then fine-tune the pair head."""
        if not pairs:
            raise WrangleError("cannot fit on zero pairs")
        record_texts = [serialize_record(p.left, self.style) for p in pairs]
        record_texts += [serialize_record(p.right, self.style) for p in pairs]
        tokenizer = WhitespaceTokenizer(lowercase=True)
        tokenizer.train(record_texts, vocab_size=1024)
        self._max_len = max(len(tokenizer.encode(t).ids) for t in record_texts) + 2

        config = ModelConfig(
            vocab_size=tokenizer.vocab_size,
            max_seq_len=self._max_len,
            dim=self._dim,
            num_layers=self._num_layers,
            num_heads=max(2, self._dim // 16),
            ff_dim=4 * self._dim,
            causal=False,
        )
        backbone = BERTModel(config, seed=self.seed)
        pretrain_mlm(
            backbone, tokenizer, record_texts, steps=pretrain_steps,
            seq_len=min(self._max_len, 32), seed=self.seed,
        )
        self.tokenizer = tokenizer
        self._head = _AlignmentHead(backbone, seed=self.seed)
        self._finetune(pairs, finetune_epochs, lr, batch_size)
        return self

    def _finetune(
        self,
        pairs: Sequence[EntityPair],
        epochs: int,
        lr: float,
        batch_size: int,
    ) -> None:
        import numpy as np

        from repro.autograd import cross_entropy
        from repro.training.optim import AdamW

        assert self._head is not None and self.tokenizer is not None
        left = self._encode_side([p.left for p in pairs])
        right = self._encode_side([p.right for p in pairs])
        labels = np.array([int(p.match) for p in pairs], dtype=np.int64)
        optimizer = AdamW(self._head.parameters(), lr=lr)
        rng = SeededRNG(self.seed)

        self._head.train()
        n = len(pairs)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start: start + batch_size]
                logits = self._head(
                    (left[0][idx], left[1][idx]), (right[0][idx], right[1][idx])
                )
                loss = cross_entropy(logits, labels[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(1.0)
                optimizer.step()
        self._head.eval()

    def _encode_side(self, records: Sequence[Dict[str, str]]):
        import numpy as np

        assert self.tokenizer is not None
        encodings = [
            self.tokenizer.encode(
                serialize_record(r, self.style),
                max_length=self._max_len, pad_to=self._max_len,
            )
            for r in records
        ]
        ids = np.array([e.ids for e in encodings], dtype=np.int64)
        mask = np.array([e.attention_mask for e in encodings], dtype=np.int64)
        return ids, mask

    def predict(self, pair: EntityPair) -> bool:
        if self._head is None or self.tokenizer is None:
            raise WrangleError("matcher is not fitted")
        from repro.autograd import no_grad

        left = self._encode_side([pair.left])
        right = self._encode_side([pair.right])
        with no_grad():
            logits = self._head(left, right)
        return bool(logits.data[0].argmax() == 1)


class PromptMatcher:
    """Few-shot prompting matcher over a causal LM.

    Builds a k-shot prompt of worked match/no-match examples and scores
    the ``yes``/``no`` verbalizations (§2.3's prompting recipe applied
    to wrangling, as in Narayan et al. [59]).
    """

    def __init__(
        self,
        model: GPTModel,
        tokenizer: Tokenizer,
        shots: Sequence[EntityPair] = (),
        style: str = "attribute",
    ) -> None:
        template = PromptTemplate("records : {pair} . same entity ?")
        prompt = FewShotPrompt(template, instructions="", answer_prefix="answer :")
        for shot in shots:
            prompt.add_example(
                "yes" if shot.match else "no",
                pair=serialize_pair(shot.left, shot.right, style),
            )
        self.style = style
        self._classifier = PromptClassifier(
            model, tokenizer, prompt, verbalizers={0: "no", 1: "yes"}
        )

    def predict(self, pair: EntityPair, max_shots: Optional[int] = None) -> bool:
        text = serialize_pair(pair.left, pair.right, self.style)
        return self._classifier.predict(max_shots=max_shots, pair=text) == 1


def evaluate_matcher(matcher, pairs: Sequence[EntityPair]) -> Dict[str, float]:
    """Return precision/recall/F1/accuracy of a matcher on ``pairs``."""
    from repro.training.metrics import accuracy, precision_recall_f1

    predictions = [int(matcher.predict(p)) for p in pairs]
    labels = [int(p.match) for p in pairs]
    precision, recall, f1 = precision_recall_f1(predictions, labels)
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "accuracy": accuracy(predictions, labels),
    }
