"""Schema matching: align columns across differently named schemas.

The fourth canonical wrangling task (data integration, §2.5): two
sources describe the same entities with different column vocabularies
("salary" vs "compensation"). Matchers score (source column, target
column) pairs from the column *name* and a sample of its *values*.

* :class:`NameSimilarityMatcher` — string similarity of column names
  (the classical baseline; blind to synonyms).
* :class:`EmbeddingSchemaMatcher` — embeds ``name + sample values``
  with a BERT encoder pre-trained on the serialized columns, and aligns
  by cosine similarity (instance-based matching); value overlap gives
  it the signal name similarity lacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WrangleError
from repro.models import BERTModel, ModelConfig
from repro.tokenizers import WhitespaceTokenizer
from repro.training import pretrain_mlm
from repro.utils.rng import SeededRNG
from repro.utils.text import jaccard, levenshtein


@dataclass(frozen=True)
class ColumnProfile:
    """One column: its name and a sample of its values."""

    name: str
    sample_values: Tuple[str, ...]

    def text(self) -> str:
        return f"column {self.name} values " + " ".join(self.sample_values)


@dataclass
class SchemaMatchTask:
    """Two schemas plus the gold column correspondence."""

    source: List[ColumnProfile]
    target: List[ColumnProfile]
    gold: Dict[str, str]  # source column name -> target column name


# Column-name synonym pools: (canonical concept, source name, target name,
# value generator key).
_CONCEPTS = [
    ("person", "name", "full_name", "names"),
    ("wage", "salary", "compensation", "numbers"),
    ("years", "age", "years_old", "small_numbers"),
    ("unit", "department", "org_unit", "departments"),
    ("place", "city", "location", "cities"),
    ("mail", "email", "contact_address", "emails"),
]

_VALUE_POOLS = {
    "names": ["alice", "bob", "carol", "dave", "erin", "frank"],
    "numbers": ["52000", "61000", "48000", "75000", "83000"],
    "small_numbers": ["25", "31", "42", "56", "38"],
    "departments": ["engineering", "sales", "marketing", "finance"],
    "cities": ["boston", "denver", "austin", "seattle"],
    "emails": ["a@x.com", "b@x.com", "c@y.org", "d@y.org"],
}


def generate_schema_match_task(
    num_columns: int = 6, sample_size: int = 4, seed: int = 0
) -> SchemaMatchTask:
    """A task instance: same concepts, different names, shared value pools."""
    if num_columns > len(_CONCEPTS):
        raise WrangleError(f"at most {len(_CONCEPTS)} columns supported")
    rng = SeededRNG(seed)
    concepts = rng.shuffled(_CONCEPTS)[:num_columns]
    source, target, gold = [], [], {}
    for _, source_name, target_name, pool_key in concepts:
        pool = _VALUE_POOLS[pool_key]
        source.append(
            ColumnProfile(source_name, tuple(rng.sample(pool, min(sample_size, len(pool)))))
        )
        target.append(
            ColumnProfile(target_name, tuple(rng.sample(pool, min(sample_size, len(pool)))))
        )
        gold[source_name] = target_name
    return SchemaMatchTask(
        source=source, target=rng.shuffled(target), gold=gold
    )


def _greedy_align(
    scores: Dict[Tuple[str, str], float],
    source: Sequence[ColumnProfile],
    target: Sequence[ColumnProfile],
) -> Dict[str, str]:
    """One-to-one assignment by descending score (greedy matching)."""
    ranked = sorted(scores.items(), key=lambda kv: -kv[1])
    used_source: set = set()
    used_target: set = set()
    mapping: Dict[str, str] = {}
    for (src, dst), _ in ranked:
        if src in used_source or dst in used_target:
            continue
        mapping[src] = dst
        used_source.add(src)
        used_target.add(dst)
    return mapping


class NameSimilarityMatcher:
    """Baseline: normalized edit similarity of the column names only."""

    def match(self, task: SchemaMatchTask) -> Dict[str, str]:
        scores: Dict[Tuple[str, str], float] = {}
        for src in task.source:
            for dst in task.target:
                distance = levenshtein(src.name, dst.name)
                longest = max(len(src.name), len(dst.name), 1)
                scores[(src.name, dst.name)] = 1.0 - distance / longest
        return _greedy_align(scores, task.source, task.target)


class EmbeddingSchemaMatcher:
    """Instance-based matcher over a small pre-trained encoder.

    Column texts (name + sampled values) are embedded and aligned by
    cosine; shared value vocabulary pulls corresponding columns together
    even when names share no characters.
    """

    def __init__(self, dim: int = 32, pretrain_steps: int = 50, seed: int = 0) -> None:
        self.dim = dim
        self.pretrain_steps = pretrain_steps
        self.seed = seed

    def match(self, task: SchemaMatchTask) -> Dict[str, str]:
        texts = [c.text() for c in task.source + task.target]
        tokenizer = WhitespaceTokenizer(lowercase=True)
        tokenizer.train(texts, vocab_size=512)
        max_len = max(len(tokenizer.encode(t).ids) for t in texts) + 2

        config = ModelConfig(
            vocab_size=tokenizer.vocab_size, max_seq_len=max_len, dim=self.dim,
            num_layers=2, num_heads=2, ff_dim=4 * self.dim, causal=False,
        )
        encoder = BERTModel(config, seed=self.seed)
        pretrain_mlm(
            encoder, tokenizer, texts, steps=self.pretrain_steps,
            seq_len=min(max_len, 24), seed=self.seed,
        )

        def embed(profile: ColumnProfile) -> np.ndarray:
            encoding = tokenizer.encode(
                profile.text(), max_length=max_len, pad_to=max_len
            )
            vec = encoder.embed_texts(
                np.array([encoding.ids]), np.array([encoding.attention_mask])
            )[0]
            return vec / max(np.linalg.norm(vec), 1e-9)

        source_vecs = {c.name: embed(c) for c in task.source}
        target_vecs = {c.name: embed(c) for c in task.target}
        scores = {
            (s, t): float(sv @ tv)
            for s, sv in source_vecs.items()
            for t, tv in target_vecs.items()
        }
        return _greedy_align(scores, task.source, task.target)


def matching_accuracy(predicted: Dict[str, str], gold: Dict[str, str]) -> float:
    """Fraction of source columns mapped to their gold target."""
    if not gold:
        raise WrangleError("empty gold mapping")
    return sum(predicted.get(s) == t for s, t in gold.items()) / len(gold)
