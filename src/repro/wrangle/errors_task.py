"""Error detection: flag cells that violate a column's domain."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import WrangleError
from repro.models import BERTModel, ModelConfig, SequenceClassifier
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training import LabeledExample, finetune_classifier
from repro.training.metrics import accuracy, precision_recall_f1
from repro.wrangle.data import ErrorDetectionExample, error_domains
from repro.wrangle.serialize import serialize_record


class RuleErrorDetector:
    """Oracle-free baseline: learn each category's value domain from the
    *training* data (majority co-occurrence), flag unseen combinations.

    With clean training data this equals the gold functional dependency;
    with noisy training data it inherits the noise — the classic
    constraint-mining trade-off."""

    def __init__(self) -> None:
        self._domains: Dict[str, set] = {}

    def fit(self, examples: Sequence[ErrorDetectionExample]) -> "RuleErrorDetector":
        if not examples:
            raise WrangleError("cannot fit on zero examples")
        for example in examples:
            if not example.erroneous:
                self._domains.setdefault(
                    example.record["category"], set()
                ).add(example.record["value"])
        return self

    def predict(self, example: ErrorDetectionExample) -> bool:
        domain = self._domains.get(example.record["category"])
        if domain is None:
            return True
        return example.record["value"] not in domain


class FinetunedErrorDetector:
    """LM path: fine-tune a small BERT classifier on serialized records."""

    def __init__(self, dim: int = 32, seed: int = 0) -> None:
        self.seed = seed
        self._dim = dim
        self.tokenizer: Optional[Tokenizer] = None
        self.classifier: Optional[SequenceClassifier] = None
        self._max_len = 0

    def fit(
        self, examples: Sequence[ErrorDetectionExample], epochs: int = 6
    ) -> "FinetunedErrorDetector":
        if not examples:
            raise WrangleError("cannot fit on zero examples")
        texts = [self._text(e) for e in examples]
        tokenizer = WhitespaceTokenizer(lowercase=True)
        tokenizer.train(texts, vocab_size=512)
        self._max_len = max(len(tokenizer.encode(t).ids) for t in texts) + 2

        config = ModelConfig(
            vocab_size=tokenizer.vocab_size,
            max_seq_len=self._max_len,
            dim=self._dim,
            num_layers=2,
            num_heads=2,
            ff_dim=4 * self._dim,
            causal=False,
        )
        classifier = SequenceClassifier(BERTModel(config, seed=self.seed), 2, seed=self.seed)
        labeled = [
            LabeledExample(text=t, label=int(e.erroneous))
            for t, e in zip(texts, examples)
        ]
        finetune_classifier(
            classifier, tokenizer, labeled,
            epochs=epochs, lr=2e-3, max_length=self._max_len, seed=self.seed,
        )
        self.tokenizer = tokenizer
        self.classifier = classifier
        return self

    def predict(self, example: ErrorDetectionExample) -> bool:
        if self.classifier is None or self.tokenizer is None:
            raise WrangleError("detector is not fitted")
        encoding = self.tokenizer.encode(
            self._text(example), max_length=self._max_len, pad_to=self._max_len
        )
        prediction = self.classifier.predict(
            np.array([encoding.ids]), np.array([encoding.attention_mask])
        )
        return bool(prediction[0] == 1)

    @staticmethod
    def _text(example: ErrorDetectionExample) -> str:
        record = {k: v for k, v in example.record.items() if k != "id"}
        return serialize_record(record)


def evaluate_detector(detector, examples: Sequence[ErrorDetectionExample]) -> Dict[str, float]:
    """Precision/recall/F1/accuracy of an error detector."""
    predictions = [int(detector.predict(e)) for e in examples]
    labels = [int(e.erroneous) for e in examples]
    precision, recall, f1 = precision_recall_f1(predictions, labels)
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "accuracy": accuracy(predictions, labels),
    }
