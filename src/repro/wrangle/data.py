"""Synthetic datasets for the wrangling tasks.

The entity-matching generator builds product records and renders each
entity through multiple *format dialects* (vendor feeds): abbreviated
brand names, reordered fields, dropped attributes, unit synonyms. Two
renderings match iff they come from the same entity. The dialect map is
what a similarity baseline cannot see and a fine-tuned model can learn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import SeededRNG

Record = Dict[str, str]

_BRANDS = [
    ("northwind corporation", "northwind corp"),
    ("acme industries", "acme ind"),
    ("globex incorporated", "globex inc"),
    ("initech limited", "initech ltd"),
    ("umbrella systems", "umbrella sys"),
    ("stark manufacturing", "stark mfg"),
]
_PRODUCTS = ["keyboard", "monitor", "printer", "scanner", "router", "webcam",
             "headset", "speaker"]
_SIZE_UNITS = [("inch", "in"), ("centimeter", "cm")]
_COLORS = ["black", "white", "silver", "blue"]


@dataclass(frozen=True)
class EntityPair:
    """Two serializable records plus the gold match label."""

    left: Record
    right: Record
    match: bool


@dataclass(frozen=True)
class ErrorDetectionExample:
    """One record plus whether its ``value`` cell is erroneous."""

    record: Record
    erroneous: bool


@dataclass(frozen=True)
class ImputationExample:
    """A record with one attribute hidden; the task is to restore it."""

    record: Record
    target_column: str
    target_value: str


@dataclass(frozen=True)
class _Entity:
    brand_index: int
    product: str
    size: int
    color: str


_NOISE_TOKENS = ["new", "sale", "oem", "refurb", "bulk", "promo", "clearance",
                 "bundle", "premium", "basic"]


def _render(entity: _Entity, dialect: int, rng: SeededRNG) -> Record:
    """Render an entity in one vendor's format dialect.

    Dialects differ in brand abbreviation and size units, and each
    rendering sprinkles in vendor noise tokens (marketing words) that
    carry no identity signal — the noise that sinks bag-of-words
    similarity while a trained model learns to ignore it.
    """
    full_brand, short_brand = _BRANDS[entity.brand_index]
    brand = full_brand if dialect == 0 else short_brand
    long_unit, short_unit = _SIZE_UNITS[dialect % len(_SIZE_UNITS)]
    unit = long_unit if dialect == 0 else short_unit
    title_words = [entity.product, str(entity.size), unit]
    for _ in range(rng.randint(1, 3)):
        title_words.append(rng.choice(_NOISE_TOKENS))
    record = {
        "brand": brand,
        "title": " ".join(rng.shuffled(title_words)),
        "color": entity.color,
    }
    if dialect == 1 and rng.coin(0.5):
        record["color"] = ""  # vendor 1 often omits the color
    return record


def generate_matching_dataset(
    num_pairs: int = 120, seed: int = 0
) -> List[EntityPair]:
    """Balanced match/non-match pairs across format dialects.

    Negatives are *hard*: they share the brand or the product so that
    bag-of-words overlap alone cannot separate the classes.
    """
    rng = SeededRNG(seed)
    entities = [
        _Entity(
            brand_index=rng.randint(0, len(_BRANDS)),
            product=rng.choice(_PRODUCTS),
            size=rng.choice([15, 17, 19, 21, 24, 27]),
            color=rng.choice(_COLORS),
        )
        for _ in range(num_pairs)
    ]
    pairs: List[EntityPair] = []
    for i in range(num_pairs):
        entity = entities[i]
        if i % 2 == 0:
            # Positive: the same entity through two dialects.
            left = _render(entity, 0, rng.spawn(f"l{i}"))
            right = _render(entity, 1, rng.spawn(f"r{i}"))
            pairs.append(EntityPair(left=left, right=right, match=True))
        else:
            # Hard negative: perturb exactly one identity attribute.
            other = _perturb_entity(entity, rng)
            left = _render(entity, 0, rng.spawn(f"l{i}"))
            right = _render(other, 1, rng.spawn(f"r{i}"))
            pairs.append(EntityPair(left=left, right=right, match=False))
    return pairs


def _perturb_entity(entity: _Entity, rng: SeededRNG) -> _Entity:
    """Copy an entity, changing one identity attribute."""
    which = rng.randint(0, 3)
    if which == 0:
        brand = (entity.brand_index + 1 + rng.randint(0, len(_BRANDS) - 1)) % len(_BRANDS)
        return _Entity(brand, entity.product, entity.size, entity.color)
    if which == 1:
        product = rng.choice([p for p in _PRODUCTS if p != entity.product])
        return _Entity(entity.brand_index, product, entity.size, entity.color)
    sizes = [s for s in [15, 17, 19, 21, 24, 27] if s != entity.size]
    return _Entity(entity.brand_index, entity.product, rng.choice(sizes), entity.color)


# -- error detection ----------------------------------------------------------
_CATEGORY_DOMAINS = {
    "electronics": ["keyboard", "monitor", "printer", "router"],
    "furniture": ["desk", "chair", "shelf", "cabinet"],
    "stationery": ["pen", "notebook", "stapler", "marker"],
}


def generate_error_dataset(
    num_examples: int = 120, error_rate: float = 0.3, seed: int = 0
) -> List[ErrorDetectionExample]:
    """Records with a ``category``/``value`` pair; errors put a value
    outside its category's domain (a functional-dependency violation)."""
    rng = SeededRNG(seed)
    categories = list(_CATEGORY_DOMAINS)
    examples: List[ErrorDetectionExample] = []
    for i in range(num_examples):
        category = rng.choice(categories)
        erroneous = rng.coin(error_rate)
        if erroneous:
            wrong_category = rng.choice([c for c in categories if c != category])
            value = rng.choice(_CATEGORY_DOMAINS[wrong_category])
        else:
            value = rng.choice(_CATEGORY_DOMAINS[category])
        record = {
            "id": str(i),
            "category": category,
            "value": value,
        }
        examples.append(ErrorDetectionExample(record=record, erroneous=erroneous))
    return examples


def error_domains() -> Dict[str, List[str]]:
    """The gold category -> legal values map (for the rule baseline)."""
    return {k: list(v) for k, v in _CATEGORY_DOMAINS.items()}


# -- imputation ------------------------------------------------------------------
def generate_imputation_dataset(
    num_examples: int = 120, seed: int = 0
) -> List[ImputationExample]:
    """Records whose ``category`` is derivable from the ``value`` column
    (the inverse functional dependency), then hidden for the task."""
    rng = SeededRNG(seed)
    categories = list(_CATEGORY_DOMAINS)
    examples: List[ImputationExample] = []
    for i in range(num_examples):
        category = rng.choice(categories)
        value = rng.choice(_CATEGORY_DOMAINS[category])
        record = {"id": str(i), "value": value, "category": ""}
        examples.append(
            ImputationExample(
                record=record, target_column="category", target_value=category
            )
        )
    return examples


def imputation_classes() -> List[str]:
    """The label set for categorical imputation."""
    return sorted(_CATEGORY_DOMAINS)
