"""Data imputation: restore a hidden categorical value from the record."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    TransientError,
    WrangleError,
)
from repro.serving import complete_many, engine_serving_stats
from repro.utils.rng import SeededRNG
from repro.models import BERTModel, ModelConfig, SequenceClassifier
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training import LabeledExample, finetune_classifier
from repro.training.metrics import accuracy
from repro.wrangle.data import ImputationExample, imputation_classes
from repro.wrangle.serialize import serialize_record


class MajorityImputer:
    """Baseline: always predict the most frequent training value."""

    def __init__(self) -> None:
        self._majority: Optional[str] = None

    def fit(self, examples: Sequence[ImputationExample]) -> "MajorityImputer":
        if not examples:
            raise WrangleError("cannot fit on zero examples")
        counts = Counter(e.target_value for e in examples)
        self._majority = counts.most_common(1)[0][0]
        return self

    def predict(self, example: ImputationExample) -> str:
        if self._majority is None:
            raise WrangleError("imputer is not fitted")
        return self._majority


class FinetunedImputer:
    """LM path: classify the hidden value from the serialized record."""

    def __init__(self, dim: int = 32, seed: int = 0) -> None:
        self.seed = seed
        self._dim = dim
        self.classes: List[str] = []
        self.tokenizer: Optional[Tokenizer] = None
        self.classifier: Optional[SequenceClassifier] = None
        self._max_len = 0

    def fit(
        self, examples: Sequence[ImputationExample], epochs: int = 6
    ) -> "FinetunedImputer":
        if not examples:
            raise WrangleError("cannot fit on zero examples")
        self.classes = sorted({e.target_value for e in examples})
        texts = [self._text(e) for e in examples]
        tokenizer = WhitespaceTokenizer(lowercase=True)
        tokenizer.train(texts, vocab_size=512)
        self._max_len = max(len(tokenizer.encode(t).ids) for t in texts) + 2

        config = ModelConfig(
            vocab_size=tokenizer.vocab_size,
            max_seq_len=self._max_len,
            dim=self._dim,
            num_layers=2,
            num_heads=2,
            ff_dim=4 * self._dim,
            causal=False,
        )
        classifier = SequenceClassifier(
            BERTModel(config, seed=self.seed), len(self.classes), seed=self.seed
        )
        labeled = [
            LabeledExample(text=t, label=self.classes.index(e.target_value))
            for t, e in zip(texts, examples)
        ]
        finetune_classifier(
            classifier, tokenizer, labeled,
            epochs=epochs, lr=2e-3, max_length=self._max_len, seed=self.seed,
        )
        self.tokenizer = tokenizer
        self.classifier = classifier
        return self

    def predict(self, example: ImputationExample) -> str:
        if self.classifier is None or self.tokenizer is None:
            raise WrangleError("imputer is not fitted")
        encoding = self.tokenizer.encode(
            self._text(example), max_length=self._max_len, pad_to=self._max_len
        )
        prediction = self.classifier.predict(
            np.array([encoding.ids]), np.array([encoding.attention_mask])
        )
        return self.classes[int(prediction[0])]

    @staticmethod
    def _text(example: ImputationExample) -> str:
        visible = {
            k: v for k, v in example.record.items()
            if k not in ("id", example.target_column)
        }
        return serialize_record(visible)


class ClientImputer:
    """Few-shot imputation over the (possibly unreliable) API channel.

    Builds a k-shot prompt of worked records and asks a completion
    engine for the hidden value — the zero-training recipe of Narayan et
    al. applied through the remote channel. ``client`` is anything with
    the ``CompletionClient.complete`` interface; with a
    :class:`~repro.reliability.ResilientClient` the task survives rate
    limits and transient errors. Terminal serving failures *and*
    completions that name no known class degrade to the majority
    baseline (never an exception); ``degraded`` and ``fallbacks`` count
    the two cases separately.
    """

    def __init__(
        self, client, engine: str, shots: int = 4, seed: int = 0
    ) -> None:
        self.client = client
        self.engine = engine
        self.shots = shots
        self.seed = seed
        self.classes: List[str] = []
        self._shot_examples: List[ImputationExample] = []
        self._fallback: Optional[MajorityImputer] = None
        #: predictions answered by the majority baseline after a
        #: terminal serving failure
        self.degraded = 0
        #: predictions answered by the majority baseline because the
        #: completion named no known class
        self.fallbacks = 0

    def fit(self, examples: Sequence[ImputationExample]) -> "ClientImputer":
        if not examples:
            raise WrangleError("cannot fit on zero examples")
        self._fallback = MajorityImputer().fit(examples)
        self.classes = sorted({e.target_value for e in examples})
        rng = SeededRNG(self.seed).spawn("shots")
        self._shot_examples = rng.sample(
            list(examples), min(self.shots, len(examples))
        )
        return self

    def _prompt(self, example: ImputationExample) -> str:
        lines = [
            f"record : {self._text(shot)} ; {shot.target_column} : "
            f"{shot.target_value}"
            for shot in self._shot_examples
        ]
        lines.append(
            f"record : {self._text(example)} ; {example.target_column} :"
        )
        return " \n ".join(lines)

    def predict(self, example: ImputationExample) -> str:
        if self._fallback is None:
            raise WrangleError("imputer is not fitted")
        try:
            response = self.client.complete(
                self.engine, self._prompt(example), max_tokens=3, stop=[";"]
            )
        except (TransientError, DeadlineExceededError, CircuitOpenError):
            self.degraded += 1
            return self._fallback.predict(example)
        return self._accept(example, response)

    def predict_batch(self, examples: Sequence[ImputationExample]) -> List[str]:
        """Impute many records through one batched serving call.

        Clients exposing ``complete_batch`` serve every record in
        vectorized microbatches; anything else — and a terminal serving
        failure on the batched call — transparently degrades to the
        per-record :meth:`predict` path, preserving its no-raise
        contract.
        """
        if self._fallback is None:
            raise WrangleError("imputer is not fitted")
        examples = list(examples)
        prompts = [self._prompt(example) for example in examples]
        try:
            responses = complete_many(
                self.client, self.engine, prompts, max_tokens=3, stop=[";"]
            )
        except (TransientError, DeadlineExceededError, CircuitOpenError):
            return [self.predict(example) for example in examples]
        return [
            self._accept(example, response)
            for example, response in zip(examples, responses)
        ]

    def serving_stats(self) -> dict:
        """Prefix-cache / batching counters for this imputer's engine.

        Every few-shot prompt repeats the same shot block and differs
        only in the final record, so across a table the engine's prefix
        cache absorbs nearly all of the prefill.
        """
        return engine_serving_stats(self.client, self.engine)

    def _accept(self, example: ImputationExample, response) -> str:
        """Map one completion to a known class, or the majority answer."""
        words = response.text.split()
        guess = words[0].lower() if words else ""
        for value in self.classes:
            if value.lower() == guess:
                return value
        self.fallbacks += 1
        return self._fallback.predict(example)

    @staticmethod
    def _text(example: ImputationExample) -> str:
        visible = {
            k: v for k, v in example.record.items()
            if k not in ("id", example.target_column)
        }
        return serialize_record(visible)


def evaluate_imputer(imputer, examples: Sequence[ImputationExample]) -> float:
    """Exact-match accuracy of an imputer.

    Imputers exposing ``predict_batch`` (e.g. :class:`ClientImputer`)
    are scored from one batched serving call over all records.
    """
    predict_batch = getattr(imputer, "predict_batch", None)
    if predict_batch is not None:
        predictions = list(predict_batch(examples))
    else:
        predictions = [imputer.predict(e) for e in examples]
    labels = [e.target_value for e in examples]
    return sum(p == l for p, l in zip(predictions, labels)) / len(examples)
