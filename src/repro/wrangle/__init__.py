"""Data wrangling with language models (§2.5: data preparation [59, 75]).

Three canonical wrangling tasks, each with a classical baseline, a
fine-tuned-LM solution, and a few-shot-prompting solution:

* **entity matching** — do two records describe the same real-world
  entity? (the Ditto / "Can Foundation Models Wrangle Your Data?" task)
* **error detection** — which cells violate the column's domain?
* **data imputation** — fill a missing categorical value from the rest
  of the record.
"""

from repro.wrangle.data import (
    EntityPair,
    ErrorDetectionExample,
    ImputationExample,
    generate_matching_dataset,
    generate_error_dataset,
    generate_imputation_dataset,
)
from repro.wrangle.serialize import serialize_record, serialize_pair
from repro.wrangle.matching import (
    FinetunedMatcher,
    PromptMatcher,
    SimilarityMatcher,
    evaluate_matcher,
)
from repro.wrangle.errors_task import (
    RuleErrorDetector,
    FinetunedErrorDetector,
    evaluate_detector,
)
from repro.wrangle.imputation import (
    ClientImputer,
    MajorityImputer,
    FinetunedImputer,
    evaluate_imputer,
)
from repro.wrangle.schema_match import (
    ColumnProfile,
    EmbeddingSchemaMatcher,
    NameSimilarityMatcher,
    SchemaMatchTask,
    generate_schema_match_task,
    matching_accuracy,
)

__all__ = [
    "EntityPair",
    "ErrorDetectionExample",
    "ImputationExample",
    "generate_matching_dataset",
    "generate_error_dataset",
    "generate_imputation_dataset",
    "serialize_record",
    "serialize_pair",
    "SimilarityMatcher",
    "FinetunedMatcher",
    "PromptMatcher",
    "evaluate_matcher",
    "RuleErrorDetector",
    "FinetunedErrorDetector",
    "evaluate_detector",
    "ClientImputer",
    "MajorityImputer",
    "FinetunedImputer",
    "evaluate_imputer",
    "ColumnProfile",
    "SchemaMatchTask",
    "generate_schema_match_task",
    "NameSimilarityMatcher",
    "EmbeddingSchemaMatcher",
    "matching_accuracy",
]
