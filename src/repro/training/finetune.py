"""Supervised fine-tuning of a pre-trained backbone (Section 2.3).

Fine-tuning specializes a pre-trained model with a small task head and a
handful of labeled examples; thanks to transfer learning, this needs far
less data than training from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import cross_entropy
from repro.errors import TrainingError
from repro.models.heads import SequenceClassifier
from repro.tokenizers import Tokenizer
from repro.training.data import LabeledExample
from repro.training.metrics import accuracy
from repro.training.optim import AdamW
from repro.utils.rng import SeededRNG


@dataclass
class FinetuneReport:
    """Loss trajectory of a fine-tuning run plus final train accuracy."""

    epochs: int
    losses: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0


def encode_examples(
    tokenizer: Tokenizer,
    examples: Sequence[LabeledExample],
    max_length: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Encode texts to fixed-length (ids, attention_mask, labels) arrays."""
    if not examples:
        raise TrainingError("no examples to encode")
    encodings = [
        tokenizer.encode(ex.text, max_length=max_length, pad_to=max_length)
        for ex in examples
    ]
    ids = np.array([e.ids for e in encodings], dtype=np.int64)
    mask = np.array([e.attention_mask for e in encodings], dtype=np.int64)
    labels = np.array([ex.label for ex in examples], dtype=np.int64)
    return ids, mask, labels


def finetune_classifier(
    classifier: SequenceClassifier,
    tokenizer: Tokenizer,
    examples: Sequence[LabeledExample],
    epochs: int = 5,
    batch_size: int = 8,
    lr: float = 1e-3,
    max_length: Optional[int] = None,
    seed: int = 0,
) -> FinetuneReport:
    """Fine-tune ``classifier`` end-to-end on labeled text examples."""
    max_length = max_length or classifier.backbone.config.max_seq_len
    ids, mask, labels = encode_examples(tokenizer, examples, max_length)
    rng = SeededRNG(seed)
    optimizer = AdamW(classifier.parameters(), lr=lr)
    report = FinetuneReport(epochs=epochs)

    classifier.train()
    n = len(examples)
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start: start + batch_size]
            logits = classifier(ids[idx], mask[idx])
            loss = cross_entropy(logits, labels[idx])
            optimizer.zero_grad()
            loss.backward()
            optimizer.clip_grad_norm(1.0)
            optimizer.step()
            report.losses.append(loss.item())

    classifier.eval()
    predictions = classifier.predict(ids, mask)
    report.train_accuracy = accuracy(predictions, labels)
    return report


def evaluate_classifier(
    classifier: SequenceClassifier,
    tokenizer: Tokenizer,
    examples: Sequence[LabeledExample],
    max_length: Optional[int] = None,
) -> float:
    """Return held-out accuracy of a fine-tuned classifier."""
    max_length = max_length or classifier.backbone.config.max_seq_len
    ids, mask, labels = encode_examples(tokenizer, examples, max_length)
    classifier.eval()
    predictions = classifier.predict(ids, mask)
    return accuracy(predictions, labels)
