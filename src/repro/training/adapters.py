"""Parameter-efficient fine-tuning: low-rank adapters (LoRA-style).

Section 2.3 of the tutorial cites parameter-efficient transfer learning
[28] as the way fine-tuning keeps its cost low: instead of updating all
weights, train a small number of new parameters against a frozen
backbone. This module implements the low-rank-update variant: every
selected :class:`~repro.nn.layers.Linear` gets a trainable ``B @ A``
bypass (rank ``r``), the original weight stays frozen, and
:func:`merge_adapters` folds the update back in for zero-overhead
inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import Tensor
from repro.errors import TrainingError
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.utils.rng import SeededRNG


class LoRALinear(Module):
    """A frozen Linear plus a trainable low-rank residual ``x A B``.

    The adapted forward is ``x W + b + (x A) B * scale``. ``A`` is
    Gaussian-initialized, ``B`` starts at zero, so the adapted model is
    exactly the base model at step 0 (the LoRA convention).
    """

    def __init__(self, base: Linear, rank: int, rng: SeededRNG, alpha: float = 8.0) -> None:
        super().__init__()
        if rank <= 0:
            raise TrainingError(f"adapter rank must be positive, got {rank}")
        self.base = base
        self.rank = rank
        self.scale = alpha / rank
        # Freeze the base weights: drop them from the trainable set.
        base.weight.requires_grad = False
        if base.bias is not None:
            base.bias.requires_grad = False
        self.lora_a = Tensor(
            rng.normal((base.in_features, rank), std=0.02), requires_grad=True
        )
        self.lora_b = Tensor(
            np.zeros((rank, base.out_features)), requires_grad=True
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.base.weight
        if self.base.bias is not None:
            out = out + self.base.bias
        return out + ((x @ self.lora_a) @ self.lora_b) * self.scale

    def merged_weight(self) -> np.ndarray:
        """The effective weight after folding in the adapter."""
        return self.base.weight.data + self.scale * (
            self.lora_a.data @ self.lora_b.data
        )


def inject_adapters(
    model: Module,
    rank: int = 4,
    target_names: Tuple[str, ...] = ("query", "value"),
    seed: int = 0,
) -> List[LoRALinear]:
    """Replace selected Linear submodules with LoRA-wrapped versions.

    ``target_names`` selects which attribute names get adapters (the
    LoRA default adapts attention Q and V projections). Every other
    parameter of the model is frozen. Returns the injected adapters.
    """
    rng = SeededRNG(seed)
    # Freeze everything first; adapters then re-introduce trainables.
    for param in model.parameters():
        param.requires_grad = False

    adapters: List[LoRALinear] = []

    def visit(module: Module, prefix: str) -> None:
        for name, child in list(module._modules.items()):
            if isinstance(child, Linear) and name in target_names:
                adapter = LoRALinear(child, rank, rng.spawn(f"{prefix}{name}"))
                setattr(module, name, adapter)
                adapters.append(adapter)
            else:
                visit(child, prefix=f"{prefix}{name}.")

    visit(model, prefix="")
    if not adapters:
        raise TrainingError(
            f"no Linear submodules named {target_names} found to adapt"
        )
    return adapters


def trainable_parameter_count(model: Module) -> int:
    """Number of parameters that would receive gradients."""
    return sum(p.size for p in model.parameters() if p.requires_grad)


def merge_adapters(model: Module) -> int:
    """Fold every adapter into its base weight and restore plain Linears.

    After merging, inference uses the original Linear fast path with
    the adapted weights. Returns the number of merged adapters.
    """
    merged = 0

    def visit(module: Module) -> None:
        nonlocal merged
        for name, child in list(module._modules.items()):
            if isinstance(child, LoRALinear):
                child.base.weight.data = child.merged_weight()
                setattr(module, name, child.base)
                merged += 1
            else:
                visit(child)

    visit(model)
    return merged
