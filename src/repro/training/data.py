"""Dataset utilities: corpus packing, MLM/CLM batch construction, splits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.tokenizers import Tokenizer
from repro.utils.rng import SeededRNG

IGNORE_INDEX = -100


@dataclass(frozen=True)
class LabeledExample:
    """One supervised example for classification fine-tuning."""

    text: str
    label: int


def pack_corpus(
    tokenizer: Tokenizer, corpus: Sequence[str], seq_len: int
) -> np.ndarray:
    """Tokenize documents and pack them into fixed-length rows.

    Documents are concatenated with ``[EOS]`` separators and chopped into
    rows of ``seq_len`` ids — the standard pre-training data layout.
    Returns an int64 array of shape (num_rows, seq_len).
    """
    stream: List[int] = []
    for doc in corpus:
        stream.extend(tokenizer.encode(doc, add_eos=True).ids)
    num_rows = len(stream) // seq_len
    if num_rows == 0:
        raise TrainingError(
            f"corpus too small: {len(stream)} tokens < seq_len {seq_len}"
        )
    return np.array(stream[: num_rows * seq_len], dtype=np.int64).reshape(
        num_rows, seq_len
    )


def make_mlm_batch(
    rows: np.ndarray,
    tokenizer: Tokenizer,
    rng: SeededRNG,
    mask_prob: float = 0.15,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply BERT's masking recipe to ``rows``.

    15% of positions are selected; of those, 80% become ``[MASK]``, 10%
    a random token, 10% stay unchanged. Labels hold the original id at
    selected positions and ``IGNORE_INDEX`` elsewhere.
    """
    vocab = tokenizer.vocab
    inputs = rows.copy()
    labels = np.full_like(rows, IGNORE_INDEX)
    gen = rng.generator
    selected = gen.random(rows.shape) < mask_prob
    special = np.isin(rows, vocab.special_ids())
    selected &= ~special
    if not selected.any():
        # Guarantee at least one supervised position per batch.
        r, c = 0, int(np.argmax(~special[0]))
        selected[r, c] = True
    labels[selected] = rows[selected]

    action = gen.random(rows.shape)
    mask_positions = selected & (action < 0.8)
    random_positions = selected & (action >= 0.8) & (action < 0.9)
    inputs[mask_positions] = vocab.mask_id
    inputs[random_positions] = gen.integers(
        len(vocab.special_ids()), len(vocab), size=int(random_positions.sum())
    )
    return inputs, labels


def make_clm_batch(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Shift rows for causal LM training: predict token t+1 from prefix t."""
    if rows.shape[1] < 2:
        raise TrainingError("causal LM rows need length >= 2")
    return rows[:, :-1], rows[:, 1:]


def train_test_split(
    items: Sequence, test_fraction: float, rng: SeededRNG
) -> Tuple[list, list]:
    """Shuffle and split a sequence into (train, test) lists."""
    if not 0.0 < test_fraction < 1.0:
        raise TrainingError(f"test_fraction must be in (0, 1), got {test_fraction}")
    shuffled = rng.shuffled(list(items))
    cut = max(1, int(len(shuffled) * test_fraction))
    if cut >= len(shuffled):
        raise TrainingError("split leaves no training data")
    return shuffled[cut:], shuffled[:cut]


def iterate_minibatches(
    rows: np.ndarray, batch_size: int, rng: SeededRNG
):
    """Yield shuffled minibatches of rows, indefinitely."""
    n = rows.shape[0]
    while True:
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start: start + batch_size]
            if len(idx) == 0:
                continue
            yield rows[idx]
