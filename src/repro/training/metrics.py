"""Evaluation metrics: accuracy, F1, perplexity."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.errors import TrainingError


def accuracy(predictions: Sequence[int], labels: Sequence[int]) -> float:
    """Fraction of positions where prediction equals label."""
    preds = np.asarray(predictions)
    labs = np.asarray(labels)
    if preds.shape != labs.shape:
        raise TrainingError(
            f"shape mismatch: predictions {preds.shape} vs labels {labs.shape}"
        )
    if preds.size == 0:
        raise TrainingError("accuracy of zero examples is undefined")
    return float((preds == labs).mean())


def precision_recall_f1(
    predictions: Sequence[int], labels: Sequence[int], positive: int = 1
) -> Tuple[float, float, float]:
    """Binary precision/recall/F1 with respect to the ``positive`` class."""
    preds = np.asarray(predictions)
    labs = np.asarray(labels)
    tp = int(((preds == positive) & (labs == positive)).sum())
    fp = int(((preds == positive) & (labs != positive)).sum())
    fn = int(((preds != positive) & (labs == positive)).sum())
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def f1_score(
    predictions: Sequence[int], labels: Sequence[int], positive: int = 1
) -> float:
    """Binary F1 (harmonic mean of precision and recall)."""
    return precision_recall_f1(predictions, labels, positive)[2]


def perplexity(mean_nll: float) -> float:
    """Perplexity from a mean negative log-likelihood (nats/token)."""
    if mean_nll < 0:
        raise TrainingError(f"mean NLL cannot be negative, got {mean_nll}")
    return math.exp(min(mean_nll, 700.0))
