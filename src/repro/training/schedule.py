"""Learning-rate schedules used by the pre-training loops."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import TrainingError


class Schedule(ABC):
    """Maps a step index to a learning-rate multiplier in (0, 1]."""

    @abstractmethod
    def multiplier(self, step: int) -> float:
        """Return the LR multiplier for ``step`` (0-indexed)."""

    def lr_at(self, step: int, base_lr: float) -> float:
        """Return the absolute learning rate at ``step``."""
        return base_lr * self.multiplier(step)


class ConstantSchedule(Schedule):
    """No decay."""

    def multiplier(self, step: int) -> float:
        return 1.0


class LinearWarmupSchedule(Schedule):
    """Linear warmup to 1.0, then linear decay to ``floor``."""

    def __init__(self, warmup_steps: int, total_steps: int, floor: float = 0.0) -> None:
        if warmup_steps < 0 or total_steps <= 0:
            raise TrainingError("schedule steps must be non-negative / positive")
        if warmup_steps >= total_steps:
            raise TrainingError("warmup_steps must be smaller than total_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.floor = floor

    def multiplier(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return (step + 1) / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        span = self.total_steps - self.warmup_steps
        return max(self.floor, remaining / span)


class CosineSchedule(Schedule):
    """Linear warmup followed by cosine decay to ``floor``."""

    def __init__(self, warmup_steps: int, total_steps: int, floor: float = 0.0) -> None:
        if warmup_steps >= total_steps:
            raise TrainingError("warmup_steps must be smaller than total_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.floor = floor

    def multiplier(self, step: int) -> float:
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(max(progress, 0.0), 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.floor + (1.0 - self.floor) * cosine
