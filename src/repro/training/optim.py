"""First-order optimizers over lists of :class:`Tensor` parameters."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from repro.autograd import Tensor
from repro.errors import TrainingError


class Optimizer(ABC):
    """Base optimizer: step over parameters whose ``.grad`` is populated."""

    def __init__(self, params: List[Tensor], lr: float) -> None:
        if not params:
            raise TrainingError("optimizer received no parameters")
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr

    @abstractmethod
    def step(self) -> None:
        """Apply one update using accumulated gradients."""

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.params:
            param.zero_grad()

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm; return the pre-clip norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: List[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None
        if momentum > 0:
            self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] + param.grad
                param.data -= self.lr * self._velocity[i]
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * param.grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * param.grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (the Transformer default)."""

    def __init__(
        self,
        params: List[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params, lr, betas, eps)
        self.weight_decay = weight_decay

    def step(self) -> None:
        # Decay only parameters that received a gradient this step —
        # frozen parameters (e.g. under adapter fine-tuning) must not
        # shrink toward zero.
        if self.weight_decay > 0:
            for param in self.params:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        super().step()
