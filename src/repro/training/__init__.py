"""Training: optimizers, schedules, pre-training and fine-tuning loops."""

from repro.training.optim import SGD, Adam, AdamW, Optimizer
from repro.training.schedule import (
    ConstantSchedule,
    CosineSchedule,
    LinearWarmupSchedule,
)
from repro.training.data import (
    LabeledExample,
    make_clm_batch,
    make_mlm_batch,
    pack_corpus,
    train_test_split,
)
from repro.training.metrics import accuracy, f1_score, perplexity, precision_recall_f1
from repro.training.pretrain import PretrainReport, pretrain_clm, pretrain_mlm
from repro.training.finetune import FinetuneReport, evaluate_classifier, finetune_classifier
from repro.training.adapters import (
    LoRALinear,
    inject_adapters,
    merge_adapters,
    trainable_parameter_count,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "ConstantSchedule",
    "CosineSchedule",
    "LinearWarmupSchedule",
    "LabeledExample",
    "pack_corpus",
    "make_mlm_batch",
    "make_clm_batch",
    "train_test_split",
    "accuracy",
    "f1_score",
    "precision_recall_f1",
    "perplexity",
    "pretrain_mlm",
    "pretrain_clm",
    "PretrainReport",
    "finetune_classifier",
    "evaluate_classifier",
    "FinetuneReport",
    "LoRALinear",
    "inject_adapters",
    "merge_adapters",
    "trainable_parameter_count",
]
