"""Unsupervised pre-training loops: masked LM (BERT) and causal LM (GPT).

These implement Section 2.2 of the tutorial: language models are trained
on tasks for which training data is free — filling in masked words, or
completing a prefix — with no manual labeling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import cross_entropy, no_grad
from repro.errors import TrainingError
from repro.models.bert import BERTModel
from repro.models.gpt import GPTModel
from repro.tokenizers import Tokenizer
from repro.training.data import (
    IGNORE_INDEX,
    iterate_minibatches,
    make_clm_batch,
    make_mlm_batch,
    pack_corpus,
)
from repro.training.metrics import perplexity
from repro.training.optim import AdamW
from repro.training.schedule import CosineSchedule
from repro.utils.rng import SeededRNG


@dataclass
class PretrainReport:
    """Loss trajectory and final quality of a pre-training run."""

    steps: int
    losses: List[float] = field(default_factory=list)
    final_loss: float = float("inf")
    final_perplexity: float = float("inf")

    def loss_at(self, fraction: float) -> float:
        """Smoothed loss at a fractional position of the run (0..1)."""
        if not self.losses:
            raise TrainingError("empty loss history")
        idx = min(int(fraction * (len(self.losses) - 1)), len(self.losses) - 1)
        lo = max(0, idx - 2)
        window = self.losses[lo: idx + 3]
        return float(np.mean(window))


def pretrain_mlm(
    model: BERTModel,
    tokenizer: Tokenizer,
    corpus: Sequence[str],
    steps: int = 100,
    batch_size: int = 8,
    lr: float = 3e-3,
    seq_len: Optional[int] = None,
    seed: int = 0,
) -> PretrainReport:
    """Pre-train a BERT-style model with masked language modeling."""
    seq_len = seq_len or model.config.max_seq_len
    rows = pack_corpus(tokenizer, corpus, seq_len)
    rng = SeededRNG(seed)
    optimizer = AdamW(model.parameters(), lr=lr)
    schedule = CosineSchedule(warmup_steps=min(10, steps // 10 + 1), total_steps=steps)
    report = PretrainReport(steps=steps)

    model.train()
    batches = iterate_minibatches(rows, batch_size, rng.spawn("batches"))
    mask_rng = rng.spawn("mask")
    for step in range(steps):
        batch = next(batches)
        inputs, labels = make_mlm_batch(batch, tokenizer, mask_rng)
        logits = model(inputs)
        flat_logits = logits.reshape(-1, model.config.vocab_size)
        loss = cross_entropy(flat_logits, labels.reshape(-1), ignore_index=IGNORE_INDEX)
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.lr = schedule.lr_at(step, lr)
        optimizer.step()
        report.losses.append(loss.item())

    model.eval()
    report.final_loss = evaluate_mlm(model, tokenizer, rows, rng.spawn("eval"))
    report.final_perplexity = perplexity(report.final_loss)
    return report


def evaluate_mlm(
    model: BERTModel,
    tokenizer: Tokenizer,
    rows: np.ndarray,
    rng: SeededRNG,
    max_rows: int = 32,
) -> float:
    """Mean masked-token NLL on (a sample of) ``rows``."""
    sample = rows[:max_rows]
    inputs, labels = make_mlm_batch(sample, tokenizer, rng)
    with no_grad():
        logits = model(inputs)
        loss = cross_entropy(
            logits.reshape(-1, model.config.vocab_size),
            labels.reshape(-1),
            ignore_index=IGNORE_INDEX,
        )
    return loss.item()


def pretrain_clm(
    model: GPTModel,
    tokenizer: Tokenizer,
    corpus: Sequence[str],
    steps: int = 100,
    batch_size: int = 8,
    lr: float = 3e-3,
    seq_len: Optional[int] = None,
    seed: int = 0,
) -> PretrainReport:
    """Pre-train a GPT-style model with next-token prediction."""
    seq_len = seq_len or model.config.max_seq_len
    rows = pack_corpus(tokenizer, corpus, seq_len)
    rng = SeededRNG(seed)
    optimizer = AdamW(model.parameters(), lr=lr)
    schedule = CosineSchedule(warmup_steps=min(10, steps // 10 + 1), total_steps=steps)
    report = PretrainReport(steps=steps)

    model.train()
    batches = iterate_minibatches(rows, batch_size, rng.spawn("batches"))
    for step in range(steps):
        inputs, targets = make_clm_batch(next(batches))
        logits = model(inputs)
        loss = cross_entropy(
            logits.reshape(-1, model.config.vocab_size), targets.reshape(-1)
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.lr = schedule.lr_at(step, lr)
        optimizer.step()
        report.losses.append(loss.item())

    model.eval()
    report.final_loss = evaluate_clm(model, rows)
    report.final_perplexity = perplexity(report.final_loss)
    return report


def evaluate_clm(model: GPTModel, rows: np.ndarray, max_rows: int = 32) -> float:
    """Mean next-token NLL on (a sample of) ``rows``."""
    inputs, targets = make_clm_batch(rows[:max_rows])
    with no_grad():
        logits = model(inputs)
        loss = cross_entropy(
            logits.reshape(-1, model.config.vocab_size), targets.reshape(-1)
        )
    return loss.item()
