"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch the whole family with one ``except`` clause while still being
able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class TokenizerError(ReproError):
    """Raised for tokenizer misuse (unknown tokens, untrained vocab, ...)."""


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible for an autograd op."""


class ModelError(ReproError):
    """Raised for invalid model configurations or checkpoint mismatches."""


class CorruptCheckpointError(ModelError):
    """A model checkpoint failed its integrity checks.

    Raised when a ``.npz`` checkpoint is truncated, garbled, fails its
    embedded SHA-256 payload digest, or has the wrong internal schema —
    always instead of surfacing raw numpy/JSON/zipfile exceptions.
    """


class TrainingError(ReproError):
    """Raised for invalid training setups (empty datasets, bad splits)."""


class GenerationError(ReproError):
    """Raised when text generation is configured inconsistently."""


class PromptError(ReproError):
    """Raised for malformed prompt templates or unparsable completions."""


class SQLError(ReproError):
    """Base class for all SQL-engine errors."""


class SQLSyntaxError(SQLError):
    """Raised when a SQL string cannot be lexed or parsed."""


class SQLAnalysisError(SQLError):
    """Raised when a parsed query references unknown tables or columns."""


class SQLExecutionError(SQLError):
    """Raised when a valid plan fails at runtime (e.g. type mismatch)."""


class CatalogError(SQLError):
    """Raised for catalog misuse (duplicate tables, missing tables)."""


class Text2SQLError(ReproError):
    """Raised when NL-to-SQL translation cannot produce a valid query."""


class WrangleError(ReproError):
    """Raised for invalid data-wrangling task configurations."""


class FactCheckError(ReproError):
    """Raised when a claim cannot be compiled into verification queries."""


class TuningError(ReproError):
    """Raised for invalid tuning sessions or unknown knobs."""


class CodexDBError(ReproError):
    """Raised when plan synthesis or validation fails in CodexDB."""


class StaticAnalysisError(CodexDBError):
    """Raised when static analysis rejects a generated artifact.

    Carries the individual analyzer findings so callers can report them
    (or feed them back into regeneration). Subclasses
    :class:`CodexDBError` so CodexDB's generate/validate/retry loop
    treats a statically rejected candidate like any other failed one,
    while still letting reports distinguish "rejected before execution"
    from "crashed at runtime".
    """

    def __init__(self, message: str, findings=()) -> None:
        super().__init__(message)
        #: the :class:`repro.analysis.Finding` list that triggered the error
        self.findings = list(findings)


class FuelExhaustedError(CodexDBError):
    """A sandboxed program ran out of its execution fuel budget.

    The flow-sensitive analyzer marks loops whose trip count it cannot
    bound with an ``unbounded-work`` warning; instead of rejecting such
    programs outright, the sandbox runs them under a line-event fuel
    limit and raises this when the budget is spent. Provably infinite
    loops (``unbounded-loop`` errors) are still rejected statically and
    never execute at all.
    """

    def __init__(self, message: str, fuel: int = 0) -> None:
        super().__init__(message)
        #: the budget (in traced line events) that was exhausted
        self.fuel = int(fuel)


class NeuralDBError(ReproError):
    """Raised for invalid NeuralDB operations."""


class TransientError(ReproError):
    """A retryable serving failure (the 5xx of the simulated API).

    The resilience layer (:mod:`repro.reliability`) treats any
    ``TransientError`` as retry-with-backoff material; every other
    :class:`ReproError` is permanent and propagates immediately.
    """


class RateLimitError(TransientError):
    """The serving path refused a request for quota reasons (a 429).

    ``retry_after`` carries the server-advertised wait in seconds;
    retry loops must not come back sooner.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class RequestTimeoutError(TransientError):
    """A single request attempt timed out in flight (retryable)."""


class GatewayOverloadError(RateLimitError):
    """The serving gateway shed this request at admission (a 429).

    Load shedding is the gateway keeping accepted-request latency
    bounded by refusing excess work *early* instead of queueing it to
    death. ``reason`` says which guard fired: ``"tenant-quota"`` (the
    tenant's token bucket is empty) or ``"queue-full"`` (the bounded
    admission queue is at capacity). Subclasses
    :class:`RateLimitError`, so retry loops treat a shed exactly like
    a provider 429 — back off at least ``retry_after`` and try again.
    """

    def __init__(
        self, message: str, reason: str = "queue-full", retry_after: float = 1.0
    ) -> None:
        super().__init__(message, retry_after=retry_after)
        self.reason = reason


class RequestCancelledError(ReproError):
    """The request was cancelled mid-stream (client disconnect).

    Terminal for the request: its partial tokens were discarded and its
    batch slot was handed to queued work.
    """


class DeadlineExceededError(ReproError):
    """The caller's total time budget for a request ran out.

    Unlike :class:`RequestTimeoutError` (one attempt, retryable), this
    is terminal for the request: retrying would overspend the budget.
    """


class CircuitOpenError(ReproError):
    """A circuit breaker is open and the request was never attempted."""


class ClusterError(ReproError):
    """Base class for sharded-cluster errors (:mod:`repro.sql.cluster`)."""


class ShardUnavailableError(ClusterError):
    """A statement needed a shard whose primary is down.

    Raised instead of silently dropping the write (or serving a read
    the caller did not mark as stale-tolerant) when a shard has lost
    its primary and automatic failover is disabled or has no replica
    left to promote. ``shard`` identifies the partition.
    """

    def __init__(self, message: str, shard: int = -1) -> None:
        super().__init__(message)
        self.shard = int(shard)


class DurabilityError(ReproError):
    """Base class for durable-storage errors (:mod:`repro.durability`)."""


class ReplicationError(DurabilityError):
    """Log shipping between a primary and its replica went wrong.

    Covers receive-side rejections (a fully framed shipped record that
    fails its CRC — corruption, never applied) and protocol violations
    (frames arriving out of LSN order). Torn chunks are *not* errors:
    the replica buffers them until the remaining bytes arrive.
    """


class WALCorruptionError(DurabilityError):
    """A write-ahead log record failed its checksum or framing checks.

    Torn *tails* (a record cut short by a crash mid-append) are expected
    and repaired silently; this error means bytes of a fully written
    record were altered afterwards — real corruption, not a torn write.
    """


class SnapshotCorruptionError(DurabilityError):
    """A database snapshot failed its SHA-256 integrity check."""


class SimulatedCrash(DurabilityError):
    """An injected process crash from a :class:`~repro.durability.CrashInjector`.

    Raised inside the durability I/O layer at named crash points so
    recovery tests can kill the "process" at any byte boundary that
    matters. Carries the crash point and which occurrence of it fired.
    """

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(
            f"simulated crash at point {point!r} (occurrence #{occurrence})"
        )
        self.point = point
        self.occurrence = occurrence
