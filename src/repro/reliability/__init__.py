"""Reliability for the model-serving path (Section 2.4, hardened).

The remote-API channel practitioners actually use rate-limits, times
out, and returns garbage under load. This package makes the simulated
channel fail the same way — deterministically — and makes the client
side survive it:

* :mod:`~repro.reliability.clock` — ``SystemClock`` / ``VirtualClock``;
  all sleeps and timeouts are simulated-time-testable.
* :mod:`~repro.reliability.aclock` — the same two-mode discipline for
  ``asyncio`` code: ``AsyncSystemClock`` / ``AsyncVirtualClock`` (a
  deterministic virtual-time driver for the serving gateway's tests).
* :mod:`~repro.reliability.faults` — seeded ``FaultInjector`` plus
  faulty wrappers for the completion client and the simulated Codex.
* :mod:`~repro.reliability.retry` — ``RetryPolicy`` + ``Retrier``
  (exponential backoff, decorrelated jitter, deadline budgets).
* :mod:`~repro.reliability.breaker` — per-engine ``CircuitBreaker``.
* :mod:`~repro.reliability.ratelimit` — ``TokenBucket`` self-throttle.
* :mod:`~repro.reliability.client` — ``ResilientClient`` tying it all
  together with fallback engine chains and graceful degradation.
"""

from repro.reliability.aclock import (
    AsyncClock,
    AsyncSystemClock,
    AsyncVirtualClock,
    run_virtual,
)
from repro.reliability.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.reliability.client import (
    DEGRADED_ENGINE,
    ReliabilityMetrics,
    ResilientClient,
)
from repro.reliability.clock import Clock, SystemClock, VirtualClock
from repro.reliability.faults import (
    FAULT_FREE,
    FaultInjector,
    FaultProfile,
    FaultyCodex,
    FaultyCompletionClient,
)
from repro.reliability.ratelimit import TokenBucket
from repro.reliability.retry import Retrier, RetryPolicy, decorrelated_jitter

__all__ = [
    "AsyncClock",
    "AsyncSystemClock",
    "AsyncVirtualClock",
    "run_virtual",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "DEGRADED_ENGINE",
    "ReliabilityMetrics",
    "ResilientClient",
    "Clock",
    "SystemClock",
    "VirtualClock",
    "FAULT_FREE",
    "FaultInjector",
    "FaultProfile",
    "FaultyCodex",
    "FaultyCompletionClient",
    "TokenBucket",
    "Retrier",
    "RetryPolicy",
    "decorrelated_jitter",
]
