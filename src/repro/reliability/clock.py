"""Clocks: the single place this library is allowed to touch wall time.

Every sleep, timeout, and backoff in the resilience layer is expressed
against a :class:`Clock` so that the *same* code path runs in two modes:

* :class:`SystemClock` — real ``time.monotonic``/``time.sleep`` for
  production-style use;
* :class:`VirtualClock` — a deterministic simulated clock for tests and
  benchmarks, where ``sleep`` advances simulated time instantly.

The repo linter (rule ``wall-clock``) forbids direct ``time.sleep`` /
``time.monotonic`` calls anywhere else in the tree, so all timing
behaviour stays testable without wall-clock waits.
"""

from __future__ import annotations

import time
from typing import List, Protocol

from repro.errors import ReproError


class Clock(Protocol):
    """The two operations the resilience layer needs from time."""

    def monotonic(self) -> float:
        """Seconds on a monotonically increasing clock."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        ...


class SystemClock:
    """Real time. The only sanctioned caller of the ``time`` module."""

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ReproError(f"cannot sleep a negative duration: {seconds}")
        time.sleep(seconds)


class VirtualClock:
    """A simulated clock: ``sleep`` advances time without waiting.

    Keeps a log of every sleep so tests can assert the exact backoff
    schedule a retry loop produced.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        #: total simulated seconds spent sleeping
        self.slept = 0.0
        #: individual sleep durations, in call order
        self.sleep_log: List[float] = []

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ReproError(f"cannot sleep a negative duration: {seconds}")
        self._now += seconds
        self.slept += seconds
        self.sleep_log.append(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep (external delay)."""
        if seconds < 0:
            raise ReproError(f"cannot advance a negative duration: {seconds}")
        self._now += seconds
