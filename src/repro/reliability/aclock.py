"""Async clocks: virtual time for ``asyncio`` code, deterministically.

The serving gateway (:mod:`repro.serving.gateway`) is asyncio code whose
behaviour is *time-shaped*: arrival processes, deadline budgets, breaker
reset timeouts, token-bucket refills. Testing that with wall-clock
sleeps would be slow and flaky, so this module extends the repo's
two-mode clock discipline (:mod:`repro.reliability.clock`) to the event
loop:

* :class:`AsyncSystemClock` — real time; ``sleep`` is ``asyncio.sleep``.
* :class:`AsyncVirtualClock` — simulated time over a shared
  :class:`~repro.reliability.clock.VirtualClock`. Coroutines ``await
  clock.sleep(dt)`` on a timer heap; a driver loop
  (:meth:`AsyncVirtualClock.run`) advances virtual time to the earliest
  pending timer whenever every task is quiescent, so a minute-long load
  sweep runs in milliseconds and every interleaving is reproducible.

Because the virtual clock wraps the *same* ``VirtualClock`` instance the
synchronous reliability pieces use (``TokenBucket``, ``CircuitBreaker``,
``Retrier`` deadline budgets), quota refills and breaker timeouts ride
the identical timeline as the asyncio arrivals — one clock, two calling
conventions.

Real compute that must not be simulated away (a decode running in a
worker thread) registers with :meth:`AsyncVirtualClock.wait_external`:
while any external future is in flight the driver refuses to advance
virtual time, so compute is an *instantaneous* event at the virtual
instant it started and its cost is modelled explicitly (the gateway
charges a configurable service time per decode step afterwards).
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Awaitable, List, Optional, Protocol, Tuple, TypeVar

from repro.errors import ReproError
from repro.reliability.clock import SystemClock, VirtualClock

T = TypeVar("T")


class AsyncClock(Protocol):
    """What async serving code needs from time."""

    def monotonic(self) -> float:
        """Seconds on a monotonically increasing clock."""
        ...

    async def sleep(self, seconds: float) -> None:
        """Suspend the calling task for ``seconds`` of clock time."""
        ...

    async def wait_external(self, awaitable: Awaitable[T]) -> T:
        """Await real (non-simulated) work, e.g. an executor future."""
        ...


class AsyncSystemClock:
    """Real time for the event loop; ``sleep`` is ``asyncio.sleep``."""

    def __init__(self) -> None:
        self._clock = SystemClock()

    def monotonic(self) -> float:
        return self._clock.monotonic()

    async def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ReproError(f"cannot sleep a negative duration: {seconds}")
        await asyncio.sleep(seconds)

    async def wait_external(self, awaitable: Awaitable[T]) -> T:
        """Real work needs no special handling on a real clock."""
        return await awaitable


class AsyncVirtualClock:
    """Deterministic simulated time for ``asyncio`` tasks.

    Tasks call :meth:`sleep`, which parks them on a ``(deadline, seq)``
    timer heap; :meth:`run` drives the supplied coroutines to
    completion, repeatedly letting every runnable task make progress
    (a bounded *drain* of the event loop's ready queue) and then firing
    the earliest timer — advancing the wrapped
    :class:`~repro.reliability.clock.VirtualClock` — once nothing can
    run at the current instant. Timer ties break by registration order,
    so runs are reproducible.

    Shared state discipline: the timer heap and external-future set are
    only mutated from synchronous sections of coroutines running on the
    single event loop (never from worker threads), so no lock is
    needed; the ``shared-state-mutation`` lint rule confirms no
    ``async def`` in this module mutates instance state directly.
    """

    #: ready-queue drain rounds per step; each round lets every ready
    #: task advance one suspension point, so this bounds the longest
    #: same-instant wake-up chain (future → dispatch → waiter → stats)
    DRAIN_ROUNDS = 32

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self._clock = clock if clock is not None else VirtualClock()
        self._timers: List[Tuple[float, int, asyncio.Future]] = []
        self._seq = 0
        self._external: List[asyncio.Future] = []
        #: timers fired by the driver (diagnostics)
        self.fired = 0

    @property
    def virtual(self) -> VirtualClock:
        """The wrapped sync clock (share it with buckets/breakers)."""
        return self._clock

    def monotonic(self) -> float:
        return self._clock.monotonic()

    async def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ReproError(f"cannot sleep a negative duration: {seconds}")
        if seconds == 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        self._register_timer(self._clock.monotonic() + seconds, future)
        await future

    async def wait_external(self, awaitable: Awaitable[T]) -> T:
        """Await real work; virtual time freezes until it completes."""
        future = asyncio.ensure_future(awaitable)
        self._register_external(future)
        return await future

    def _register_timer(self, deadline: float, future: asyncio.Future) -> None:
        heapq.heappush(self._timers, (deadline, self._seq, future))
        self._seq += 1

    def _register_external(self, future: asyncio.Future) -> None:
        self._external.append(future)

    def _prune_external(self) -> List[asyncio.Future]:
        """Drop completed external futures; return those still pending."""
        self._external = [f for f in self._external if not f.done()]
        return self._external

    def _fire_next_timer(self) -> None:
        deadline, _, future = heapq.heappop(self._timers)
        now = self._clock.monotonic()
        if deadline > now:
            self._clock.advance(deadline - now)
        self.fired += 1
        if not future.done():  # the sleeper may have been cancelled
            future.set_result(None)

    async def run(self, *coros: Awaitable) -> list:
        """Drive ``coros`` to completion under virtual time.

        Returns their results in order. Raises
        :class:`~repro.errors.ReproError` on a virtual-time deadlock:
        the supplied tasks are still pending but no timer and no
        external work could ever wake them.
        """
        tasks = [asyncio.ensure_future(c) for c in coros]
        try:
            while not all(t.done() for t in tasks):
                await self._drain()
                if all(t.done() for t in tasks):
                    break
                pending_external = self._prune_external()
                if pending_external:
                    await asyncio.wait(
                        pending_external, return_when=asyncio.FIRST_COMPLETED
                    )
                    continue
                if self._timers:
                    self._fire_next_timer()
                    continue
                raise ReproError(
                    "virtual-time deadlock: tasks pending but no timers "
                    "and no external work remain"
                )
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
        return [task.result() for task in tasks]

    async def _drain(self) -> None:
        """Let every runnable task advance at the current instant."""
        for _ in range(self.DRAIN_ROUNDS):
            await asyncio.sleep(0)


def run_virtual(coro: Awaitable[T], clock: AsyncVirtualClock) -> T:
    """``asyncio.run`` one coroutine under an :class:`AsyncVirtualClock`."""
    async def main() -> list:
        return await clock.run(coro)

    return asyncio.run(main())[0]
