"""A token-bucket rate limiter driven by a :class:`Clock`.

The bucket refills continuously at ``rate`` tokens per second up to
``capacity`` (the allowed burst). ``acquire`` blocks — via the clock, so
deterministically under a :class:`~repro.reliability.clock.VirtualClock`
— until a token is available, which smooths a client's request rate to
stay under the serving path's quota instead of bouncing off 429s.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.reliability.clock import Clock, SystemClock


class TokenBucket:
    """Continuous-refill token bucket."""

    def __init__(
        self,
        rate: float,
        capacity: Optional[float] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if rate <= 0:
            raise ReproError("rate must be positive (tokens per second)")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else max(1.0, rate)
        if self.capacity < 1:
            raise ReproError("capacity must allow at least one token")
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._tokens = self.capacity
        self._last_refill = self.clock.monotonic()
        #: total seconds spent waiting for tokens
        self.waited = 0.0

    def _refill(self) -> None:
        now = self.clock.monotonic()
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    @property
    def tokens(self) -> float:
        """Tokens available right now."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available without waiting."""
        self._check(tokens)
        self._refill()
        if self._tokens < tokens:
            return False
        self._tokens -= tokens
        return True

    def acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens``, sleeping until the bucket refills enough.

        Returns the seconds waited (0.0 when the bucket had capacity).
        """
        self._check(tokens)
        self._refill()
        wait = 0.0
        if self._tokens < tokens:
            wait = (tokens - self._tokens) / self.rate
            self.clock.sleep(wait)
            self._refill()
        self._tokens -= tokens
        self.waited += wait
        return wait

    def _check(self, tokens: float) -> None:
        if tokens <= 0:
            raise ReproError("must acquire a positive number of tokens")
        if tokens > self.capacity:
            raise ReproError(
                f"cannot acquire {tokens} tokens from a bucket of "
                f"capacity {self.capacity}"
            )
