"""The hardened completion client: retry, break, throttle, degrade.

:class:`ResilientClient` wraps any object with the
:class:`~repro.api.client.CompletionClient` interface and layers on, in
order per request:

1. a token-bucket rate limiter (self-throttle under the provider quota);
2. a per-engine circuit breaker (fail fast on a dead engine);
3. retry with exponential backoff + decorrelated jitter, honoring
   server-advertised ``retry-after`` and a per-request deadline budget;
4. a fallback engine chain (large engine -> small engine), and finally
5. an optional non-LLM baseline that produces a *degraded* answer so
   the serving path keeps answering even with every engine down.

All time flows through a :class:`~repro.reliability.clock.Clock` and all
jitter through a seeded RNG, so one seed replays the exact same
retries, fallbacks, and breaker trips.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # runtime import is deferred to break the cycle with
    from repro.api.client import CompletionResponse  # repro.api -> serving

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    TransientError,
)
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.clock import Clock, SystemClock
from repro.reliability.ratelimit import TokenBucket
from repro.reliability.retry import Retrier, RetryPolicy

#: engine name reported on degraded (baseline-produced) responses
DEGRADED_ENGINE = "baseline"


@dataclass(frozen=True)
class ReliabilityMetrics:
    """What the resilience layer did, in one deterministic snapshot."""

    requests: int = 0
    successes: int = 0
    retries: int = 0
    rate_limited: int = 0
    backoff_seconds: float = 0.0
    throttle_seconds: float = 0.0
    breaker_trips: int = 0
    breaker_short_circuits: int = 0
    fallbacks: int = 0
    degraded_answers: int = 0
    deadline_exceeded: int = 0
    exhausted: int = 0

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)


class ResilientClient:
    """A completion client that survives a misbehaving backend."""

    def __init__(
        self,
        client,
        policy: RetryPolicy = RetryPolicy(),
        fallback_engines: Optional[Dict[str, Sequence[str]]] = None,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        requests_per_second: Optional[float] = None,
        burst: Optional[float] = None,
        baseline: Optional[Callable[[str], str]] = None,
        clock: Optional[Clock] = None,
        seed: int = 0,
    ) -> None:
        self.client = client
        self.policy = policy
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.baseline = baseline
        self._fallbacks = {
            engine: list(chain) for engine, chain in (fallback_engines or {}).items()
        }
        self._failure_threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._retrier = Retrier(policy, clock=self.clock, seed=seed)
        self._limiter = (
            TokenBucket(requests_per_second, burst, clock=self.clock)
            if requests_per_second is not None
            else None
        )
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._requests = 0
        self._successes = 0
        self._fallback_answers = 0
        self._degraded_answers = 0
        self._short_circuits = 0
        self._deadline_exceeded = 0
        self._exhausted = 0

    # -- introspection -----------------------------------------------------
    def breaker(self, engine: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding ``engine``."""
        if engine not in self._breakers:
            self._breakers[engine] = CircuitBreaker(
                failure_threshold=self._failure_threshold,
                reset_timeout=self._reset_timeout,
                clock=self.clock,
            )
        return self._breakers[engine]

    @property
    def metrics(self) -> ReliabilityMetrics:
        return ReliabilityMetrics(
            requests=self._requests,
            successes=self._successes,
            retries=self._retrier.retries,
            rate_limited=self._retrier.rate_limited,
            backoff_seconds=self._retrier.backoff_seconds,
            throttle_seconds=self._limiter.waited if self._limiter else 0.0,
            breaker_trips=sum(b.trips for b in self._breakers.values()),
            breaker_short_circuits=self._short_circuits,
            fallbacks=self._fallback_answers,
            degraded_answers=self._degraded_answers,
            deadline_exceeded=self._deadline_exceeded,
            exhausted=self._exhausted,
        )

    def chain_for(self, engine: str) -> List[str]:
        """The engines tried for a request, in degradation order."""
        return [engine] + [
            fallback
            for fallback in self._fallbacks.get(engine, [])
            if fallback != engine
        ]

    # -- the request path --------------------------------------------------
    def complete(self, engine: str, prompt: str, **kwargs) -> CompletionResponse:
        """Complete ``prompt``, degrading across the engine chain.

        Raises :class:`~repro.errors.CircuitOpenError` only when every
        engine's breaker refused and no baseline is configured;
        otherwise the last engine's terminal error propagates.
        """
        self._requests += 1
        anchor = self.clock.monotonic()
        last_error: Optional[ReproError] = None
        for position, candidate in enumerate(self.chain_for(engine)):
            breaker = self.breaker(candidate)
            if not breaker.allow():
                self._short_circuits += 1
                continue
            try:
                response = self._retrier.call(
                    lambda: self._attempt(candidate, prompt, kwargs), start=anchor
                )
            except DeadlineExceededError as exc:
                breaker.record_failure()
                self._deadline_exceeded += 1
                last_error = exc
                break  # the budget is spent; no point trying fallbacks
            except TransientError as exc:
                breaker.record_failure()
                last_error = exc
                continue
            breaker.record_success()
            self._successes += 1
            if position:
                self._fallback_answers += 1
            return response
        return self._degrade(engine, prompt, last_error)

    def complete_batch(
        self, engine: str, prompts: Sequence[str], **kwargs
    ) -> List[CompletionResponse]:
        """Complete many prompts, batched when the stack allows it.

        The whole batch is attempted as *one unit* through the primary
        engine's breaker and the retrier (a batched call is one request
        to the provider). Any terminal failure — and an inner client
        without ``complete_batch`` — falls back to the per-prompt
        :meth:`complete` path, which carries the full fallback chain and
        baseline degradation, so batching never weakens reliability.
        """
        prompts = list(prompts)
        if not prompts:
            return []
        if getattr(self.client, "complete_batch", None) is not None:
            breaker = self.breaker(engine)
            if breaker.allow():
                anchor = self.clock.monotonic()
                try:
                    responses = self._retrier.call(
                        lambda: self._attempt_batch(engine, prompts, kwargs),
                        start=anchor,
                    )
                except DeadlineExceededError:
                    breaker.record_failure()
                    self._deadline_exceeded += 1
                except TransientError:
                    breaker.record_failure()
                else:
                    breaker.record_success()
                    self._requests += len(prompts)
                    self._successes += len(prompts)
                    return list(responses)
            else:
                self._short_circuits += 1
        return [self.complete(engine, prompt, **kwargs) for prompt in prompts]

    def _attempt(self, engine: str, prompt: str, kwargs: dict) -> CompletionResponse:
        if self._limiter is not None:
            self._limiter.acquire()
        return self.client.complete(engine, prompt, **kwargs)

    def _attempt_batch(
        self, engine: str, prompts: List[str], kwargs: dict
    ) -> List[CompletionResponse]:
        if self._limiter is not None:
            self._limiter.acquire()
        return self.client.complete_batch(engine, prompts, **kwargs)

    def _degrade(
        self, engine: str, prompt: str, last_error: Optional[ReproError]
    ) -> CompletionResponse:
        if self.baseline is not None:
            # Imported here, not at module top: repro.api.client imports
            # repro.serving, whose scheduler imports repro.reliability —
            # a module-level import would close that cycle.
            from repro.api.client import CompletionChoice, CompletionResponse, Usage

            self._degraded_answers += 1
            text = self.baseline(prompt)
            return CompletionResponse(
                engine=DEGRADED_ENGINE,
                choices=[
                    CompletionChoice(text=text, index=0, finish_reason="degraded")
                ],
                usage=Usage(prompt_tokens=0, completion_tokens=0),
            )
        self._exhausted += 1
        if last_error is not None:
            raise last_error
        raise CircuitOpenError(
            f"every engine in the chain for {engine!r} has an open circuit"
        )
