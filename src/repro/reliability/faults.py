"""Seeded, deterministic fault injection for the model-serving path.

A :class:`FaultInjector` turns a perfect in-process backend into the
API practitioners actually face (Section 2.4): rate limits with a
``retry-after``, transient 5xx-style server errors, in-flight request
timeouts, and completions that come back truncated or garbled. Every
decision flows from one :class:`~repro.utils.rng.SeededRNG`, so a fault
profile plus a seed replays the exact same failure sequence — the whole
resilience layer is testable without flakiness.

:class:`FaultyCompletionClient` and :class:`FaultyCodex` wrap the two
backends downstream code talks to (the OpenAI-style
:class:`~repro.api.client.CompletionClient` and CodexDB's simulated
Codex) behind the same interfaces, so consumers cannot tell a faulty
channel from a healthy one except by the errors it raises.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import (
    RateLimitError,
    ReproError,
    RequestTimeoutError,
    TransientError,
)
from repro.reliability.clock import Clock
from repro.utils.rng import SeededRNG


@dataclass(frozen=True)
class FaultProfile:
    """Rates and shapes of injected faults.

    ``rate_limit_every`` injects *periodic* quota exhaustion (every Nth
    request, 0 = never) on top of the random ``rate_limit_rate`` —
    mirroring providers that enforce fixed request windows. ``latency``
    is the simulated service time charged to the clock per attempt, so
    deadline budgets see time pass even on success.
    """

    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    garble_rate: float = 0.0
    rate_limit_rate: float = 0.0
    rate_limit_every: int = 0
    retry_after: float = 1.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        for name in ("transient_rate", "timeout_rate", "garble_rate", "rate_limit_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ReproError(f"{name} must be in [0, 1), got {value}")
        if self.rate_limit_every < 0:
            raise ReproError("rate_limit_every must be >= 0")
        if self.retry_after < 0 or self.latency < 0:
            raise ReproError("retry_after and latency must be >= 0")


#: a profile that injects nothing (for overhead measurements)
FAULT_FREE = FaultProfile()


class FaultInjector:
    """Deterministically decide, per request, which fault (if any) fires."""

    def __init__(
        self,
        profile: FaultProfile = FAULT_FREE,
        seed: int = 0,
        clock: Optional[Clock] = None,
    ) -> None:
        self.profile = profile
        self.clock = clock
        self._rng = SeededRNG(seed).spawn("faults")
        self.requests = 0
        #: injected-fault counts by kind
        self.counts: Dict[str, int] = {
            "rate_limit": 0, "transient": 0, "timeout": 0, "garbled": 0,
        }

    def before_request(self, label: str = "request") -> None:
        """Charge latency, then maybe raise an injected failure."""
        self.requests += 1
        if self.profile.latency and self.clock is not None:
            self.clock.sleep(self.profile.latency)
        every = self.profile.rate_limit_every
        if (every and self.requests % every == 0) or self._rng.coin(
            self.profile.rate_limit_rate
        ):
            self.counts["rate_limit"] += 1
            raise RateLimitError(
                f"rate limit injected on {label} (request #{self.requests})",
                retry_after=self.profile.retry_after,
            )
        if self._rng.coin(self.profile.timeout_rate):
            self.counts["timeout"] += 1
            raise RequestTimeoutError(
                f"timeout injected on {label} (request #{self.requests})"
            )
        if self._rng.coin(self.profile.transient_rate):
            self.counts["transient"] += 1
            raise TransientError(
                f"server error injected on {label} (request #{self.requests})"
            )

    def maybe_garble(self, text: str) -> Tuple[str, bool]:
        """Truncate-and-corrupt ``text`` at the profile's garble rate."""
        if not self._rng.coin(self.profile.garble_rate):
            return text, False
        self.counts["garbled"] += 1
        if not text:
            return text, True
        cut = self._rng.randint(0, len(text))
        return text[:cut].rstrip(), True


class FaultyCompletionClient:
    """A :class:`~repro.api.client.CompletionClient` behind a bad network.

    Same ``complete()`` interface; injected errors surface as the
    transient taxonomy, and garbled responses come back with
    ``finish_reason == "garbled"`` and truncated text.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    @property
    def hub(self):
        return self.inner.hub

    @property
    def stats(self):
        return self.inner.stats

    @property
    def requests_served(self) -> int:
        return self.inner.requests_served

    def complete(self, engine: str, prompt: str, **kwargs):
        self.injector.before_request(engine)
        return self._garble_response(self.inner.complete(engine, prompt, **kwargs))

    def complete_batch(self, engine: str, prompts, **kwargs):
        """Batched completion over the same bad network.

        One injected-fault decision guards the whole batch (a batched
        call is one request on the wire); garbling still strikes each
        returned choice independently.
        """
        self.injector.before_request(engine)
        batch = getattr(self.inner, "complete_batch", None)
        if batch is None:
            responses = [self.inner.complete(engine, p, **kwargs) for p in prompts]
        else:
            responses = batch(engine, list(prompts), **kwargs)
        return [self._garble_response(response) for response in responses]

    def _garble_response(self, response):
        choices = []
        any_garbled = False
        for choice in response.choices:
            text, garbled = self.injector.maybe_garble(choice.text)
            any_garbled |= garbled
            if garbled:
                choice = dataclasses.replace(
                    choice, text=text, finish_reason="garbled"
                )
            choices.append(choice)
        if not any_garbled:
            return response
        return dataclasses.replace(response, choices=choices)


class FaultyCodex:
    """CodexDB's simulated Codex behind the same bad network.

    Garbling truncates the candidate program at a random line — exactly
    the half-finished completions long generations are prone to — which
    downstream static analysis rejects before execution.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    @property
    def samples_served(self) -> int:
        return self.inner.samples_served

    def sample_program(self, sql: str, options, feedback=None) -> str:
        self.injector.before_request("codex")
        return self._garble_code(self.inner.sample_program(sql, options, feedback=feedback))

    def sample_programs(self, sql: str, options, k: int, feedback=None) -> list:
        """Draw ``k`` candidates behind one injected-fault decision."""
        self.injector.before_request("codex")
        codes = self.inner.sample_programs(sql, options, k, feedback=feedback)
        return [self._garble_code(code) for code in codes]

    def _garble_code(self, code: str) -> str:
        garbled_code, garbled = self.injector.maybe_garble(code)
        if not garbled:
            return code
        # Cut at a line boundary so the truncation looks like a stopped
        # generation rather than random byte noise.
        kept_lines = garbled_code.count("\n")
        return "\n".join(code.splitlines()[: max(1, kept_lines)])
