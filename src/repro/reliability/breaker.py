"""A per-engine circuit breaker (closed / open / half-open).

After ``failure_threshold`` consecutive failures the breaker opens and
fails fast for ``reset_timeout`` clock seconds; it then lets a single
probe through (half-open). A successful probe closes the circuit, a
failed one reopens it for another full timeout.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.reliability.clock import Clock, SystemClock

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a clock-driven reset timeout."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Optional[Clock] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ReproError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ReproError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: times the breaker transitioned closed/half-open -> open
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state, accounting for reset-timeout expiry."""
        if self._state == OPEN and self._timeout_elapsed():
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request be attempted right now?

        Open circuits refuse; a half-open circuit admits the probe.
        """
        return self.state != OPEN

    def record_success(self) -> None:
        """A request succeeded: close the circuit and clear the count."""
        self._state = CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> bool:
        """A request failed; returns True when this failure trips open."""
        if self.state == HALF_OPEN:
            self._trip()
            return True
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()
            return True
        return False

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self.clock.monotonic()
        self._consecutive_failures = 0
        self.trips += 1

    def _timeout_elapsed(self) -> bool:
        return self.clock.monotonic() - self._opened_at >= self.reset_timeout
