"""Retry with exponential backoff and decorrelated jitter.

The policy follows the AWS "decorrelated jitter" recipe: each delay is
drawn uniformly from ``[base_delay, 3 * previous_delay]`` and capped at
``max_delay``, which spreads concurrent retriers apart instead of
synchronizing them into retry storms. Randomness flows through
:class:`~repro.utils.rng.SeededRNG`, so a seeded retrier produces the
exact same backoff schedule on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.errors import DeadlineExceededError, RateLimitError, ReproError, TransientError
from repro.reliability.clock import Clock, SystemClock
from repro.utils.rng import SeededRNG

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How a request may be retried and how long it may take in total.

    ``deadline`` is a per-request *budget* in clock seconds spanning all
    attempts and backoff sleeps (None = unbounded). A retry loop raises
    :class:`~repro.errors.DeadlineExceededError` rather than start a
    sleep that would overspend the budget.
    """

    max_retries: int = 5
    base_delay: float = 0.05
    max_delay: float = 5.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError("max_retries must be >= 0")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ReproError("need 0 < base_delay <= max_delay")
        if self.deadline is not None and self.deadline <= 0:
            raise ReproError("deadline must be positive when set")


def decorrelated_jitter(
    policy: RetryPolicy, previous_delay: float, rng: SeededRNG
) -> float:
    """Draw the next backoff delay from the decorrelated-jitter scheme."""
    high = max(previous_delay * 3.0, policy.base_delay)
    return min(policy.max_delay, rng.uniform(policy.base_delay, high))


class Retrier:
    """Run callables under a :class:`RetryPolicy`, counting what happened.

    Only :class:`~repro.errors.TransientError` (and subclasses) are
    retried; every other exception propagates untouched. A
    :class:`~repro.errors.RateLimitError` never retries sooner than its
    advertised ``retry_after``.
    """

    def __init__(
        self,
        policy: RetryPolicy = RetryPolicy(),
        clock: Optional[Clock] = None,
        seed: int = 0,
    ) -> None:
        self.policy = policy
        self.clock: Clock = clock if clock is not None else SystemClock()
        self._rng = SeededRNG(seed).spawn("retry")
        #: retries performed (attempts beyond the first, across all calls)
        self.retries = 0
        #: rate-limit responses observed
        self.rate_limited = 0
        #: simulated/real seconds spent backing off
        self.backoff_seconds = 0.0

    def call(self, fn: Callable[[], T], start: Optional[float] = None) -> T:
        """Invoke ``fn`` until it succeeds, retries run out, or the
        deadline would be overspent.

        ``start`` anchors the deadline budget; callers sharing one
        budget across several ``call``s (e.g. a fallback chain) pass the
        same anchor each time.
        """
        anchor = self.clock.monotonic() if start is None else start
        delay = self.policy.base_delay
        failures = 0
        while True:
            self._check_deadline(anchor, 0.0, None)
            try:
                return fn()
            except TransientError as exc:
                if isinstance(exc, RateLimitError):
                    self.rate_limited += 1
                failures += 1
                if failures > self.policy.max_retries:
                    raise
                delay = decorrelated_jitter(self.policy, delay, self._rng)
                if isinstance(exc, RateLimitError):
                    delay = max(delay, exc.retry_after)
                self._check_deadline(anchor, delay, exc)
                self.retries += 1
                self.backoff_seconds += delay
                self.clock.sleep(delay)

    def _check_deadline(
        self, anchor: float, upcoming: float, cause: Optional[Exception]
    ) -> None:
        if self.policy.deadline is None:
            return
        projected = self.clock.monotonic() - anchor + upcoming
        if projected > self.policy.deadline:
            raise DeadlineExceededError(
                f"request budget of {self.policy.deadline:.3f}s exhausted "
                f"(would reach {projected:.3f}s)"
            ) from cause
