"""Text-to-SQL translation (the classic NLP-for-databases task, §2.5).

Three translators over the same synthetic Spider-style workload:

* :class:`RuleBasedTranslator` — a keyword/heuristic semantic parser in
  the spirit of pre-neural systems (NaLIR [46]).
* :class:`LMTranslator` — a fine-tuned causal LM that emits SQL tokens,
  optionally with **grammar-constrained decoding** in the spirit of
  PICARD [69]: at every step, only tokens that keep the SQL prefix
  parseable *and schema-consistent* are allowed.

Quality is measured by **execution accuracy**: predicted and gold SQL
are both run on the in-memory engine and their result sets compared.
"""

from repro.text2sql.workload import (
    Text2SQLExample,
    Text2SQLWorkload,
    generate_workload,
)
from repro.text2sql.baseline import RuleBasedTranslator
from repro.text2sql.constraint import SQLGrammarConstraint, allowed_continuations
from repro.text2sql.translator import (
    ClientTranslator,
    LMTranslator,
    register_translator,
    train_translator,
)
from repro.text2sql.evaluate import (
    EvaluationReport,
    evaluate_translator,
    execution_match,
    is_statically_valid,
)

__all__ = [
    "Text2SQLExample",
    "Text2SQLWorkload",
    "generate_workload",
    "RuleBasedTranslator",
    "LMTranslator",
    "ClientTranslator",
    "register_translator",
    "train_translator",
    "SQLGrammarConstraint",
    "allowed_continuations",
    "EvaluationReport",
    "evaluate_translator",
    "execution_match",
    "is_statically_valid",
]
