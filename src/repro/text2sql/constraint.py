"""PICARD-style grammar-constrained decoding for SQL generation.

The constraint incrementally parses the generated SQL token prefix
against a schema-specialized grammar: every alternative is expanded per
table (and per column for value positions), so schema consistency holds
*by construction* — e.g. after ``select salary from`` only tables that
actually contain ``salary`` are permitted, which is exactly the
incremental filtering PICARD [69] performs on top of a large LM.

The grammar engine is a tiny parser-combinator library over word
tokens. ``advance(tokens, i)`` returns both the positions a rule can
reach and the set of tokens it would accept next when input runs out —
the union of the latter over all live alternatives is the allowed-token
set for the decoder.
"""

from __future__ import annotations

import re
from typing import Callable, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import Text2SQLError
from repro.tokenizers import Tokenizer
from repro.text2sql.workload import Text2SQLWorkload

_NUMBER_RE = re.compile(r"^\d+$")


# -- parser combinators -------------------------------------------------------
class Rule:
    """Base grammar rule over a token sequence."""

    def advance(self, tokens: Sequence[str], i: int) -> Tuple[Set[int], Set[str]]:
        """Return (reachable end positions, allowed tokens at prefix end)."""
        raise NotImplementedError


class Tok(Rule):
    """Match one token from a fixed candidate set."""

    def __init__(self, *candidates: str) -> None:
        self.candidates = frozenset(candidates)

    def advance(self, tokens: Sequence[str], i: int) -> Tuple[Set[int], Set[str]]:
        if i >= len(tokens):
            return set(), set(self.candidates)
        if tokens[i] in self.candidates:
            return {i + 1}, set()
        return set(), set()


class Number(Rule):
    """Match any integer token; offer ``suggestions`` while decoding."""

    def __init__(self, suggestions: Sequence[str]) -> None:
        self.suggestions = [s for s in suggestions if _NUMBER_RE.match(s)]

    def advance(self, tokens: Sequence[str], i: int) -> Tuple[Set[int], Set[str]]:
        if i >= len(tokens):
            return set(), set(self.suggestions)
        if _NUMBER_RE.match(tokens[i]):
            return {i + 1}, set()
        return set(), set()


class Seq(Rule):
    """Match rules one after another."""

    def __init__(self, *rules: Rule) -> None:
        self.rules = rules

    def advance(self, tokens: Sequence[str], i: int) -> Tuple[Set[int], Set[str]]:
        positions = {i}
        allowed: Set[str] = set()
        for rule in self.rules:
            next_positions: Set[int] = set()
            for position in positions:
                ends, nexts = rule.advance(tokens, position)
                next_positions |= ends
                allowed |= nexts
            if not next_positions:
                return set(), allowed
            positions = next_positions
        return positions, allowed


class Alt(Rule):
    """Match any one of several alternatives."""

    def __init__(self, *rules: Rule) -> None:
        self.rules = rules

    def advance(self, tokens: Sequence[str], i: int) -> Tuple[Set[int], Set[str]]:
        positions: Set[int] = set()
        allowed: Set[str] = set()
        for rule in self.rules:
            ends, nexts = rule.advance(tokens, i)
            positions |= ends
            allowed |= nexts
        return positions, allowed


class Opt(Rule):
    """Match a rule or nothing."""

    def __init__(self, rule: Rule) -> None:
        self.rule = rule

    def advance(self, tokens: Sequence[str], i: int) -> Tuple[Set[int], Set[str]]:
        ends, allowed = self.rule.advance(tokens, i)
        return ends | {i}, allowed


# -- the SQL grammar, specialized to a workload's schema ---------------------
def build_sql_grammar(
    workload: Text2SQLWorkload, question: Optional[str] = None
) -> Rule:
    """Build the schema-specialized grammar for one workload.

    ``question`` enables value linking: number literals mentioned in the
    question are offered as decoding suggestions (plus ``1`` for LIMIT).
    """
    question_numbers = re.findall(r"\d+", question or "")
    number_suggestions = sorted(set(question_numbers)) or ["1"]
    lexicon = workload.value_lexicon()

    def simple_query(table: str) -> Rule:
        columns = workload.columns_of(table)
        text_cols = [c for c in columns if _is_text_col(workload, table, c)]
        num_cols = [c for c in columns if c not in text_cols]
        agg = Tok("avg", "min", "max", "sum")
        count_star = Seq(Tok("count"), Tok("("), Tok("*"), Tok(")"))
        agg_col = Seq(agg, Tok("("), Tok(*num_cols), Tok(")")) if num_cols else None

        head_options: List[Rule] = [Tok(*columns), count_star]
        if agg_col is not None:
            head_options.append(agg_col)
        # GROUP BY heads: "catcol , count(*)" / "catcol , agg(num)".
        group_heads: List[Rule] = []
        if text_cols:
            group_agg: List[Rule] = [count_star]
            if agg_col is not None:
                group_agg.append(agg_col)
            group_heads.append(Seq(Tok(*text_cols), Tok(","), Alt(*group_agg)))
        head = Alt(*head_options, *group_heads)

        # The word tokenizer splits ">=" into ">", "=", so comparisons
        # are one token (">", "<", "=") optionally followed by "=".
        comparison = Alt(Seq(Tok(">", "<"), Opt(Tok("="))), Tok("="))
        predicates: List[Rule] = []
        if num_cols:
            predicates.append(
                Seq(Tok(*num_cols), comparison, Number(number_suggestions))
            )
        for column in text_cols:
            values = lexicon.get(column, [])
            if values:
                predicates.append(
                    Seq(Tok(column), Tok("="), Tok("'"), Tok(*values), Tok("'"))
                )
        where = Opt(Seq(Tok("where"), Alt(*predicates))) if predicates else Seq()
        group = (
            Opt(Seq(Tok("group"), Tok("by"), Tok(*text_cols)))
            if text_cols else Seq()
        )
        order = (
            Opt(Seq(Tok("order"), Tok("by"), Tok(*num_cols),
                    Opt(Tok("desc", "asc")), Tok("limit"), Number(["1"])))
            if num_cols else Seq()
        )
        return Seq(Tok("select"), head, Tok("from"), Tok(table), where, group, order)

    def join_query(left: str, right: str, key: str) -> Rule:
        left_cols = workload.columns_of(left)
        right_text = [
            c for c in workload.columns_of(right)
            if _is_text_col(workload, right, c) and c != key
        ]
        predicates: List[Rule] = []
        for column in right_text:
            values = lexicon.get(column, [])
            if values:
                predicates.append(
                    Seq(Tok(right), Tok("."), Tok(column), Tok("="),
                        Tok("'"), Tok(*values), Tok("'"))
                )
        if not predicates:
            predicates.append(Seq(Tok("1"), Tok("="), Tok("1")))
        return Seq(
            Tok("select"), Tok(left), Tok("."), Tok(*left_cols),
            Tok("from"), Tok(left), Tok("join"), Tok(right),
            Tok("on"), Tok(left), Tok("."), Tok(key), Tok("="),
            Tok(right), Tok("."), Tok(key),
            Tok("where"), Alt(*predicates),
        )

    alternatives: List[Rule] = [
        simple_query(workload.entity_table),
        simple_query(workload.cat_table),
        join_query(workload.entity_table, workload.cat_table, workload.cat_col),
    ]
    return Alt(*alternatives)


def _is_text_col(workload: Text2SQLWorkload, table: str, column: str) -> bool:
    schema = workload.db.table(table).schema
    return schema.column(column).sql_type.value == "TEXT"


def allowed_continuations(
    grammar: Rule, prefix_tokens: Sequence[str]
) -> Tuple[Set[str], bool]:
    """Return (allowed next tokens, whether the prefix is a complete query)."""
    ends, allowed = grammar.advance(prefix_tokens, 0)
    complete = len(prefix_tokens) in ends
    return allowed, complete


class SQLGrammarConstraint:
    """A :class:`~repro.generation.decoding.TokenConstraint` for SQL.

    Maps between the decoder's token ids and grammar token strings. When
    the prefix forms a complete query the EOS token is offered (and is
    the *only* option once no continuation exists).
    """

    def __init__(
        self,
        workload: Text2SQLWorkload,
        tokenizer: Tokenizer,
        question: Optional[str] = None,
    ) -> None:
        self.grammar = build_sql_grammar(workload, question)
        self.tokenizer = tokenizer
        self._eos = tokenizer.vocab.eos_id

    def allowed_tokens(self, generated_ids: Sequence[int]) -> Optional[Sequence[int]]:
        prefix = [
            self.tokenizer.vocab.token_of(token_id) for token_id in generated_ids
        ]
        allowed, complete = allowed_continuations(self.grammar, prefix)
        ids = [
            self.tokenizer.vocab.id_of(token)
            for token in allowed
            if token in self.tokenizer.vocab
        ]
        if complete:
            ids.append(self._eos)
        if not ids:
            raise Text2SQLError(
                f"constrained decoding reached a dead end after {prefix!r}"
            )
        return sorted(set(ids))
