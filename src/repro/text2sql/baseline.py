"""A rule-based text-to-SQL baseline (pre-neural, NaLIR-style).

The translator matches question words against the schema lexicon
(table/column names), detects aggregate trigger words ("how many",
"average", "highest"), comparison phrases ("greater than"), and literal
values. It handles the transparent phrasings well but — like the
keyword systems it emulates — degrades on paraphrases and on
compositional shapes (grouping, joins), which is the gap the tutorial's
LM-based translators close.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.text2sql.workload import Text2SQLWorkload

_COMPARISONS = [
    ("greater than", ">"),
    ("more than", ">"),
    ("above", ">"),
    ("less than", "<"),
    ("below", "<"),
    ("at least", ">="),
    ("at most", "<="),
]

_AGGREGATES = [
    ("average", "avg"),
    ("total number", None),  # handled as COUNT
    ("total", "sum"),
    ("highest", "max"),
    ("top", "max"),
    ("lowest", "min"),
    ("how many", None),
    ("count", None),
]


class RuleBasedTranslator:
    """Keyword-matching semantic parser over one workload's schema."""

    def __init__(self, workload: Text2SQLWorkload) -> None:
        self.workload = workload
        self.lexicon = workload.value_lexicon()

    def translate(self, question: str) -> str:
        """Produce linearized SQL for a question (best effort)."""
        q = question.lower()
        table = self._detect_table(q)
        columns = self.workload.columns_of(table)
        num_cols = [c for c in columns if c in self.workload.num_cols]
        mentioned_cols = [c for c in columns if re.search(rf"\b{c}\b", q)]
        where = self._detect_predicate(q, table)

        # Aggregates and counting.
        agg = self._detect_aggregate(q)
        if agg == "count":
            group_col = self._detect_group(q, table)
            if group_col:
                return self._assemble(
                    f"{group_col} , count ( * )", table, where, group=group_col
                )
            return self._assemble("count ( * )", table, where)
        if agg in ("avg", "sum", "max", "min"):
            target = next((c for c in mentioned_cols if c in num_cols), None)
            if target is not None:
                # "highest X" with a requested name column is an argmax.
                name_request = next(
                    (c for c in mentioned_cols if c not in num_cols), None
                )
                if agg == "max" and name_request:
                    return (
                        f"select {name_request} from {table} "
                        f"order by {target} desc limit 1"
                    )
                group_col = self._detect_group(q, table)
                if group_col:
                    return self._assemble(
                        f"{group_col} , {agg} ( {target} )", table, where,
                        group=group_col,
                    )
                return self._assemble(f"{agg} ( {target} )", table, where)

        # Plain projection: first mentioned column, else the name column.
        projection = mentioned_cols[0] if mentioned_cols else self.workload.name_col
        return self._assemble(projection, table, where)

    # -- detection helpers ------------------------------------------------
    def _detect_table(self, q: str) -> str:
        for table in self.workload.tables:
            if re.search(rf"\b{table}\b", q):
                return table
        return self.workload.entity_table

    def _detect_aggregate(self, q: str) -> Optional[str]:
        for phrase, agg in _AGGREGATES:
            if phrase in q:
                return agg if agg is not None else "count"
        return None

    def _detect_group(self, q: str, table: str) -> Optional[str]:
        if "each" in q or "per" in q:
            for column in self.workload.columns_of(table):
                if column in self.workload.num_cols:
                    continue
                if re.search(rf"\b(each|per)\s+{column}\b", q):
                    return column
        return None

    def _detect_predicate(self, q: str, table: str) -> Optional[str]:
        columns = self.workload.columns_of(table)
        # Numeric comparison: "<col> ... <comparison phrase> <number>".
        for phrase, op in _COMPARISONS:
            match = re.search(rf"{phrase}\s+(\d+)", q)
            if match:
                value = match.group(1)
                target = next(
                    (
                        c for c in columns
                        if c in self.workload.num_cols and re.search(rf"\b{c}\b", q)
                    ),
                    None,
                )
                if target:
                    return f"{target} {op} {value}"
        # Categorical equality: a lexicon value mentioned verbatim.
        for column, values in self.lexicon.items():
            if column not in columns:
                continue
            for value in values:
                if re.search(rf"\b{re.escape(value)}\b", q):
                    return f"{column} = ' {value} '"
        return None

    @staticmethod
    def _assemble(
        head: str, table: str, where: Optional[str], group: Optional[str] = None
    ) -> str:
        sql = f"select {head} from {table}"
        if where:
            sql += f" where {where}"
        if group:
            sql += f" group by {group}"
        return sql
