"""LM-based text-to-SQL: fine-tune a causal LM to emit SQL tokens.

Each training example is linearized as::

    q : <question words> ; sql : <sql tokens> [EOS]

At inference the model is prompted with ``q : <question> ; sql :`` and
decoded greedily — optionally under the PICARD-style
:class:`~repro.text2sql.constraint.SQLGrammarConstraint`.

Two serving shapes are provided: :class:`LMTranslator` calls the model
in process, and :class:`ClientTranslator` routes the same prompt
through the remote-API channel (a
:class:`~repro.api.client.CompletionClient`-shaped object — typically a
:class:`~repro.reliability.client.ResilientClient` — so translation
survives rate limits and transient serving errors, degrading to a
non-LLM fallback translator when the channel is down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sqlcheck import check_sql
from repro.autograd import cross_entropy
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    Text2SQLError,
    TransientError,
)
from repro.generation import GenerationConfig, generate
from repro.models import GPTModel, ModelConfig
from repro.serving import complete_many, engine_serving_stats
from repro.tokenizers import Tokenizer, WhitespaceTokenizer
from repro.training.data import IGNORE_INDEX
from repro.training.optim import AdamW
from repro.training.schedule import CosineSchedule
from repro.text2sql.constraint import SQLGrammarConstraint
from repro.text2sql.workload import (
    Text2SQLExample,
    Text2SQLWorkload,
    sql_to_engine_dialect,
)
from repro.utils.rng import SeededRNG

PROMPT_PREFIX = "q :"
SQL_MARKER = "; sql :"


def linearize_example(example: Text2SQLExample) -> str:
    """Render one training sequence (without EOS)."""
    return f"{PROMPT_PREFIX} {example.question} {SQL_MARKER} {example.sql}"


def build_prompt(question: str) -> str:
    """Render the inference prompt for a question."""
    return f"{PROMPT_PREFIX} {question} {SQL_MARKER}"


@dataclass
class LMTranslator:
    """A fine-tuned causal LM plus its tokenizer and source workload."""

    model: GPTModel
    tokenizer: Tokenizer
    workload: Text2SQLWorkload

    def translate(
        self,
        question: str,
        constrained: bool = False,
        max_new_tokens: int = 40,
        vet: bool = False,
    ) -> str:
        """Translate a question to linearized SQL tokens.

        With ``vet=True`` the decoded SQL is semantically validated
        against the workload's catalog (tables, columns, types) via
        :func:`repro.analysis.sqlcheck.check_sql` and replaced by ``""``
        when invalid — a cheap post-hoc filter for unconstrained
        decoding, which can emit schema-inconsistent SQL.
        """
        prompt_ids = self.tokenizer.encode(build_prompt(question), add_bos=True).ids
        constraint = (
            SQLGrammarConstraint(self.workload, self.tokenizer, question)
            if constrained
            else None
        )
        config = GenerationConfig(
            max_new_tokens=max_new_tokens,
            strategy="greedy",
            stop_ids=(self.tokenizer.vocab.eos_id,),
        )
        try:
            out_ids = generate(self.model, prompt_ids, config, constraint)
        except Text2SQLError:
            return ""  # constrained decoding dead end: treat as failure
        decoded = self.tokenizer.decode(out_ids)
        if vet and decoded:
            findings = check_sql(
                sql_to_engine_dialect(decoded), self.workload.db.catalog
            )
            if findings:
                return ""  # statically invalid: treat as failure
        return decoded


def register_translator(hub, name: str, translator: LMTranslator) -> str:
    """Expose a fine-tuned translator as a named engine in a model hub.

    Returns the engine name, for symmetry with
    ``ClientTranslator(client, engine=...)``.
    """
    hub.register(name, translator.model, translator.tokenizer)
    return name


@dataclass
class ClientTranslator:
    """Text-to-SQL served over the (possibly unreliable) API channel.

    ``client`` is anything with the ``CompletionClient.complete``
    interface; pass a :class:`~repro.reliability.ResilientClient` to get
    retry/backoff, circuit breaking, and engine fallback for free. When
    the channel still fails terminally — deadline spent, circuit open,
    retries exhausted — translation degrades to ``fallback`` (e.g. the
    rule-based baseline) instead of raising, and ``degraded`` counts how
    often that happened.
    """

    client: object
    engine: str
    workload: Text2SQLWorkload
    max_new_tokens: int = 40
    vet: bool = False
    fallback: Optional[Callable[[str], str]] = None

    def __post_init__(self) -> None:
        self.degraded = 0

    def translate(self, question: str) -> str:
        """Translate one question, never raising a serving error."""
        try:
            response = self.client.complete(
                self.engine, build_prompt(question), max_tokens=self.max_new_tokens
            )
        except (TransientError, DeadlineExceededError, CircuitOpenError):
            return self._degrade(question)
        return self._accept(question, response)

    def translate_batch(self, questions: Sequence[str]) -> List[str]:
        """Translate many questions through one batched serving call.

        Clients exposing ``complete_batch`` serve the whole workload in
        vectorized microbatches; anything else transparently degrades to
        a per-question loop — as does a terminal serving failure on the
        batched call, so the no-raise contract of :meth:`translate`
        holds here too.
        """
        questions = list(questions)
        prompts = [build_prompt(question) for question in questions]
        try:
            responses = complete_many(
                self.client, self.engine, prompts, max_tokens=self.max_new_tokens
            )
        except (TransientError, DeadlineExceededError, CircuitOpenError):
            return [self.translate(question) for question in questions]
        return [
            self._accept(question, response)
            for question, response in zip(questions, responses)
        ]

    def serving_stats(self) -> dict:
        """Prefix-cache / batching counters for this translator's engine.

        Every translated question repeats the same ``q :`` prompt shape,
        so across a sweep the engine's prefix cache absorbs most of the
        prefill; this surfaces those counters for evaluation reports.
        """
        return engine_serving_stats(self.client, self.engine)

    def _accept(self, question: str, response) -> str:
        """Vet one completion, degrading on untrusted channels."""
        decoded = response.text
        if response.choices[0].finish_reason in ("garbled", "degraded"):
            # A corrupted or baseline-produced completion is not trusted
            # as SQL; fall back rather than execute garbage.
            return self._degrade(question)
        if self.vet and decoded:
            findings = check_sql(
                sql_to_engine_dialect(decoded), self.workload.db.catalog
            )
            if findings:
                return ""  # statically invalid: treat as failure
        return decoded

    def _degrade(self, question: str) -> str:
        self.degraded += 1
        return self.fallback(question) if self.fallback is not None else ""


def train_translator(
    workload: Text2SQLWorkload,
    train_examples: Sequence[Text2SQLExample],
    steps: int = 250,
    batch_size: int = 16,
    lr: float = 3e-3,
    dim: int = 48,
    num_layers: int = 2,
    seq_len: int = 64,
    seed: int = 0,
) -> LMTranslator:
    """Fine-tune a fresh causal LM on (question, SQL) pairs.

    The loss is applied only to tokens after the ``; sql :`` marker, so
    the model learns to *emit SQL* rather than to model questions.
    """
    if not train_examples:
        raise Text2SQLError("no training examples")
    texts = [linearize_example(ex) for ex in train_examples]
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(texts, vocab_size=2048)

    config = ModelConfig(
        vocab_size=tokenizer.vocab_size,
        max_seq_len=seq_len,
        dim=dim,
        num_layers=num_layers,
        num_heads=max(2, dim // 16),
        ff_dim=4 * dim,
        causal=True,
    )
    model = GPTModel(config, seed=seed)

    rows, losses_mask = _encode_rows(texts, tokenizer, seq_len)
    rng = SeededRNG(seed)
    optimizer = AdamW(model.parameters(), lr=lr)
    schedule = CosineSchedule(warmup_steps=min(20, steps // 10 + 1), total_steps=steps)

    model.train()
    n = rows.shape[0]
    for step in range(steps):
        idx = rng.generator.choice(n, size=min(batch_size, n), replace=False)
        inputs = rows[idx, :-1]
        targets = rows[idx, 1:].copy()
        mask = losses_mask[idx, 1:]
        targets[~mask] = IGNORE_INDEX
        logits = model(inputs)
        loss = cross_entropy(
            logits.reshape(-1, config.vocab_size),
            targets.reshape(-1),
            ignore_index=IGNORE_INDEX,
        )
        optimizer.zero_grad()
        loss.backward()
        optimizer.clip_grad_norm(1.0)
        optimizer.lr = schedule.lr_at(step, lr)
        optimizer.step()
    model.eval()
    return LMTranslator(model=model, tokenizer=tokenizer, workload=workload)


def _encode_rows(
    texts: Sequence[str], tokenizer: Tokenizer, seq_len: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Encode texts to fixed-length rows plus a supervise-here mask.

    The mask is True for SQL tokens (everything after the ``; sql :``
    marker) and the closing EOS, False for the question prefix and padding.
    """
    marker_ids = tokenizer.encode(SQL_MARKER).ids
    rows: List[List[int]] = []
    masks: List[List[bool]] = []
    for text in texts:
        encoding = tokenizer.encode(text, add_bos=True, add_eos=True)
        ids = encoding.ids[:seq_len]
        marker_end = _find_subsequence(ids, marker_ids)
        if marker_end is None:
            raise Text2SQLError(f"marker not found in encoded example: {text!r}")
        mask = [False] * marker_end + [True] * (len(ids) - marker_end)
        pad = seq_len - len(ids)
        rows.append(ids + [tokenizer.vocab.pad_id] * pad)
        masks.append(mask + [False] * pad)
    return np.array(rows, dtype=np.int64), np.array(masks, dtype=bool)


def _find_subsequence(haystack: List[int], needle: List[int]) -> Optional[int]:
    """Index just past the first occurrence of ``needle``, or None."""
    for start in range(len(haystack) - len(needle) + 1):
        if haystack[start: start + len(needle)] == needle:
            return start + len(needle)
    return None
