"""Execution-accuracy evaluation for text-to-SQL translators."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sqlcheck import check_sql
from repro.errors import ReproError
from repro.sql import Database
from repro.text2sql.workload import (
    HARDNESS_LEVELS,
    Text2SQLExample,
    Text2SQLWorkload,
    sql_to_engine_dialect,
)

Translator = Callable[[str], str]


@dataclass
class EvaluationReport:
    """Execution accuracy, overall and per hardness level.

    ``static_valid`` counts predictions that pass semantic validation
    (:func:`repro.analysis.sqlcheck.check_sql`) against the workload's
    catalog — schema errors caught *without* running the query. It is
    reported alongside ``valid_sql`` (the execution-based validity
    check) so the gap between the two shows queries that are
    schema-consistent yet still crash, and vice versa.

    When the translator was served through the resilient API channel,
    ``reliability`` carries the serving-side counters (retries,
    fallbacks, breaker trips, degraded answers) next to accuracy — both
    halves of the question "did it answer, and was it right?".
    ``serving`` likewise carries the engine's throughput counters
    (prefix-cache hits, reused prefill tokens, continuous-batching
    refills) so reports show what the sweep *cost*, not just what it
    scored.
    """

    total: int = 0
    correct: int = 0
    valid_sql: int = 0
    static_valid: int = 0
    by_hardness: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    reliability: Optional[Dict[str, float]] = None
    serving: Optional[Dict[str, float]] = None

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    @property
    def validity_rate(self) -> float:
        return self.valid_sql / self.total if self.total else 0.0

    @property
    def static_valid_rate(self) -> float:
        return self.static_valid / self.total if self.total else 0.0

    def hardness_accuracy(self, level: str) -> float:
        correct, total = self.by_hardness.get(level, (0, 0))
        return correct / total if total else 0.0

    def rows(self) -> List[Tuple[str, float]]:
        """Per-hardness accuracy rows for benchmark printouts."""
        return [
            (level, self.hardness_accuracy(level))
            for level in HARDNESS_LEVELS
            if level in self.by_hardness
        ]


def execution_match(db: Database, predicted_sql: str, gold_sql: str) -> bool:
    """Run both queries; compare result multisets (order-insensitive
    unless the gold query orders its output)."""
    try:
        predicted = db.execute(sql_to_engine_dialect(predicted_sql))
    except ReproError:
        return False
    gold = db.execute(sql_to_engine_dialect(gold_sql))
    ordered = "order by" in gold_sql.lower()
    if ordered:
        return predicted.rows == gold.rows
    return Counter(predicted.rows) == Counter(gold.rows)


def is_valid_sql(db: Database, sql: str) -> bool:
    """True if the engine can parse and execute the query."""
    try:
        db.execute(sql_to_engine_dialect(sql))
        return True
    except ReproError:
        return False


def is_statically_valid(db: Database, sql: str) -> bool:
    """True if the query passes semantic validation without executing.

    Parses the (linearized) query and resolves every table/column
    reference and type against the database catalog via
    :func:`repro.analysis.sqlcheck.check_sql`.
    """
    return not check_sql(sql_to_engine_dialect(sql), db.catalog)


def evaluate_translator(
    translate: Translator,
    workload: Text2SQLWorkload,
    examples: Sequence[Text2SQLExample],
    reliability_source: Optional[object] = None,
    translate_batch: Optional[Callable[[Sequence[str]], List[str]]] = None,
    serving_source: Optional[Callable[[], Dict[str, float]]] = None,
    engine: Optional[object] = None,
) -> EvaluationReport:
    """Score a translator by execution accuracy on ``examples``.

    ``reliability_source`` is anything exposing a ``metrics`` attribute
    with ``as_dict()`` (a :class:`~repro.reliability.ResilientClient`);
    its snapshot is attached to the report as ``reliability``. With
    ``translate_batch`` (e.g. ``ClientTranslator.translate_batch``), all
    questions are translated in one batched serving call before scoring
    instead of one request per example. ``serving_source`` (e.g.
    ``ClientTranslator.serving_stats``) is called after translation and
    its dict is attached as ``serving``.

    ``engine`` substitutes the execution backend the queries are scored
    against — anything with ``execute(sql)`` and a ``catalog``, e.g. a
    :class:`~repro.sql.cluster.ClusterDatabase` built from the
    workload's tables via ``ClusterDatabase.from_database``. Verdicts
    must not depend on the backend: a correct translation is correct on
    one node or on a sharded cluster.
    """
    db = engine if engine is not None else workload.db
    report = EvaluationReport()
    counts: Dict[str, List[int]] = {}
    if translate_batch is not None:
        predictions = list(translate_batch([e.question for e in examples]))
        if len(predictions) != len(examples):
            raise ReproError("translate_batch returned a misaligned prediction list")
    else:
        predictions = [translate(example.question) for example in examples]
    for example, predicted in zip(examples, predictions):
        ok = bool(predicted) and execution_match(db, predicted, example.sql)
        valid = bool(predicted) and is_valid_sql(db, predicted)
        static = bool(predicted) and is_statically_valid(db, predicted)
        report.total += 1
        report.correct += int(ok)
        report.valid_sql += int(valid)
        report.static_valid += int(static)
        bucket = counts.setdefault(example.hardness, [0, 0])
        bucket[0] += int(ok)
        bucket[1] += 1
    report.by_hardness = {k: (v[0], v[1]) for k, v in counts.items()}
    if reliability_source is not None:
        report.reliability = dict(reliability_source.metrics.as_dict())
    if serving_source is not None:
        report.serving = dict(serving_source())
    return report
