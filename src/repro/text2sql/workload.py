"""Synthetic text-to-SQL workloads (our stand-in for Spider/WikiSQL).

Each workload is one randomly instantiated two-table schema (an entity
table plus a category table joined on a shared key), a populated
database, and a set of (natural-language question, gold SQL) pairs drawn
from templates at three hardness levels:

* ``easy``   — projections and single-predicate filters;
* ``medium`` — aggregates and argmax (ORDER BY ... LIMIT 1);
* ``hard``   — GROUP BY and join queries.

Questions are phrased with several paraphrase patterns per SQL shape so
that purely lexical translators cannot trivially invert the generator.
SQL is emitted in a lowercase, space-separated linearization whose
word-level tokens match the :class:`WhitespaceTokenizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sql import Database, Table
from repro.utils.rng import SeededRNG

# Name pools: one domain is drawn per workload seed.
_DOMAINS = [
    {
        "entity_table": "employees", "entity": "employee",
        "num_cols": ["salary", "age"], "cat_col": "department",
        "cat_table": "departments", "cat_attr": "building",
        "cat_values": ["engineering", "sales", "marketing", "finance"],
        "attr_values": ["north", "south", "east", "west"],
        "name_col": "name",
        "names": ["alice", "bob", "carol", "dave", "erin", "frank", "grace",
                  "heidi", "ivan", "judy", "mallory", "nick", "olivia", "peggy"],
    },
    {
        "entity_table": "players", "entity": "player",
        "num_cols": ["score", "height"], "cat_col": "team",
        "cat_table": "teams", "cat_attr": "city",
        "cat_values": ["tigers", "sharks", "eagles", "wolves"],
        "attr_values": ["boston", "denver", "austin", "seattle"],
        "name_col": "name",
        "names": ["smith", "jones", "brown", "davis", "miller", "wilson",
                  "moore", "taylor", "thomas", "jackson", "white", "harris"],
    },
    {
        "entity_table": "products", "entity": "product",
        "num_cols": ["price", "stock"], "cat_col": "category",
        "cat_table": "categories", "cat_attr": "aisle",
        "cat_values": ["dairy", "bakery", "produce", "frozen"],
        "attr_values": ["front", "back", "left", "right"],
        "name_col": "name",
        "names": ["milk", "bread", "cheese", "apples", "yogurt", "butter",
                  "rice", "pasta", "beans", "juice", "cereal", "honey"],
    },
]

HARDNESS_LEVELS = ("easy", "medium", "hard")


@dataclass(frozen=True)
class Text2SQLExample:
    """One benchmark item: a question, its gold SQL, and hardness."""

    question: str
    sql: str
    hardness: str


@dataclass
class Text2SQLWorkload:
    """A schema + database + question/SQL pairs."""

    db: Database
    entity_table: str
    cat_table: str
    num_cols: List[str]
    cat_col: str
    cat_attr: str
    name_col: str
    examples: List[Text2SQLExample] = field(default_factory=list)

    @property
    def tables(self) -> List[str]:
        return [self.entity_table, self.cat_table]

    def columns_of(self, table: str) -> List[str]:
        return self.db.table(table).schema.column_names

    def value_lexicon(self) -> Dict[str, List[str]]:
        """Distinct string values per categorical column (for constraints)."""
        lexicon: Dict[str, List[str]] = {}
        entity = self.db.table(self.entity_table)
        cat = self.db.table(self.cat_table)
        for table in (entity, cat):
            for column in table.schema.columns:
                if column.sql_type.value == "TEXT":
                    values = sorted({v for v in table.column_values(column.name) if v})
                    lexicon.setdefault(column.name, []).extend(values)
        return lexicon

    def split(
        self, test_fraction: float, seed: int = 0
    ) -> Tuple[List[Text2SQLExample], List[Text2SQLExample]]:
        """Shuffle examples into (train, test)."""
        rng = SeededRNG(seed)
        shuffled = rng.shuffled(self.examples)
        cut = max(1, int(len(shuffled) * test_fraction))
        return shuffled[cut:], shuffled[:cut]


def generate_workload(
    seed: int = 0,
    num_rows: int = 30,
    examples_per_template: int = 6,
) -> Text2SQLWorkload:
    """Build one synthetic workload: schema, data, and question/SQL pairs."""
    rng = SeededRNG(seed)
    domain = _DOMAINS[seed % len(_DOMAINS)]

    db = _build_database(domain, num_rows, rng.spawn("data"))
    workload = Text2SQLWorkload(
        db=db,
        entity_table=domain["entity_table"],
        cat_table=domain["cat_table"],
        num_cols=list(domain["num_cols"]),
        cat_col=domain["cat_col"],
        cat_attr=domain["cat_attr"],
        name_col=domain["name_col"],
    )
    workload.examples = _generate_examples(
        workload, domain, examples_per_template, rng.spawn("examples")
    )
    return workload


def _build_database(domain: Dict, num_rows: int, rng: SeededRNG) -> Database:
    db = Database()
    cat_col, cat_attr = domain["cat_col"], domain["cat_attr"]
    db.execute(f"CREATE TABLE {domain['cat_table']} ({cat_col} TEXT, {cat_attr} TEXT)")
    for value, attr in zip(domain["cat_values"], domain["attr_values"]):
        db.execute(
            f"INSERT INTO {domain['cat_table']} VALUES ('{value}', '{attr}')"
        )

    num_a, num_b = domain["num_cols"]
    db.execute(
        f"CREATE TABLE {domain['entity_table']} "
        f"({domain['name_col']} TEXT, {cat_col} TEXT, {num_a} INT, {num_b} INT)"
    )
    for i in range(num_rows):
        name = domain["names"][i % len(domain["names"])]
        if i >= len(domain["names"]):
            name = f"{name}{i}"
        category = rng.choice(domain["cat_values"])
        value_a = rng.randint(10, 100)
        value_b = rng.randint(10, 100)
        db.execute(
            f"INSERT INTO {domain['entity_table']} VALUES "
            f"('{name}', '{category}', {value_a}, {value_b})"
        )
    return db


def _generate_examples(
    workload: Text2SQLWorkload,
    domain: Dict,
    per_template: int,
    rng: SeededRNG,
) -> List[Text2SQLExample]:
    t = workload.entity_table
    t2 = workload.cat_table
    entity = domain["entity"]
    cat_col, cat_attr = workload.cat_col, workload.cat_attr
    name_col = workload.name_col
    examples: List[Text2SQLExample] = []

    def add(question: str, sql: str, hardness: str) -> None:
        examples.append(
            Text2SQLExample(question=question.strip(), sql=sql.strip(), hardness=hardness)
        )

    for _ in range(per_template):
        num = rng.choice(workload.num_cols)
        other = [c for c in workload.num_cols if c != num][0]
        value = rng.randint(20, 90)
        cat_value = rng.choice(domain["cat_values"])
        attr_value = rng.choice(domain["attr_values"])
        op_word, op = rng.choice([("greater than", ">"), ("less than", "<"),
                                  ("at least", ">="), ("at most", "<=")])

        # -- easy: projection ------------------------------------------------
        question = rng.choice([
            f"list the {num} of all {t}",
            f"show the {num} of every {entity}",
            f"what are the {num} values of the {t}",
        ])
        add(question, f"select {num} from {t}", "easy")

        # -- easy: filtered projection ---------------------------------------
        question = rng.choice([
            f"list the {name_col} of {t} with {num} {op_word} {value}",
            f"which {t} have a {num} {op_word} {value} ? show their {name_col}",
            f"show the {name_col} of every {entity} whose {num} is {op_word} {value}",
        ])
        add(question, f"select {name_col} from {t} where {num} {op} {value}", "easy")

        # -- easy: categorical filter ------------------------------------------
        question = rng.choice([
            f"list the {name_col} of {t} in the {cat_value} {cat_col}",
            f"show the {name_col} of {t} whose {cat_col} is {cat_value}",
        ])
        add(
            question,
            f"select {name_col} from {t} where {cat_col} = ' {cat_value} '",
            "easy",
        )

        # -- medium: counts --------------------------------------------------
        question = rng.choice([
            f"how many {t} are there",
            f"count the number of {t}",
            f"what is the total number of {t}",
        ])
        add(question, f"select count ( * ) from {t}", "medium")

        question = rng.choice([
            f"how many {t} have {num} {op_word} {value}",
            f"count the {t} whose {num} is {op_word} {value}",
        ])
        add(
            question,
            f"select count ( * ) from {t} where {num} {op} {value}",
            "medium",
        )

        # -- medium: aggregates -----------------------------------------------
        agg_word, agg = rng.choice([
            ("average", "avg"), ("highest", "max"), ("lowest", "min"),
            ("total", "sum"),
        ])
        question = rng.choice([
            f"what is the {agg_word} {num} of the {t}",
            f"find the {agg_word} {num} among all {t}",
        ])
        add(question, f"select {agg} ( {num} ) from {t}", "medium")

        # -- medium: argmax via order/limit ------------------------------------
        question = rng.choice([
            f"what is the {name_col} of the {entity} with the highest {num}",
            f"which {entity} has the top {num} ? give the {name_col}",
        ])
        add(
            question,
            f"select {name_col} from {t} order by {num} desc limit 1",
            "medium",
        )

        # -- hard: group by ----------------------------------------------------
        question = rng.choice([
            f"for each {cat_col} , how many {t} are there",
            f"count the {t} per {cat_col}",
        ])
        add(
            question,
            f"select {cat_col} , count ( * ) from {t} group by {cat_col}",
            "hard",
        )

        question = rng.choice([
            f"for each {cat_col} , what is the average {num} of the {t}",
            f"compute the average {num} per {cat_col}",
        ])
        add(
            question,
            f"select {cat_col} , avg ( {num} ) from {t} group by {cat_col}",
            "hard",
        )

        # -- hard: join --------------------------------------------------------
        question = rng.choice([
            f"list the {name_col} of {t} whose {cat_col} has {cat_attr} {attr_value}",
            f"show the {name_col} of every {entity} in a {cat_col} with {cat_attr} {attr_value}",
        ])
        add(
            question,
            f"select {t} . {name_col} from {t} join {t2} "
            f"on {t} . {cat_col} = {t2} . {cat_col} "
            f"where {t2} . {cat_attr} = ' {attr_value} '",
            "hard",
        )
    return examples


def sql_to_engine_dialect(linearized: str) -> str:
    """Convert the space-separated linearization to engine-parseable SQL.

    The linearization keeps quotes as separate tokens (``' alice '``);
    the engine wants ``'alice'``.
    """
    out = linearized
    # Collapse "' value '" into "'value'".
    import re

    out = re.sub(r"'\s+([^']*?)\s+'", lambda m: "'" + m.group(1) + "'", out)
    out = out.replace(" . ", ".")
    # Rejoin comparison operators split by word-level tokenization.
    out = out.replace("> =", ">=").replace("< =", "<=")
    return out
