"""Table 1 of the paper, made executable.

The paper's only table is the tutorial organization: seven parts with
durations summing to 90 minutes. This module reproduces the table — and
goes one step further: each part is bound to a **live demonstration**
drawn from the corresponding subsystem of this library, so
:func:`run_tutorial` actually *performs* the tutorial end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.utils.rng import SeededRNG


@dataclass(frozen=True)
class TutorialPart:
    """One row of Table 1: a tutorial section with its time budget."""

    title: str
    duration_minutes: int
    demo: Optional[Callable[[int], str]] = None


# -- the per-part demonstrations -------------------------------------------
def _demo_welcome(seed: int) -> str:
    return "Welcome to LM4DB: language models for data management."


def _demo_transformer(seed: int) -> str:
    import numpy as np

    from repro.autograd import Tensor
    from repro.nn import MultiHeadAttention

    attention = MultiHeadAttention(16, 2, SeededRNG(seed), causal=True)
    attention(Tensor(SeededRNG(seed).normal((1, 5, 16))))
    weights = attention.last_attention
    return (
        "Causal self-attention over 5 positions; upper triangle is masked: "
        f"max future weight = {weights[0, 0][np.triu_indices(5, 1)].max():.1e}"
    )


def _demo_pretraining(seed: int) -> str:
    from repro.models import GPTModel, ModelConfig
    from repro.tokenizers import WhitespaceTokenizer
    from repro.training import pretrain_clm
    from repro.utils.corpus import synthetic_db_corpus

    corpus = synthetic_db_corpus(num_docs=30, seed=seed)
    tokenizer = WhitespaceTokenizer(lowercase=True)
    tokenizer.train(corpus, vocab_size=256)
    model = GPTModel(ModelConfig.tiny(vocab_size=tokenizer.vocab_size), seed=seed)
    report = pretrain_clm(model, tokenizer, corpus, steps=25, seed=seed)
    return (
        f"Causal pre-training, 25 steps: loss "
        f"{report.losses[0]:.2f} -> {report.losses[-1]:.2f}"
    )


def _demo_prompting(seed: int) -> str:
    from repro.prompting import FewShotPrompt, PromptTemplate

    prompt = FewShotPrompt(
        PromptTemplate("Review: {text}"), instructions="Classify the sentiment."
    )
    prompt.add_example("positive", text="great product")
    rendered = prompt.build(text="broke after a day")
    return f"A 1-shot prompt has {len(rendered.splitlines())} lines; ends with 'Answer:'"


def _demo_apis(seed: int) -> str:
    from repro.api import CompletionClient, bootstrap_hub

    hub = bootstrap_hub(seed=seed, steps=20, corpus_docs=30)
    client = CompletionClient(hub)
    response = client.complete("tiny-gpt", "the database", max_tokens=4)
    return (
        f"OpenAI-style API: engine=tiny-gpt, completion={response.text!r}, "
        f"usage={response.usage.total_tokens} tokens"
    )


def _demo_applications(seed: int) -> str:
    from repro.text2sql import RuleBasedTranslator, generate_workload

    workload = generate_workload(seed=seed, examples_per_template=1)
    translator = RuleBasedTranslator(workload)
    question = f"how many {workload.entity_table} are there"
    return f"text-to-SQL: {question!r} -> {translator.translate(question)!r}"


def _demo_conclusion(seed: int) -> str:
    return "Questions and discussion — see EXPERIMENTS.md for every result."


# Table 1 of the paper, verbatim titles and durations.
TUTORIAL_PARTS: List[TutorialPart] = [
    TutorialPart("Welcome and introduction", 5, _demo_welcome),
    TutorialPart("Rise of the Transformer", 10, _demo_transformer),
    TutorialPart("Pre-trained language models", 10, _demo_pretraining),
    TutorialPart("Fine-tuning and prompting", 10, _demo_prompting),
    TutorialPart("APIs and libraries", 20, _demo_apis),
    TutorialPart("Applications in data management", 25, _demo_applications),
    TutorialPart("Final discussion and conclusion", 10, _demo_conclusion),
]


def total_duration_minutes() -> int:
    """Sum of the durations (the paper's total is 90 minutes)."""
    return sum(part.duration_minutes for part in TUTORIAL_PARTS)


def render_table1() -> str:
    """Render Table 1 as the paper prints it."""
    width = max(len(p.title) for p in TUTORIAL_PARTS) + 2
    lines = ["Table 1: Tutorial organization overview.", ""]
    lines.append(f"{'Part':<{width}}| Duration")
    lines.append("-" * (width + 10))
    for part in TUTORIAL_PARTS:
        lines.append(f"{part.title:<{width}}| {part.duration_minutes} min")
    return "\n".join(lines)


def run_tutorial(seed: int = 0) -> Dict[str, str]:
    """Execute every part's live demo; return part title -> demo output."""
    outputs: Dict[str, str] = {}
    for part in TUTORIAL_PARTS:
        outputs[part.title] = part.demo(seed) if part.demo else ""
    return outputs
