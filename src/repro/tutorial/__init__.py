"""Reproduction of the paper's Table 1: the runnable tutorial."""

from repro.tutorial.driver import (
    TUTORIAL_PARTS,
    TutorialPart,
    render_table1,
    run_tutorial,
    total_duration_minutes,
)

__all__ = [
    "TutorialPart",
    "TUTORIAL_PARTS",
    "render_table1",
    "run_tutorial",
    "total_duration_minutes",
]
