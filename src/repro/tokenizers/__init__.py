"""Tokenizer substrate: vocabularies, BPE (GPT-style), WordPiece (BERT-style).

Both tokenizers are trained from raw text with no external resources,
mirroring the unsupervised-pre-training story of the tutorial's Section 2.2.
"""

from repro.tokenizers.vocab import SpecialTokens, Vocabulary
from repro.tokenizers.base import Encoding, Tokenizer
from repro.tokenizers.bpe import BPETokenizer
from repro.tokenizers.wordpiece import WordPieceTokenizer
from repro.tokenizers.whitespace import WhitespaceTokenizer
from repro.tokenizers.serialize import load_tokenizer, save_tokenizer

__all__ = [
    "SpecialTokens",
    "Vocabulary",
    "Encoding",
    "Tokenizer",
    "BPETokenizer",
    "WordPieceTokenizer",
    "WhitespaceTokenizer",
    "save_tokenizer",
    "load_tokenizer",
]
