"""WordPiece tokenization, the subword scheme used by BERT.

Training selects subwords by frequency (a practical simplification of the
likelihood criterion); encoding uses the standard greedy longest-match-
first algorithm with the ``##`` continuation prefix.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

from repro.errors import TokenizerError
from repro.tokenizers.base import Tokenizer
from repro.tokenizers.vocab import SpecialTokens, Vocabulary
from repro.utils.text import simple_word_tokenize

CONTINUATION = "##"


class WordPieceTokenizer(Tokenizer):
    """Trainable WordPiece tokenizer (BERT-style, lowercasing)."""

    def __init__(
        self,
        specials: Optional[SpecialTokens] = None,
        lowercase: bool = True,
        max_subword_len: int = 12,
    ) -> None:
        super().__init__(Vocabulary(specials=specials or SpecialTokens()))
        self.lowercase = lowercase
        self.max_subword_len = max_subword_len

    def train(self, corpus: Sequence[str], vocab_size: int = 512) -> None:
        """Build the subword inventory from ``corpus``.

        All single characters seen in training are always included, so
        encoding can never fail on characters seen during training; truly
        unseen characters map to ``[UNK]``.
        """
        if not corpus:
            raise TokenizerError("cannot train WordPiece on an empty corpus")
        word_freq: Counter[str] = Counter()
        for doc in corpus:
            for word in self._pre_tokenize(doc):
                word_freq[word] += 1

        # Always include single characters (word-initial and continuation).
        char_tokens: set[str] = set()
        for word in word_freq:
            char_tokens.add(word[0])
            for ch in word[1:]:
                char_tokens.add(CONTINUATION + ch)
        self.vocab.add_all(sorted(char_tokens))

        # Score every substring by the frequency mass of words containing it.
        substring_freq: Counter[str] = Counter()
        for word, freq in word_freq.items():
            seen: set[str] = set()
            for start in range(len(word)):
                for end in range(start + 2, min(len(word), start + self.max_subword_len) + 1):
                    piece = word[start:end]
                    token = piece if start == 0 else CONTINUATION + piece
                    if token not in seen:
                        substring_freq[token] += freq
                        seen.add(token)

        budget = vocab_size - len(self.vocab)
        ranked = sorted(substring_freq.items(), key=lambda kv: (-kv[1], kv[0]))
        for token, freq in ranked[: max(budget, 0)]:
            if freq >= 2:
                self.vocab.add(token)
        self._trained = True

    def _pre_tokenize(self, text: str) -> List[str]:
        if self.lowercase:
            text = text.lower()
        return simple_word_tokenize(text)

    def _tokenize(self, text: str) -> List[str]:
        tokens: List[str] = []
        for word in self._pre_tokenize(text):
            tokens.extend(self._wordpiece(word))
        return tokens

    def _wordpiece(self, word: str) -> List[str]:
        """Greedy longest-match-first subword split of one word."""
        pieces: List[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            found: Optional[str] = None
            while end > start:
                piece = word[start:end]
                token = piece if start == 0 else CONTINUATION + piece
                if token in self.vocab:
                    found = token
                    break
                end -= 1
            if found is None:
                return [self.vocab.specials.unk]
            pieces.append(found)
            start = end
        return pieces

    def _detokenize(self, tokens: List[str]) -> str:
        parts: List[str] = []
        for token in tokens:
            if token.startswith(CONTINUATION):
                if parts:
                    parts[-1] += token[len(CONTINUATION):]
                else:
                    parts.append(token[len(CONTINUATION):])
            else:
                parts.append(token)
        return " ".join(parts)
