"""Save and load trained tokenizers as JSON files."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import TokenizerError
from repro.tokenizers.base import Tokenizer
from repro.tokenizers.bpe import BPETokenizer
from repro.tokenizers.vocab import SpecialTokens, Vocabulary
from repro.tokenizers.whitespace import WhitespaceTokenizer
from repro.tokenizers.wordpiece import WordPieceTokenizer

_CLASSES = {
    "BPETokenizer": BPETokenizer,
    "WordPieceTokenizer": WordPieceTokenizer,
    "WhitespaceTokenizer": WhitespaceTokenizer,
}


def save_tokenizer(tokenizer: Tokenizer, path: Union[str, Path]) -> Path:
    """Serialize a trained tokenizer (vocabulary, merges, options)."""
    if not tokenizer.is_trained:
        raise TokenizerError("cannot save an untrained tokenizer")
    path = Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(".json")
    payload: dict = {
        "class": type(tokenizer).__name__,
        "tokens": tokenizer.vocab.tokens(),
    }
    if isinstance(tokenizer, BPETokenizer):
        payload["merges"] = [
            [left, right, rank] for (left, right), rank in tokenizer.merges.items()
        ]
    if isinstance(tokenizer, (WordPieceTokenizer, WhitespaceTokenizer)):
        payload["lowercase"] = tokenizer.lowercase
    if isinstance(tokenizer, WordPieceTokenizer):
        payload["max_subword_len"] = tokenizer.max_subword_len
    # Deferred import: repro.durability depends (via neuraldb/models) on
    # the tokenizers package, so a module-level import would be circular.
    from repro.durability.io import atomic_write_text

    atomic_write_text(path, json.dumps(payload), label="tokenizer")
    return path


def load_tokenizer(path: Union[str, Path]) -> Tokenizer:
    """Reconstruct a tokenizer saved by :func:`save_tokenizer`."""
    path = Path(path)
    if not path.exists():
        raise TokenizerError(f"tokenizer file not found: {path}")
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise TokenizerError(
            f"tokenizer file {path} is corrupt: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise TokenizerError(f"tokenizer file {path} has the wrong schema")
    cls = _CLASSES.get(payload.get("class", ""))
    if cls is None:
        raise TokenizerError(f"unknown tokenizer class {payload.get('class')!r}")

    kwargs = {}
    if "lowercase" in payload and cls in (WordPieceTokenizer, WhitespaceTokenizer):
        kwargs["lowercase"] = payload["lowercase"]
    if "max_subword_len" in payload and cls is WordPieceTokenizer:
        kwargs["max_subword_len"] = payload["max_subword_len"]
    tokenizer = cls(**kwargs)

    specials = SpecialTokens()
    tokens = payload.get("tokens")
    if not isinstance(tokens, list):
        raise TokenizerError(f"tokenizer file {path} lacks a token list")
    if tokens[: len(specials.all())] != specials.all():
        raise TokenizerError("tokenizer file has unexpected special tokens")
    tokenizer.vocab = Vocabulary(specials=specials)
    tokenizer.vocab.add_all(tokens)
    if isinstance(tokenizer, BPETokenizer):
        tokenizer.merges = {
            (left, right): rank for left, right, rank in payload.get("merges", [])
        }
    tokenizer._trained = True
    return tokenizer
