"""Vocabulary: a bidirectional token <-> id mapping with special tokens."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import TokenizerError


@dataclass(frozen=True)
class SpecialTokens:
    """Names of the reserved tokens every vocabulary carries.

    The defaults follow the BERT/GPT conventions the tutorial's audience
    would recognize: ``[PAD]`` for padding, ``[UNK]`` for out-of-vocabulary
    tokens, ``[CLS]``/``[SEP]`` for sequence classification inputs,
    ``[MASK]`` for masked language modeling, and ``[BOS]``/``[EOS]`` for
    generative models.
    """

    pad: str = "[PAD]"
    unk: str = "[UNK]"
    cls: str = "[CLS]"
    sep: str = "[SEP]"
    mask: str = "[MASK]"
    bos: str = "[BOS]"
    eos: str = "[EOS]"

    def all(self) -> List[str]:
        """Return all special tokens in a fixed, id-stable order."""
        return [self.pad, self.unk, self.cls, self.sep, self.mask, self.bos, self.eos]


@dataclass
class Vocabulary:
    """Bidirectional mapping between string tokens and integer ids.

    Ids are assigned densely starting at 0; the special tokens always
    occupy the first ids so that e.g. padding id is stable across runs.
    """

    specials: SpecialTokens = field(default_factory=SpecialTokens)
    _token_to_id: Dict[str, int] = field(default_factory=dict)
    _id_to_token: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._token_to_id:
            for token in self.specials.all():
                self.add(token)

    # -- mutation ---------------------------------------------------------
    def add(self, token: str) -> int:
        """Add a token if absent; return its id either way."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def add_all(self, tokens: Iterable[str]) -> None:
        """Add every token in ``tokens`` (duplicates are ignored)."""
        for token in tokens:
            self.add(token)

    # -- lookup -------------------------------------------------------------
    def id_of(self, token: str) -> int:
        """Return the id of ``token``, or the ``[UNK]`` id if unknown."""
        return self._token_to_id.get(token, self._token_to_id[self.specials.unk])

    def strict_id_of(self, token: str) -> int:
        """Return the id of ``token``; raise if the token is unknown."""
        try:
            return self._token_to_id[token]
        except KeyError:
            raise TokenizerError(f"unknown token: {token!r}") from None

    def token_of(self, token_id: int) -> str:
        """Return the token string for an id; raise on out-of-range ids."""
        if not 0 <= token_id < len(self._id_to_token):
            raise TokenizerError(f"token id out of range: {token_id}")
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    # -- convenience ids ------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.specials.pad]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.specials.unk]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[self.specials.cls]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[self.specials.sep]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[self.specials.mask]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[self.specials.bos]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[self.specials.eos]

    def special_ids(self) -> List[int]:
        """Return the ids of all special tokens."""
        return [self._token_to_id[t] for t in self.specials.all()]

    def tokens(self) -> List[str]:
        """Return all tokens in id order (a copy)."""
        return list(self._id_to_token)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, int]:
        """Return the token -> id mapping (a copy)."""
        return dict(self._token_to_id)

    @classmethod
    def from_tokens(
        cls, tokens: Iterable[str], specials: Optional[SpecialTokens] = None
    ) -> "Vocabulary":
        """Build a vocabulary from an iterable of (non-special) tokens."""
        vocab = cls(specials=specials or SpecialTokens())
        vocab.add_all(tokens)
        return vocab
