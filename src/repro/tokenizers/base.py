"""Tokenizer interface shared by BPE, WordPiece and whitespace tokenizers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import TokenizerError
from repro.tokenizers.vocab import Vocabulary


@dataclass
class Encoding:
    """The result of encoding one text: ids plus an attention mask.

    ``attention_mask[i]`` is 1 for real tokens and 0 for padding, matching
    the convention of mainstream transformer libraries.
    """

    ids: List[int]
    attention_mask: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.attention_mask:
            self.attention_mask = [1] * len(self.ids)
        if len(self.attention_mask) != len(self.ids):
            raise TokenizerError("attention mask length must match ids length")

    def __len__(self) -> int:
        return len(self.ids)


class Tokenizer(ABC):
    """Abstract tokenizer: train on a corpus, then encode/decode text.

    Concrete subclasses implement :meth:`_tokenize` (text -> subword
    strings) and :meth:`_detokenize` (subword strings -> text); padding,
    truncation and special-token insertion live here so behaviour is
    uniform across tokenizer families.
    """

    def __init__(self, vocab: Optional[Vocabulary] = None) -> None:
        self.vocab = vocab or Vocabulary()
        self._trained = False

    # -- subclass responsibilities ------------------------------------------
    @abstractmethod
    def train(self, corpus: Sequence[str], vocab_size: int) -> None:
        """Learn the subword inventory from raw text."""

    @abstractmethod
    def _tokenize(self, text: str) -> List[str]:
        """Split raw text into subword token strings."""

    @abstractmethod
    def _detokenize(self, tokens: List[str]) -> str:
        """Join subword token strings back into text."""

    # -- shared encode/decode -------------------------------------------------
    def tokenize(self, text: str) -> List[str]:
        """Return the subword token strings for ``text``."""
        self._require_trained()
        return self._tokenize(text)

    def encode(
        self,
        text: str,
        max_length: Optional[int] = None,
        pad_to: Optional[int] = None,
        add_bos: bool = False,
        add_eos: bool = False,
    ) -> Encoding:
        """Encode ``text`` into token ids.

        Args:
            text: the input string.
            max_length: if given, truncate the id sequence to this length
                (after adding special tokens).
            pad_to: if given, right-pad with ``[PAD]`` up to this length.
            add_bos: prepend the ``[BOS]`` token.
            add_eos: append the ``[EOS]`` token.
        """
        self._require_trained()
        ids = [self.vocab.id_of(tok) for tok in self._tokenize(text)]
        if add_bos:
            ids = [self.vocab.bos_id] + ids
        if add_eos:
            ids = ids + [self.vocab.eos_id]
        if max_length is not None:
            ids = ids[:max_length]
        mask = [1] * len(ids)
        if pad_to is not None:
            if pad_to < len(ids):
                raise TokenizerError(
                    f"pad_to={pad_to} is shorter than the sequence ({len(ids)})"
                )
            pad_count = pad_to - len(ids)
            ids = ids + [self.vocab.pad_id] * pad_count
            mask = mask + [0] * pad_count
        return Encoding(ids=ids, attention_mask=mask)

    def encode_pair(
        self, first: str, second: str, max_length: Optional[int] = None
    ) -> Encoding:
        """Encode a sentence pair as ``[CLS] first [SEP] second [SEP]``."""
        self._require_trained()
        ids = [self.vocab.cls_id]
        ids += [self.vocab.id_of(t) for t in self._tokenize(first)]
        ids.append(self.vocab.sep_id)
        ids += [self.vocab.id_of(t) for t in self._tokenize(second)]
        ids.append(self.vocab.sep_id)
        if max_length is not None:
            ids = ids[:max_length]
        return Encoding(ids=ids)

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        """Convert token ids back into text."""
        self._require_trained()
        specials = set(self.vocab.special_ids())
        tokens = [
            self.vocab.token_of(i)
            for i in ids
            if not (skip_special and i in specials)
        ]
        return self._detokenize(tokens)

    # -- properties -----------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        """Number of tokens (including specials) in the vocabulary."""
        return len(self.vocab)

    @property
    def is_trained(self) -> bool:
        return self._trained

    def _require_trained(self) -> None:
        if not self._trained:
            raise TokenizerError(
                f"{type(self).__name__} must be trained before use"
            )
