"""Byte-pair encoding, the subword scheme behind the GPT model family.

The trainer follows Sennrich-style BPE: start from characters, repeatedly
merge the most frequent adjacent pair, record the merge order. Encoding
replays merges by priority. A word-boundary marker (``Ġ`` in GPT-2;
we use a leading ``▁`` like SentencePiece for readability) preserves
spacing so that ``decode(encode(x)) == normalize(x)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TokenizerError
from repro.tokenizers.base import Tokenizer
from repro.tokenizers.vocab import SpecialTokens, Vocabulary
from repro.utils.text import normalize_whitespace

WORD_BOUNDARY = "▁"  # '▁' marks the start of a space-prefixed word

#: cap on the per-word merge memo — natural-language word frequency is
#: Zipfian, so a bounded cache still absorbs nearly every lookup
_WORD_CACHE_LIMIT = 65536


def _word_to_symbols(word: str) -> Tuple[str, ...]:
    """Split a (boundary-marked) word into single-character symbols."""
    if word.startswith(WORD_BOUNDARY):
        rest = word[len(WORD_BOUNDARY):]
        if not rest:
            return (WORD_BOUNDARY,)
        return (WORD_BOUNDARY + rest[0],) + tuple(rest[1:])
    return tuple(word)


class BPETokenizer(Tokenizer):
    """Trainable byte-pair-encoding tokenizer (GPT-style)."""

    def __init__(self, specials: Optional[SpecialTokens] = None) -> None:
        super().__init__(Vocabulary(specials=specials or SpecialTokens()))
        self.merges: Dict[Tuple[str, str], int] = {}
        # Memoized merge results per word: encoding is dominated by the
        # quadratic merge replay, and real text repeats words endlessly.
        # Invalidated by train(), which changes the merge table.
        self._word_cache: Dict[str, Tuple[str, ...]] = {}

    # -- training ---------------------------------------------------------
    def train(self, corpus: Sequence[str], vocab_size: int = 512) -> None:
        """Learn merges from ``corpus`` until the vocab reaches ``vocab_size``.

        The corpus is a sequence of documents. Training is deterministic:
        ties in pair frequency break on lexicographic pair order.
        """
        if not corpus:
            raise TokenizerError("cannot train BPE on an empty corpus")
        self._word_cache.clear()  # stale merges must not leak across retrains
        word_freq: Counter[Tuple[str, ...]] = Counter()
        for doc in corpus:
            for word in self._pre_tokenize(doc):
                word_freq[_word_to_symbols(word)] += 1

        # Seed the vocabulary with all single symbols, both in boundary
        # ("▁a") and bare ("a") form, so any word composed of seen
        # characters stays encodable even if that exact shape never
        # occurred in training (the byte-level-BPE coverage guarantee).
        for symbols in word_freq:
            self.vocab.add_all(symbols)
            for symbol in symbols:
                bare = symbol[len(WORD_BOUNDARY):] if symbol.startswith(WORD_BOUNDARY) else symbol
                if bare:
                    self.vocab.add(bare)
                    self.vocab.add(WORD_BOUNDARY + bare)

        words = dict(word_freq)
        merge_rank = 0
        while len(self.vocab) < vocab_size:
            pair_freq: Counter[Tuple[str, str]] = Counter()
            for symbols, freq in words.items():
                for left, right in zip(symbols, symbols[1:]):
                    pair_freq[(left, right)] += freq
            if not pair_freq:
                break
            best_count = max(pair_freq.values())
            best_pair = min(p for p, c in pair_freq.items() if c == best_count)
            if best_count < 2:
                break
            self.merges[best_pair] = merge_rank
            merge_rank += 1
            self.vocab.add(best_pair[0] + best_pair[1])
            words = {
                self._apply_merge(symbols, best_pair): freq
                for symbols, freq in words.items()
            }
        self._trained = True

    @staticmethod
    def _apply_merge(
        symbols: Tuple[str, ...], pair: Tuple[str, str]
    ) -> Tuple[str, ...]:
        """Replace every adjacent occurrence of ``pair`` with its merge."""
        merged: List[str] = []
        i = 0
        while i < len(symbols):
            if (
                i + 1 < len(symbols)
                and symbols[i] == pair[0]
                and symbols[i + 1] == pair[1]
            ):
                merged.append(pair[0] + pair[1])
                i += 2
            else:
                merged.append(symbols[i])
                i += 1
        return tuple(merged)

    # -- encoding -------------------------------------------------------------
    @staticmethod
    def _pre_tokenize(text: str) -> List[str]:
        """Split text on whitespace, marking word starts with ``▁``."""
        words = normalize_whitespace(text).split(" ")
        return [WORD_BOUNDARY + w for w in words if w]

    def _tokenize(self, text: str) -> List[str]:
        tokens: List[str] = []
        for word in self._pre_tokenize(text):
            tokens.extend(self._bpe_word(word))
        return tokens

    def _bpe_word(self, word: str) -> List[str]:
        """Apply learned merges (lowest rank first) to a single word.

        Results are memoized per word (bounded, cleared on retrain):
        merge replay is quadratic in word length but text repeats the
        same words, so the common case is one dict hit.
        """
        cached = self._word_cache.get(word)
        if cached is not None:
            return list(cached)
        symbols = list(_word_to_symbols(word))
        while len(symbols) > 1:
            candidates = [
                (self.merges[(a, b)], i)
                for i, (a, b) in enumerate(zip(symbols, symbols[1:]))
                if (a, b) in self.merges
            ]
            if not candidates:
                break
            _, i = min(candidates)
            symbols[i: i + 2] = [symbols[i] + symbols[i + 1]]
        if len(self._word_cache) < _WORD_CACHE_LIMIT:
            self._word_cache[word] = tuple(symbols)
        return symbols

    def _detokenize(self, tokens: List[str]) -> str:
        text = "".join(tokens)
        return text.replace(WORD_BOUNDARY, " ").strip()
