"""A whitespace/word tokenizer for controlled experiments.

Synthetic-language experiments (e.g. the text-to-SQL grammar workloads)
use a closed vocabulary where subword splitting would only add noise;
this tokenizer assigns one id per whole word.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence

from repro.errors import TokenizerError
from repro.tokenizers.base import Tokenizer
from repro.tokenizers.vocab import SpecialTokens, Vocabulary
from repro.utils.text import simple_word_tokenize


class WhitespaceTokenizer(Tokenizer):
    """Word-level tokenizer with an optional frequency cutoff."""

    def __init__(
        self,
        specials: Optional[SpecialTokens] = None,
        lowercase: bool = False,
    ) -> None:
        super().__init__(Vocabulary(specials=specials or SpecialTokens()))
        self.lowercase = lowercase

    def train(self, corpus: Sequence[str], vocab_size: int = 10_000) -> None:
        """Collect the ``vocab_size`` most frequent words from ``corpus``."""
        if not corpus:
            raise TokenizerError("cannot train on an empty corpus")
        freq: Counter[str] = Counter()
        for doc in corpus:
            freq.update(self._words(doc))
        budget = vocab_size - len(self.vocab)
        ranked = sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))
        self.vocab.add_all(token for token, _ in ranked[: max(budget, 0)])
        self._trained = True

    def _words(self, text: str) -> List[str]:
        if self.lowercase:
            text = text.lower()
        return simple_word_tokenize(text)

    def _tokenize(self, text: str) -> List[str]:
        return self._words(text)

    def _detokenize(self, tokens: List[str]) -> str:
        return " ".join(tokens)
