"""Save/load model checkpoints (config + weights) as ``.npz`` files.

Checkpoints are written atomically (temp file + fsync + rename via
:mod:`repro.durability.io`), so an interrupted save never leaves a
half-written ``.npz`` at the destination. The metadata embeds a SHA-256
digest of the parameter payload; :func:`load_model` recomputes and
compares it, and reports *any* corruption — truncation, flipped bytes,
garbled metadata, wrong schema — as
:class:`~repro.errors.CorruptCheckpointError` /
:class:`~repro.errors.ModelError` instead of surfacing raw
numpy/JSON/zipfile internals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zipfile
from io import BytesIO
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import CorruptCheckpointError, ModelError
from repro.models.bert import BERTModel
from repro.models.config import ModelConfig
from repro.models.gpt import GPTModel

AnyModel = Union[GPTModel, BERTModel]

_MODEL_CLASSES = {"GPTModel": GPTModel, "BERTModel": BERTModel}

CHECKPOINT_FORMAT = 1


def _payload_digest(meta_core: Dict, state: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the config and every parameter (name, dtype, bytes)."""
    digest = hashlib.sha256()
    digest.update(json.dumps(meta_core, sort_keys=True).encode("utf-8"))
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_model(
    model: AnyModel, path: Union[str, Path], crash=None
) -> Path:
    """Serialize a model's config and weights to one ``.npz`` file.

    The write is atomic: the archive is built in memory and swapped in
    with temp-file + fsync + rename, exposing the ``checkpoint-*``
    crash points of :func:`repro.durability.io.atomic_write_bytes`.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = model.state_dict()
    meta_core = {
        "model_class": type(model).__name__,
        "config": dataclasses.asdict(model.config),
    }
    meta = {
        **meta_core,
        "format": CHECKPOINT_FORMAT,
        "sha256": _payload_digest(meta_core, state),
    }
    arrays = {f"param::{k}": v for k, v in state.items()}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    buffer = BytesIO()
    np.savez(buffer, **arrays)
    # Deferred import: repro.durability pulls in neuraldb -> models, so a
    # module-level import here would be circular.
    from repro.durability.io import atomic_write_bytes

    atomic_write_bytes(path, buffer.getvalue(), crash=crash, label="checkpoint")
    return path


def load_model(path: Union[str, Path]) -> AnyModel:
    """Reconstruct a model saved by :func:`save_model`.

    Raises :class:`ModelError` for a missing file or a file that is not
    a repro checkpoint, and :class:`CorruptCheckpointError` when the
    archive is truncated, garbled, or fails its SHA-256 payload digest.
    """
    path = Path(path)
    if not path.exists():
        raise ModelError(f"checkpoint not found: {path}")
    meta, state = _read_archive(path)
    if not isinstance(meta, dict):
        raise CorruptCheckpointError(
            f"{path}: checkpoint metadata is not an object"
        )
    missing = {"model_class", "config"} - set(meta)
    if missing:
        raise CorruptCheckpointError(
            f"{path}: checkpoint metadata lacks {sorted(missing)}"
        )
    expected: Optional[str] = meta.get("sha256")
    if expected is not None:
        meta_core = {"model_class": meta["model_class"], "config": meta["config"]}
        actual = _payload_digest(meta_core, state)
        if actual != expected:
            raise CorruptCheckpointError(
                f"{path}: parameter payload fails its SHA-256 check "
                f"(stored {expected[:12]}..., computed {actual[:12]}...)"
            )
    model_class = _MODEL_CLASSES.get(meta["model_class"])
    if model_class is None:
        raise ModelError(f"unknown model class {meta['model_class']!r}")
    try:
        config = ModelConfig(**meta["config"])
    except TypeError as exc:
        raise CorruptCheckpointError(
            f"{path}: checkpoint config does not match ModelConfig: {exc}"
        ) from exc
    model = model_class(config)
    model.load_state_dict(state)
    return model


def _read_archive(path: Path):
    """Open the ``.npz``, converting every raw failure to a typed error."""
    try:
        with np.load(path) as archive:
            if "__meta__" not in archive.files:
                raise ModelError(f"{path} is not a repro checkpoint")
            meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
            state = {
                key[len("param::"):]: archive[key]
                for key in archive.files
                if key.startswith("param::")
            }
            return meta, state
    except ModelError:
        raise
    except (
        zipfile.BadZipFile,
        json.JSONDecodeError,
        UnicodeDecodeError,
        KeyError,
        ValueError,
        EOFError,
        OSError,
    ) as exc:
        raise CorruptCheckpointError(
            f"{path}: checkpoint is corrupt or truncated ({exc})"
        ) from exc
