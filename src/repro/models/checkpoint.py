"""Save/load model checkpoints (config + weights) as ``.npz`` files."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ModelError
from repro.models.bert import BERTModel
from repro.models.config import ModelConfig
from repro.models.gpt import GPTModel

AnyModel = Union[GPTModel, BERTModel]

_MODEL_CLASSES = {"GPTModel": GPTModel, "BERTModel": BERTModel}


def save_model(model: AnyModel, path: Union[str, Path]) -> Path:
    """Serialize a model's config and weights to one ``.npz`` file."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    meta = {
        "model_class": type(model).__name__,
        "config": dataclasses.asdict(model.config),
    }
    arrays = {f"param::{k}": v for k, v in model.state_dict().items()}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    return path


def load_model(path: Union[str, Path]) -> AnyModel:
    """Reconstruct a model saved by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ModelError(f"checkpoint not found: {path}")
    with np.load(path) as archive:
        try:
            meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        except KeyError:
            raise ModelError(f"{path} is not a repro checkpoint") from None
        state = {
            key[len("param::"):]: archive[key]
            for key in archive.files
            if key.startswith("param::")
        }
    model_class = _MODEL_CLASSES.get(meta["model_class"])
    if model_class is None:
        raise ModelError(f"unknown model class {meta['model_class']!r}")
    config = ModelConfig(**meta["config"])
    model = model_class(config)
    model.load_state_dict(state)
    return model
