"""Registry of historical language models for the Figure 1 reproduction.

Figure 1 of the paper plots parameter counts of well-known language
models against their release year on a log scale. Rather than hard-coding
the published numbers, each entry records the model's *architecture*
(dimension, layers, feed-forward width, attention style, vocabulary) and
the parameter count is **computed** from the architecture with the same
formulas our own models use. Tests assert that the computed counts land
within a documented tolerance of the published ones — i.e. the figure is
derived, not transcribed.

Sources for hyper-parameters: the respective papers cited in the
tutorial ([15] BERT, [63] GPT-2, [65] T5, [18]/[5] GPT-3, [9] Codex,
[50] Jurassic-1, [64] Gopher, [73] MT-NLG, [13] PaLM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ModelError
from repro.models.config import ModelConfig


@dataclass(frozen=True)
class HistoricalModel:
    """One point on the Figure 1 timeline.

    Attributes:
        name: the model's common name.
        year: fractional release year (e.g. 2020.4 for May 2020).
        published_params: the parameter count reported by the authors.
        dim: model (hidden) dimension.
        num_layers: Transformer layers (encoder + decoder for enc-dec).
        ff_dim: feed-forward hidden width.
        vocab_size: token vocabulary size.
        max_seq_len: context length (learned positions; 0 when the model
            uses relative/rotary positions with no position table).
        attn_dim: total attention inner width (heads * head_dim) when it
            differs from ``dim`` (e.g. T5-11B); defaults to ``dim``.
        ff_matrices: 2 for classic MLP, 3 for gated (SwiGLU) variants.
        multi_query: True when keys/values are shared across heads (PaLM).
        cross_attention_layers: decoder layers carrying cross-attention
            (encoder-decoder models only).
        untied_head: True when the LM head is not tied to the embedding.
        architecture: 'lstm' or 'transformer' (ELMo predates the rest).
        tolerance: documented relative error allowed between the computed
            and published count (covers parts we do not model, e.g.
            BERT's pooler or ELMo's character CNN).
    """

    name: str
    year: float
    published_params: int
    dim: int
    num_layers: int
    ff_dim: int
    vocab_size: int
    max_seq_len: int
    attn_dim: Optional[int] = None
    ff_matrices: int = 2
    multi_query: bool = False
    cross_attention_layers: int = 0
    untied_head: bool = False
    architecture: str = "transformer"
    tolerance: float = 0.10
    notes: str = ""

    def estimated_params(self) -> int:
        """Parameter count computed from the architecture."""
        if self.architecture == "lstm":
            return self._lstm_params()
        return self._transformer_params()

    def _transformer_params(self) -> int:
        attn_dim = self.attn_dim if self.attn_dim is not None else self.dim
        if self.multi_query:
            # Multi-query attention: full Q and O, single-head K and V.
            head_dim = attn_dim // max(1, self.dim // 128)  # unused; see below
            kv_dim = attn_dim // (attn_dim // 128) if attn_dim >= 128 else attn_dim
            attention = 2 * self.dim * attn_dim + 2 * self.dim * kv_dim
        else:
            attention = 4 * self.dim * attn_dim
        ff = self.ff_matrices * self.dim * self.ff_dim
        per_layer = attention + ff
        cross = self.cross_attention_layers * (4 * self.dim * attn_dim)
        embeddings = self.vocab_size * self.dim + self.max_seq_len * self.dim
        head = self.vocab_size * self.dim if self.untied_head else 0
        return self.num_layers * per_layer + cross + embeddings + head

    def _lstm_params(self) -> int:
        """Bidirectional projected-LSTM count (ELMo-style).

        Per layer and direction, a projected LSTM with input/projection
        width ``dim`` and hidden width ``ff_dim`` has four gate matrices
        over (input + recurrent projection) plus the projection matrix.
        The character-CNN encoder and softmax are approximated by the
        vocabulary embedding term.
        """
        gates = 4 * self.ff_dim * (self.dim + self.dim)
        projection = self.dim * self.ff_dim
        per_dir_layer = gates + projection
        directions = 2
        recurrent = directions * self.num_layers * per_dir_layer
        embeddings = self.vocab_size * self.dim
        return recurrent + embeddings

    def relative_error(self) -> float:
        """|computed - published| / published."""
        return abs(self.estimated_params() - self.published_params) / self.published_params

    def to_config(self, scale: float = 1e-4) -> ModelConfig:
        """Return a runnable scaled-down :class:`ModelConfig`.

        ``scale`` shrinks the width so the historic shape can actually be
        instantiated and trained on a laptop (used by the scaling demos).
        """
        dim = max(16, int(self.dim * scale) // 8 * 8)
        heads = max(2, dim // 16)
        return ModelConfig(
            vocab_size=min(self.vocab_size, 2048),
            max_seq_len=64,
            dim=dim,
            num_layers=max(2, min(self.num_layers // 12, 6)),
            num_heads=heads,
            ff_dim=4 * dim,
            causal=True,
        )


# One entry per model named in the tutorial's Figure 1 narrative
# (Section 1: "[9, 13, 17, 18, 27, 50, 64, 65, 73, 76, 103]" and §2.2).
HISTORICAL_MODELS: List[HistoricalModel] = [
    HistoricalModel(
        name="ELMo", year=2018.1, published_params=94_000_000,
        dim=512, num_layers=2, ff_dim=4096, vocab_size=26_000,
        max_seq_len=0, architecture="lstm", tolerance=0.25,
        notes="biLSTM with projections; char-CNN approximated by embeddings",
    ),
    HistoricalModel(
        name="BERT-Large", year=2018.8, published_params=340_000_000,
        dim=1024, num_layers=24, ff_dim=4096, vocab_size=30_522,
        max_seq_len=512, tolerance=0.10,
        notes="encoder-only; pooler/type embeddings not modeled",
    ),
    HistoricalModel(
        name="GPT-2", year=2019.1, published_params=1_500_000_000,
        dim=1600, num_layers=48, ff_dim=6400, vocab_size=50_257,
        max_seq_len=1024, tolerance=0.10,
    ),
    HistoricalModel(
        name="T5-11B", year=2019.8, published_params=11_000_000_000,
        dim=1024, num_layers=48, ff_dim=65_536, vocab_size=32_128,
        max_seq_len=0, attn_dim=16_384, cross_attention_layers=24,
        tolerance=0.10, notes="encoder-decoder with 128 heads of d_kv=128",
    ),
    HistoricalModel(
        name="Turing-NLG", year=2020.1, published_params=17_000_000_000,
        dim=4256, num_layers=78, ff_dim=17_024, vocab_size=50_257,
        max_seq_len=1024, tolerance=0.10,
    ),
    HistoricalModel(
        name="GPT-3", year=2020.4, published_params=175_000_000_000,
        dim=12_288, num_layers=96, ff_dim=49_152, vocab_size=50_257,
        max_seq_len=2048, tolerance=0.05,
    ),
    HistoricalModel(
        name="GPT-3 Codex", year=2021.5, published_params=12_000_000_000,
        dim=5140, num_layers=40, ff_dim=20_560, vocab_size=50_257,
        max_seq_len=4096, tolerance=0.10,
        notes="fine-tuned from the 12B GPT-3 variant on code",
    ),
    HistoricalModel(
        name="Jurassic-1", year=2021.6, published_params=178_000_000_000,
        dim=13_824, num_layers=76, ff_dim=55_296, vocab_size=256_000,
        max_seq_len=2048, tolerance=0.05,
    ),
    HistoricalModel(
        name="Gopher", year=2021.9, published_params=280_000_000_000,
        dim=16_384, num_layers=80, ff_dim=65_536, vocab_size=32_000,
        max_seq_len=2048, untied_head=True, tolerance=0.15,
        notes="published count includes relative-position parameters",
    ),
    HistoricalModel(
        name="MT-NLG", year=2022.0, published_params=530_000_000_000,
        dim=20_480, num_layers=105, ff_dim=81_920, vocab_size=50_257,
        max_seq_len=2048, tolerance=0.05,
    ),
    HistoricalModel(
        name="PaLM", year=2022.3, published_params=540_000_000_000,
        dim=18_432, num_layers=118, ff_dim=73_728, vocab_size=256_000,
        max_seq_len=2048, ff_matrices=3, multi_query=True, tolerance=0.10,
        notes="SwiGLU feed-forward (3 matrices), multi-query attention",
    ),
]

_BY_NAME: Dict[str, HistoricalModel] = {m.name: m for m in HISTORICAL_MODELS}


def named_config(name: str) -> HistoricalModel:
    """Look up a historical model by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ModelError(
            f"unknown model {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def registry_names() -> List[str]:
    """Names of all registered historical models, in timeline order."""
    return [m.name for m in HISTORICAL_MODELS]
