"""Language models: GPT-style causal LM, BERT-style masked LM, task heads.

Also hosts the named-configuration registry whose parameter-count
formulas drive the Figure 1 reproduction.
"""

from repro.models.config import ModelConfig, transformer_param_count
from repro.models.registry import (
    HISTORICAL_MODELS,
    HistoricalModel,
    named_config,
    registry_names,
)
from repro.models.gpt import GPTModel
from repro.models.bert import BERTModel
from repro.models.heads import SequenceClassifier
from repro.models.checkpoint import load_model, save_model
from repro.models.recurrent import RecurrentLM

__all__ = [
    "ModelConfig",
    "transformer_param_count",
    "HISTORICAL_MODELS",
    "HistoricalModel",
    "named_config",
    "registry_names",
    "GPTModel",
    "BERTModel",
    "SequenceClassifier",
    "RecurrentLM",
    "save_model",
    "load_model",
]
