"""A recurrent (Elman-style) language model baseline.

Section 2.1 of the tutorial motivates the Transformer by contrast with
recurrent networks [43]. This module provides that pre-Transformer
baseline so the "rise of the Transformer" demo can measure the gap on a
long-range-dependency task.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.errors import ModelError
from repro.models.config import ModelConfig
from repro.nn import Embedding, Linear, Module
from repro.utils.rng import SeededRNG


class RecurrentLM(Module):
    """Single-layer tanh RNN language model with tied output embedding."""

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        super().__init__()
        self.config = config
        rng = SeededRNG(seed)
        self.token_emb = Embedding(config.vocab_size, config.dim, rng.spawn("tok"))
        self.input_proj = Linear(config.dim, config.dim, rng.spawn("in"))
        self.recurrent = Linear(config.dim, config.dim, rng.spawn("rec"), bias=False)
        self.out_norm_scale = 1.0 / np.sqrt(config.dim)

    def forward(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Return next-token logits of shape (B, T, vocab)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ModelError(f"ids must be 2-D (batch, seq), got shape {ids.shape}")
        batch, seq = ids.shape
        embedded = self.token_emb(ids)  # (B, T, D)
        state = Tensor(np.zeros((batch, self.config.dim)))
        hidden_steps = []
        for t in range(seq):
            step_input = embedded[:, t, :]
            state = F.tanh(self.input_proj(step_input) + self.recurrent(state))
            hidden_steps.append(state.reshape(batch, 1, self.config.dim))
        hidden = F.concat(hidden_steps, axis=1)
        return hidden @ self.token_emb.weight.transpose(1, 0)

    def encode(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Return the hidden state at every position (B, T, dim)."""
        ids = np.asarray(ids, dtype=np.int64)
        batch, seq = ids.shape
        embedded = self.token_emb(ids)
        state = Tensor(np.zeros((batch, self.config.dim)))
        steps = []
        for t in range(seq):
            state = F.tanh(self.input_proj(embedded[:, t, :]) + self.recurrent(state))
            steps.append(state.reshape(batch, 1, self.config.dim))
        return F.concat(steps, axis=1)
