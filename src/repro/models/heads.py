"""Task heads placed on top of a pre-trained backbone (fine-tuning)."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.autograd import Tensor
from repro.models.bert import BERTModel
from repro.models.gpt import GPTModel
from repro.nn import Linear, Module
from repro.utils.rng import SeededRNG

Backbone = Union[BERTModel, GPTModel]


class SequenceClassifier(Module):
    """A classification head over a pooled backbone representation.

    This is the tutorial's "fine-tuning" recipe (Section 2.3): take a
    pre-trained encoder, add a small task head, and train end-to-end on
    a handful of labeled examples.
    """

    def __init__(self, backbone: Backbone, num_classes: int, seed: int = 0) -> None:
        super().__init__()
        self.backbone = backbone
        self.num_classes = num_classes
        self.head = Linear(backbone.config.dim, num_classes, SeededRNG(seed).spawn("cls"))

    def forward(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Return class logits of shape (B, num_classes)."""
        pooled = self._pool(ids, attention_mask)
        return self.head(pooled)

    def _pool(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        if isinstance(self.backbone, BERTModel):
            return self.backbone.pooled(ids, attention_mask)
        # For a causal backbone, use the last real position of each row.
        hidden = self.backbone.encode(ids, attention_mask)
        ids = np.asarray(ids)
        if attention_mask is None:
            last = np.full(ids.shape[0], ids.shape[1] - 1)
        else:
            last = np.maximum(np.asarray(attention_mask).sum(axis=1) - 1, 0)
        return hidden[np.arange(ids.shape[0]), last]

    def predict(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Return the argmax class per row (inference mode)."""
        from repro.autograd import no_grad

        with no_grad():
            logits = self.forward(ids, attention_mask)
        return logits.data.argmax(axis=-1)
