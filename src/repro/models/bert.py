"""BERT-style encoder-only masked language model.

Bidirectional Transformer encoder with learned token + position
embeddings, pre-trained with masked language modeling (Section 2.2 of
the tutorial), usable afterwards as a text encoder for classification,
similarity and retrieval tasks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor
from repro.errors import ModelError
from repro.models.config import ModelConfig
from repro.nn import Embedding, Linear, Module, TransformerStack
from repro.utils.rng import SeededRNG


class BERTModel(Module):
    """Encoder-only MLM: ids (B, T) -> per-position vocab logits (B, T, V)."""

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        super().__init__()
        if config.causal:
            raise ModelError("BERTModel requires a non-causal config")
        self.config = config
        rng = SeededRNG(seed)
        self.token_emb = Embedding(config.vocab_size, config.dim, rng.spawn("tok"))
        self.pos_emb = Embedding(config.max_seq_len, config.dim, rng.spawn("pos"))
        self.stack = TransformerStack(
            num_layers=config.num_layers,
            dim=config.dim,
            num_heads=config.num_heads,
            ff_dim=config.ff_dim,
            rng=rng.spawn("stack"),
            causal=False,
            dropout=config.dropout,
        )
        self.mlm_head: Optional[Linear] = None
        if not config.tie_embeddings:
            self.mlm_head = Linear(config.dim, config.vocab_size, rng.spawn("head"))

    def encode(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Return contextual hidden states of shape (B, T, dim)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ModelError(f"ids must be 2-D (batch, seq), got shape {ids.shape}")
        _, seq = ids.shape
        if seq > self.config.max_seq_len:
            raise ModelError(
                f"sequence length {seq} exceeds max_seq_len {self.config.max_seq_len}"
            )
        positions = np.broadcast_to(np.arange(seq), ids.shape)
        x = self.token_emb(ids) + self.pos_emb(positions)
        return self.stack(x, attention_mask)

    def forward(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Return MLM logits of shape (B, T, vocab)."""
        hidden = self.encode(ids, attention_mask)
        if self.mlm_head is not None:
            return self.mlm_head(hidden)
        return hidden @ self.token_emb.weight.transpose(1, 0)

    def pooled(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Mean-pool hidden states over real (non-padded) positions.

        Returns a (B, dim) sentence representation used by classifiers
        and by the NeuralDB retrieval index.
        """
        hidden = self.encode(ids, attention_mask)
        if attention_mask is None:
            return hidden.mean(axis=1)
        mask = np.asarray(attention_mask, dtype=np.float64)[:, :, None]
        counts = np.maximum(mask.sum(axis=1), 1.0)
        summed = (hidden * Tensor(mask)).sum(axis=1)
        return summed * Tensor(1.0 / counts)

    def embed_texts(self, batches_of_ids: np.ndarray, attention_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Inference-mode sentence embeddings as a plain numpy array."""
        from repro.autograd import no_grad

        with no_grad():
            return self.pooled(batches_of_ids, attention_mask).data
