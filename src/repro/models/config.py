"""Model configuration and analytic parameter counting.

The analytic count is exact for our implementation (verified against
``Module.num_parameters`` in tests) and is the basis for the Figure 1
reproduction: each historical model's published parameter count is
recovered from its architecture hyper-parameters with the same formula.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of a Transformer language model.

    Attributes:
        vocab_size: number of tokens in the vocabulary.
        max_seq_len: maximum sequence length (size of the position table).
        dim: model (embedding) dimension.
        num_layers: number of Transformer blocks.
        num_heads: attention heads per block.
        ff_dim: feed-forward hidden dimension (commonly ``4 * dim``).
        dropout: dropout probability used during training.
        causal: True for decoder-only (GPT-style), False for encoder-only.
        tie_embeddings: share the input embedding with the LM head.
    """

    vocab_size: int
    max_seq_len: int = 64
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ff_dim: int = 256
    dropout: float = 0.0
    causal: bool = True
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ModelError(
                f"dim {self.dim} not divisible by num_heads {self.num_heads}"
            )
        if min(self.vocab_size, self.max_seq_len, self.dim, self.num_layers) <= 0:
            raise ModelError("all size hyper-parameters must be positive")

    @classmethod
    def tiny(cls, vocab_size: int, causal: bool = True) -> "ModelConfig":
        """A configuration small enough to train in unit tests."""
        return cls(
            vocab_size=vocab_size, max_seq_len=48, dim=32, num_layers=2,
            num_heads=2, ff_dim=64, causal=causal,
        )

    @classmethod
    def small(cls, vocab_size: int, causal: bool = True) -> "ModelConfig":
        """A configuration for the example scripts (seconds to train)."""
        return cls(
            vocab_size=vocab_size, max_seq_len=96, dim=64, num_layers=3,
            num_heads=4, ff_dim=128, causal=causal,
        )


def transformer_param_count(
    vocab_size: int,
    max_seq_len: int,
    dim: int,
    num_layers: int,
    ff_dim: int,
    tie_embeddings: bool = True,
) -> int:
    """Exact trainable-parameter count of our Transformer LM.

    Composition per block: two layer norms (2 * 2 * dim), four attention
    projections (4 * (dim^2 + dim)), and the feed-forward pair
    (dim * ff + ff) + (ff * dim + dim). On top: token and position
    embeddings, a final layer norm, and (if untied) the LM head.
    """
    per_block = (
        2 * (2 * dim)
        + 4 * (dim * dim + dim)
        + (dim * ff_dim + ff_dim)
        + (ff_dim * dim + dim)
    )
    embeddings = vocab_size * dim + max_seq_len * dim
    final_norm = 2 * dim
    head = 0 if tie_embeddings else vocab_size * dim + vocab_size
    return embeddings + num_layers * per_block + final_norm + head


def config_param_count(config: ModelConfig) -> int:
    """Parameter count of a model built from ``config``."""
    return transformer_param_count(
        vocab_size=config.vocab_size,
        max_seq_len=config.max_seq_len,
        dim=config.dim,
        num_layers=config.num_layers,
        ff_dim=config.ff_dim,
        tie_embeddings=config.tie_embeddings,
    )
