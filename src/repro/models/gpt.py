"""GPT-style decoder-only causal language model.

Mirrors the architecture of the GPT family the tutorial introduces:
learned token + position embeddings, a stack of causal pre-norm
Transformer blocks, and a language-model head tied to the input
embedding (as in GPT-2/GPT-3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Tensor
from repro.errors import ModelError
from repro.models.config import ModelConfig
from repro.nn import Embedding, Linear, Module, TransformerStack
from repro.utils.rng import SeededRNG


class GPTModel(Module):
    """Decoder-only causal LM: ids (B, T) -> next-token logits (B, T, V)."""

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        super().__init__()
        if not config.causal:
            raise ModelError("GPTModel requires a causal config")
        self.config = config
        rng = SeededRNG(seed)
        self.token_emb = Embedding(config.vocab_size, config.dim, rng.spawn("tok"))
        self.pos_emb = Embedding(config.max_seq_len, config.dim, rng.spawn("pos"))
        self.stack = TransformerStack(
            num_layers=config.num_layers,
            dim=config.dim,
            num_heads=config.num_heads,
            ff_dim=config.ff_dim,
            rng=rng.spawn("stack"),
            causal=True,
            dropout=config.dropout,
        )
        self.lm_head: Optional[Linear] = None
        if not config.tie_embeddings:
            self.lm_head = Linear(config.dim, config.vocab_size, rng.spawn("head"))

    def forward(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Return next-token logits of shape (B, T, vocab)."""
        hidden = self.encode(ids, attention_mask)
        return self.logits_from_hidden(hidden)

    def encode(
        self, ids: np.ndarray, attention_mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Return final hidden states of shape (B, T, dim)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ModelError(f"ids must be 2-D (batch, seq), got shape {ids.shape}")
        _, seq = ids.shape
        if seq > self.config.max_seq_len:
            raise ModelError(
                f"sequence length {seq} exceeds max_seq_len {self.config.max_seq_len}"
            )
        positions = np.broadcast_to(np.arange(seq), ids.shape)
        x = self.token_emb(ids) + self.pos_emb(positions)
        return self.stack(x, attention_mask)

    def logits_from_hidden(self, hidden: Tensor) -> Tensor:
        """Project hidden states to vocabulary logits."""
        if self.lm_head is not None:
            return self.lm_head(hidden)
        # Weight tying: share the token embedding as the output projection.
        return hidden @ self.token_emb.weight.transpose(1, 0)

    # -- incremental decoding (KV cache) -----------------------------------
    def init_cache(
        self,
        batch_size: Optional[int] = None,
        capacity: Optional[int] = None,
        layout: str = "slab",
    ) -> list:
        """Fresh per-layer K/V caches for cached decoding.

        With no arguments: in-place :class:`~repro.serving.kvcache.KVCache`
        slabs for the single-sequence :meth:`forward_incremental` path
        (``layout="legacy"`` selects the old concatenate-per-token
        dicts). With ``batch_size`` and ``capacity``: preallocated
        slotted caches for the padding-aware batched path of
        :mod:`repro.serving`.
        """
        return self.stack.init_cache(
            batch_size=batch_size, capacity=capacity, layout=layout
        )

    def encode_chunk(
        self,
        ids: np.ndarray,
        positions: np.ndarray,
        caches: list,
        blocked: Optional[np.ndarray] = None,
        write_cols: Optional[object] = None,
        kv_len: Optional[int] = None,
    ) -> Tensor:
        """Hidden states for a chunk of new positions, updating the caches.

        Inference-only. ``ids`` has shape (B, T) — a whole-prompt (or
        chunked) causal prefill when T > 1, a decode step when T = 1.
        ``positions`` holds each token's absolute position, broadcastable
        to (B, T), so ragged batches can run rows at different offsets.
        ``blocked``/``write_cols``/``kv_len`` are forwarded to
        :meth:`repro.nn.MultiHeadAttention.incremental`.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2 or ids.shape[1] < 1:
            raise ModelError(f"ids must be 2-D (batch, chunk), got shape {ids.shape}")
        positions = np.broadcast_to(np.asarray(positions, dtype=np.int64), ids.shape)
        if int(positions.max()) >= self.config.max_seq_len:
            raise ModelError(
                f"position {int(positions.max())} exceeds max_seq_len "
                f"{self.config.max_seq_len}"
            )
        x = self.token_emb(ids) + self.pos_emb(positions)
        return self.stack.incremental(
            x, caches, blocked=blocked, write_cols=write_cols, kv_len=kv_len
        )

    def forward_chunk(
        self,
        ids: np.ndarray,
        positions: np.ndarray,
        caches: list,
        blocked: Optional[np.ndarray] = None,
        write_cols: Optional[object] = None,
        kv_len: Optional[int] = None,
    ) -> Tensor:
        """Logits for a chunk of new positions (see :meth:`encode_chunk`)."""
        hidden = self.encode_chunk(
            ids, positions, caches,
            blocked=blocked, write_cols=write_cols, kv_len=kv_len,
        )
        return self.logits_from_hidden(hidden)

    def forward_incremental(
        self, ids_step: np.ndarray, position: int, caches: list
    ) -> Tensor:
        """Logits for one new position, reusing cached keys/values.

        Inference-only. ``ids_step`` has shape (B, 1); ``position`` is
        the absolute position of that token. Produces logits identical
        to a full :meth:`forward` over the whole prefix.
        """
        ids_step = np.asarray(ids_step, dtype=np.int64)
        if ids_step.ndim != 2 or ids_step.shape[1] != 1:
            raise ModelError(f"ids_step must be (batch, 1), got {ids_step.shape}")
        if position >= self.config.max_seq_len:
            raise ModelError(
                f"position {position} exceeds max_seq_len {self.config.max_seq_len}"
            )
        return self.forward_chunk(
            ids_step, np.full_like(ids_step, position), caches
        )
