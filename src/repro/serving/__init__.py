"""Batched inference serving for the numpy Transformer.

Vectorizes decoding across sequences: padding-aware batched KV caches,
chunked causal prefill, per-sequence stop handling, and a FIFO
microbatching scheduler. See :class:`BatchedGenerator` for the engine
and :class:`BatchScheduler` for the queueing front-end.
"""

from repro.serving.dispatch import complete_many
from repro.serving.engine import (
    BatchedGenerator,
    BatchRequest,
    BatchResult,
    GeneratorStats,
)
from repro.serving.scheduler import BatchScheduler, SchedulerStats

__all__ = [
    "BatchedGenerator",
    "BatchRequest",
    "BatchResult",
    "BatchScheduler",
    "GeneratorStats",
    "SchedulerStats",
    "complete_many",
]
