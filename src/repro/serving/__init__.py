"""Batched inference serving for the numpy Transformer.

Vectorizes decoding across sequences: preallocated KV slabs
(:class:`KVCache`), padding-aware batched KV caches, chunked causal
prefill, per-sequence stop handling, a prompt-prefix K/V cache
(:class:`PrefixCache`), retire-and-admit continuous batching, and a
FIFO microbatching scheduler. See :class:`BatchedGenerator` for the
engine and :class:`BatchScheduler` for the queueing front-end.
"""

from repro.serving.dispatch import complete_many, engine_serving_stats
from repro.serving.engine import (
    BatchedGenerator,
    BatchRequest,
    BatchResult,
    GeneratorStats,
)
from repro.serving.kvcache import KVCache
from repro.serving.prefix import PrefixCache, PrefixCacheStats
from repro.serving.scheduler import BatchScheduler, SchedulerStats

__all__ = [
    "BatchedGenerator",
    "BatchRequest",
    "BatchResult",
    "BatchScheduler",
    "GeneratorStats",
    "KVCache",
    "PrefixCache",
    "PrefixCacheStats",
    "SchedulerStats",
    "complete_many",
    "engine_serving_stats",
]
