"""Batched inference serving for the numpy Transformer.

Vectorizes decoding across sequences: preallocated KV slabs
(:class:`KVCache`), padding-aware batched KV caches, chunked causal
prefill, per-sequence stop handling, a prompt-prefix K/V cache
(:class:`PrefixCache`), retire-and-admit continuous batching, and a
FIFO microbatching scheduler. See :class:`BatchedGenerator` for the
engine and :class:`BatchScheduler` for the queueing front-end.
Above the scheduler, :class:`SemanticCache` memoizes whole
completions — exact-match on the full request key plus an opt-in
embedding-similarity tier — so repeated prompts skip prefill and
decode entirely.
:class:`SpeculativeGenerator` layers draft-and-verify speculative
decoding on top: a distilled draft model (:func:`distill_draft`)
proposes runs of tokens the target verifies in one batched forward,
token-identical to plain greedy decoding.

On top of the scheduler sits the asyncio serving tier: the multi-tenant
:class:`Gateway` (admission control, load shedding, deadline dispatch,
replica failover over worker-thread decode) and the open-loop load
generator (:mod:`repro.serving.loadgen`) that traces its saturation
curve under deterministic virtual time.
"""

from repro.serving.dispatch import complete_many, engine_serving_stats
from repro.serving.engine import (
    BatchedGenerator,
    BatchRequest,
    BatchResult,
    GeneratorStats,
)
from repro.serving.gateway import (
    Gateway,
    GatewayRequest,
    GatewayResult,
    GatewayStats,
    Replica,
    ServiceModel,
)
from repro.serving.kvcache import KVCache
from repro.serving.loadgen import LoadReport, OpenLoopLoad, run_open_loop, sweep
from repro.serving.prefix import PrefixCache, PrefixCacheStats
from repro.serving.scheduler import BatchScheduler, SchedulerStats
from repro.serving.semcache import (
    CacheHit,
    SemanticCache,
    SemanticCacheStats,
    completion_request_key,
    hashed_embedding,
)
from repro.serving.speculative import (
    SpeculativeGenerator,
    distill_draft,
    draft_config,
    speculative_generate,
)

__all__ = [
    "BatchedGenerator",
    "BatchRequest",
    "BatchResult",
    "BatchScheduler",
    "SpeculativeGenerator",
    "distill_draft",
    "draft_config",
    "speculative_generate",
    "Gateway",
    "GatewayRequest",
    "GatewayResult",
    "GatewayStats",
    "GeneratorStats",
    "KVCache",
    "LoadReport",
    "OpenLoopLoad",
    "PrefixCache",
    "PrefixCacheStats",
    "CacheHit",
    "Replica",
    "SchedulerStats",
    "SemanticCache",
    "SemanticCacheStats",
    "ServiceModel",
    "complete_many",
    "completion_request_key",
    "hashed_embedding",
    "engine_serving_stats",
    "run_open_loop",
    "sweep",
]
